/root/repo/target/debug/deps/fanin-9b339c276e6e19ab.d: crates/bench/src/bin/fanin.rs Cargo.toml

/root/repo/target/debug/deps/libfanin-9b339c276e6e19ab.rmeta: crates/bench/src/bin/fanin.rs Cargo.toml

crates/bench/src/bin/fanin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
