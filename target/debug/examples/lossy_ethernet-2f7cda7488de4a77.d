/root/repo/target/debug/examples/lossy_ethernet-2f7cda7488de4a77.d: examples/lossy_ethernet.rs

/root/repo/target/debug/examples/lossy_ethernet-2f7cda7488de4a77: examples/lossy_ethernet.rs

examples/lossy_ethernet.rs:
