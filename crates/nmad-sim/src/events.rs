//! Event queues for the discrete-event core.
//!
//! [`TimerWheel`] is the production queue behind
//! [`SimWorld::advance`](crate::world::SimWorld::advance): a
//! hierarchical calendar (timing wheel) with per-level occupancy
//! bitmaps, giving O(1) insertion and near-O(1) extraction regardless
//! of how many wakeups are pending. A `BinaryHeap` costs O(log n) per
//! operation with poor locality once tens of thousands of flows each
//! keep a few wakeups in flight — exactly the regime the fanout and
//! tail-latency workloads live in. [`HeapQueue`] keeps the old heap
//! behind the same interface as the differential-testing and
//! benchmarking baseline.
//!
//! ## Wheel geometry
//!
//! `LEVELS` levels of `SLOTS = 64` slots each; leaf slots are
//! `2^LEAF_BITS` ns wide and each level above is 64× coarser, so the
//! wheel spans `2^(LEAF_BITS + 6·LEVELS)` ns (≈ 275 simulated seconds
//! at the defaults) ahead of its cursor. The leaf level is
//! deliberately 256 ns per slot, not 1 ns: a leaf slot drains into
//! the ready list with one bulk sort, so a dense event population
//! pays one sort per 256 ns window instead of one cascade step plus
//! one ordered insert per event. Events beyond the span land in an
//! overflow list that is redistributed when the wheel drains —
//! far-future events pay a rare O(overflow) rebase instead of taxing
//! every operation.
//!
//! ## Exactness
//!
//! Slots store the exact nanosecond instants, never rounded to slot
//! width: bucketing only affects *where* an event waits, not *when*
//! it fires (leaf slots are sorted as they drain). Extraction returns
//! instants in nondecreasing order, and equal instants are
//! indistinguishable (the queue stores bare times), so ties need no
//! normalization: any pop order of an equal-time run is the same
//! sequence of values. The differential suite below holds the wheel
//! to the heap's exact output on seeded 10k-event workloads.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// log2 of the leaf slot width in nanoseconds. 256 ns leaves keep the
/// leaf level's span (64 slots × 256 ns = 16.4 µs) ahead of typical
/// wakeup horizons — link/CPU charges are ns-to-µs scale — so most
/// events are filed directly into the leaf and never cascade. The
/// trade-off is the size of the bulk sort when a leaf slot drains
/// (~window width × event density), which stays cache-resident.
const LEAF_BITS: u32 = 9;
/// Hierarchy depth. 5 levels of 64 slots over 256 ns leaves span
/// 2^38 ns ≈ 275 s of virtual time ahead of the cursor; events beyond
/// that overflow.
const LEVELS: usize = 5;

/// Slot width of level `l` is `1 << level_shift(l)` ns: 2^LEAF_BITS
/// at the leaf, ×64 per level above it.
const fn level_shift(level: usize) -> u32 {
    LEAF_BITS + SLOT_BITS * level as u32
}

/// Hierarchical timer wheel over [`SimTime`] instants. See the module
/// documentation for geometry and ordering guarantees.
pub struct TimerWheel {
    /// All instants ≤ `cursor`, sorted descending so `pop` takes the
    /// minimum from the tail. Holds the leaf slot most recently
    /// drained plus any stale (past-cursor) insertions.
    ready: Vec<u64>,
    /// `slots[l * SLOTS + i]` holds instants whose level-`l` absolute
    /// slot number (`t >> level_shift(l)`) is ≡ i (mod 64) and within
    /// 64 slots of the cursor. Flattened to one `Vec` so a slot access
    /// is a single indirection.
    slots: Vec<Vec<u64>>,
    /// One occupancy bit per slot, per level: `occ[l] >> i & 1`.
    occ: [u64; LEVELS],
    /// Instants beyond the top level's span.
    overflow: Vec<u64>,
    /// Drain buffer swapped with the slot being emptied, so slot
    /// vectors keep their capacity instead of reallocating on every
    /// refill (steady-state extraction allocates nothing).
    scratch: Vec<u64>,
    /// Wheel position in nanoseconds. Invariant: every instant stored
    /// in the levels is strictly greater than `cursor`, and every
    /// instant in `ready` is ≤ `cursor`.
    cursor: u64,
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel with its cursor at the epoch.
    pub fn new() -> Self {
        TimerWheel {
            ready: Vec::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            overflow: Vec::new(),
            scratch: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Pending instants (duplicates counted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules an instant. Duplicates are kept (one pop each), and
    /// instants at or before the last popped one are returned by the
    /// next pops — exactly the `BinaryHeap` semantics the sim core
    /// was written against.
    #[inline]
    pub fn push(&mut self, t: SimTime) {
        self.len += 1;
        let t = t.as_ns();
        // Leaf fast path, duplicated from insert() so the overwhelming
        // common case (an instant within the leaf span) inlines into
        // the caller as a handful of instructions.
        if t > self.cursor && (t >> LEAF_BITS) - (self.cursor >> LEAF_BITS) < SLOTS as u64 {
            let idx = ((t >> LEAF_BITS) & (SLOTS as u64 - 1)) as usize;
            self.slots[idx].push(t);
            self.occ[0] |= 1 << idx;
            return;
        }
        self.insert(t);
    }

    fn insert(&mut self, t: u64) {
        if t <= self.cursor {
            // Stale or due now: straight to the ready list, keeping it
            // sorted descending so the tail stays the minimum.
            let at = self.ready.partition_point(|&r| r > t);
            self.ready.insert(at, t);
            return;
        }
        let mut shift = level_shift(0);
        for l in 0..LEVELS {
            if (t >> shift) - (self.cursor >> shift) < SLOTS as u64 {
                let idx = ((t >> shift) & (SLOTS as u64 - 1)) as usize;
                self.slots[l * SLOTS + idx].push(t);
                self.occ[l] |= 1 << idx;
                return;
            }
            shift += SLOT_BITS;
        }
        self.overflow.push(t);
    }

    /// Removes and returns the earliest pending instant. Instants come
    /// out in nondecreasing order (modulo stale insertions, which come
    /// out immediately — as with a heap).
    #[inline]
    pub fn pop_earliest(&mut self) -> Option<SimTime> {
        // Fast path: the ready list already holds due instants, tail
        // first. Everything else — scanning, draining, the overflow
        // rebase — is the cold refill.
        if let Some(t) = self.ready.pop() {
            self.len -= 1;
            debug_assert!(t <= self.cursor);
            return Some(SimTime::from_ns(t));
        }
        self.pop_refill()
    }

    /// Refills `ready` from the wheel (or overflow) and pops. Cold:
    /// runs once per drained slot, not once per event.
    #[cold]
    fn pop_refill(&mut self) -> Option<SimTime> {
        loop {
            if let Some(t) = self.ready.pop() {
                self.len -= 1;
                debug_assert!(t <= self.cursor);
                return Some(SimTime::from_ns(t));
            }
            // Level residency is decided at insert time and goes stale
            // as the cursor advances: a coarse-level slot can hold
            // instants earlier than everything at finer levels. The
            // earliest pending instant is therefore found by comparing
            // the earliest occupied slot's *start* across all levels
            // and draining the minimum. Since every occupied slot
            // start is ≥ that minimum, advancing the cursor to it
            // never jumps past a pending instant. Ties MUST prefer the
            // coarser level (`<=` below with the fine-to-coarse loop):
            // draining a leaf slot advances the cursor to the slot's
            // *end*, which would orphan instants still parked in a
            // coarse slot that starts at the same nanosecond. Slot
            // starts are width-aligned, so a coarse start never falls
            // strictly inside a finer slot — equal starts are the only
            // overlap, and the coarse drain re-files those instants
            // downward before the leaf drain commits the jump.
            let mut best: Option<(usize, u64, usize)> = None;
            for level in 0..LEVELS {
                if self.occ[level] == 0 {
                    continue;
                }
                // Earliest occupied slot of the level, scanning
                // circularly from the cursor's slot. All occupied
                // slots sit within 64 absolute slots ahead of the
                // cursor, so the circular distance IS the absolute
                // distance.
                let shift = level_shift(level);
                let cur_slot = self.cursor >> shift;
                let start = (cur_slot & (SLOTS as u64 - 1)) as u32;
                let off = self.occ[level].rotate_right(start).trailing_zeros() as u64;
                let abs_slot = cur_slot + off;
                let slot_start = abs_slot << shift;
                let idx = (abs_slot & (SLOTS as u64 - 1)) as usize;
                if best.is_none_or(|(_, s, _)| slot_start <= s) {
                    best = Some((level, slot_start, idx));
                }
            }
            let Some((level, slot_start, idx)) = best else {
                if self.overflow.is_empty() {
                    return None;
                }
                self.rebase_from_overflow();
                continue;
            };
            self.occ[level] &= !(1 << idx);
            if level == 0 {
                // Leaf slot: its whole window becomes due at once —
                // one bulk sort per window instead of one ordered
                // insert per event — and the cursor jumps to the
                // window's end so later pushes into the window merge
                // into `ready` rather than re-occupying the drained
                // slot out of order. Every instant in the slot shares
                // the bits above LEAF_BITS, so for dense slots a
                // one-byte counting scatter (two linear passes, no
                // comparisons) replaces the comparison sort; both
                // paths leave `ready` sorted descending, tail = min.
                debug_assert!(self.ready.is_empty());
                const MASK: u64 = (1 << LEAF_BITS) - 1;
                let slot = &mut self.slots[idx];
                if slot.len() < 64 {
                    std::mem::swap(&mut self.ready, slot);
                    self.ready.sort_unstable();
                    self.ready.reverse();
                } else {
                    let mut counts = [0u32; 1 << LEAF_BITS];
                    for &t in slot.iter() {
                        counts[(t & MASK) as usize] += 1;
                    }
                    // Descending scatter offsets: the largest low byte
                    // lands at index 0.
                    let mut offs = counts;
                    let mut acc = 0u32;
                    for b in (0..1usize << LEAF_BITS).rev() {
                        offs[b] = acc;
                        acc += counts[b];
                    }
                    self.ready.resize(slot.len(), 0);
                    for &t in slot.iter() {
                        let b = (t & MASK) as usize;
                        self.ready[offs[b] as usize] = t;
                        offs[b] += 1;
                    }
                    slot.clear();
                }
                self.cursor = self.cursor.max(slot_start + (1 << level_shift(0)) - 1);
                continue;
            }
            // Coarse slot: swap its buffer out through `scratch`
            // rather than `mem::take` it, so the buffer keeps its
            // capacity for the slot's next tenants and steady-state
            // cascading never allocates. Advancing to the slot's start
            // keeps every drained instant within the windows of the
            // levels below, so reinsertion strictly descends the
            // hierarchy.
            let mut drained = std::mem::take(&mut self.scratch);
            std::mem::swap(&mut drained, &mut self.slots[level * SLOTS + idx]);
            self.cursor = self.cursor.max(slot_start);
            for &t in &drained {
                self.insert(t);
            }
            drained.clear();
            self.scratch = drained;
        }
    }

    /// All levels are empty: jump the cursor to the earliest overflow
    /// instant and redistribute the overflow list. Instants still
    /// beyond the span stay in overflow for a later rebase.
    fn rebase_from_overflow(&mut self) {
        let min = *self.overflow.iter().min().expect("overflow non-empty");
        self.cursor = self.cursor.max(min);
        let spilled = std::mem::take(&mut self.overflow);
        for t in spilled {
            self.insert(t);
        }
    }
}

impl std::fmt::Debug for TimerWheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("len", &self.len)
            .field("cursor", &self.cursor)
            .field("ready", &self.ready.len())
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

/// The pre-wheel event queue — a plain binary heap — kept as the
/// reference implementation for differential tests and as the baseline
/// the `batch` benchmark measures the wheel against.
#[derive(Default, Debug)]
pub struct HeapQueue {
    heap: BinaryHeap<Reverse<u64>>,
}

impl HeapQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pending instants (duplicates counted).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an instant.
    #[inline]
    pub fn push(&mut self, t: SimTime) {
        self.heap.push(Reverse(t.as_ns()));
    }

    /// Removes and returns the earliest pending instant.
    #[inline]
    pub fn pop_earliest(&mut self) -> Option<SimTime> {
        self.heap.pop().map(|Reverse(t)| SimTime::from_ns(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn drain(w: &mut TimerWheel) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(t) = w.pop_earliest() {
            out.push(t.as_ns());
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        for t in [5u64, 1, 1_000_000, 3, 64, 65, 4096, 2] {
            w.push(SimTime::from_ns(t));
        }
        assert_eq!(w.len(), 8);
        assert_eq!(drain(&mut w), [1, 2, 3, 5, 64, 65, 4096, 1_000_000]);
        assert!(w.is_empty());
    }

    #[test]
    fn duplicates_pop_once_each() {
        let mut w = TimerWheel::new();
        for t in [7u64, 7, 7, 3, 3] {
            w.push(SimTime::from_ns(t));
        }
        assert_eq!(drain(&mut w), [3, 3, 7, 7, 7]);
    }

    #[test]
    fn stale_pushes_pop_immediately() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_ns(100));
        assert_eq!(w.pop_earliest(), Some(SimTime::from_ns(100)));
        // A heap would happily return an instant before the last pop;
        // the sim core discards them by comparing against `now`. The
        // wheel must hand them back the same way, not lose them.
        w.push(SimTime::from_ns(5));
        w.push(SimTime::from_ns(200));
        assert_eq!(w.pop_earliest(), Some(SimTime::from_ns(5)));
        assert_eq!(w.pop_earliest(), Some(SimTime::from_ns(200)));
        assert_eq!(w.pop_earliest(), None);
    }

    #[test]
    fn far_future_instants_survive_the_overflow_path() {
        let mut w = TimerWheel::new();
        let span = 1u64 << (LEAF_BITS + SLOT_BITS * LEVELS as u32);
        let far = span * 3 + 12_345;
        let farther = span * 7 + 1;
        w.push(SimTime::from_ns(far));
        w.push(SimTime::from_ns(farther));
        w.push(SimTime::from_ns(17));
        assert_eq!(drain(&mut w), [17, far, farther]);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_ns(10));
        w.push(SimTime::from_ns(30));
        assert_eq!(w.pop_earliest(), Some(SimTime::from_ns(10)));
        // New work scheduled relative to the popped instant, the sim
        // core's steady-state pattern.
        w.push(SimTime::from_ns(20));
        w.push(SimTime::from_ns(25));
        assert_eq!(w.pop_earliest(), Some(SimTime::from_ns(20)));
        w.push(SimTime::from_ns(22));
        assert_eq!(w.pop_earliest(), Some(SimTime::from_ns(22)));
        assert_eq!(w.pop_earliest(), Some(SimTime::from_ns(25)));
        assert_eq!(w.pop_earliest(), Some(SimTime::from_ns(30)));
    }

    /// The acceptance workload: 10k concurrent "flows", each popping
    /// its next event and scheduling a successor — wheel and heap must
    /// produce bit-identical pop sequences.
    #[test]
    fn differential_10k_flow_workload_matches_heap() {
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let mut wheel = TimerWheel::new();
        let mut heap = HeapQueue::new();
        for _ in 0..10_000 {
            let t = rng.gen_range(0..1_000_000u64);
            wheel.push(SimTime::from_ns(t));
            heap.push(SimTime::from_ns(t));
        }
        // Steady state: every pop schedules 0–2 successors, biased so
        // the population stays near 10k for a while then drains.
        for step in 0..30_000u64 {
            let wt = wheel.pop_earliest().expect("wheel drained early");
            let ht = heap.pop_earliest().expect("heap drained early");
            assert_eq!(wt, ht, "divergence at step {step}");
            if step < 20_000 {
                let succ = wt + SimDurationNs(rng.gen_range(1..10_000));
                wheel.push(succ);
                heap.push(succ);
            }
        }
        loop {
            let (wt, ht) = (wheel.pop_earliest(), heap.pop_earliest());
            assert_eq!(wt, ht, "divergence while draining");
            if wt.is_none() {
                break;
            }
        }
    }

    /// Tiny helper so the differential test reads as time arithmetic.
    #[allow(non_snake_case)]
    fn SimDurationNs(ns: u64) -> crate::time::SimDuration {
        crate::time::SimDuration::from_ns(ns)
    }

    proptest::proptest! {
        /// Arbitrary instants, arbitrary interleaving of pushes and
        /// pops: the wheel's output always equals the heap's.
        #[test]
        fn wheel_equals_heap_on_any_schedule(
            ops in proptest::collection::vec((proptest::prelude::any::<bool>(), 0u64..200_000), 1..400)
        ) {
            let mut wheel = TimerWheel::new();
            let mut heap = HeapQueue::new();
            for (push, t) in ops {
                if push {
                    wheel.push(SimTime::from_ns(t));
                    heap.push(SimTime::from_ns(t));
                } else {
                    proptest::prop_assert_eq!(wheel.pop_earliest(), heap.pop_earliest());
                }
                proptest::prop_assert_eq!(wheel.len(), heap.len());
            }
            loop {
                let (w, h) = (wheel.pop_earliest(), heap.pop_earliest());
                proptest::prop_assert_eq!(w, h);
                if w.is_none() { break; }
            }
        }
    }
}
