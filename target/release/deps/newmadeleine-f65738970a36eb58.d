/root/repo/target/release/deps/newmadeleine-f65738970a36eb58.d: src/lib.rs

/root/repo/target/release/deps/libnewmadeleine-f65738970a36eb58.rlib: src/lib.rs

/root/repo/target/release/deps/libnewmadeleine-f65738970a36eb58.rmeta: src/lib.rs

src/lib.rs:
