//! The discrete-event simulated cluster.
//!
//! `SimWorld` owns the virtual clock and, per node × rail: the NIC
//! transmit occupancy, the in-flight packet queue towards that node, and
//! a per-node CPU account. Engines interact with it through the same
//! primitive operations a user-level NIC driver offers — post a
//! (possibly gather) send, test a send for completion, poll for
//! received packets — plus an explicit CPU charge used to model memory
//! copies and per-request software costs.
//!
//! Time only moves in [`SimWorld::advance`], which jumps to the next
//! recorded wakeup (a transmit completion, a packet delivery, or a CPU
//! account becoming free). The co-simulation loop in [`crate::runner`]
//! calls it whenever every engine is quiescent, which makes every run
//! deterministic and lets the figure harnesses read exact virtual
//! timings.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::events::TimerWheel;
use crate::host::HostModel;
use crate::nic::NicModel;
use crate::time::{SimDuration, SimTime};
use crate::topo::{NodeId, RailId, SimConfig};
use crate::trace::{Trace, TraceEvent};

/// Handle for an in-progress simulated send.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SendToken(u64);

/// A packet delivered to a node's NIC.
#[derive(Clone, Debug)]
pub struct RxPacket {
    /// Source node.
    pub src: NodeId,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Instant the packet reached the NIC (≤ `now` at poll time).
    pub delivered_at: SimTime,
}

/// Aggregate counters, used by tests and the figure harnesses to report
/// wire-level behaviour (e.g. "aggregation sent fewer, larger packets").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Wire packets sent in the whole world.
    pub packets_sent: u64,
    /// Wire payload bytes sent in the whole world.
    pub bytes_sent: u64,
    /// Number of CPU charges recorded.
    pub cpu_charges: u64,
    /// Total CPU time charged.
    pub cpu_time: SimDuration,
    /// Payload bytes carried per rail (multirail split diagnostics).
    pub per_rail_bytes: Vec<u64>,
}

#[derive(Debug)]
struct InFlight {
    deliver_at: SimTime,
    seq: u64,
    src: NodeId,
    payload: Vec<u8>,
}

// Order by delivery time, ties broken by global send sequence so
// delivery order is total and deterministic.
impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

#[derive(Debug, Default)]
struct RailState {
    tx_busy_until: SimTime,
    /// Cumulative wire occupancy of this transmit side (observability).
    tx_busy_total: SimDuration,
    inbox: BinaryHeap<Reverse<InFlight>>,
    pending_sends: HashMap<SendToken, SimTime>,
    failed: bool,
}

#[derive(Debug)]
struct NodeState {
    cpu_free_at: SimTime,
    rails: Vec<RailState>,
}

/// The simulated cluster. See the module documentation.
pub struct SimWorld {
    now: SimTime,
    host: HostModel,
    rails: Vec<NicModel>,
    nodes: Vec<NodeState>,
    next_seq: u64,
    wakeups: TimerWheel,
    stats: WorldStats,
    trace: Option<Trace>,
}

impl SimWorld {
    /// Builds the cluster described by `config`, at time zero.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.nodes >= 1, "need at least one node");
        assert!(!config.rails.is_empty(), "need at least one rail");
        let rail_count = config.rails.len();
        let nodes = (0..config.nodes)
            .map(|_| NodeState {
                cpu_free_at: SimTime::ZERO,
                rails: config.rails.iter().map(|_| RailState::default()).collect(),
            })
            .collect();
        SimWorld {
            now: SimTime::ZERO,
            host: config.host,
            rails: config.rails,
            nodes,
            next_seq: 0,
            wakeups: TimerWheel::new(),
            stats: WorldStats {
                per_rail_bytes: vec![0; rail_count],
                ..WorldStats::default()
            },
            trace: None,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Host (CPU/memcpy) model shared by all nodes.
    pub fn host(&self) -> &HostModel {
        &self.host
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Rail count.
    pub fn rail_count(&self) -> usize {
        self.rails.len()
    }

    /// NIC model of a rail (panics on an unknown rail, which is a
    /// harness bug).
    pub fn rail_model(&self, rail: RailId) -> &NicModel {
        &self.rails[rail.index()]
    }

    /// Aggregate wire/CPU counters since construction.
    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }

    /// Enables event tracing (tests use this to compare runs).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::default());
    }

    /// Takes the accumulated trace, leaving tracing enabled.
    pub fn take_trace(&mut self) -> Trace {
        self.trace.replace(Trace::default()).unwrap_or_default()
    }

    fn record(&mut self, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(self.now, event);
        }
    }

    /// Charges `dur` of CPU time to `node` and returns the instant the
    /// CPU becomes free again. Charges are serialized per node: the
    /// account never runs in the past.
    pub fn charge_cpu(&mut self, node: NodeId, dur: SimDuration) -> SimTime {
        if dur == SimDuration::ZERO {
            return self.nodes[node.index()].cpu_free_at.max(self.now);
        }
        let state = &mut self.nodes[node.index()];
        let start = state.cpu_free_at.max(self.now);
        state.cpu_free_at = start + dur;
        let free_at = state.cpu_free_at;
        self.wakeups.push(free_at);
        self.stats.cpu_charges += 1;
        self.stats.cpu_time += dur;
        self.record(TraceEvent::CpuCharge { node, dur });
        free_at
    }

    /// Charges the CPU time of one memcpy of `bytes` bytes on `node`.
    pub fn charge_memcpy(&mut self, node: NodeId, bytes: usize) -> SimTime {
        let cost = self.host.memcpy_time(bytes);
        self.charge_cpu(node, cost)
    }

    /// Instant the node's CPU account is free (≥ `now` means busy).
    pub fn cpu_free_at(&self, node: NodeId) -> SimTime {
        self.nodes[node.index()].cpu_free_at
    }

    /// True when the rail's transmit side has no queued work — the
    /// trigger the NewMadeleine transfer layer uses to ask its scheduler
    /// for the next packet (§3.3). A failed NIC never reports idle.
    pub fn nic_idle(&self, node: NodeId, rail: RailId) -> bool {
        let state = &self.nodes[node.index()].rails[rail.index()];
        !state.failed && state.tx_busy_until <= self.now
    }

    /// Fails `node`'s NIC on `rail`: future sends are refused, its
    /// inbox is dropped, and packets still in flight towards it are
    /// lost (fault-injection for failover tests).
    pub fn fail_rail(&mut self, node: NodeId, rail: RailId) {
        let state = &mut self.nodes[node.index()].rails[rail.index()];
        state.failed = true;
        state.inbox.clear();
    }

    /// Whether `node`'s NIC on `rail` has been failed.
    pub fn rail_failed(&self, node: NodeId, rail: RailId) -> bool {
        self.nodes[node.index()].rails[rail.index()].failed
    }

    /// Instant the rail's transmit side drains, for diagnostics.
    pub fn nic_busy_until(&self, node: NodeId, rail: RailId) -> SimTime {
        self.nodes[node.index()].rails[rail.index()].tx_busy_until
    }

    /// Cumulative wire occupancy of `node`'s transmit side on `rail`
    /// since construction. Charged at post time for the whole frame, so
    /// it includes the tail of a transmission still in progress and may
    /// briefly exceed elapsed virtual time.
    pub fn nic_busy_total(&self, node: NodeId, rail: RailId) -> SimDuration {
        self.nodes[node.index()].rails[rail.index()].tx_busy_total
    }

    /// Records a strategy scheduling decision into the event trace
    /// (no-op while tracing is disabled). Scalar arguments keep this
    /// crate free of engine-layer types.
    pub fn record_strategy_decision(
        &mut self,
        node: NodeId,
        strategy: &'static str,
        entries: u32,
        reordered: u32,
    ) {
        self.record(TraceEvent::StrategyDecision {
            node,
            strategy,
            entries,
            reordered,
        });
    }

    /// Posts a send of `payload` from `src` to `dst` on `rail`.
    ///
    /// The post itself costs the NIC's `tx_overhead` of CPU on `src`;
    /// transmission starts once both the CPU charge and any earlier
    /// transmission on the same NIC have finished; the packet is
    /// delivered one `latency` after the wire drains. The returned
    /// token tests complete at the transmit end (sender buffer reuse
    /// point).
    pub fn post_send(
        &mut self,
        src: NodeId,
        rail: RailId,
        dst: NodeId,
        payload: Vec<u8>,
    ) -> SendToken {
        self.post_send_delayed(src, rail, dst, payload, SimDuration::ZERO)
    }

    /// Like [`post_send`](Self::post_send), but delivered `extra`
    /// later than the model's latency (fault-injected latency spike).
    /// The transmit side is unaffected: the wire occupancy and the
    /// sender's completion point are those of a normal send.
    pub fn post_send_delayed(
        &mut self,
        src: NodeId,
        rail: RailId,
        dst: NodeId,
        payload: Vec<u8>,
        extra: SimDuration,
    ) -> SendToken {
        assert!(src.index() < self.nodes.len(), "bad src {src}"); // PANIC-OK: simulator precondition; a sim panic is a test failure
        assert!(dst.index() < self.nodes.len(), "bad dst {dst}"); // PANIC-OK: simulator precondition; a sim panic is a test failure
        assert_ne!(
            // PANIC-OK: simulator precondition; a sim panic is a test failure
            src,
            dst,
            "self-send must be short-circuited above the driver"
        );
        let model = &self.rails[rail.index()];
        // PANIC-OK: simulator precondition; a sim panic is a test failure
        assert!(
            payload.len() <= model.mtu,
            "packet of {} bytes exceeds {} MTU ({})",
            payload.len(),
            model.name,
            model.mtu
        );

        let tx_overhead = model.tx_overhead;
        let wire = model.wire_time(payload.len());
        let latency = model.latency;

        // PANIC-OK: simulator precondition; a sim panic is a test failure
        assert!(
            !self.nodes[src.index()].rails[rail.index()].failed,
            "post_send on a failed rail (drivers must check rail_failed)"
        );
        let cpu_done = self.charge_cpu(src, tx_overhead);
        let rail_state = &mut self.nodes[src.index()].rails[rail.index()];
        let start = cpu_done.max(rail_state.tx_busy_until).max(self.now);
        let tx_end = start + wire;
        let deliver_at = tx_end + latency + extra;
        rail_state.tx_busy_until = tx_end;
        rail_state.tx_busy_total += wire;

        let token = SendToken(self.next_seq);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.nodes[src.index()].rails[rail.index()]
            .pending_sends
            .insert(token, tx_end);

        let bytes = payload.len();
        // A packet towards a failed receiver NIC is silently lost (the
        // sender completed locally, as on real hardware).
        if !self.nodes[dst.index()].rails[rail.index()].failed {
            self.nodes[dst.index()].rails[rail.index()]
                .inbox
                .push(Reverse(InFlight {
                    deliver_at,
                    seq,
                    src,
                    payload,
                }));
        }

        self.wakeups.push(tx_end);
        self.wakeups.push(deliver_at);
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.stats.per_rail_bytes[rail.index()] += bytes as u64;
        self.record(TraceEvent::Send {
            src,
            dst,
            rail,
            bytes,
            deliver_at,
        });
        token
    }

    /// True once the send has left the host (its token is consumed).
    /// Unknown tokens (already consumed) also report complete, so
    /// callers may poll idempotently.
    pub fn test_send(&mut self, node: NodeId, rail: RailId, token: SendToken) -> bool {
        let rail_state = &mut self.nodes[node.index()].rails[rail.index()];
        match rail_state.pending_sends.get(&token) {
            Some(&complete_at) if complete_at <= self.now => {
                rail_state.pending_sends.remove(&token);
                true
            }
            Some(_) => false,
            None => true,
        }
    }

    /// Pops the next delivered packet on `node`/`rail`, if any. Consuming
    /// the completion costs the NIC's `rx_overhead` of CPU.
    pub fn poll_recv(&mut self, node: NodeId, rail: RailId) -> Option<RxPacket> {
        let now = self.now;
        let rail_state = &mut self.nodes[node.index()].rails[rail.index()];
        let ready = matches!(rail_state.inbox.peek(), Some(Reverse(p)) if p.deliver_at <= now);
        if !ready {
            return None;
        }
        let Reverse(pkt) = self.nodes[node.index()].rails[rail.index()]
            .inbox
            .pop()
            .expect("peeked"); // PANIC-OK: peeked on the line above
        let rx_overhead = self.rails[rail.index()].rx_overhead;
        self.charge_cpu(node, rx_overhead);
        self.record(TraceEvent::Deliver {
            dst: node,
            src: pkt.src,
            rail,
            bytes: pkt.payload.len(),
        });
        Some(RxPacket {
            src: pkt.src,
            payload: pkt.payload,
            delivered_at: pkt.deliver_at,
        })
    }

    /// Registers an extra wakeup so [`advance`](Self::advance) will not
    /// jump past `t` (engines use this for timer-like behaviour, e.g.
    /// flush-on-threshold strategies).
    pub fn schedule_wakeup(&mut self, t: SimTime) {
        if t > self.now {
            self.wakeups.push(t);
        }
    }

    /// Advances the clock to the next pending event strictly after
    /// `now`. Returns the new time, or `None` when no event is pending
    /// (every queue drained — quiescence or deadlock, the caller knows
    /// which from its own state).
    pub fn advance(&mut self) -> Option<SimTime> {
        while let Some(t) = self.wakeups.pop_earliest() {
            if t > self.now {
                self.now = t;
                return Some(t);
            }
        }
        None
    }

    /// Human-readable snapshot of outstanding work, for deadlock
    /// reports.
    pub fn pending_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "sim time {}, pending state:", self.now);
        for (ni, node) in self.nodes.iter().enumerate() {
            for (ri, rail) in node.rails.iter().enumerate() {
                if rail.inbox.is_empty() && rail.pending_sends.is_empty() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  n{ni}/r{ri}: {} in-flight in, {} unconsumed send tokens, tx busy until {}",
                    rail.inbox.len(),
                    rail.pending_sends.len(),
                    rail.tx_busy_until,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic;

    fn world() -> SimWorld {
        SimWorld::new(SimConfig::two_nodes(nic::mx_myri10g()))
    }

    const R0: RailId = RailId(0);
    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn drain_to(world: &mut SimWorld, mut pred: impl FnMut(&mut SimWorld) -> bool) {
        for _ in 0..1000 {
            if pred(world) {
                return;
            }
            if world.advance().is_none() {
                panic!("no pending events; {}", world.pending_summary());
            }
        }
        panic!("predicate never satisfied");
    }

    #[test]
    fn packet_takes_expected_one_way_time() {
        let mut w = world();
        let nic = nic::mx_myri10g();
        let payload = vec![7u8; 1024];
        w.post_send(N0, R0, N1, payload.clone());
        drain_to(&mut w, |w| w.poll_recv(N1, R0).is_some());
        // poll consumed the packet at exactly the delivery instant
        let expected = nic.one_way_time(1024);
        assert_eq!(w.now().saturating_since(SimTime::ZERO), expected);
    }

    #[test]
    fn send_token_completes_at_tx_end_before_delivery() {
        let mut w = world();
        let token = w.post_send(N0, R0, N1, vec![0u8; 64 * 1024]);
        assert!(!w.test_send(N0, R0, token), "cannot complete at t=0");
        drain_to(&mut w, |w| w.test_send(N0, R0, token));
        let tx_done = w.now();
        drain_to(&mut w, |w| w.poll_recv(N1, R0).is_some());
        assert!(w.now() > tx_done, "delivery strictly after tx completion");
    }

    #[test]
    fn nic_serializes_back_to_back_sends() {
        let mut w = world();
        let bytes = 256 * 1024;
        w.post_send(N0, R0, N1, vec![1u8; bytes]);
        w.post_send(N0, R0, N1, vec![2u8; bytes]);
        let mut got = Vec::new();
        drain_to(&mut w, |w| {
            while let Some(p) = w.poll_recv(N1, R0) {
                got.push((w.now(), p));
            }
            got.len() == 2
        });
        let (t1, p1) = &got[0];
        let (t2, p2) = &got[1];
        assert_eq!(p1.payload[0], 1);
        assert_eq!(p2.payload[0], 2);
        // Second delivery is one wire-time later: the wire pipelines but
        // does not parallelize.
        let gap = t2.saturating_since(*t1);
        let wire = nic::mx_myri10g().wire_time(bytes);
        let slack = SimDuration::from_us(2);
        assert!(
            gap >= wire && gap <= wire + slack,
            "gap {gap} vs wire {wire}"
        );
    }

    #[test]
    fn rails_are_independent() {
        let mut w = SimWorld::new(SimConfig::two_nodes_multirail(vec![
            nic::mx_myri10g(),
            nic::quadrics_qm500(),
        ]));
        let bytes = 1 << 20;
        w.post_send(N0, RailId(0), N1, vec![0u8; bytes]);
        w.post_send(N0, RailId(1), N1, vec![0u8; bytes]);
        let mut done = [None, None];
        drain_to(&mut w, |w| {
            for (r, slot) in done.iter_mut().enumerate() {
                if slot.is_none() && w.poll_recv(N1, RailId(r as u16)).is_some() {
                    *slot = Some(w.now());
                }
            }
            done.iter().all(Option::is_some)
        });
        // Both transfers overlapped: total time is near max, not sum.
        let serial =
            nic::mx_myri10g().one_way_time(bytes) + nic::quadrics_qm500().one_way_time(bytes);
        assert!(w.now().saturating_since(SimTime::ZERO) < serial);
    }

    #[test]
    fn cpu_charges_serialize_per_node() {
        let mut w = world();
        let d = SimDuration::from_us(5);
        let f1 = w.charge_cpu(N0, d);
        let f2 = w.charge_cpu(N0, d);
        assert_eq!(f2.saturating_since(f1), d);
        // Other node unaffected.
        assert_eq!(w.cpu_free_at(N1), SimTime::ZERO);
    }

    #[test]
    fn cpu_charge_delays_transmission_start() {
        let mut w = world();
        let copy = SimDuration::from_us(100);
        w.charge_cpu(N0, copy);
        w.post_send(N0, R0, N1, vec![0u8; 4]);
        drain_to(&mut w, |w| w.poll_recv(N1, R0).is_some());
        let base = nic::mx_myri10g().one_way_time(4);
        assert_eq!(
            w.now().saturating_since(SimTime::ZERO),
            base + copy,
            "transmission must wait for the CPU account"
        );
    }

    #[test]
    fn advance_returns_none_when_quiescent() {
        let mut w = world();
        assert!(w.advance().is_none());
        w.post_send(N0, R0, N1, vec![0u8; 4]);
        while w.advance().is_some() {}
        assert!(w.poll_recv(N1, R0).is_some());
        // Consuming the delivery charges rx CPU, which schedules one
        // more wakeup; after draining it the world is quiescent.
        while w.advance().is_some() {}
        assert!(w.advance().is_none());
    }

    #[test]
    fn stats_count_packets_and_bytes() {
        let mut w = world();
        w.post_send(N0, R0, N1, vec![0u8; 100]);
        w.post_send(N1, R0, N0, vec![0u8; 28]);
        assert_eq!(w.stats().packets_sent, 2);
        assert_eq!(w.stats().bytes_sent, 128);
    }

    #[test]
    fn deliveries_preserve_post_order_on_one_link() {
        let mut w = world();
        for i in 0..10u8 {
            w.post_send(N0, R0, N1, vec![i; 8]);
        }
        let mut seen = Vec::new();
        drain_to(&mut w, |w| {
            while let Some(p) = w.poll_recv(N1, R0) {
                seen.push(p.payload[0]);
            }
            seen.len() == 10
        });
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn mtu_is_enforced() {
        let mut w = SimWorld::new(SimConfig::two_nodes(nic::sisci_sci()));
        w.post_send(N0, R0, N1, vec![0u8; 128 * 1024]);
    }

    #[test]
    fn tx_busy_total_accumulates_wire_time() {
        let mut w = world();
        assert_eq!(w.nic_busy_total(N0, R0), SimDuration::ZERO);
        w.post_send(N0, R0, N1, vec![0u8; 1024]);
        let wire = nic::mx_myri10g().wire_time(1024);
        assert_eq!(w.nic_busy_total(N0, R0), wire);
        w.post_send(N0, R0, N1, vec![0u8; 1024]);
        assert_eq!(w.nic_busy_total(N0, R0), wire + wire);
        assert_eq!(w.nic_busy_total(N1, R0), SimDuration::ZERO);
    }

    #[test]
    fn strategy_decisions_enter_the_trace() {
        let mut w = world();
        w.record_strategy_decision(N0, "aggreg", 3, 0); // tracing off: dropped
        w.enable_trace();
        w.record_strategy_decision(N0, "aggreg", 8, 2);
        let t = w.take_trace();
        assert_eq!(t.decisions(), 1);
        assert_eq!(t.decision_entries_for(N0), 8);
        assert_eq!(t.decision_entries_for(N1), 0);
        assert_eq!(t.events()[0].kind_name(), "decision");
    }

    #[test]
    fn trace_records_send_and_delivery() {
        let mut w = world();
        w.enable_trace();
        w.post_send(N0, R0, N1, vec![0u8; 16]);
        drain_to(&mut w, |w| w.poll_recv(N1, R0).is_some());
        let trace = w.take_trace();
        let kinds: Vec<_> = trace.events().iter().map(|e| e.kind_name()).collect();
        assert!(kinds.contains(&"send"), "{kinds:?}");
        assert!(kinds.contains(&"deliver"), "{kinds:?}");
    }
}
