/root/repo/target/debug/deps/nmad_net-ae33b47178551113.d: crates/nmad-net/src/lib.rs crates/nmad-net/src/backoff.rs crates/nmad-net/src/driver.rs crates/nmad-net/src/fault.rs crates/nmad-net/src/lossy.rs crates/nmad-net/src/mem.rs crates/nmad-net/src/reliable.rs crates/nmad-net/src/selective.rs crates/nmad-net/src/sim.rs crates/nmad-net/src/tcp.rs

/root/repo/target/debug/deps/nmad_net-ae33b47178551113: crates/nmad-net/src/lib.rs crates/nmad-net/src/backoff.rs crates/nmad-net/src/driver.rs crates/nmad-net/src/fault.rs crates/nmad-net/src/lossy.rs crates/nmad-net/src/mem.rs crates/nmad-net/src/reliable.rs crates/nmad-net/src/selective.rs crates/nmad-net/src/sim.rs crates/nmad-net/src/tcp.rs

crates/nmad-net/src/lib.rs:
crates/nmad-net/src/backoff.rs:
crates/nmad-net/src/driver.rs:
crates/nmad-net/src/fault.rs:
crates/nmad-net/src/lossy.rs:
crates/nmad-net/src/mem.rs:
crates/nmad-net/src/reliable.rs:
crates/nmad-net/src/selective.rs:
crates/nmad-net/src/sim.rs:
crates/nmad-net/src/tcp.rs:
