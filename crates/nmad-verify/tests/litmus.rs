//! Litmus tests for the model checker itself: classic weak-memory
//! shapes must explore exactly the outcomes the memory model permits,
//! the DFS must terminate, dedup must prune, and deliberately broken
//! protocols must be *caught*. These pin down the checker before the
//! engine suites (crates/nmad-core) lean on it.

use nmad_verify::sync::{fence, spin_loop, AtomicU64, Condvar, Mutex, Ordering};
use nmad_verify::{thread, Checker};
use std::collections::HashSet;
use std::sync::Arc;

type Outcomes = Arc<std::sync::Mutex<HashSet<(u64, u64)>>>;

/// Store buffering with relaxed everything: both threads may read the
/// other's flag as still 0 — the checker must find (0,0) *and* the SC
/// outcomes.
#[test]
fn store_buffering_relaxed_explores_both_zero() {
    let outcomes: Outcomes = Arc::new(std::sync::Mutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    let stats = Checker::new()
        .check(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = thread::spawn(move || {
                x1.store(1, Ordering::Relaxed);
                y1.load(Ordering::Relaxed)
            });
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t2 = thread::spawn(move || {
                y2.store(1, Ordering::Relaxed);
                x2.load(Ordering::Relaxed)
            });
            let r1 = t1.join();
            let r2 = t2.join();
            sink.lock().unwrap().insert((r1, r2));
        })
        .expect("nothing asserts in this model");
    let seen = outcomes.lock().unwrap();
    assert!(
        seen.contains(&(0, 0)),
        "relaxed SB must exhibit the store-buffered outcome, saw {seen:?} over {stats:?}"
    );
    assert!(
        seen.contains(&(1, 1)) || seen.contains(&(0, 1)) || seen.contains(&(1, 0)),
        "SC-like outcomes must appear too, saw {seen:?}"
    );
    assert!(stats.schedules >= 4, "too few schedules: {stats:?}");
}

/// The same shape with a seq-cst fence between each store and load:
/// (0,0) becomes impossible. This is the Dekker pattern the
/// SubmitRing wakeup protocol relies on.
#[test]
fn store_buffering_seqcst_fences_exclude_both_zero() {
    let outcomes: Outcomes = Arc::new(std::sync::Mutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    Checker::new()
        .check(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = thread::spawn(move || {
                x1.store(1, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                y1.load(Ordering::Relaxed)
            });
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t2 = thread::spawn(move || {
                y2.store(1, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                x2.load(Ordering::Relaxed)
            });
            let r1 = t1.join();
            let r2 = t2.join();
            sink.lock().unwrap().insert((r1, r2));
        })
        .expect("nothing asserts in this model");
    let seen = outcomes.lock().unwrap();
    assert!(
        !seen.contains(&(0, 0)),
        "seq-cst fences must forbid the store-buffered outcome, saw {seen:?}"
    );
    assert!(!seen.is_empty());
}

/// Message passing with release/acquire holds in every schedule.
#[test]
fn message_passing_release_acquire_holds() {
    let stats = Checker::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let producer = thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                f.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(
                    data.load(Ordering::Relaxed),
                    42,
                    "acquire of the flag must make the data visible"
                );
            }
            producer.join();
        })
        .expect("release/acquire message passing is correct");
    assert!(stats.schedules >= 2);
}

/// The same protocol with a relaxed flag publish is broken — and the
/// checker must say so. This is the canonical "weakened ordering
/// mutant caught" guarantee the engine mutants build on.
#[test]
fn message_passing_relaxed_mutant_is_caught() {
    let failure = Checker::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let producer = thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                f.store(1, Ordering::Relaxed); // mutant: publish not release
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale data leaked");
            }
            producer.join();
        })
        .expect_err("the relaxed publish must be detected");
    assert!(
        failure.message.contains("stale data leaked"),
        "unexpected failure: {failure}"
    );
}

/// Mutual exclusion: non-atomic state guarded by the model mutex never
/// loses an increment, in any schedule.
#[test]
fn mutex_guards_plain_state() {
    Checker::new()
        .check(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    thread::spawn(move || {
                        for _ in 0..2 {
                            let mut g = c.lock();
                            let v = *g;
                            *g = v + 1;
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(*counter.lock(), 4, "lost increment under the mutex");
        })
        .expect("mutex exclusion holds");
}

/// Atomic RMW allocates unique, dense ids in every schedule — the
/// watermark allocation pattern used by the threaded engine handles.
#[test]
fn fetch_add_ids_are_unique() {
    Checker::new()
        .check(|| {
            let next = Arc::new(AtomicU64::new(0));
            let (a, b) = (Arc::clone(&next), Arc::clone(&next));
            let t1 = thread::spawn(move || {
                (
                    a.fetch_add(1, Ordering::Relaxed),
                    a.fetch_add(1, Ordering::Relaxed),
                )
            });
            let t2 = thread::spawn(move || {
                (
                    b.fetch_add(1, Ordering::Relaxed),
                    b.fetch_add(1, Ordering::Relaxed),
                )
            });
            let (a1, a2) = t1.join();
            let (b1, b2) = t2.join();
            let mut ids = [a1, a2, b1, b2];
            ids.sort_unstable();
            assert_eq!(ids, [0, 1, 2, 3], "ids must be dense and duplicate-free");
            assert_eq!(next.load(Ordering::Relaxed), 4);
        })
        .expect("fetch_add id allocation is linearizable");
}

/// Correct condvar use (predicate re-checked under the lock) never
/// needs the model's last-resort timeout.
#[test]
fn condvar_wakeup_never_times_out() {
    let stats = Checker::new()
        .check(|| {
            let slot = Arc::new((Mutex::new(false), Condvar::new()));
            let s = Arc::clone(&slot);
            let producer = thread::spawn(move || {
                let (lock, cv) = &*s;
                let mut ready = lock.lock();
                *ready = true;
                cv.notify_one();
                drop(ready);
            });
            let (lock, cv) = &*slot;
            let mut ready = lock.lock();
            while !*ready {
                let (g, _timed_out) = cv.wait_timeout(ready, std::time::Duration::from_millis(1));
                ready = g;
            }
            drop(ready);
            producer.join();
        })
        .expect("condvar protocol is correct");
    assert_eq!(
        stats.timeouts_fired, 0,
        "a correct wakeup protocol must never rely on the timeout: {stats:?}"
    );
}

/// A *missed* wakeup (flag set without notifying) does not deadlock
/// the model — the timeout fires as a last resort and is counted,
/// which is exactly how the ring-wakeup mutant is detected.
#[test]
fn condvar_missed_wakeup_counts_timeouts() {
    let stats = Checker::new()
        .check(|| {
            let slot = Arc::new((Mutex::new(false), Condvar::new()));
            let s = Arc::clone(&slot);
            let producer = thread::spawn(move || {
                let (lock, _cv) = &*s;
                *lock.lock() = true; // mutant: no notify
            });
            let (lock, cv) = &*slot;
            let mut ready = lock.lock();
            while !*ready {
                let (g, _timed_out) = cv.wait_timeout(ready, std::time::Duration::from_millis(1));
                ready = g;
            }
            drop(ready);
            producer.join();
        })
        .expect("the timeout rescues the missed wakeup");
    assert!(
        stats.timeouts_fired > 0,
        "the missed wakeup must surface as fired timeouts: {stats:?}"
    );
}

/// A spin loop (with the facade's fairness hint) terminates and the
/// DFS completes rather than diverging.
#[test]
fn bounded_dfs_terminates_on_spin_loop() {
    let stats = Checker::new()
        .check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let f = Arc::clone(&flag);
            let setter = thread::spawn(move || f.store(1, Ordering::Release));
            while flag.load(Ordering::Acquire) == 0 {
                spin_loop();
            }
            setter.join();
        })
        .expect("the spin loop always terminates");
    assert!(stats.schedules >= 2, "spin model underexplored: {stats:?}");
    assert_eq!(
        stats.truncated, 0,
        "no execution may hit the step bound: {stats:?}"
    );
}

/// State-hash dedup prunes commuting interleavings: the same model
/// explored with dedup disabled needs strictly more schedules.
#[test]
fn state_hash_dedup_prunes() {
    let model = || {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = thread::spawn(move || {
            a1.fetch_add(1, Ordering::Relaxed);
            b1.fetch_add(1, Ordering::Relaxed);
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = thread::spawn(move || {
            a2.fetch_add(1, Ordering::Relaxed);
            b2.fetch_add(1, Ordering::Relaxed);
        });
        t1.join();
        t2.join();
        assert_eq!(a.load(Ordering::Relaxed), 2);
        assert_eq!(b.load(Ordering::Relaxed), 2);
    };
    let with_dedup = Checker::new().check(model).expect("model is correct");
    let without_dedup = Checker::new()
        .dedup(false)
        .check(model)
        .expect("model is correct");
    assert!(
        with_dedup.states_deduped > 0,
        "dedup found nothing to prune: {with_dedup:?}"
    );
    assert!(
        with_dedup.schedules < without_dedup.schedules,
        "dedup must reduce the schedule count: {with_dedup:?} vs {without_dedup:?}"
    );
}

/// Deadlock (lock-order inversion) is reported as a failure, not a
/// hang.
#[test]
fn deadlock_is_reported() {
    let failure = Checker::new()
        .check(|| {
            let m1 = Arc::new(Mutex::new(()));
            let m2 = Arc::new(Mutex::new(()));
            let (a1, a2) = (Arc::clone(&m1), Arc::clone(&m2));
            let t = thread::spawn(move || {
                let g1 = a1.lock();
                let g2 = a2.lock();
                drop((g1, g2));
            });
            let g2 = m2.lock();
            let g1 = m1.lock();
            drop((g2, g1));
            t.join();
        })
        .expect_err("lock-order inversion must deadlock in some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {failure}"
    );
}

/// The failure report carries a replayable schedule string.
#[test]
fn failure_reports_a_schedule() {
    let failure = Checker::new()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || x2.store(1, Ordering::Relaxed));
            assert_eq!(x.load(Ordering::Relaxed), 0, "saw the store");
            t.join();
        })
        .expect_err("some schedule observes the store first");
    assert!(!failure.schedule.is_empty());
    assert!(failure.message.contains("saw the store"), "{failure}");
}

/// The coverage probe used by the bench harness runs green and
/// reports real exploration numbers.
#[test]
fn coverage_probe_reports_exploration() {
    let stats = nmad_verify::coverage_probe();
    assert!(stats.schedules >= 10, "probe underexplored: {stats:?}");
}
