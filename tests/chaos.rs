//! Seeded chaos harness (integration): randomized fault schedules are
//! driven through MAD-MPI workloads and through the reliability layer,
//! asserting eventual delivery, matching-order correctness and absence
//! of deadlock. Every scenario is a pure function of its seed — a
//! failing run prints the seed, and replaying that seed reproduces the
//! exact fault schedule bit for bit (`FaultPlan` draws every coin flip
//! from a deterministic xorshift stream, and the simulator itself is a
//! deterministic discrete-event machine).
//!
//! The long-running version of this harness is
//! `crates/bench/src/bin/chaos_soak.rs`; these tests pin a handful of
//! seeds so the behaviour is exercised on every `cargo test`.

use newmadeleine::core::prelude::*;
use newmadeleine::mpi::{pump_cluster, sim_cluster_multirail, EngineKind, StrategyKind};
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::{DetRng, Driver, FaultPlan, ReliableDriver, SimCpuMeter};
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig, SimTime};

const RTO_NS: u64 = 200_000; // 200 us

/// A two-rail MAD-MPI workload (eager, rank 0 → rank 1) under a seeded
/// fault schedule: rail 0 of the sender dies at a seeded instant, the
/// survivor suffers a seeded latency spike. Returns a digest string of
/// everything observable (completion time, engine metrics, injector
/// stats) so determinism tests can compare whole runs.
fn mpi_death_chaos(seed: u64) -> String {
    println!("chaos replay: mpi_death_chaos(seed = {seed:#x})");
    let mut rng = DetRng::new(seed);
    let (world, mut procs) = sim_cluster_multirail(
        2,
        vec![nic::mx_myri10g(), nic::quadrics_qm500()],
        EngineKind::MadMpi(StrategyKind::Multirail),
    );

    let death_at = rng.next_range(50_000, 2_000_000);
    let spike_from = rng.next_range(0, 1_000_000);
    let spike_len = rng.next_range(50_000, 500_000);
    let spike_extra = rng.next_range(10_000, 200_000);
    let death = FaultPlan::new(seed).nic_death(death_at);
    let spike =
        FaultPlan::new(seed ^ 1).latency_spike(spike_from, spike_from + spike_len, spike_extra);
    println!("  rail 0: {}", death.describe());
    println!("  rail 1: {}", spike.describe());
    assert!(procs[0].install_faults(0, death));
    assert!(procs[0].install_faults(1, spike));

    let comm = procs[0].comm_world();
    let n = 24 + rng.next_range(0, 8) as usize;
    let bodies: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let len = rng.next_range(1, 2_000) as usize;
            (0..len).map(|j| ((i * 37 + j) % 251) as u8).collect()
        })
        .collect();
    let sends: Vec<_> = bodies
        .iter()
        .enumerate()
        .map(|(i, b)| procs[0].isend(comm, 1, i as u16, b.clone()))
        .collect();
    let recvs: Vec<_> = bodies
        .iter()
        .enumerate()
        .map(|(i, b)| procs[1].irecv(comm, 0, i as u16, b.len()))
        .collect();
    pump_cluster(&world, &mut procs, |p| {
        sends.iter().all(|&s| p[0].test(s)) && recvs.iter().all(|&r| p[1].test(r))
    });
    for (i, r) in recvs.into_iter().enumerate() {
        assert_eq!(
            procs[1].take(r).unwrap(),
            bodies[i],
            "seed {seed:#x}: message {i} lost or corrupted"
        );
    }

    let done_ns = world.lock().now().as_ns();
    let m0 = procs[0].backend().metrics().expect("madmpi has metrics");
    let m1 = procs[1].backend().metrics().expect("madmpi has metrics");
    format!(
        "t={done_ns} m0={} m1={} f0={:?} f1={:?}",
        m0.to_json(),
        m1.to_json(),
        procs[0].fault_stats(0),
        procs[0].fault_stats(1),
    )
}

fn reliable_engine(world: &SharedWorld, node: u32) -> NmadEngine {
    let raw = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let clock_world = world.clone();
    let now = Box::new(move || clock_world.lock().now().as_ns());
    let wake_world = world.clone();
    let wakeup = Box::new(move |deadline: u64| {
        wake_world
            .lock()
            .schedule_wakeup(SimTime::from_ns(deadline));
    });
    let reliable = ReliableDriver::new(raw, now, Some(wakeup), RTO_NS);
    let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
    NmadEngine::new(
        vec![Box::new(reliable) as Box<dyn Driver>],
        meter,
        Box::new(StratAggreg),
        EngineCosts::zero(),
    )
}

fn pump(
    world: &SharedWorld,
    a: &mut NmadEngine,
    b: &mut NmadEngine,
    mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
) {
    for _ in 0..5_000_000u64 {
        let moved = a.progress() | b.progress();
        if done(a, b) {
            return;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    panic!("no convergence");
}

/// A bidirectional workload (eager bursts + one rendezvous each way)
/// through the go-back-N reliability decorator over a fabric running a
/// fully randomized fault plan on each end: link-down windows, latency
/// spikes, probabilistic drop and bit corruption. Returns a run digest.
fn reliable_chaos(seed: u64) -> String {
    println!("chaos replay: reliable_chaos(seed = {seed:#x})");
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = reliable_engine(&world, 0);
    let mut b = reliable_engine(&world, 1);
    let horizon = 20_000_000; // 20 ms of scheduled trouble
    let plan_a = FaultPlan::randomized(seed, horizon);
    let plan_b = FaultPlan::randomized(seed ^ 0xFACE, horizon);
    println!("  rail 0 @0: {}", plan_a.describe());
    println!("  rail 0 @1: {}", plan_b.describe());
    assert!(a.install_faults(0, plan_a));
    assert!(b.install_faults(0, plan_b));

    let mut rng = DetRng::new(seed ^ 0xC0FFEE);
    let n = 10;
    let fwd: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let len = rng.next_range(1, 1_500) as usize;
            (0..len).map(|j| ((i * 13 + j) % 249) as u8).collect()
        })
        .collect();
    let back: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let len = rng.next_range(1, 1_500) as usize;
            (0..len).map(|j| ((i * 29 + j) % 247) as u8).collect()
        })
        .collect();
    let big: Vec<u8> = (0..60_000u32).map(|i| (i % 253) as u8).collect();

    let s_fwd: Vec<_> = fwd
        .iter()
        .enumerate()
        .map(|(i, m)| a.isend(NodeId(1), Tag(i as u32), m.clone()))
        .collect();
    let s_back: Vec<_> = back
        .iter()
        .enumerate()
        .map(|(i, m)| b.isend(NodeId(0), Tag(i as u32), m.clone()))
        .collect();
    let s_big = a.isend(NodeId(1), Tag(99), big.clone());
    let r_fwd: Vec<_> = fwd
        .iter()
        .enumerate()
        .map(|(i, m)| b.post_recv(NodeId(0), Tag(i as u32), m.len()))
        .collect();
    let r_back: Vec<_> = back
        .iter()
        .enumerate()
        .map(|(i, m)| a.post_recv(NodeId(1), Tag(i as u32), m.len()))
        .collect();
    let r_big = b.post_recv(NodeId(0), Tag(99), big.len());

    pump(&world, &mut a, &mut b, |a, b| {
        s_fwd.iter().all(|&s| a.is_send_done(s))
            && s_back.iter().all(|&s| b.is_send_done(s))
            && a.is_send_done(s_big)
            && r_fwd.iter().all(|&r| b.is_recv_done(r))
            && r_back.iter().all(|&r| a.is_recv_done(r))
            && b.is_recv_done(r_big)
    });
    for (i, r) in r_fwd.into_iter().enumerate() {
        assert_eq!(
            b.try_take_recv(r).unwrap().data,
            fwd[i],
            "seed {seed:#x}: forward message {i} wrong"
        );
    }
    for (i, r) in r_back.into_iter().enumerate() {
        assert_eq!(
            a.try_take_recv(r).unwrap().data,
            back[i],
            "seed {seed:#x}: backward message {i} wrong"
        );
    }
    assert_eq!(
        b.try_take_recv(r_big).unwrap().data,
        big,
        "seed {seed:#x}: rendezvous payload wrong"
    );

    let done_ns = world.lock().now().as_ns();
    format!(
        "t={done_ns} m0={} m1={} f0={:?} f1={:?}",
        a.metrics().to_json(),
        b.metrics().to_json(),
        a.fault_stats(0),
        b.fault_stats(0),
    )
}

#[test]
fn mpi_chaos_survives_randomized_death_schedules() {
    for seed in [0x11u64, 0x5EED, 0xD00D, 0xBEA7] {
        mpi_death_chaos(seed);
    }
}

#[test]
fn mpi_chaos_fixed_seed_is_bit_identical() {
    let first = mpi_death_chaos(0xD5);
    let second = mpi_death_chaos(0xD5);
    assert_eq!(first, second, "same seed must reproduce the whole run");
}

#[test]
fn reliable_chaos_survives_randomized_fault_schedules() {
    for seed in [0x1u64, 0x2BAD, 0xCAFE] {
        reliable_chaos(seed);
    }
}

#[test]
fn reliable_chaos_fixed_seed_is_bit_identical() {
    let first = reliable_chaos(0x7EA);
    let second = reliable_chaos(0x7EA);
    assert_eq!(first, second, "same seed must reproduce the whole run");
}

/// Acceptance scenario: one of two rails is killed mid-workload by the
/// fault plan; every message still arrives via the survivor, and the
/// engine's fault counters record exactly one rail death.
#[test]
fn killing_one_rail_mid_workload_delivers_via_survivor() {
    let (world, mut procs) = sim_cluster_multirail(
        2,
        vec![nic::mx_myri10g(), nic::quadrics_qm500()],
        EngineKind::MadMpi(StrategyKind::Multirail),
    );
    // ~800 KB of eager traffic needs well over 200 us on these rails,
    // so the death lands while the window is full and frames are in
    // flight on the doomed rail.
    assert!(procs[0].install_faults(0, FaultPlan::new(7).nic_death(200_000)));

    let comm = procs[0].comm_world();
    let n = 200usize;
    let bodies: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..4096).map(|j| ((i * 41 + j) % 251) as u8).collect())
        .collect();
    let sends: Vec<_> = bodies
        .iter()
        .enumerate()
        .map(|(i, b)| procs[0].isend(comm, 1, i as u16, b.clone()))
        .collect();
    let recvs: Vec<_> = bodies
        .iter()
        .enumerate()
        .map(|(i, b)| procs[1].irecv(comm, 0, i as u16, b.len()))
        .collect();
    pump_cluster(&world, &mut procs, |p| {
        sends.iter().all(|&s| p[0].test(s)) && recvs.iter().all(|&r| p[1].test(r))
    });
    for (i, r) in recvs.into_iter().enumerate() {
        assert_eq!(
            procs[1].take(r).unwrap(),
            bodies[i],
            "message {i} lost across the mid-workload rail death"
        );
    }

    let m = procs[0].backend().metrics().expect("madmpi has metrics");
    assert_eq!(m.engine.rail_faults, 1, "rail 0 died exactly once");
    assert!(
        m.engine.requeued_entries >= 1,
        "work stranded on the dead rail must have been requeued"
    );
    assert!(procs[0].fault_stats(0).dead_posts >= 1);
    assert_eq!(
        procs[0].fault_stats(1),
        Default::default(),
        "no plan was installed on the survivor"
    );
}
