//! The engine over a lossy datagram fabric.
//!
//! The paper's interconnects are lossless; plain Ethernet is not. This
//! example composes the unmodified NewMadeleine engine with two driver
//! decorators — seeded frame loss and go-back-N reliability — and runs
//! an aggregated burst plus a rendezvous transfer across a link that
//! drops 20 % of all frames.
//!
//! Run: `cargo run --release --example lossy_ethernet`

use newmadeleine::core::prelude::*;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::{Driver, LossyDriver, ReliableDriver, SimCpuMeter};
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig, SimTime};

const LOSS: f64 = 0.20;
const RTO_NS: u64 = 8_000_000; // > worst-case RTT incl. 200 KB serialization

fn engine(world: &SharedWorld, node: u32, seed: u64) -> (NmadEngine, impl Fn() -> (u64, u64)) {
    let raw = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let lossy = LossyDriver::new(raw, LOSS, seed);
    let clock_world = world.clone();
    let wake_world = world.clone();
    let reliable = ReliableDriver::new(
        lossy,
        Box::new(move || clock_world.lock().now().as_ns()),
        Some(Box::new(move |deadline| {
            wake_world
                .lock()
                .schedule_wakeup(SimTime::from_ns(deadline));
        })),
        RTO_NS,
    );
    // Counters are read through a stats closure over shared state the
    // decorators expose; here we reconstruct them from the world totals
    // at the end instead, so just return a placeholder reader.
    let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
    let engine = NmadEngine::new(
        vec![Box::new(reliable) as Box<dyn Driver>],
        meter,
        Box::new(StratAggreg),
        EngineCosts::zero(),
    );
    let w = world.clone();
    let reader = move || {
        let stats = w.lock().stats().clone();
        (stats.packets_sent, stats.bytes_sent)
    };
    (engine, reader)
}

fn main() {
    let world = shared_world(SimConfig::two_nodes(nic::tcp_gige()));
    let (mut a, read_wire) = engine(&world, 0, 0xE7);
    let (mut b, _) = engine(&world, 1, 0x5EED);

    let pump = |a: &mut NmadEngine,
                b: &mut NmadEngine,
                done: &mut dyn FnMut(&NmadEngine, &NmadEngine) -> bool| {
        loop {
            let moved = a.progress() | b.progress();
            if done(a, b) {
                break;
            }
            if !moved && world.lock().advance().is_none() {
                panic!("deadlock");
            }
        }
    };

    // An aggregated burst of small messages.
    let sends: Vec<_> = (0..10u32)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 300]))
        .collect();
    let recvs: Vec<_> = (0..10u32)
        .map(|i| b.post_recv(NodeId(0), Tag(i), 300))
        .collect();
    pump(&mut a, &mut b, &mut |a, b| {
        sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
    });
    for (i, r) in recvs.into_iter().enumerate() {
        assert_eq!(b.try_take_recv(r).unwrap().data, vec![i as u8; 300]);
    }
    println!(
        "burst of 10 x 300 B delivered exactly, in order, across {:.0}% loss",
        LOSS * 100.0
    );

    // A rendezvous-sized transfer (RTS/CTS/chunks all subject to loss).
    let body: Vec<u8> = (0..200_000u32).map(|i| (i % 255) as u8).collect();
    let s = a.isend(NodeId(1), Tag(99), body.clone());
    let r = b.post_recv(NodeId(0), Tag(99), body.len());
    pump(&mut a, &mut b, &mut |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    assert_eq!(b.try_take_recv(r).unwrap().data, body);
    println!("200 KB rendezvous transfer recovered through retransmissions");

    let (wire_packets, wire_bytes) = read_wire();
    println!(
        "wire totals (incl. retransmits + acks): {wire_packets} packets, {wire_bytes} bytes at {}",
        world.lock().now()
    );
}
