/root/repo/target/debug/deps/real_transports-084a8d6e5d30e7d6.d: tests/real_transports.rs

/root/repo/target/debug/deps/real_transports-084a8d6e5d30e7d6: tests/real_transports.rs

tests/real_transports.rs:
