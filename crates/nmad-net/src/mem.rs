//! In-process shared-memory driver.
//!
//! Moves frames between threads of one process over crossbeam channels.
//! This is the moral equivalent of the intra-node shared-memory path of
//! a real communication library: real concurrency, real time, no
//! sockets. Used by threaded integration tests and examples.

use crate::driver::{Capabilities, Driver, NetError, NetResult, RxFrame, SendHandle};
use crate::fault::{FaultInjector, FaultPlan, FaultStats, FaultVerdict};
use crossbeam::channel::{unbounded, Receiver, Sender};
use nmad_sim::NodeId;

/// One endpoint of an in-process fabric.
pub struct MemDriver {
    node: NodeId,
    caps: Capabilities,
    peers: Vec<Option<Sender<RxFrame>>>,
    inbox: Receiver<RxFrame>,
    next_handle: u64,
    /// The fabric has no clock; an installed fault plan is driven by a
    /// frame counter as pseudo-time (event *N* fires at the *N*-th
    /// posted frame).
    faults: Option<FaultInjector>,
    frames_posted: u64,
    dead: bool,
}

/// Builds a fully-connected fabric of `n` endpoints.
pub fn mem_fabric(n: usize) -> Vec<MemDriver> {
    let mut senders = Vec::with_capacity(n);
    let mut inboxes = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        inboxes.push(rx);
    }
    inboxes
        .into_iter()
        .enumerate()
        .map(|(i, inbox)| MemDriver {
            node: NodeId(i as u32),
            caps: Capabilities {
                name: "mem".to_string(),
                latency_ns: 200,
                bandwidth_bps: 4_000_000_000,
                gather_max_segs: usize::MAX,
                rdv_threshold: 64 * 1024,
                supports_rdma: true,
                mtu: usize::MAX,
            },
            peers: senders
                .iter()
                .enumerate()
                .map(|(j, s)| if i == j { None } else { Some(s.clone()) })
                .collect(),
            inbox,
            next_handle: 0,
            faults: None,
            frames_posted: 0,
            dead: false,
        })
        .collect()
}

impl Driver for MemDriver {
    fn caps(&self) -> &Capabilities {
        &self.caps
    }

    fn local_node(&self) -> NodeId {
        self.node
    }

    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
        if self.dead {
            return Err(NetError::Closed);
        }
        let sender = self
            .peers
            .get(dst.index())
            .and_then(|s| s.as_ref())
            .ok_or(NetError::Closed)?;
        let len = iov.iter().map(|s| s.len()).sum();
        let mut payload = Vec::with_capacity(len);
        for seg in iov {
            payload.extend_from_slice(seg);
        }
        if let Some(inj) = &mut self.faults {
            let pseudo_now = self.frames_posted;
            self.frames_posted += 1;
            match inj.on_post(pseudo_now, &mut payload) {
                FaultVerdict::Dead => {
                    self.dead = true;
                    return Err(NetError::Closed);
                }
                FaultVerdict::Drop => {
                    let handle = SendHandle(self.next_handle);
                    self.next_handle += 1;
                    return Ok(handle);
                }
                // The channel has no timeline to delay on; late
                // delivery degenerates to on-time delivery.
                FaultVerdict::Deliver { .. } => {}
            }
        }
        sender
            .send(RxFrame {
                src: self.node,
                payload: payload.into(),
            })
            .map_err(|_| NetError::Closed)?;
        let handle = SendHandle(self.next_handle);
        self.next_handle += 1;
        Ok(handle)
    }

    fn test_send(&mut self, _handle: SendHandle) -> NetResult<bool> {
        // Channel sends complete synchronously.
        Ok(true)
    }

    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>> {
        match self.inbox.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            // Peers exiting after their conversation completed is
            // normal shutdown, not a transport failure (buffered
            // frames were already drained by the Ok arm above). Sends
            // towards a gone peer still error.
            Err(crossbeam::channel::TryRecvError::Disconnected) => Ok(None),
        }
    }

    fn tx_idle(&self) -> bool {
        true
    }

    fn install_faults(&mut self, plan: FaultPlan) -> bool {
        self.faults = Some(FaultInjector::new(plan));
        true
    }

    fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_cross_between_endpoints() {
        let mut fabric = mem_fabric(3);
        let (left, right) = fabric.split_at_mut(1);
        let a = &mut left[0];
        let c = &mut right[1];
        a.post_send(NodeId(2), &[b"to ", b"two"]).unwrap();
        let frame = c.poll_recv().unwrap().expect("delivered");
        assert_eq!(frame.src, NodeId(0));
        assert_eq!(frame.payload, b"to two");
        assert!(c.poll_recv().unwrap().is_none());
    }

    #[test]
    fn self_send_is_rejected() {
        let mut fabric = mem_fabric(2);
        let err = fabric[0].post_send(NodeId(0), &[b"x"]).unwrap_err();
        assert!(matches!(err, NetError::Closed));
    }

    #[test]
    fn fault_plan_runs_on_the_frame_counter() {
        let mut fabric = mem_fabric(2);
        // Frames 0 and 1 pass, frames 2..4 are in a link-down window,
        // frame 4 onward the NIC is dead.
        assert!(fabric[0].install_faults(FaultPlan::new(9).link_down(2, 4).nic_death(4)));
        for _ in 0..2 {
            fabric[0].post_send(NodeId(1), &[b"ok"]).unwrap();
        }
        for _ in 0..2 {
            fabric[0].post_send(NodeId(1), &[b"lost"]).unwrap();
        }
        let err = fabric[0].post_send(NodeId(1), &[b"dead"]).unwrap_err();
        assert!(matches!(err, NetError::Closed));
        let mut delivered = Vec::new();
        while let Some(f) = fabric[1].poll_recv().unwrap() {
            delivered.push(f.payload);
        }
        assert_eq!(delivered, vec![b"ok".to_vec(), b"ok".to_vec()]);
        let stats = fabric[0].fault_stats();
        assert_eq!(stats.link_down_drops, 2);
        assert_eq!(stats.dead_posts, 1);
        // Death is sticky even without consulting the injector again.
        assert!(matches!(
            fabric[0].post_send(NodeId(1), &[b"still dead"]),
            Err(NetError::Closed)
        ));
    }

    #[test]
    fn works_across_threads() {
        let mut fabric = mem_fabric(2);
        let mut b = fabric.pop().unwrap();
        let mut a = fabric.pop().unwrap();
        let t = std::thread::spawn(move || loop {
            if let Some(f) = b.poll_recv().unwrap() {
                return f.payload;
            }
            std::thread::yield_now();
        });
        a.post_send(NodeId(1), &[b"cross-thread"]).unwrap();
        assert_eq!(t.join().unwrap(), b"cross-thread");
    }
}
