//! Mutant: a sleep and an OS-clock read hidden one call below a hot
//! root — `hot-blocking` must find both transitively (the callee names
//! are unique, so the call graph follows them).

// HOT-PATH: fixture blocking root
pub fn mutant_blocking_pump() -> u64 {
    mutant_backoff();
    mutant_stamp()
}

fn mutant_backoff() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn mutant_stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
