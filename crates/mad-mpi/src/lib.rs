//! # mad-mpi — a proof-of-concept MPI subset over NewMadeleine
//!
//! "To exhibit the performance of NewMadeleine with MPI applications, we
//! have implemented a subset of the MPI standard on top of
//! NewMadeleine. This implementation called MAD-MPI is based on the
//! point-to-point nonblocking posting (isend, irecv) and completion
//! (wait, test) operations of MPI" (§3.4).
//!
//! This crate provides:
//!
//! * [`MpiProc`] / [`Comm`] / [`Request`] — the MPI front-end:
//!   communicators, nonblocking point-to-point, `test`/`wait`/`waitall`;
//! * [`Datatype`] — derived datatypes (contiguous, vector, indexed)
//!   with the pack/unpack machinery the baselines rely on;
//! * three interchangeable backends: MAD-MPI over the NewMadeleine
//!   engine, and MPICH-/OpenMPI-like direct-mapping comparators;
//! * simple collectives (barrier, broadcast) built on point-to-point,
//!   usable with every backend;
//! * cluster builders + the co-simulation pump used by every
//!   experiment harness.
//!
//! A two-rank job over the simulated Myri-10G cluster:
//!
//! ```
//! use mad_mpi::{pump_cluster, sim_cluster, EngineKind, StrategyKind};
//! use nmad_sim::nic;
//!
//! let (world, mut procs) =
//!     sim_cluster(2, nic::mx_myri10g(), EngineKind::MadMpi(StrategyKind::Aggreg));
//! let comm = procs[0].comm_world();
//! let s = procs[0].isend(comm, 1, 0, &b"ping"[..]);
//! let r = procs[1].irecv(comm, 0, 0, 16);
//! pump_cluster(&world, &mut procs, |p| p[1].test(r));
//! assert_eq!(procs[1].take(r).unwrap(), b"ping");
//! # let _ = s;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cluster;
pub mod coll;
pub mod datatype;
pub mod p2p;

pub use backend::{
    DirectBackend, MpiBackend, NmadBackend, RecvToken, SendToken, ShardedNmadBackend,
};
pub use cluster::{
    mem_cluster, pump_cluster, sim_cluster, sim_cluster_multirail, tcp_rank, EngineKind,
    StrategyKind,
};
pub use coll::{
    AllgatherOp, AllreduceOp, AlltoallOp, BarrierOp, BcastOp, CollectiveOp, CommSplitOp, GatherOp,
    ReduceOp, ScatterOp,
};
pub use datatype::{Datatype, DatatypeError};
pub use p2p::{Comm, MpiProc, Persistent, Request};

// Observability: harnesses collect engine snapshots through the
// backend surface without depending on nmad-core directly.
pub use nmad_core::MetricsSnapshot;
