//! Pluggable scheduling strategies.
//!
//! "We propose a (dynamically ...) selectable optimization function
//! instead of a fixed optimizing heuristic. The optimization function is
//! to be selected among an extensible and programmable set of
//! strategies" (§3.2). A [`Strategy`] is that optimization function: it
//! is called by the transfer layer whenever a NIC is idle, looks at the
//! optimization window and the NIC's capabilities, and synthesizes the
//! next ready-to-send frame.
//!
//! Built-in strategies:
//!
//! * [`StratDefault`] — FIFO, one segment per frame, no optimization
//!   (the ablation and overhead-measurement baseline);
//! * [`StratAggreg`] — the paper's *aggregation* strategy:
//!   "accumulates communication requests as long as the cumulated
//!   length does not require to switch to the rendez-vous protocol"
//!   (§4), across logical flows;
//! * [`StratReorder`] — aggregation plus segment reordering, used for
//!   the derived-datatype experiment: "aggregates all the small blocks
//!   (using messages reordering) with the rendez-vous requests of the
//!   large blocks" (§5.3);
//! * [`StratMultirail`] — the paper's *multi-rails* strategy:
//!   "balances the communication flow over the set of available NICs,
//!   possibly by splitting messages in a heterogeneous manner" (§4).
//!
//! Writing a new strategy "only requires to write a few methods" (§4):
//! implement [`Strategy::schedule`] (and optionally [`Strategy::init`])
//! against the public [`Window`] API.

mod aggreg;
mod aggreg_hol;
mod default;
mod dynamic;
mod lanes;
mod multirail;
mod reorder;

pub use aggreg::StratAggreg;
pub use aggreg_hol::StratAggregHol;
pub use default::StratDefault;
pub use dynamic::{DynamicStats, StratDynamic, Tactic};
pub use lanes::StratLanes;
pub use multirail::StratMultirail;
pub use reorder::StratReorder;

use crate::segment::{PackWrapper, Priority};
use crate::window::{CtrlMsg, RdvChunk, Window};
use crate::wire::{ENTRY_HEADER_LEN, FRAME_HEADER_LEN};
use nmad_net::Capabilities;
use nmad_sim::NodeId;

/// What the strategy sees of the NIC asking for work.
pub struct NicView<'a> {
    /// Index of the NIC within the engine (matches dedicated lists).
    pub index: usize,
    /// Facts collected from the driver at initialisation.
    pub caps: &'a Capabilities,
}

/// One planned wire entry.
#[derive(Debug)]
pub enum PlanEntry {
    /// A rendezvous grant (control).
    Cts(CtrlMsg),
    /// An eager application segment, consumed from the window.
    Data(PackWrapper),
    /// A rendezvous announcement; the engine parks the wrapper's data
    /// until the CTS returns.
    Rts(PackWrapper),
    /// A chunk of granted rendezvous payload.
    RdvChunk(RdvChunk),
}

/// A synthesized frame: every entry travels to `dst` in one driver send.
#[derive(Debug)]
pub struct FramePlan {
    /// Destination node.
    pub dst: NodeId,
    /// The planned wire entries, in frame order.
    pub entries: Vec<PlanEntry>,
    /// Entries the strategy pulled out of submission order (the
    /// reordering strategies increment this; FIFO strategies leave 0).
    pub reordered: u32,
}

impl FramePlan {
    /// An empty plan towards `dst`.
    pub fn new(dst: NodeId) -> Self {
        FramePlan {
            dst,
            entries: Vec::new(),
            reordered: 0,
        }
    }

    /// Is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The optimization function interface.
pub trait Strategy: Send {
    /// Stable name for reports.
    fn name(&self) -> &'static str;

    /// Called once with every NIC's capabilities before scheduling
    /// starts (multirail uses this to learn the total bandwidth).
    fn init(&mut self, _nics: &[Capabilities]) {}

    /// Synthesizes the next frame for an idle NIC, or `None` when the
    /// window holds nothing this NIC can send.
    fn schedule(&mut self, window: &mut Window, nic: &NicView<'_>) -> Option<FramePlan>;

    /// Notifies the strategy that `rail` refused a send and was marked
    /// dead. Strategies holding per-rail state (bandwidth shares)
    /// re-plan over the survivors; the default is a no-op.
    fn on_rail_fault(&mut self, _rail: usize) {}

    /// Builds the instance a progression shard will own when the
    /// engine splits into `shards` independent shards (this one being
    /// shard `shard`). The shard engine calls [`Strategy::init`] on
    /// the returned instance with its own rail subset, so
    /// implementations only carry over *configuration* (forced
    /// tactics, tuning knobs) — per-rail state re-derives from `init`.
    fn for_shard(&self, shard: usize, shards: usize) -> Box<dyn Strategy>;
}

/// Per-frame aggregation budget shared by the strategy implementations.
pub(crate) struct Budget {
    /// Eager payload ceiling: the paper's aggregation bound is the
    /// rendezvous threshold.
    pub payload_limit: usize,
    /// Whole-frame byte ceiling (MTU).
    pub frame_limit: usize,
    pub payload: usize,
    pub frame: usize,
    pub entries: usize,
}

impl Budget {
    pub fn new(caps: &Capabilities) -> Self {
        Budget {
            payload_limit: caps.rdv_threshold,
            frame_limit: caps.mtu,
            payload: 0,
            frame: FRAME_HEADER_LEN,
            entries: 0,
        }
    }

    /// Room for an eager data entry of `len` payload bytes?
    pub fn fits_data(&self, len: usize) -> bool {
        self.entries < u16::MAX as usize
            && self.payload + len <= self.payload_limit
            && self
                .frame
                .saturating_add(ENTRY_HEADER_LEN)
                .saturating_add(len)
                <= self.frame_limit
    }

    /// Room for a payload-less entry (RTS/CTS)?
    pub fn fits_bare(&self) -> bool {
        self.entries < u16::MAX as usize
            && self.frame.saturating_add(ENTRY_HEADER_LEN) <= self.frame_limit
    }

    pub fn add_data(&mut self, len: usize) {
        self.payload += len;
        self.frame += ENTRY_HEADER_LEN + len;
        self.entries += 1;
    }

    pub fn add_bare(&mut self) {
        self.frame += ENTRY_HEADER_LEN;
        self.entries += 1;
    }

    /// Accounts a rendezvous chunk: chunks are exempt from the eager
    /// payload ceiling (they *are* the large transfers the ceiling
    /// diverts), only the frame size grows.
    pub fn add_chunk(&mut self, len: usize) {
        self.frame += ENTRY_HEADER_LEN + len;
        self.entries += 1;
    }

    /// Largest rendezvous chunk that still fits in this frame.
    pub fn max_chunk(&self) -> usize {
        self.frame_limit
            .saturating_sub(self.frame)
            .saturating_sub(ENTRY_HEADER_LEN)
    }
}

/// Largest segment the eager path can carry on this NIC: the
/// rendezvous threshold, additionally capped by the MTU (a segment
/// that cannot fit in one frame must use the chunked rendezvous path
/// regardless of the driver's suggested threshold).
pub fn eager_cutoff(caps: &Capabilities) -> usize {
    caps.rdv_threshold
        .min(caps.mtu.saturating_sub(FRAME_HEADER_LEN + ENTRY_HEADER_LEN))
}

/// Drains all control messages towards `dst` into `plan` (every
/// built-in strategy sends grants with maximum urgency).
pub(crate) fn plan_ctrl(plan: &mut FramePlan, window: &mut Window, budget: &mut Budget) {
    for msg in window.drain_ctrl_for(plan.dst) {
        // Control entries are tiny; the budget cannot realistically
        // overflow, but keep the arithmetic honest.
        if !budget.fits_bare() {
            window.push_ctrl(msg);
            break;
        }
        budget.add_bare();
        plan.entries.push(PlanEntry::Cts(msg));
    }
}

/// Deadline-aware rendezvous admission (tail-aware strategies): the
/// largest chunk a granted rendezvous job towards `dst` may cut right
/// now. While expedited (Urgent/High) segments are pending anywhere in
/// the window, chunks are capped at `contended_chunk` bytes so a large
/// RTS/CTS transfer cannot monopolize the rail during a burst — unless
/// the job has already waited more than `deadline` submission stamps,
/// in which case it is admitted at full size again (bulk transfers age
/// out of the cap instead of starving behind a persistent flood).
/// The contended-chunk bound the tail-aware strategies feed to
/// [`rdv_admission_cap`]: a quarter of the MTU, but never more than
/// the rendezvous threshold (several simulated NICs advertise an
/// unlimited MTU, where "a quarter of it" would cap nothing).
pub(crate) fn contended_chunk(caps: &Capabilities) -> usize {
    (caps.mtu / 4).min(caps.rdv_threshold).max(1)
}

pub(crate) fn rdv_admission_cap(
    window: &Window,
    dst: NodeId,
    contended_chunk: usize,
    deadline: u64,
) -> usize {
    let contended = (0..=Priority::High.lane()).any(|l| window.lane_depth(l) > 0);
    if !contended {
        return usize::MAX;
    }
    let Some(job) = window.rdv_front_for(dst) else {
        return usize::MAX;
    };
    let age = window.order_horizon().saturating_sub(job.order());
    if age > deadline {
        usize::MAX
    } else {
        contended_chunk
    }
}

/// Appends one rendezvous chunk towards `plan.dst` if a granted job is
/// pending and the budget allows. Returns true if a chunk was added.
pub(crate) fn plan_rdv_chunk(
    plan: &mut FramePlan,
    window: &mut Window,
    budget: &mut Budget,
    max_chunk: usize,
) -> bool {
    // Chunks are length-prefixed with u32 on the wire.
    let room = budget.max_chunk().min(max_chunk).min(u32::MAX as usize);
    if room == 0 {
        return false;
    }
    if let Some(chunk) = window.take_rdv_chunk(plan.dst, room) {
        budget.add_chunk(chunk.data.len());
        plan.entries.push(PlanEntry::RdvChunk(chunk));
        true
    } else {
        false
    }
}
