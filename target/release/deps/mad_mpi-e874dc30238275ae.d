/root/repo/target/release/deps/mad_mpi-e874dc30238275ae.d: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs

/root/repo/target/release/deps/libmad_mpi-e874dc30238275ae.rlib: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs

/root/repo/target/release/deps/libmad_mpi-e874dc30238275ae.rmeta: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs

crates/mad-mpi/src/lib.rs:
crates/mad-mpi/src/backend.rs:
crates/mad-mpi/src/cluster.rs:
crates/mad-mpi/src/coll.rs:
crates/mad-mpi/src/datatype.rs:
crates/mad-mpi/src/p2p.rs:
