//! `nmadctl` — command-line driver for the NewMadeleine reproduction.
//!
//! Runs individual experiments against the simulated cluster without
//! writing any code:
//!
//! ```console
//! $ nmadctl caps                            # NIC capability records
//! $ nmadctl pingpong --nic mx --size 4K     # fig.2-style point
//! $ nmadctl burst --nic quadrics --segs 16 --size 64
//! $ nmadctl datatype --nic mx --pairs 4
//! $ nmadctl trace --nic mx --size 2K        # event timeline of one ping
//! ```
//!
//! Build/run: `cargo run --release --bin nmadctl -- <command> [flags]`

use bench::{pingpong_contig, pingpong_multiseg, pingpong_typed};
use newmadeleine::core::prelude::*;
use newmadeleine::mpi::{Datatype, EngineKind, StrategyKind};
use newmadeleine::net::sim::SimDriver;
use newmadeleine::sim::{nic, shared_world, timeline, NicModel, NodeId, RailId, SimConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: nmadctl <command> [--flag value]...

commands:
  caps                         print every NIC model's capability record
  pingpong                     single-segment ping-pong (fig. 2 point)
      --nic <name> --size <bytes> [--impl <name>] [--strategy <name>] [--iters N]
  burst                        multi-segment ping-pong (fig. 3 point)
      --nic <name> --segs <n> --size <bytes> [--impl ...] [--strategy ...] [--iters N]
  datatype                     indexed-datatype transfer (fig. 4 point)
      --nic <name> --pairs <n> [--small <bytes>] [--large <bytes>] [--impl ...]
  trace                        one traced ping with event timeline
      --nic <name> --size <bytes> [--strategy <name>]
  lossy                        ping across a lossy fabric + reliability
      --loss <pct> [--proto gbn|sr] [--size <bytes>] [--seed <n>]

names:
  --nic      mx | quadrics | gm | sisci | tcpmodel
  --impl     madmpi (default) | mpich | openmpi
  --strategy aggreg (default) | default | reorder | multirail | dynamic
sizes accept suffixes: 4K, 2M"
    );
    std::process::exit(2)
}

fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (num, mul) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1024),
        'm' | 'M' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<usize>().ok().map(|n| n * mul)
}

fn parse_nic(name: &str) -> Option<NicModel> {
    Some(match name {
        "mx" => nic::mx_myri10g(),
        "quadrics" => nic::quadrics_qm500(),
        "gm" => nic::gm_myrinet2000(),
        "sisci" => nic::sisci_sci(),
        "tcpmodel" => nic::tcp_gige(),
        _ => return None,
    })
}

fn parse_strategy(name: &str) -> Option<StrategyKind> {
    Some(match name {
        "default" => StrategyKind::Default,
        "aggreg" => StrategyKind::Aggreg,
        "reorder" => StrategyKind::Reorder,
        "multirail" => StrategyKind::Multirail,
        "dynamic" => StrategyKind::Dynamic,
        _ => return None,
    })
}

fn parse_impl(name: &str, strategy: StrategyKind) -> Option<EngineKind> {
    Some(match name {
        "madmpi" => EngineKind::MadMpi(strategy),
        "mpich" => EngineKind::Mpich,
        "openmpi" => EngineKind::Ompi,
        _ => return None,
    })
}

struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Option<Flags> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let key = flag.strip_prefix("--")?;
            let value = it.next()?;
            map.insert(key.to_string(), value.clone());
        }
        Some(Flags(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn size(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| parse_size(v).unwrap_or_else(|| usage()))
            .unwrap_or(default)
    }

    fn num(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(default)
    }

    fn nic(&self) -> NicModel {
        self.get("nic")
            .map(|v| parse_nic(v).unwrap_or_else(|| usage()))
            .unwrap_or_else(nic::mx_myri10g)
    }

    fn kind(&self) -> EngineKind {
        let strategy = self
            .get("strategy")
            .map(|v| parse_strategy(v).unwrap_or_else(|| usage()))
            .unwrap_or(StrategyKind::Aggreg);
        self.get("impl")
            .map(|v| parse_impl(v, strategy).unwrap_or_else(|| usage()))
            .unwrap_or(EngineKind::MadMpi(strategy))
    }
}

fn cmd_caps() {
    for model in nic::all_presets() {
        println!("{}:", model.name);
        println!("  one-way latency : {}", model.latency);
        println!(
            "  bandwidth       : {:.0} MB/s",
            model.bandwidth_bps as f64 / 1e6
        );
        println!("  tx post cost    : {}", model.tx_overhead);
        println!("  rx consume cost : {}", model.rx_overhead);
        println!("  gather entries  : {}", model.gather_max_segs);
        println!("  rdv threshold   : {} B", model.rdv_threshold);
        println!("  rdma            : {}", model.supports_rdma);
        if model.mtu == usize::MAX {
            println!("  mtu             : unlimited");
        } else {
            println!("  mtu             : {} B", model.mtu);
        }
    }
}

fn cmd_pingpong(flags: &Flags) {
    let size = flags.size("size", 1024);
    let iters = flags.num("iters", 3);
    let sample = pingpong_contig(flags.kind(), flags.nic(), size, iters);
    println!("one-way latency : {:.2} us", sample.one_way_us);
    println!("bandwidth       : {:.1} MB/s", sample.bandwidth_mbs);
    println!("frames per ping : {:.1}", sample.frames_per_ping);
}

fn cmd_burst(flags: &Flags) {
    let size = flags.size("size", 64);
    let segs = flags.num("segs", 8);
    let iters = flags.num("iters", 3);
    let sample = pingpong_multiseg(flags.kind(), flags.nic(), segs, size, iters);
    println!(
        "one-way latency : {:.2} us ({segs} x {size} B)",
        sample.one_way_us
    );
    println!("frames per ping : {:.1}", sample.frames_per_ping);
}

fn cmd_datatype(flags: &Flags) {
    let small = flags.size("small", 64);
    let large = flags.size("large", 256 * 1024);
    let pairs = flags.num("pairs", 4);
    let iters = flags.num("iters", 3);
    let dtype = Datatype::alternating(small, large, pairs);
    let kind = match flags.get("impl") {
        None => EngineKind::MadMpi(StrategyKind::Reorder),
        _ => flags.kind(),
    };
    let sample = pingpong_typed(kind, flags.nic(), &dtype, iters);
    println!(
        "transfer time   : {:.0} us ({} blocks, {} payload bytes)",
        sample.one_way_us,
        dtype.block_count(),
        dtype.total_bytes()
    );
    println!("frames per ping : {:.1}", sample.frames_per_ping);
}

fn cmd_trace(flags: &Flags) {
    let size = flags.size("size", 1024);
    let strategy = flags
        .get("strategy")
        .map(|v| parse_strategy(v).unwrap_or_else(|| usage()))
        .unwrap_or(StrategyKind::Aggreg);
    let world = shared_world(SimConfig::two_nodes(flags.nic()));
    world.lock().enable_trace();
    let mk = |node: u32| {
        let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
        let meter = Box::new(driver.meter());
        NmadEngine::new(
            vec![Box::new(driver)],
            meter,
            strategy_box(strategy),
            EngineCosts::zero(),
        )
    };
    let mut a = mk(0);
    let mut b = mk(1);
    let s = a.isend(NodeId(1), Tag(0), vec![0x42u8; size]);
    let r = b.post_recv(NodeId(0), Tag(0), size);
    loop {
        let moved = a.progress() | b.progress();
        if a.is_send_done(s) && b.is_recv_done(r) {
            break;
        }
        if !moved && world.lock().advance().is_none() {
            eprintln!("deadlock");
            return;
        }
    }
    let trace = world.lock().take_trace();
    println!("--- events ---");
    print!("{}", timeline::render_events(&trace));
    println!("--- per-node summary ---");
    print!("{}", timeline::render_summary(&trace));
    if let Some((first, last)) = timeline::makespan(&trace) {
        println!("--- makespan: {first} .. {last} ---");
    }
}

fn cmd_lossy(flags: &Flags) {
    use newmadeleine::net::{Driver, LossyDriver, ReliableDriver, SelectiveDriver, SimCpuMeter};
    use newmadeleine::sim::SimTime;
    let size = flags.size("size", 4096);
    let seed = flags.num("seed", 7) as u64;
    let loss = flags.num("loss", 10) as f64 / 100.0;
    let proto = flags.get("proto").unwrap_or("gbn");
    let world = shared_world(SimConfig::two_nodes(nic::tcp_gige()));
    let mk = |node: u32, seed: u64| -> NmadEngine {
        let raw = SimDriver::new(world.clone(), NodeId(node), RailId(0));
        let lossy = LossyDriver::new(raw, loss, seed);
        let cw = world.clone();
        let ww = world.clone();
        let now: Box<dyn Fn() -> u64 + Send> = Box::new(move || cw.lock().now().as_ns());
        let wake: Box<dyn Fn(u64) + Send> =
            Box::new(move |t| ww.lock().schedule_wakeup(SimTime::from_ns(t)));
        let driver: Box<dyn Driver> = match proto {
            "sr" => Box::new(SelectiveDriver::new(lossy, now, Some(wake), 2_000_000)),
            "gbn" => Box::new(ReliableDriver::new(lossy, now, Some(wake), 6_000_000)),
            _ => usage(),
        };
        let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
        NmadEngine::new(
            vec![driver],
            meter,
            Box::new(StratAggreg),
            EngineCosts::zero(),
        )
    };
    let mut a = mk(0, seed);
    let mut b = mk(1, seed ^ 0xABCD);
    let s = a.isend(NodeId(1), Tag(0), vec![0x77u8; size]);
    let r = b.post_recv(NodeId(0), Tag(0), size);
    loop {
        let moved = a.progress() | b.progress();
        if a.is_send_done(s) && b.is_recv_done(r) {
            break;
        }
        if !moved && world.lock().advance().is_none() {
            eprintln!("deadlock");
            return;
        }
    }
    let done = b.try_take_recv(r).expect("completed");
    assert_eq!(done.data.len(), size);
    let w = world.lock();
    println!(
        "{size} B delivered across {:.0}% loss via {} in {}",
        loss * 100.0,
        if proto == "sr" {
            "selective repeat"
        } else {
            "go-back-N"
        },
        w.now()
    );
    println!(
        "wire: {} frames, {} bytes (incl. retransmits + acks)",
        w.stats().packets_sent,
        w.stats().bytes_sent
    );
}

fn strategy_box(kind: StrategyKind) -> Box<dyn Strategy> {
    match kind {
        StrategyKind::Default => Box::new(StratDefault),
        StrategyKind::Aggreg => Box::new(StratAggreg),
        StrategyKind::Reorder => Box::new(StratReorder),
        StrategyKind::Multirail => Box::new(StratMultirail::default()),
        StrategyKind::Dynamic => Box::new(StratDynamic::new()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let Some(flags) = Flags::parse(rest) else {
        usage();
    };
    match cmd.as_str() {
        "caps" => cmd_caps(),
        "pingpong" => cmd_pingpong(&flags),
        "burst" => cmd_burst(&flags),
        "datatype" => cmd_datatype(&flags),
        "trace" => cmd_trace(&flags),
        "lossy" => cmd_lossy(&flags),
        _ => usage(),
    }
    ExitCode::SUCCESS
}
