//! Optional event trace.
//!
//! Tests use the trace to assert determinism (same inputs ⇒ identical
//! event sequence) and to check wire-level claims such as "the
//! aggregation strategy sent one packet where the baseline sent eight".

use crate::time::{SimDuration, SimTime};
use crate::topo::{NodeId, RailId};

/// One recorded simulator event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet left a node.
    Send {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Rail (NIC index) the event occurred on.
        rail: RailId,
        /// Size in bytes.
        bytes: usize,
        /// Instant the packet reaches the receiver.
        deliver_at: SimTime,
    },
    /// A packet reached a node.
    Deliver {
        /// Destination node.
        dst: NodeId,
        /// Source node.
        src: NodeId,
        /// Rail (NIC index) the event occurred on.
        rail: RailId,
        /// Size in bytes.
        bytes: usize,
    },
    /// CPU time was charged to a node.
    CpuCharge {
        /// Node the event belongs to.
        node: NodeId,
        /// Duration of the charge.
        dur: SimDuration,
    },
    /// A scheduling strategy synthesized a frame on a node.
    StrategyDecision {
        /// Node whose engine took the decision.
        node: NodeId,
        /// Name of the strategy that synthesized the frame.
        strategy: &'static str,
        /// Wire entries in the synthesized frame.
        entries: u32,
        /// Entries the strategy took out of submission order.
        reordered: u32,
    },
}

impl TraceEvent {
    /// Short stable name for assertions.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::Send { .. } => "send",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::CpuCharge { .. } => "cpu",
            TraceEvent::StrategyDecision { .. } => "decision",
        }
    }
}

/// A timestamped event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracedEvent {
    /// Virtual instant of the event.
    pub time: SimTime,
    /// The recorded event.
    pub event: TraceEvent,
}

impl TracedEvent {
    /// Short stable name of the event kind.
    pub fn kind_name(&self) -> &'static str {
        self.event.kind_name()
    }
}

/// Append-only event log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TracedEvent>,
}

impl Trace {
    /// Appends one timestamped event.
    pub fn push(&mut self, time: SimTime, event: TraceEvent) {
        self.events.push(TracedEvent { time, event });
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[TracedEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of wire packets sent, a key metric for aggregation tests.
    pub fn sends(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::Send { .. }))
            .count()
    }

    /// Number of recorded strategy decisions (frames synthesized).
    pub fn decisions(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::StrategyDecision { .. }))
            .count()
    }

    /// Total wire entries across `node`'s recorded strategy decisions —
    /// the trace-side view of the engine's `entries_aggregated` counter.
    pub fn decision_entries_for(&self, node: NodeId) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::StrategyDecision {
                    node: n, entries, ..
                } if n == node => Some(u64::from(entries)),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_counts_sends() {
        let mut t = Trace::default();
        t.push(
            SimTime::ZERO,
            TraceEvent::CpuCharge {
                node: NodeId(0),
                dur: SimDuration::from_us(1),
            },
        );
        t.push(
            SimTime::from_ns(10),
            TraceEvent::Send {
                src: NodeId(0),
                dst: NodeId(1),
                rail: RailId(0),
                bytes: 42,
                deliver_at: SimTime::from_ns(99),
            },
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.sends(), 1);
        assert!(!t.is_empty());
    }
}
