/root/repo/target/debug/examples/datatype_halo-11ae37cbdaad1db4.d: examples/datatype_halo.rs

/root/repo/target/debug/examples/datatype_halo-11ae37cbdaad1db4: examples/datatype_halo.rs

examples/datatype_halo.rs:
