//! Heavy-tail multi-tenant latency study: full-percentile completion
//! latency (p50 → p99.99) per tenant class under competing scheduling
//! strategies.
//!
//! Three tenant classes ([`TailSpec::multi_tenant`]) — small urgent
//! messages, mid-size normal RPCs, and heavy-tailed Pareto bulk
//! transfers — share a two-node fabric of 4 rails run as 4 progression
//! shards. Arrivals are a Poisson process stamped in virtual
//! nanoseconds; each message is released into the engine exactly when
//! the simulated clock reaches its arrival stamp, and its latency is
//! the virtual time from that stamp to receive completion. Everything
//! is deterministic, so even p99.99 is bit-reproducible from the seed
//! and can gate in CI.
//!
//! Strategies compared: the paper's `aggreg` (FIFO aggregation, the
//! baseline), `aggreg_hol` (FIFO with HOL-aware aggregate caps and
//! contended rendezvous admission), and `lanes` (strict priority lanes
//! with aging and per-tenant deficits). The headline ratio is the
//! urgent class's p99.9 under `aggreg` over `lanes`: lanes lets small
//! urgent traffic jump multi-hundred-KB bulk queues, which is worth
//! orders of magnitude at the tail.
//!
//! The `chaos` scenario replays the same workload with a seeded
//! [`FaultPlan`] latency spike injected mid-run on every sender rail —
//! the tail ordering between strategies must survive a fabric brownout.
//!
//! Results land in `BENCH_tail.json` (override with `--json PATH`);
//! `cargo run -p xtask -- bench-diff` gates the percentile rows and the
//! cross-strategy ratios against the committed baseline.
//!
//! Run: `cargo run --release -p bench --bin tail [-- --quick]`

use bench::{generate_tail, Table, TailItem, TailReport, TailRow, TailSpec, BENCH_TAIL_JSON_PATH};
use nmad_core::prelude::*;
use nmad_core::{LogHistogram, ShardPolicy};
use nmad_net::sim::SimDriver;
use nmad_net::{Driver, FaultPlan};
use nmad_sim::{host, nic, shared_world, NodeId, SharedWorld, SimConfig, SimTime};

/// Rails per node; each is owned by one progression shard.
const SHARDS: usize = 4;

/// Strategies swept, baseline first.
const STRATEGIES: [&str; 3] = ["aggreg", "aggreg_hol", "lanes"];

/// Extra per-frame latency during the chaos brownout window, ns.
const CHAOS_SPIKE_NS: u64 = 30_000;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = bench::json_arg().unwrap_or_else(|| BENCH_TAIL_JSON_PATH.to_string());
    let messages = if quick { 2_000 } else { 12_000 };
    let spec = TailSpec::multi_tenant(messages, 0xA11CE);
    let report = TailReport::new();

    for (scenario, faults) in [("mixed", false), ("chaos", true)] {
        println!(
            "\n## tail latency — {scenario}, {} msgs, {} classes, {SHARDS} shards\n",
            messages,
            spec.classes.len()
        );
        let mut table = Table::new(vec![
            "strategy",
            "class",
            "count",
            "p50 us",
            "p90 us",
            "p99 us",
            "p99.9 us",
            "p99.99 us",
            "MB/s",
        ]);
        // Per strategy: (per-class histograms, aggregate throughput).
        let mut p999 = vec![vec![0.0f64; spec.classes.len()]; STRATEGIES.len()];
        let mut mbs = vec![0.0f64; STRATEGIES.len()];
        for (si, strat) in STRATEGIES.iter().enumerate() {
            let run = run_tail(strat, &spec, faults);
            mbs[si] = run.throughput_mbs;
            report.record_throughput(&format!("{scenario}/{strat}"), run.throughput_mbs);
            for (ci, class) in spec.classes.iter().enumerate() {
                let h = &run.hists[ci];
                let row = TailRow {
                    scenario: scenario.to_string(),
                    strategy: strat.to_string(),
                    class: class.name.to_string(),
                    count: h.count(),
                    p50_us: us(h.value_at_quantile(0.50)),
                    p90_us: us(h.value_at_quantile(0.90)),
                    p99_us: us(h.value_at_quantile(0.99)),
                    p999_us: us(h.value_at_quantile(0.999)),
                    p9999_us: us(h.value_at_quantile(0.9999)),
                    mean_us: h.mean() / 1_000.0,
                };
                p999[si][ci] = row.p999_us;
                table.row(vec![
                    strat.to_string(),
                    class.name.to_string(),
                    format!("{}", row.count),
                    format!("{:.1}", row.p50_us),
                    format!("{:.1}", row.p90_us),
                    format!("{:.1}", row.p99_us),
                    format!("{:.1}", row.p999_us),
                    format!("{:.1}", row.p9999_us),
                    format!("{:.0}", run.throughput_mbs),
                ]);
                report.record(row);
            }
        }
        table.print();

        // Cross-strategy ratios (higher = the tail-aware strategy wins
        // by more); bench-diff gates these against the baseline.
        let base = STRATEGIES
            .iter()
            .position(|s| *s == "aggreg")
            .expect("baseline present");
        for (si, strat) in STRATEGIES.iter().enumerate() {
            if si == base {
                continue;
            }
            for (ci, class) in spec.classes.iter().enumerate() {
                report.record_ratio(
                    &format!("{scenario}/{}/aggreg_p999_over_{strat}", class.name),
                    p999[base][ci] / p999[si][ci].max(f64::EPSILON),
                );
            }
            report.record_ratio(
                &format!("{scenario}/{strat}_throughput_over_aggreg"),
                mbs[si] / mbs[base].max(f64::EPSILON),
            );
        }
    }

    println!();
    report.write(&json);
}

/// Nanoseconds → microseconds.
fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// One strategy's completion-latency histograms, one per tenant class,
/// plus aggregate goodput over the run.
struct TailRun {
    hists: Vec<LogHistogram>,
    throughput_mbs: f64,
}

/// Builds one node's engine over all its simulated rails.
fn engine(world: &SharedWorld, node: NodeId, strat: &str) -> NmadEngine {
    let drivers: Vec<Box<dyn Driver>> = SimDriver::all_rails(world, node)
        .into_iter()
        .map(|d| Box::new(d) as Box<dyn Driver>)
        .collect();
    let strategy: Box<dyn Strategy> = match strat {
        "aggreg" => Box::new(StratAggreg),
        "aggreg_hol" => Box::new(StratAggregHol::new()),
        "lanes" => Box::new(StratLanes::new()),
        other => panic!("unknown strategy {other}"),
    };
    let meter = Box::new(nmad_net::SimCpuMeter::new(world.clone(), node));
    NmadEngine::new(
        drivers,
        meter,
        strategy,
        EngineCosts::from_software(&host::costs_madmpi()),
    )
}

/// Replays the generated arrival trace through a sharded two-node
/// fabric under `strat`, co-simulated inline on one OS thread. Each
/// item is submitted when virtual time reaches its stamp; latency is
/// stamp → receive completion in virtual nanoseconds.
fn run_tail(strat: &str, spec: &TailSpec, faults: bool) -> TailRun {
    let items = generate_tail(spec);
    let world = shared_world(SimConfig::two_nodes_multirail(vec![
        nic::mx_myri10g();
        SHARDS
    ]));
    let policy = ShardPolicy::HashByDest;
    let mut senders = engine(&world, NodeId(0), strat).split_for_shards(SHARDS, policy);
    let mut sinks = engine(&world, NodeId(1), strat).split_for_shards(SHARDS, policy);
    if faults {
        // Seeded brownout: every sender rail slows mid-run, from the
        // first-quartile arrival stamp to the median one.
        let from = items[items.len() / 4].at_ns;
        let to = items[items.len() / 2].at_ns;
        for s in &mut senders {
            assert!(
                s.install_faults(
                    0,
                    FaultPlan::new(0xFA17).latency_spike(from, to, CHAOS_SPIKE_NS)
                ),
                "sim driver rejected the fault plan"
            );
        }
    }
    let shard_of = |tag: u32| policy.route(SHARDS, NodeId(0), NodeId(1), Tag(tag));

    let mut hists: Vec<LogHistogram> = (0..spec.classes.len())
        .map(|_| LogHistogram::new())
        .collect();
    let mut outstanding: Vec<(usize, RecvReqId, &TailItem)> = Vec::new();
    let mut next = 0usize;
    let mut total_bytes = 0u64;
    let t0 = world.lock().now();
    let mut last_done = t0;

    for _ in 0..200_000_000u64 {
        // Release every arrival the clock has reached.
        let now_ns = world.lock().now().as_ns();
        while next < items.len() && items[next].at_ns <= now_ns {
            let it = &items[next];
            let s = shard_of(it.tag);
            let req = sinks[s].post_recv(NodeId(0), Tag(it.tag), it.len);
            let payload = bytes::Bytes::from(bench::payload_for(next, it.len));
            senders[s].submit_send_parts(
                NodeId(1),
                Tag(it.tag),
                vec![(payload, it.priority)],
                None,
            );
            outstanding.push((s, req, it));
            total_bytes += it.len as u64;
            next += 1;
        }

        let mut moved = false;
        for e in senders.iter_mut().chain(sinks.iter_mut()) {
            moved |= e.progress_until_idle();
        }

        // Reap completions at the instant their delivering event fired.
        let now = world.lock().now();
        let mut i = 0;
        while i < outstanding.len() {
            let (s, req, it) = outstanding[i];
            if sinks[s].is_recv_done(req) {
                sinks[s].try_take_recv(req);
                hists[it.class].record(now.as_ns().saturating_sub(it.at_ns));
                last_done = now;
                outstanding.swap_remove(i);
            } else {
                i += 1;
            }
        }

        if next == items.len() && outstanding.is_empty() {
            break;
        }
        if !moved {
            if next < items.len() {
                world
                    .lock()
                    .schedule_wakeup(SimTime::from_ns(items[next].at_ns));
            }
            if world.lock().advance().is_none() {
                panic!(
                    "tail co-simulation deadlock under {strat}\n{}",
                    world.lock().pending_summary()
                );
            }
        }
    }
    assert!(
        next == items.len() && outstanding.is_empty(),
        "tail co-simulation did not converge under {strat}"
    );

    let elapsed = last_done.saturating_since(t0);
    TailRun {
        hists,
        throughput_mbs: total_bytes as f64 / elapsed.as_us_f64().max(f64::EPSILON),
    }
}
