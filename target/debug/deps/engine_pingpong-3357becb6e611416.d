/root/repo/target/debug/deps/engine_pingpong-3357becb6e611416.d: tests/engine_pingpong.rs

/root/repo/target/debug/deps/engine_pingpong-3357becb6e611416: tests/engine_pingpong.rs

tests/engine_pingpong.rs:
