/root/repo/target/debug/deps/multirail-b084a5e841733acd.d: crates/bench/src/bin/multirail.rs

/root/repo/target/debug/deps/multirail-b084a5e841733acd: crates/bench/src/bin/multirail.rs

crates/bench/src/bin/multirail.rs:
