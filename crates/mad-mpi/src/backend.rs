//! Communication backends under the MPI front-end.
//!
//! MAD-MPI "is based on the point-to-point nonblocking posting (isend,
//! irecv) and completion (wait, test) operations of MPI, these four
//! operations being directly mapped to the equivalent operations of
//! NewMadeleine" (§3.4). [`MpiBackend`] is that mapping surface; it has
//! three implementations:
//!
//! * [`NmadBackend`] — MAD-MPI proper, over [`NmadEngine`];
//! * [`DirectBackend`] with the MPICH flavour — pack/unpack datatypes,
//!   completion-time dispatch;
//! * [`DirectBackend`] with the OpenMPI flavour — pack on send,
//!   chunk-overlapped unpack on receive.
//!
//! The trait is object-safe so harnesses can swap implementations at
//! run time.

use std::collections::HashMap;

use bytes::Bytes;

use crate::datatype::Datatype;
use baselines::{DirectConfig, DirectEngine, UnpackMode};
use nmad_core::segment::{Priority, RecvReqId, SendReqId, Tag};
use nmad_core::{EngineConfig, MetricsSnapshot, NmadEngine, ThreadedEngine, ThreadedHandle};
use nmad_net::{FaultPlan, FaultStats};
use nmad_sim::NodeId;

/// Backend-scoped send completion token.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SendToken(pub u64);

/// Backend-scoped receive completion token.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RecvToken(pub u64);

/// The backend surface the MPI front-end drives.
pub trait MpiBackend: Send {
    /// Implementation name for reports ("madmpi", "mpich", "openmpi").
    fn name(&self) -> &'static str;

    /// This process's node.
    fn node(&self) -> NodeId;

    /// Nonblocking contiguous send.
    fn isend_contig(&mut self, dst: NodeId, tag: Tag, data: Bytes) -> SendToken;

    /// Nonblocking send of `dtype` blocks out of the extent-sized
    /// region `buf`.
    fn isend_typed(&mut self, dst: NodeId, tag: Tag, buf: &[u8], dtype: &Datatype) -> SendToken;

    /// Nonblocking contiguous receive of up to `max` bytes.
    fn irecv_contig(&mut self, src: NodeId, tag: Tag, max: usize) -> RecvToken;

    /// Nonblocking typed receive; completion yields an extent-sized
    /// region with the blocks filled in.
    fn irecv_typed(&mut self, src: NodeId, tag: Tag, dtype: &Datatype) -> RecvToken;

    /// True once the send buffer is reusable.
    fn test_send(&mut self, token: SendToken) -> bool;

    /// True once the receive has fully landed.
    fn test_recv(&mut self, token: RecvToken) -> bool;

    /// Takes a completed receive's payload (contiguous bytes, or the
    /// extent-sized region for typed receives). `None` if not done.
    fn take_recv(&mut self, token: RecvToken) -> Option<Vec<u8>>;

    /// One progress pump; returns whether anything moved.
    fn progress(&mut self) -> bool;

    /// Wire frames/messages sent so far (aggregation diagnostics).
    fn frames_sent(&self) -> u64;

    /// Non-destructive probe: length of the next matching segment of
    /// (src, tag) if already arrived or announced.
    fn probe(&self, src: NodeId, tag: Tag) -> Option<usize>;

    /// Observability snapshot of the scheduling engine, when the
    /// backend has one. The direct baselines have no optimization
    /// window or strategy, so they report `None`.
    fn metrics(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// Installs a deterministic fault plan on rail `rail` of the
    /// backend's transport. Returns `false` when the transport does
    /// not support injection (the direct baselines and real sockets).
    fn install_faults(&mut self, _rail: usize, _plan: FaultPlan) -> bool {
        false
    }

    /// Fault-injection statistics for rail `rail`; all-zero when no
    /// plan is installed or injection is unsupported.
    fn fault_stats(&self, _rail: usize) -> FaultStats {
        FaultStats::default()
    }
}

// --- MAD-MPI over the NewMadeleine engine ------------------------------

enum NmadRecv {
    Contig(RecvReqId),
    Typed {
        reqs: Vec<RecvReqId>,
        dtype: Datatype,
    },
}

/// MAD-MPI: requests map 1:1 onto engine operations; a typed send
/// submits one segment per block so the scheduler can aggregate the
/// small ones and run the large ones through rendezvous (§5.3).
pub struct NmadBackend {
    engine: NmadEngine,
    name: &'static str,
    recvs: HashMap<u64, NmadRecv>,
    sends: HashMap<u64, SendReqId>,
    next: u64,
}

impl NmadBackend {
    /// Wraps a NewMadeleine engine as a MAD-MPI backend.
    pub fn new(engine: NmadEngine) -> Self {
        NmadBackend {
            engine,
            name: "madmpi",
            recvs: HashMap::new(),
            sends: HashMap::new(),
            next: 0,
        }
    }

    /// Access to the engine (tests inspect wire statistics).
    pub fn engine(&self) -> &NmadEngine {
        &self.engine
    }

    fn token(&mut self) -> u64 {
        let t = self.next;
        self.next += 1;
        t
    }
}

impl MpiBackend for NmadBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn node(&self) -> NodeId {
        self.engine.node()
    }

    fn isend_contig(&mut self, dst: NodeId, tag: Tag, data: Bytes) -> SendToken {
        let req = self.engine.isend(dst, tag, data);
        let t = self.token();
        self.sends.insert(t, req);
        SendToken(t)
    }

    fn isend_typed(&mut self, dst: NodeId, tag: Tag, buf: &[u8], dtype: &Datatype) -> SendToken {
        // One engine segment per block: no pack copy, the NIC gathers.
        let parts: Vec<(Bytes, Priority)> = dtype
            .blocks()
            .iter()
            .map(|&(offset, len)| {
                (
                    Bytes::copy_from_slice(&buf[offset..offset + len]),
                    Priority::Normal,
                )
            })
            .collect();
        let req = self.engine.submit_send_parts(dst, tag, parts, None);
        let t = self.token();
        self.sends.insert(t, req);
        SendToken(t)
    }

    fn irecv_contig(&mut self, src: NodeId, tag: Tag, max: usize) -> RecvToken {
        let req = self.engine.post_recv(src, tag, max);
        let t = self.token();
        self.recvs.insert(t, NmadRecv::Contig(req));
        RecvToken(t)
    }

    fn irecv_typed(&mut self, src: NodeId, tag: Tag, dtype: &Datatype) -> RecvToken {
        // One engine receive per block, matched in block order.
        let reqs: Vec<RecvReqId> = dtype
            .blocks()
            .iter()
            .map(|&(_, len)| self.engine.post_recv(src, tag, len))
            .collect();
        let t = self.token();
        self.recvs.insert(
            t,
            NmadRecv::Typed {
                reqs,
                dtype: dtype.clone(),
            },
        );
        RecvToken(t)
    }

    fn test_send(&mut self, token: SendToken) -> bool {
        let req = self.sends.get(&token.0).expect("unknown send token");
        self.engine.is_send_done(*req)
    }

    fn test_recv(&mut self, token: RecvToken) -> bool {
        // A token absent from the table was already taken: the request
        // is complete and inactive (MPI semantics for freed requests).
        match self.recvs.get(&token.0) {
            None => true,
            Some(NmadRecv::Contig(req)) => self.engine.is_recv_done(*req),
            Some(NmadRecv::Typed { reqs, .. }) => reqs.iter().all(|&r| self.engine.is_recv_done(r)),
        }
    }

    fn take_recv(&mut self, token: RecvToken) -> Option<Vec<u8>> {
        if !self.test_recv(token) {
            return None;
        }
        match self.recvs.remove(&token.0)? {
            NmadRecv::Contig(req) => Some(
                self.engine
                    .try_take_recv(req)
                    .expect("tested")
                    .data
                    .to_vec(),
            ),
            NmadRecv::Typed { reqs, dtype } => {
                // Each block landed in its own buffer (the large ones
                // zero-copy); assembling the extent view is a host-side
                // restructuring, not a modeled copy.
                let parts: Vec<Vec<u8>> = reqs
                    .into_iter()
                    .map(|r| self.engine.try_take_recv(r).expect("tested").data.to_vec())
                    .collect();
                Some(dtype.scatter_blocks(&parts))
            }
        }
    }

    fn progress(&mut self) -> bool {
        // Drain cascades (completion → idle NIC → window refill) in one
        // call instead of relying on the caller to loop.
        self.engine.progress_until_idle()
    }

    fn frames_sent(&self) -> u64 {
        self.engine.stats().frames_sent
    }

    fn probe(&self, src: NodeId, tag: Tag) -> Option<usize> {
        self.engine.probe(src, tag)
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.engine.metrics())
    }

    fn install_faults(&mut self, rail: usize, plan: FaultPlan) -> bool {
        self.engine.install_faults(rail, plan)
    }

    fn fault_stats(&self, rail: usize) -> FaultStats {
        self.engine.fault_stats(rail)
    }
}

// --- MAD-MPI over the sharded threaded runtime --------------------------

/// MAD-MPI over the sharded threaded progression runtime
/// ([`ThreadedEngine`]): isend/irecv become ring submissions routed to
/// the shard owning each flow, completion tests poll the lock-sharded
/// board, and [`MpiBackend::progress`] is a no-op — the progression
/// threads pump in the background, which is the paper's point.
pub struct ShardedNmadBackend {
    runtime: ThreadedEngine,
    handle: ThreadedHandle,
    recvs: HashMap<u64, NmadRecv>,
    sends: HashMap<u64, SendReqId>,
    next: u64,
}

impl ShardedNmadBackend {
    /// Launches `engine` on `config.shards` progression shards
    /// (clamped to the rail count) and wraps the runtime as a MAD-MPI
    /// backend. `config.mode` must be threaded — use
    /// [`EngineConfig::sharded`] or [`EngineConfig::threaded`].
    pub fn launch(engine: NmadEngine, config: EngineConfig) -> Self {
        let runtime = ThreadedEngine::launch(engine, config);
        let handle = runtime.handle();
        ShardedNmadBackend {
            runtime,
            handle,
            recvs: HashMap::new(),
            sends: HashMap::new(),
            next: 0,
        }
    }

    /// Progression shards actually running (after the rail-count
    /// clamp).
    pub fn shards(&self) -> usize {
        self.runtime.shards()
    }

    /// The routed submission handle (for tests and extra app threads).
    pub fn handle(&self) -> ThreadedHandle {
        self.runtime.handle()
    }

    /// Stops every progression shard and returns the re-merged engine.
    pub fn shutdown(self) -> NmadEngine {
        self.runtime.shutdown()
    }

    fn token(&mut self) -> u64 {
        let t = self.next;
        self.next += 1;
        t
    }
}

impl MpiBackend for ShardedNmadBackend {
    fn name(&self) -> &'static str {
        "madmpi-sharded"
    }

    fn node(&self) -> NodeId {
        self.runtime.node()
    }

    fn isend_contig(&mut self, dst: NodeId, tag: Tag, data: Bytes) -> SendToken {
        let req = self.handle.isend(dst, tag, data);
        let t = self.token();
        self.sends.insert(t, req);
        SendToken(t)
    }

    fn isend_typed(&mut self, dst: NodeId, tag: Tag, buf: &[u8], dtype: &Datatype) -> SendToken {
        let parts: Vec<(Bytes, Priority)> = dtype
            .blocks()
            .iter()
            .map(|&(offset, len)| {
                (
                    Bytes::copy_from_slice(&buf[offset..offset + len]),
                    Priority::Normal,
                )
            })
            .collect();
        let req = self.handle.submit_send_parts(dst, tag, parts, None);
        let t = self.token();
        self.sends.insert(t, req);
        SendToken(t)
    }

    fn irecv_contig(&mut self, src: NodeId, tag: Tag, max: usize) -> RecvToken {
        let req = self.handle.post_recv(src, tag, max);
        let t = self.token();
        self.recvs.insert(t, NmadRecv::Contig(req));
        RecvToken(t)
    }

    fn irecv_typed(&mut self, src: NodeId, tag: Tag, dtype: &Datatype) -> RecvToken {
        let reqs: Vec<RecvReqId> = dtype
            .blocks()
            .iter()
            .map(|&(_, len)| self.handle.post_recv(src, tag, len))
            .collect();
        let t = self.token();
        self.recvs.insert(
            t,
            NmadRecv::Typed {
                reqs,
                dtype: dtype.clone(),
            },
        );
        RecvToken(t)
    }

    fn test_send(&mut self, token: SendToken) -> bool {
        let req = self.sends.get(&token.0).expect("unknown send token");
        self.handle.is_send_done(*req)
    }

    fn test_recv(&mut self, token: RecvToken) -> bool {
        match self.recvs.get(&token.0) {
            // Already taken ⇒ complete and inactive.
            None => true,
            Some(NmadRecv::Contig(req)) => self.handle.is_recv_done(*req),
            Some(NmadRecv::Typed { reqs, .. }) => reqs.iter().all(|&r| self.handle.is_recv_done(r)),
        }
    }

    fn take_recv(&mut self, token: RecvToken) -> Option<Vec<u8>> {
        if !self.test_recv(token) {
            return None;
        }
        match self.recvs.remove(&token.0)? {
            NmadRecv::Contig(req) => Some(
                self.handle
                    .try_take_recv(req)
                    .expect("tested")
                    .data
                    .to_vec(),
            ),
            NmadRecv::Typed { reqs, dtype } => {
                let parts: Vec<Vec<u8>> = reqs
                    .into_iter()
                    .map(|r| self.handle.try_take_recv(r).expect("tested").data.to_vec())
                    .collect();
                Some(dtype.scatter_blocks(&parts))
            }
        }
    }

    fn progress(&mut self) -> bool {
        // The progression threads pump in the background; the MPI
        // front-end's progress calls have nothing to do.
        false
    }

    fn frames_sent(&self) -> u64 {
        let (_, wire) = self.handle.hot_metrics();
        wire.frames_sent
    }

    fn probe(&self, _src: NodeId, _tag: Tag) -> Option<usize> {
        // Matching state lives on the progression threads; a probe RPC
        // is not worth a ring round-trip, so announce nothing.
        None
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.handle.metrics())
    }
}

// --- baselines over the direct engine -----------------------------------

enum DirectRecv {
    Contig(RecvReqId),
    Typed { req: RecvReqId, dtype: Datatype },
}

/// MPICH/OpenMPI-like backend: datatypes are packed into one contiguous
/// message; the flavour decides how the receive-side unpack overlaps
/// the wire.
pub struct DirectBackend {
    engine: DirectEngine,
    name: &'static str,
    typed_unpack: UnpackMode,
    recvs: HashMap<u64, DirectRecv>,
    sends: HashMap<u64, SendReqId>,
    next: u64,
}

impl DirectBackend {
    /// Wraps a baseline engine; the flavour decides datatype unpack accounting.
    pub fn new(engine: DirectEngine, cfg: &DirectConfig) -> Self {
        let (name, typed_unpack) = match cfg.name {
            "mpich" => ("mpich", UnpackMode::AtCompletion),
            "openmpi" => ("openmpi", UnpackMode::PerChunk),
            other => panic!("unknown baseline flavour {other}"),
        };
        DirectBackend {
            engine,
            name,
            typed_unpack,
            recvs: HashMap::new(),
            sends: HashMap::new(),
            next: 0,
        }
    }

    /// Access to the underlying engine (statistics inspection).
    pub fn engine(&self) -> &DirectEngine {
        &self.engine
    }

    fn token(&mut self) -> u64 {
        let t = self.next;
        self.next += 1;
        t
    }
}

impl MpiBackend for DirectBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn node(&self) -> NodeId {
        self.engine.node()
    }

    fn isend_contig(&mut self, dst: NodeId, tag: Tag, data: Bytes) -> SendToken {
        let req = self.engine.isend(dst, tag, data);
        let t = self.token();
        self.sends.insert(t, req);
        SendToken(t)
    }

    fn isend_typed(&mut self, dst: NodeId, tag: Tag, buf: &[u8], dtype: &Datatype) -> SendToken {
        // Pack every block into a contiguous staging buffer (§5.3):
        // one full memcpy on the critical path.
        self.engine.charge_memcpy(dtype.total_bytes());
        let packed = dtype.pack(buf);
        let req = self.engine.isend(dst, tag, packed);
        let t = self.token();
        self.sends.insert(t, req);
        SendToken(t)
    }

    fn irecv_contig(&mut self, src: NodeId, tag: Tag, max: usize) -> RecvToken {
        let req = self.engine.post_recv(src, tag, max, UnpackMode::None);
        let t = self.token();
        self.recvs.insert(t, DirectRecv::Contig(req));
        RecvToken(t)
    }

    fn irecv_typed(&mut self, src: NodeId, tag: Tag, dtype: &Datatype) -> RecvToken {
        let req = self
            .engine
            .post_recv(src, tag, dtype.total_bytes(), self.typed_unpack);
        let t = self.token();
        self.recvs.insert(
            t,
            DirectRecv::Typed {
                req,
                dtype: dtype.clone(),
            },
        );
        RecvToken(t)
    }

    fn test_send(&mut self, token: SendToken) -> bool {
        let req = self.sends.get(&token.0).expect("unknown send token");
        self.engine.is_send_done(*req)
    }

    fn test_recv(&mut self, token: RecvToken) -> bool {
        match self.recvs.get(&token.0) {
            // Already taken ⇒ complete and inactive.
            None => true,
            Some(DirectRecv::Contig(req)) | Some(DirectRecv::Typed { req, .. }) => {
                let req = *req;
                self.engine.is_recv_done(req)
            }
        }
    }

    fn take_recv(&mut self, token: RecvToken) -> Option<Vec<u8>> {
        if !self.test_recv(token) {
            return None;
        }
        match self.recvs.remove(&token.0)? {
            DirectRecv::Contig(req) => Some(
                self.engine
                    .try_take_recv(req)
                    .expect("tested")
                    .data
                    .to_vec(),
            ),
            DirectRecv::Typed { req, dtype } => {
                // The unpack *cost* was already charged (per flavour);
                // this is the host-side restructuring only.
                let packed = self.engine.try_take_recv(req).expect("tested").data;
                Some(dtype.unpack(&packed))
            }
        }
    }

    fn progress(&mut self) -> bool {
        self.engine.progress()
    }

    fn frames_sent(&self) -> u64 {
        self.engine.stats().messages_sent
    }

    fn probe(&self, src: NodeId, tag: Tag) -> Option<usize> {
        self.engine.probe(src, tag)
    }
}

#[cfg(test)]
mod sharded_backend_tests {
    use super::*;
    use nmad_core::{EngineCosts, StratAggreg};
    use nmad_net::mem::mem_fabric;
    use nmad_net::NullMeter;

    /// A two-node pair over `rails` in-memory rails per node, wrapped
    /// as sharded MAD-MPI backends.
    fn sharded_pair(rails: usize, shards: usize) -> (ShardedNmadBackend, ShardedNmadBackend) {
        let mut a_rails: Vec<Box<dyn nmad_net::Driver>> = Vec::new();
        let mut b_rails: Vec<Box<dyn nmad_net::Driver>> = Vec::new();
        for _ in 0..rails {
            let mut fabric = mem_fabric(2);
            let b = fabric.pop().unwrap();
            let a = fabric.pop().unwrap();
            a_rails.push(Box::new(a));
            b_rails.push(Box::new(b));
        }
        let launch = |drivers: Vec<Box<dyn nmad_net::Driver>>| {
            ShardedNmadBackend::launch(
                NmadEngine::new(
                    drivers,
                    Box::new(NullMeter),
                    Box::new(StratAggreg),
                    EngineCosts::zero(),
                ),
                EngineConfig::sharded(shards),
            )
        };
        (launch(a_rails), launch(b_rails))
    }

    #[test]
    fn sharded_backend_contig_roundtrip_across_shards() {
        let (mut a, mut b) = sharded_pair(2, 2);
        assert_eq!(a.shards(), 2);
        assert_eq!(a.name(), "madmpi-sharded");
        let n = 16u32;
        let recvs: Vec<_> = (0..n)
            .map(|t| b.irecv_contig(NodeId(0), Tag(t), 64))
            .collect();
        let sends: Vec<_> = (0..n)
            .map(|t| a.isend_contig(NodeId(1), Tag(t), Bytes::from(vec![t as u8; 40])))
            .collect();
        for s in sends {
            while !a.test_send(s) {
                std::thread::yield_now();
            }
        }
        for (t, r) in recvs.into_iter().enumerate() {
            loop {
                if let Some(data) = b.take_recv(r) {
                    assert_eq!(data, vec![t as u8; 40]);
                    break;
                }
                std::thread::yield_now();
            }
        }
        let merged = a.shutdown();
        assert_eq!(merged.rail_count(), 2);
        drop(b);
    }

    #[test]
    fn sharded_backend_typed_roundtrip() {
        let (mut a, mut b) = sharded_pair(2, 2);
        let dtype = Datatype::vector(3, 8, 16).unwrap();
        let buf: Vec<u8> = (0..dtype.extent()).map(|i| i as u8).collect();
        let r = b.irecv_typed(NodeId(0), Tag(7), &dtype);
        let s = a.isend_typed(NodeId(1), Tag(7), &buf, &dtype);
        while !a.test_send(s) {
            std::thread::yield_now();
        }
        let got = loop {
            if let Some(data) = b.take_recv(r) {
                break data;
            }
            std::thread::yield_now();
        };
        // Only the typed blocks carry data; gaps are zero-filled.
        for &(off, len) in dtype.blocks() {
            assert_eq!(&got[off..off + len], &buf[off..off + len]);
        }
    }
}
