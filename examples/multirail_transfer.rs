//! Heterogeneous multirail transfer (paper §4 multi-rails strategy and
//! §7 future work).
//!
//! One 4 MB message crosses a machine equipped with both a Myri-10G NIC
//! (1240 MB/s) and a Quadrics NIC (880 MB/s). The multirail strategy
//! splits the rendezvous data proportionally to rail bandwidth; the
//! receiver reassembles by offset.
//!
//! Run: `cargo run --example multirail_transfer`

use newmadeleine::core::prelude::*;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::SimCpuMeter;
use newmadeleine::sim::{nic, run_until, shared_world, NodeId, SimConfig};

const SIZE: usize = 4 << 20;

fn main() {
    let rails = vec![nic::mx_myri10g(), nic::quadrics_qm500()];
    let world = shared_world(SimConfig::two_nodes_multirail(rails));
    let mk_engine = |node: u32| {
        let drivers: Vec<Box<dyn newmadeleine::net::Driver>> =
            SimDriver::all_rails(&world, NodeId(node))
                .into_iter()
                .map(|d| Box::new(d) as _)
                .collect();
        let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
        NmadEngine::new(
            drivers,
            meter,
            Box::new(StratMultirail::default()),
            EngineCosts::zero(),
        )
    };
    let mut sender = mk_engine(0);
    let mut receiver = mk_engine(1);

    let body: Vec<u8> = (0..SIZE).map(|i| (i % 253) as u8).collect();
    let send_req = sender.isend(NodeId(1), Tag(0), body.clone());
    let recv_req = receiver.post_recv(NodeId(0), Tag(0), SIZE);

    let done = std::cell::Cell::new(false);
    {
        let mut pump_s = || sender.progress();
        let mut pump_r = || {
            let moved = receiver.progress();
            if receiver.is_recv_done(recv_req) {
                done.set(true);
            }
            moved
        };
        run_until(&world, &mut [&mut pump_s, &mut pump_r], || done.get()).expect("no deadlock");
    }
    assert!(sender.is_send_done(send_req));
    assert_eq!(receiver.try_take_recv(recv_req).expect("done").data, body);

    let w = world.lock();
    let stats = w.stats();
    let total: u64 = stats.per_rail_bytes.iter().sum();
    println!("transferred {SIZE} bytes in {}", w.now());
    for (i, (rail, &bytes)) in ["MX/Myri-10G", "Elan/QM500"]
        .iter()
        .zip(&stats.per_rail_bytes)
        .enumerate()
    {
        println!(
            "  rail {i} ({rail}): {bytes} wire bytes ({:.0}% of traffic)",
            100.0 * bytes as f64 / total as f64
        );
    }
    let mbps = SIZE as f64 / w.now().as_us_f64();
    println!("  aggregate bandwidth: {mbps:.0} MB/s (single MX rail peaks at ~1240)");
    assert!(
        stats.per_rail_bytes.iter().all(|&b| b > (SIZE / 4) as u64),
        "both rails must carry a substantial share"
    );
}
