//! Lossy-fabric extension study: the engine over frame loss, comparing
//! the two reliability decorators — go-back-N versus selective repeat —
//! across a sweep of loss rates.
//!
//! Reports, per loss rate and protocol: virtual completion time of a
//! fixed mixed workload (an aggregated burst plus one rendezvous
//! transfer) and the wire amplification (bytes on the wire /
//! application payload bytes), which exposes each protocol's
//! retransmission cost.
//!
//! Run: `cargo run --release -p bench --bin lossy`

use bench::Table;
use nmad_core::prelude::*;
use nmad_net::sim::SimDriver;
use nmad_net::{Driver, LossyDriver, ReliableDriver, SelectiveDriver, SimCpuMeter};
use nmad_sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig, SimTime};

// Per-protocol retransmission timeouts, each sized to its own hazard:
// go-back-N must cover the round trip of its whole outstanding window
// (several frames incl. the bulk chunk) or it retransmits spuriously;
// selective repeat only needs one frame + ack (the 64 KB bulk chunk is
// ~0.6 ms of serialization on this fabric).
const GBN_RTO_NS: u64 = 5_000_000;
const SR_RTO_NS: u64 = 1_500_000;
const BURST: u32 = 40;
const BURST_BYTES: usize = 512;
const BULK_BYTES: usize = 64_000;
const SEEDS: u64 = 8;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Protocol {
    GoBackN,
    SelectiveRepeat,
}

fn engine(world: &SharedWorld, node: u32, loss: f64, seed: u64, proto: Protocol) -> NmadEngine {
    let raw = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let lossy = LossyDriver::new(raw, loss, seed);
    let cw = world.clone();
    let ww = world.clone();
    let now: Box<dyn Fn() -> u64 + Send> = Box::new(move || cw.lock().now().as_ns());
    let wake: Box<dyn Fn(u64) + Send> =
        Box::new(move |t| ww.lock().schedule_wakeup(SimTime::from_ns(t)));
    let driver: Box<dyn Driver> = match proto {
        Protocol::GoBackN => Box::new(ReliableDriver::new(lossy, now, Some(wake), GBN_RTO_NS)),
        Protocol::SelectiveRepeat => {
            Box::new(SelectiveDriver::new(lossy, now, Some(wake), SR_RTO_NS))
        }
    };
    let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
    NmadEngine::new(
        vec![driver],
        meter,
        Box::new(StratAggreg),
        EngineCosts::zero(),
    )
}

fn run(loss: f64, seed: u64, proto: Protocol) -> (f64, f64) {
    let world = shared_world(SimConfig::two_nodes(nic::tcp_gige()));
    let mut a = engine(
        &world,
        0,
        loss,
        0x1234 ^ seed.wrapping_mul(0x9E3779B97F4A7C15),
        proto,
    );
    let mut b = engine(
        &world,
        1,
        loss,
        0x5678 ^ seed.wrapping_mul(0xD1B54A32D192ED03),
        proto,
    );

    let sends: Vec<_> = (0..BURST)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; BURST_BYTES]))
        .collect();
    let bulk: Vec<u8> = (0..BULK_BYTES).map(|i| (i % 251) as u8).collect();
    let s_bulk = a.isend(NodeId(1), Tag(100), bulk.clone());
    let recvs: Vec<_> = (0..BURST)
        .map(|i| b.post_recv(NodeId(0), Tag(i), BURST_BYTES))
        .collect();
    let r_bulk = b.post_recv(NodeId(0), Tag(100), BULK_BYTES);

    loop {
        let moved = a.progress() | b.progress();
        let all = sends.iter().all(|&s| a.is_send_done(s))
            && a.is_send_done(s_bulk)
            && recvs.iter().all(|&r| b.is_recv_done(r))
            && b.is_recv_done(r_bulk);
        if all {
            break;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock at loss {loss}");
        }
    }
    assert_eq!(b.try_take_recv(r_bulk).expect("bulk").data, bulk);

    let w = world.lock();
    let app_bytes = (BURST as usize * BURST_BYTES + BULK_BYTES) as f64;
    let amplification = w.stats().bytes_sent as f64 / app_bytes;
    (w.now().as_us_f64(), amplification)
}

fn main() {
    println!("\n## Engine over a lossy GigE-class fabric: go-back-N vs selective repeat\n");
    println!(
        "workload: {BURST} x {BURST_BYTES} B burst + one {BULK_BYTES} B rendezvous transfer,\naveraged over {SEEDS} seeds\n"
    );
    let mut table = Table::new(vec![
        "loss rate",
        "GBN compl (us)",
        "SR compl (us)",
        "GBN wire amp",
        "SR wire amp",
    ]);
    for loss in [0.0, 0.02, 0.05, 0.10, 0.20, 0.30] {
        let mut sums = [(0.0, 0.0), (0.0, 0.0)];
        for (i, proto) in [Protocol::GoBackN, Protocol::SelectiveRepeat]
            .into_iter()
            .enumerate()
        {
            for seed in 0..SEEDS {
                let (us, amp) = run(loss, seed, proto);
                sums[i].0 += us;
                sums[i].1 += amp;
            }
        }
        let n = SEEDS as f64;
        table.row(vec![
            format!("{:.0}%", loss * 100.0),
            format!("{:.0}", sums[0].0 / n),
            format!("{:.0}", sums[1].0 / n),
            format!("{:.2}x", sums[0].1 / n),
            format!("{:.2}x", sums[1].1 / n),
        ]);
    }
    table.print();
    println!(
        "\n- selective repeat recovers markedly faster: per-frame acks plus a\n  one-frame RTO beat go-back-N's window-sized timeout. With this\n  workload's shallow windows the wire amplification is similar; the\n  gap widens with deeper pipelines, where go-back-N resends many\n  follow-on frames per loss."
    );
}
