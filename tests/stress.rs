//! Stress: irregular seeded workloads driven through every strategy and
//! backend, verifying exact delivery and cross-strategy invariants.

use bench::workload::{generate, payload_for, WorkloadSpec};
use newmadeleine::core::prelude::*;
use newmadeleine::mpi::{pump_cluster, sim_cluster, EngineKind, StrategyKind};
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::Driver;
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig};
use std::collections::HashMap;

fn engine(world: &SharedWorld, node: u32, strategy: Box<dyn Strategy>) -> NmadEngine {
    let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let meter = Box::new(driver.meter());
    NmadEngine::new(
        vec![Box::new(driver) as Box<dyn Driver>],
        meter,
        strategy,
        EngineCosts::zero(),
    )
}

/// Runs a generated workload through one strategy; returns (virtual us,
/// frames sent).
fn run_workload(
    spec: &WorkloadSpec,
    strategy: Box<dyn Strategy>,
    strategy2: Box<dyn Strategy>,
) -> (f64, u64) {
    let items = generate(spec);
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = engine(&world, 0, strategy);
    let mut b = engine(&world, 1, strategy2);

    let mut sends = Vec::with_capacity(items.len());
    let mut expected: HashMap<u32, Vec<Vec<u8>>> = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        let body = payload_for(i, item.len);
        expected.entry(item.tag).or_default().push(body.clone());
        sends.push(a.isend(NodeId(1), Tag(item.tag), body));
    }
    let mut recvs = Vec::with_capacity(items.len());
    let mut per_flow_index: HashMap<u32, usize> = HashMap::new();
    for item in &items {
        let idx = per_flow_index.entry(item.tag).or_default();
        recvs.push((
            item.tag,
            *idx,
            b.post_recv(NodeId(0), Tag(item.tag), item.len),
        ));
        *idx += 1;
    }

    for _ in 0..20_000_000u64 {
        let mut moved = a.progress();
        moved |= b.progress();
        let all = sends.iter().all(|&s| a.is_send_done(s))
            && recvs.iter().all(|&(_, _, r)| b.is_recv_done(r));
        if all {
            for (tag, idx, r) in recvs {
                let done = b.try_take_recv(r).expect("completed");
                assert_eq!(done.data, expected[&tag][idx], "flow {tag} item {idx}");
            }
            let t = world.lock().now().as_us_f64();
            return (t, a.stats().frames_sent);
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    panic!("no convergence");
}

#[test]
fn rpc_mix_delivers_exactly_under_every_strategy() {
    let spec = WorkloadSpec::rpc_mix(150, 0xC0FFEE);
    type MkStrategy = fn() -> Box<dyn Strategy>;
    let mk: [(&str, MkStrategy); 4] = [
        ("default", || Box::new(StratDefault)),
        ("aggreg", || Box::new(StratAggreg)),
        ("reorder", || Box::new(StratReorder)),
        ("dynamic", || Box::new(StratDynamic::new())),
    ];
    let mut frames = Vec::new();
    for (name, f) in mk {
        let (us, sent) = run_workload(&spec, f(), f());
        assert!(us > 0.0, "{name}");
        frames.push((name, sent));
    }
    // Aggregation-family strategies must use (far) fewer frames than
    // the FIFO baseline on the same traffic.
    let default_frames = frames[0].1;
    for &(name, sent) in &frames[1..] {
        assert!(
            sent < default_frames,
            "{name} sent {sent} frames vs default {default_frames}"
        );
    }
}

#[test]
fn burst_workload_heavily_aggregates() {
    let spec = WorkloadSpec::burst(400, 7);
    let (_, frames_aggreg) = run_workload(&spec, Box::new(StratAggreg), Box::new(StratAggreg));
    let (_, frames_default) = run_workload(&spec, Box::new(StratDefault), Box::new(StratDefault));
    assert_eq!(frames_default, 400, "FIFO sends one frame per message");
    assert!(
        frames_aggreg * 10 <= frames_default,
        "burst should aggregate at least 10:1, got {frames_aggreg}"
    );
}

#[test]
fn mpi_backends_survive_the_rpc_mix() {
    // Same irregular workload through the full MPI stack on every
    // backend; verifies payloads end-to-end.
    let items = generate(&WorkloadSpec::rpc_mix(80, 99));
    for kind in [
        EngineKind::MadMpi(StrategyKind::Dynamic),
        EngineKind::Mpich,
        EngineKind::Ompi,
    ] {
        let (world, mut procs) = sim_cluster(2, nic::quadrics_qm500(), kind);
        let comm = procs[0].comm_world();
        let mut expected: HashMap<u32, Vec<Vec<u8>>> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            let body = payload_for(i, item.len);
            expected.entry(item.tag).or_default().push(body.clone());
            procs[0].isend(comm, 1, item.tag as u16, body);
        }
        let mut recvs = Vec::new();
        let mut per_flow: HashMap<u32, usize> = HashMap::new();
        for item in &items {
            let idx = per_flow.entry(item.tag).or_default();
            recvs.push((
                item.tag,
                *idx,
                procs[1].irecv(comm, 0, item.tag as u16, item.len),
            ));
            *idx += 1;
        }
        pump_cluster(&world, &mut procs, |p| {
            recvs.iter().all(|&(_, _, r)| p[1].test(r))
        });
        for (tag, idx, r) in recvs {
            assert_eq!(
                procs[1].take(r).expect("tested"),
                expected[&tag][idx],
                "{} flow {tag} item {idx}",
                kind.label()
            );
        }
    }
}

#[test]
fn bidirectional_stress_with_different_strategies_per_side() {
    // Each side runs a different strategy; correctness must not depend
    // on both ends agreeing (the wire format is the contract).
    let spec = WorkloadSpec::rpc_mix(60, 1234);
    let items = generate(&spec);
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = engine(&world, 0, Box::new(StratReorder));
    let mut b = engine(&world, 1, Box::new(StratDefault));

    let mut sends = Vec::new();
    let mut expected_at_b: HashMap<u32, Vec<Vec<u8>>> = HashMap::new();
    let mut expected_at_a: HashMap<u32, Vec<Vec<u8>>> = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        let body = payload_for(i, item.len);
        expected_at_b
            .entry(item.tag)
            .or_default()
            .push(body.clone());
        sends.push(a.isend(NodeId(1), Tag(item.tag), body));
        let back = payload_for(i + 10_000, item.len);
        expected_at_a
            .entry(item.tag)
            .or_default()
            .push(back.clone());
        sends.push(b.isend(NodeId(0), Tag(item.tag), back));
    }
    let mut recvs_b = Vec::new();
    let mut recvs_a = Vec::new();
    let mut idx_b: HashMap<u32, usize> = HashMap::new();
    let mut idx_a: HashMap<u32, usize> = HashMap::new();
    for item in &items {
        let ib = idx_b.entry(item.tag).or_default();
        recvs_b.push((
            item.tag,
            *ib,
            b.post_recv(NodeId(0), Tag(item.tag), item.len),
        ));
        *ib += 1;
        let ia = idx_a.entry(item.tag).or_default();
        recvs_a.push((
            item.tag,
            *ia,
            a.post_recv(NodeId(1), Tag(item.tag), item.len),
        ));
        *ia += 1;
    }
    for _ in 0..20_000_000u64 {
        let moved = a.progress() | b.progress();
        let all = recvs_b.iter().all(|&(_, _, r)| b.is_recv_done(r))
            && recvs_a.iter().all(|&(_, _, r)| a.is_recv_done(r));
        if all {
            for (tag, idx, r) in recvs_b {
                assert_eq!(b.try_take_recv(r).unwrap().data, expected_at_b[&tag][idx]);
            }
            for (tag, idx, r) in recvs_a {
                assert_eq!(a.try_take_recv(r).unwrap().data, expected_at_a[&tag][idx]);
            }
            return;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    panic!("no convergence");
}
