//! Application data segments and their identification metadata.
//!
//! The collect layer "registers the pieces of data submitted by the
//! various communication flows of the application as well as the
//! meta-data necessary in their identification by the receiving side
//! (tag number, sender id, sequence number)" (§3.3). A [`PackWrapper`]
//! is one such registered piece together with that metadata.

use bytes::Bytes;
use nmad_sim::NodeId;
use std::fmt;

/// Logical flow identifier. Different MPI communicators (or RPC
/// channels, DSM streams, ...) map to different tags; the engine may
/// still aggregate across them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u32);

/// Per-(peer, tag) sequence number, assigned by the sender's collect
/// layer and used by the receiver to restore submission order no matter
/// how the scheduler reordered the wire traffic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNo(pub u32);

impl SeqNo {
    /// The following sequence number (wrapping).
    pub fn next(self) -> SeqNo {
        SeqNo(self.0.wrapping_add(1))
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

impl fmt::Debug for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Number of scheduling lanes. Lane 0 is the most urgent; lane
/// `NUM_LANES - 1` is background bulk. The wire format reserves one
/// byte for the lane, so this must stay ≤ 256.
pub const NUM_LANES: usize = 4;

/// Scheduling class attached by the application. Each class maps to
/// one *lane*: an ordinal urgency level that tail-aware strategies use
/// to decide which destination to serve first and when to cap an
/// aggregate that would head-of-line-block a more urgent segment.
///
/// The historical two-level hint (§2: high-priority RPC service ids
/// eligible for earlier delivery under reordering strategies) maps to
/// [`Priority::High`] vs [`Priority::Normal`]; the tail-optimization
/// work adds [`Priority::Urgent`] above and [`Priority::Bulk`] below.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Priority {
    /// Latency-critical; jumps every other lane (lane 0).
    Urgent,
    /// Deliver as early as possible (control/header fragments, lane 1).
    High,
    #[default]
    /// No special treatment (lane 2).
    Normal,
    /// Background bulk; yields to every other lane (lane 3).
    Bulk,
}

impl Priority {
    /// Ordinal lane index: 0 (most urgent) … `NUM_LANES - 1` (bulk).
    pub fn lane(self) -> u8 {
        match self {
            Priority::Urgent => 0,
            Priority::High => 1,
            Priority::Normal => 2,
            Priority::Bulk => 3,
        }
    }

    /// Inverse of [`lane`](Self::lane); out-of-range values clamp to
    /// [`Priority::Bulk`] so a corrupted wire byte degrades gracefully
    /// instead of panicking.
    pub fn from_lane(lane: u8) -> Priority {
        match lane {
            0 => Priority::Urgent,
            1 => Priority::High,
            2 => Priority::Normal,
            _ => Priority::Bulk,
        }
    }

    /// True for lanes that reordering strategies treat as queue-jump
    /// eligible (the §2 service-id scenario).
    pub fn is_expedited(self) -> bool {
        self.lane() <= Priority::High.lane()
    }
}

/// Handle of an application send request; completes when every segment
/// it submitted has left the host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SendReqId(pub u64);

/// Handle of an application receive request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RecvReqId(pub u64);

/// One collected application segment awaiting scheduling, sitting in
/// the optimization window.
#[derive(Clone, Debug)]
pub struct PackWrapper {
    /// Destination node.
    pub dst: NodeId,
    /// Logical flow identifier.
    pub tag: Tag,
    /// Per-flow sequence number.
    pub seq: SeqNo,
    /// Application scheduling hint.
    pub priority: Priority,
    /// The segment's payload (borrowed from user space).
    pub data: Bytes,
    /// Request this segment contributes one completion unit to.
    pub req: SendReqId,
    /// Submission order stamp (monotonic per engine) so strategies can
    /// reason about age.
    pub order: u64,
}

impl PackWrapper {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for zero-length segments.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_increments_and_wraps() {
        assert_eq!(SeqNo(0).next(), SeqNo(1));
        assert_eq!(SeqNo(u32::MAX).next(), SeqNo(0));
    }

    #[test]
    fn priority_defaults_to_normal() {
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn lanes_roundtrip_and_order_by_urgency() {
        for lane in 0..NUM_LANES as u8 {
            assert_eq!(Priority::from_lane(lane).lane(), lane);
        }
        assert!(Priority::Urgent < Priority::High);
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Bulk);
        // Corrupted lane bytes clamp instead of panicking.
        assert_eq!(Priority::from_lane(200), Priority::Bulk);
    }

    #[test]
    fn expedited_covers_urgent_and_high_only() {
        assert!(Priority::Urgent.is_expedited());
        assert!(Priority::High.is_expedited());
        assert!(!Priority::Normal.is_expedited());
        assert!(!Priority::Bulk.is_expedited());
    }

    #[test]
    fn wrapper_len_tracks_payload() {
        let w = PackWrapper {
            dst: NodeId(1),
            tag: Tag(0),
            seq: SeqNo(0),
            priority: Priority::Normal,
            data: Bytes::from_static(b"12345"),
            req: SendReqId(0),
            order: 0,
        };
        assert_eq!(w.len(), 5);
        assert!(!w.is_empty());
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", Tag(4)), "tag4");
        assert_eq!(format!("{:?}", SeqNo(9)), "#9");
    }
}
