/root/repo/target/release/deps/nmadctl-32042c0a6cae6116.d: src/bin/nmadctl.rs

/root/repo/target/release/deps/nmadctl-32042c0a6cae6116: src/bin/nmadctl.rs

src/bin/nmadctl.rs:
