//! Real-time microbenchmarks of the reliability decorator: per-frame
//! protocol overhead on a lossless in-process link, and recovery cost
//! under seeded loss.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmad_core::sync::{AtomicU64, Ordering};
use nmad_net::{mem_fabric, Driver, LossyDriver, ReliableDriver};
use nmad_sim::NodeId;
use std::sync::Arc;

fn clock() -> (Arc<AtomicU64>, Box<dyn Fn() -> u64 + Send>) {
    let t = Arc::new(AtomicU64::new(0));
    let t2 = t.clone();
    (t, Box::new(move || t2.load(Ordering::Relaxed)))
}

fn bench_reliable_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliable/lossless_transfer");
    for size in [64usize, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut fabric = mem_fabric(2);
            let (_, clk_b) = clock();
            let (_, clk_a) = clock();
            let mut rx =
                ReliableDriver::new(fabric.pop().expect("pair"), clk_b, None, 1_000_000_000);
            let mut tx =
                ReliableDriver::new(fabric.pop().expect("pair"), clk_a, None, 1_000_000_000);
            let payload = vec![7u8; size];
            b.iter(|| {
                tx.post_send(NodeId(1), &[&payload]).expect("send");
                loop {
                    tx.pump().expect("pump");
                    if let Some(f) = rx.poll_recv().expect("poll") {
                        break black_box(f.payload.len());
                    }
                }
            })
        });
    }
    group.finish();
}

fn bench_reliable_recovery(c: &mut Criterion) {
    c.bench_function("reliable/recover_10pct_loss_20_frames", |b| {
        b.iter(|| {
            let mut fabric = mem_fabric(2);
            let (_, clk_b) = clock();
            let (ta, clk_a) = clock();
            let mut rx = ReliableDriver::new(
                LossyDriver::new(fabric.pop().expect("pair"), 0.1, 77),
                clk_b,
                None,
                1_000_000,
            );
            let mut tx = ReliableDriver::new(
                LossyDriver::new(fabric.pop().expect("pair"), 0.1, 78),
                clk_a,
                None,
                1_000_000,
            );
            for i in 0..20u8 {
                tx.post_send(NodeId(1), &[&[i; 32]]).expect("send");
            }
            let mut got = 0;
            while got < 20 {
                ta.fetch_add(100_000, Ordering::Relaxed);
                tx.pump().expect("pump");
                rx.pump().expect("pump");
                while rx.poll_recv().expect("poll").is_some() {
                    got += 1;
                }
            }
            black_box(tx.stats().retransmits)
        })
    });
}

criterion_group!(benches, bench_reliable_roundtrip, bench_reliable_recovery);
criterion_main!(benches);
