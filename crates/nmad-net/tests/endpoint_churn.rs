//! Churn properties of the massive-fanout endpoint layer.
//!
//! Two levels:
//!
//! * **Model check of the slab** — arbitrary interleavings of
//!   insert/lookup/remove against [`EndpointTable`], mirrored in a
//!   naïve `HashMap` model. Every token ever minted is replayed after
//!   every step: a live token must resolve to its value, a dead one
//!   (its occupant removed, possibly with the slot since reused) must
//!   resolve to nothing — in `get`, `get_mut`, `remove`, and through a
//!   poller-key round-trip. This is the property that makes readiness
//!   events safe under churn.
//!
//! * **Accept/teardown/reconnect churn on a real server** — random
//!   connect/handshake/disconnect schedules against a live
//!   [`TcpDriver::server`], checking that the peer map tracks exactly
//!   the surviving clients and that freed node ids are reusable.

use nmad_net::tcp::TcpDriver;
use nmad_net::{Driver, EndpointTable, Token};
use nmad_sim::NodeId;
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The slab agrees with a HashMap model under arbitrary churn, and
    /// stale tokens never alias a slot's next occupant.
    #[test]
    fn slab_tracks_model_and_kills_stale_tokens(
        ops in proptest::collection::vec((0u8..3, 0u8..8), 1..120),
    ) {
        let mut table: EndpointTable<u64> = EndpointTable::new();
        let mut model: HashMap<usize, u64> = HashMap::new(); // token.key() -> value
        let mut minted: Vec<Token> = Vec::new();
        let mut live: Vec<Token> = Vec::new();
        let mut next_value = 0u64;

        for (op, pick) in ops {
            match op {
                // Insert a fresh value.
                0 => {
                    let v = next_value;
                    next_value += 1;
                    let t = table.insert(v);
                    prop_assert!(
                        !model.contains_key(&t.key()),
                        "token key reused while a prior mint could still alias it"
                    );
                    model.insert(t.key(), v);
                    minted.push(t);
                    live.push(t);
                }
                // Remove a (possibly stale) previously-minted token.
                1 => {
                    if minted.is_empty() {
                        continue;
                    }
                    let t = minted[pick as usize % minted.len()];
                    let expect = model.remove(&t.key());
                    prop_assert_eq!(table.remove(t), expect);
                    live.retain(|&x| x != t);
                }
                // Remove a live token specifically (steady churn).
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let t = live.swap_remove(pick as usize % live.len());
                    let expect = model.remove(&t.key());
                    prop_assert!(expect.is_some());
                    prop_assert_eq!(table.remove(t), expect);
                }
            }

            // Replay every token ever minted against the model.
            prop_assert_eq!(table.len(), model.len());
            for &t in &minted {
                let expect = model.get(&t.key()).copied();
                prop_assert_eq!(table.get(t).copied(), expect);
                // The poller-key round trip preserves the verdict.
                prop_assert_eq!(table.get(Token::from_key(t.key())).copied(), expect);
            }
        }

        // Dead tokens stay dead through get_mut and double-remove too.
        for &t in &minted {
            if !model.contains_key(&t.key()) {
                prop_assert!(table.get_mut(t).is_none());
                prop_assert!(table.remove(t).is_none());
            }
        }
    }
}

fn pump_until(server: &mut TcpDriver, mut cond: impl FnMut(&TcpDriver) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond(server) {
        assert!(Instant::now() < deadline, "server condition timed out");
        server.pump().unwrap();
        std::thread::sleep(Duration::from_micros(200));
    }
}

fn handshake(addr: std::net::SocketAddr, id: u32) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&id.to_le_bytes()).unwrap();
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random connect/disconnect/reconnect schedules against a live
    /// server endpoint: the peer count tracks the surviving clients,
    /// teardowns free node ids for reuse, and nothing wedges.
    #[test]
    fn server_survives_accept_teardown_reconnect_churn(
        schedule in proptest::collection::vec((0u8..2, 1u32..9), 1..24),
    ) {
        let mut server =
            TcpDriver::server(NodeId(0), "127.0.0.1:0".parse().unwrap(), 16).unwrap();
        let addr = server.local_addr().unwrap();
        let mut clients: HashMap<u32, TcpStream> = HashMap::new();

        for (op, id) in schedule {
            match op {
                0 => {
                    if clients.contains_key(&id) {
                        continue;
                    }
                    clients.insert(id, handshake(addr, id));
                }
                _ => {
                    if clients.remove(&id).is_none() {
                        continue;
                    }
                }
            }
            let want = clients.len();
            pump_until(&mut server, |s| s.connected_peers() == want);
        }

        // Every surviving client can still exchange a frame.
        let ids: Vec<u32> = clients.keys().copied().collect();
        for id in ids {
            server.post_send(NodeId(id), &[b"alive?"]).unwrap();
        }
        drop(clients);
        pump_until(&mut server, |s| s.connected_peers() == 0);
    }
}
