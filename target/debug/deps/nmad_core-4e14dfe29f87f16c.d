/root/repo/target/debug/deps/nmad_core-4e14dfe29f87f16c.d: crates/nmad-core/src/lib.rs crates/nmad-core/src/api.rs crates/nmad-core/src/engine.rs crates/nmad-core/src/matching.rs crates/nmad-core/src/metrics.rs crates/nmad-core/src/segment.rs crates/nmad-core/src/strategy/mod.rs crates/nmad-core/src/strategy/aggreg.rs crates/nmad-core/src/strategy/default.rs crates/nmad-core/src/strategy/dynamic.rs crates/nmad-core/src/strategy/multirail.rs crates/nmad-core/src/strategy/reorder.rs crates/nmad-core/src/window.rs crates/nmad-core/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libnmad_core-4e14dfe29f87f16c.rmeta: crates/nmad-core/src/lib.rs crates/nmad-core/src/api.rs crates/nmad-core/src/engine.rs crates/nmad-core/src/matching.rs crates/nmad-core/src/metrics.rs crates/nmad-core/src/segment.rs crates/nmad-core/src/strategy/mod.rs crates/nmad-core/src/strategy/aggreg.rs crates/nmad-core/src/strategy/default.rs crates/nmad-core/src/strategy/dynamic.rs crates/nmad-core/src/strategy/multirail.rs crates/nmad-core/src/strategy/reorder.rs crates/nmad-core/src/window.rs crates/nmad-core/src/wire.rs Cargo.toml

crates/nmad-core/src/lib.rs:
crates/nmad-core/src/api.rs:
crates/nmad-core/src/engine.rs:
crates/nmad-core/src/matching.rs:
crates/nmad-core/src/metrics.rs:
crates/nmad-core/src/segment.rs:
crates/nmad-core/src/strategy/mod.rs:
crates/nmad-core/src/strategy/aggreg.rs:
crates/nmad-core/src/strategy/default.rs:
crates/nmad-core/src/strategy/dynamic.rs:
crates/nmad-core/src/strategy/multirail.rs:
crates/nmad-core/src/strategy/reorder.rs:
crates/nmad-core/src/window.rs:
crates/nmad-core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
