//! The engine's synchronisation facade.
//!
//! Every atomic, fence, lock, and condvar on the submit/progress hot
//! path (`ring`, `threaded`, `metrics`, `window`, `engine`) goes
//! through this module — the only file in the crate allowed to name
//! raw `std::sync` primitives (enforced by `cargo run -p xtask --
//! lint`). The indirection buys one thing: under `cfg(nmad_model)`
//! (the `nmad-model` cargo feature, mapped by build.rs) the same types
//! route to the nmad-verify model-checking runtime, so the engine's
//! lock-free protocols are exhaustively checked across thread
//! interleavings *and* weak-memory load results instead of stress-
//! tested on one lucky seed. In normal builds everything here is a
//! zero-cost re-export or a thin poison-free wrapper.
//!
//! API shape (identical in both modes):
//! * atomics/`fence`/`Ordering` — as in `std::sync::atomic`
//!   (`compare_exchange_weak` is the strong version under the model,
//!   which never fails spuriously);
//! * `Mutex::lock()` returns the guard directly (parking_lot
//!   convention, no poison);
//! * `Condvar::wait_timeout(guard, dur)` returns `(guard, timed_out)`;
//! * `spin_loop()` — `std::hint::spin_loop` normally, a fairness yield
//!   under the model (every busy-wait retry loop on the hot path must
//!   call it, or model executions of that loop could spin forever).

#[cfg(nmad_model)]
pub use nmad_verify::sync::{
    fence, spin_loop, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard,
    Ordering,
};

#[cfg(not(nmad_model))]
pub use real::*;

#[cfg(not(nmad_model))]
mod real {
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    use std::time::Duration;

    pub use std::hint::spin_loop;

    /// Poison-free mutex with the parking_lot calling convention.
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    /// RAII guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T> {
        inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T> Mutex<T> {
        /// A mutex guarding `value`.
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Blocks until the lock is held; poison is swallowed.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self.inner.lock().unwrap_or_else(|p| p.into_inner()),
            }
        }

        /// Takes the lock only if it is free right now.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard { inner: g }),
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    inner: p.into_inner(),
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }

        /// Consumes the mutex, returning the guarded value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self.try_lock() {
                Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
                None => f.write_str("Mutex { <locked> }"),
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// Condvar whose `wait_timeout` returns `(guard, timed_out)`.
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// A fresh condition variable.
        pub fn new() -> Self {
            Condvar {
                inner: std::sync::Condvar::new(),
            }
        }

        /// Atomically releases `guard` and parks until notified.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard {
                inner: self
                    .inner
                    .wait(guard.inner)
                    .unwrap_or_else(|p| p.into_inner()),
            }
        }

        /// Like [`wait`](Self::wait) with an upper bound on the park
        /// time; the flag reports whether the bound was hit.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let (inner, res) = self
                .inner
                .wait_timeout(guard.inner, dur)
                .unwrap_or_else(|p| p.into_inner());
            (MutexGuard { inner }, res.timed_out())
        }

        /// Wakes one parked waiter, if any.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes every parked waiter.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Condvar")
        }
    }
}
