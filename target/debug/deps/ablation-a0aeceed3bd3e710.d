/root/repo/target/debug/deps/ablation-a0aeceed3bd3e710.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-a0aeceed3bd3e710: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
