/root/repo/target/debug/deps/engine-2d23f458f087390c.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/engine-2d23f458f087390c: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
