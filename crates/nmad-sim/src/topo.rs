//! Cluster topology: node and rail identifiers plus the simulation
//! configuration assembled by harnesses.

use crate::host::HostModel;
use crate::nic::NicModel;
use std::fmt;

/// Identifies one node (process) in the simulated cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies one rail (one NIC per node; every node owns one NIC of
/// each configured rail, matching the paper's homogeneous multi-rail
/// test platform).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RailId(pub u16);

impl NodeId {
    /// The node id as a plain array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RailId {
    /// The rail id as a plain array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for RailId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RailId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Static description of a simulated cluster: `nodes` hosts, each with
/// one NIC per entry of `rails`, all sharing the same `host` model.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// One NIC model per rail; every node owns one NIC per rail.
    pub rails: Vec<NicModel>,
    /// Host (CPU/memcpy) model shared by all nodes.
    pub host: HostModel,
}

impl SimConfig {
    /// Two nodes connected by a single rail of the given technology —
    /// the topology of every ping-pong experiment in the paper.
    pub fn two_nodes(nic: NicModel) -> Self {
        SimConfig {
            nodes: 2,
            rails: vec![nic],
            host: crate::host::opteron_1_8ghz(),
        }
    }

    /// Two nodes with several heterogeneous rails (multirail
    /// experiments).
    pub fn two_nodes_multirail(rails: Vec<NicModel>) -> Self {
        SimConfig {
            nodes: 2,
            rails,
            host: crate::host::opteron_1_8ghz(),
        }
    }

    /// `n` nodes on one rail (collectives, load-balancing tests).
    pub fn cluster(n: usize, nic: NicModel) -> Self {
        SimConfig {
            nodes: n,
            rails: vec![nic],
            host: crate::host::opteron_1_8ghz(),
        }
    }

    /// Number of configured rails.
    pub fn rail_count(&self) -> usize {
        self.rails.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic;

    #[test]
    fn two_nodes_has_single_rail() {
        let cfg = SimConfig::two_nodes(nic::mx_myri10g());
        assert_eq!(cfg.nodes, 2);
        assert_eq!(cfg.rail_count(), 1);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", RailId(1)), "r1");
    }

    #[test]
    fn multirail_config_keeps_order() {
        let cfg = SimConfig::two_nodes_multirail(vec![nic::mx_myri10g(), nic::quadrics_qm500()]);
        assert_eq!(cfg.rails[0].name, "MX/Myri-10G");
        assert_eq!(cfg.rails[1].name, "Elan/QM500");
    }
}
