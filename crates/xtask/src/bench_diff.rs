//! `cargo run -p xtask -- bench-diff`: gate the perf benchmarks
//! against the committed baseline.
//!
//! Freshly generated reports (repo root by default) are compared with
//! the blessed copies in `BENCH_baseline/`, metric by metric:
//!
//! * `BENCH_pingpong.json` — `one_way_us_median` per (bench, engine,
//!   size) row, lower is better. Only the `sim` rows gate: simulated
//!   time is deterministic, so any drift there is a real scheduling
//!   change. The `mem`-driver rows are wall clock on a shared runner
//!   (observed ±70% run to run) and are reported but never gated.
//! * `BENCH_overlap.json` — `overlap_pct` per (mode, size) row,
//!   reported for context but never gated: overlap is a two-thread
//!   wall-clock race on a shared one-core runner, and even the
//!   saturated 256K threaded row (baseline 99.9%) was observed at
//!   0.0% on a rerun of the same build. The deterministic overlap
//!   property is held by the virtual-time tests instead.
//! * `BENCH_batch.json` — the `speedups` ratios, higher is better.
//!   Only the wheel-vs-heap ratio gates: the batched-vs-single ratios
//!   are two-thread wall clock on a shared one-core runner and swing
//!   severalfold run to run (see `extract_batch`). The absolute
//!   `ns_per_op` rows are printed for context but not gated: wall
//!   clock ns depends on the machine, while a same-process *ratio*
//!   is the property the work guarantees.
//! * `BENCH_swarm.json` — the readiness-event counts of the
//!   event-driven TCP endpoint (`idle_events_per_pump`,
//!   `probe_events_per_ready`, and the max-vs-min fanout ratio of the
//!   latter) gate strictly, lower is better: they are deterministic
//!   properties of the pump, and with a 0.0 idle baseline a single
//!   leaked event fails. Accept churn and echo percentiles are wall
//!   clock and context only.
//! * `BENCH_tail.json` — the heavy-tail multi-tenant study. Every
//!   per-class percentile row (p50 → p99.99) and every cross-strategy
//!   ratio is deterministic virtual time and gates strictly; means and
//!   absolute throughput are context.
//!
//! Rows that do not gate are *demoted*, never silently dropped: a
//! demoted row always carries a `context_reason` shown in the status
//! column, and the `Gate` type makes it impossible for a gating row to
//! carry one.
//!
//! A metric is a regression when it moves past the tolerance in its
//! bad direction; a baseline metric missing from the current report
//! is also a regression (coverage loss fails, silently dropping a
//! bench must not pass CI). Exit code 1 on any regression or
//! malformed/missing report, with a delta table either way.

use std::path::Path;
use std::process::ExitCode;

use crate::json::{parse, Json};

/// Which direction is an improvement for a metric.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Better {
    Lower,
    Higher,
}

/// Whether a metric gates the build or is demoted to context.
///
/// Demotion is structural: a gated metric has nowhere to put a reason,
/// and a context metric cannot exist without one. A row therefore can
/// never both gate and carry a "why this doesn't gate" annotation —
/// the combination that would silently lie in the delta table.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Gate {
    /// Gates the build in `Better`'s bad direction.
    Gated(Better),
    /// Printed for context only, with the mandatory human-readable
    /// reason shown in the status column (wall clock, interference,
    /// redundant absolute of a gated ratio, ...).
    Context { context_reason: &'static str },
}

struct Metric {
    key: String,
    baseline: f64,
    current: Option<f64>,
    gate: Gate,
}

impl Metric {
    /// The demotion reason, present exactly when the row is context.
    /// The report path matches on [`Gate`] directly; the structural
    /// no-silent-demotion tests are what consume this accessor.
    #[cfg(test)]
    fn context_reason(&self) -> Option<&'static str> {
        match self.gate {
            Gate::Context { context_reason } => Some(context_reason),
            Gate::Gated(_) => None,
        }
    }
}

pub fn bench_diff(args: &[String]) -> ExitCode {
    let mut tolerance = 0.20f64;
    let mut baseline_dir = "BENCH_baseline".to_string();
    let mut current_dir = ".".to_string();
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(path) => json_path = Some(path.clone()),
                None => {
                    eprintln!("bench-diff: --json needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match it.next().map(|v| parse_tolerance(v)) {
                Some(Ok(t)) => tolerance = t,
                Some(Err(e)) => {
                    eprintln!("bench-diff: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("bench-diff: --tolerance needs a value (e.g. 20%)");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match it.next() {
                Some(dir) => baseline_dir = dir.clone(),
                None => {
                    eprintln!("bench-diff: --baseline needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--current" => match it.next() {
                Some(dir) => current_dir = dir.clone(),
                None => {
                    eprintln!("bench-diff: --current needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("bench-diff: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut metrics = Vec::new();
    let mut broken = false;
    for (file, extract) in [
        (
            "BENCH_pingpong.json",
            extract_pingpong as fn(&Json, &Json) -> Vec<Metric>,
        ),
        ("BENCH_overlap.json", extract_overlap as _),
        ("BENCH_batch.json", extract_batch as _),
        ("BENCH_shards.json", extract_shards as _),
        ("BENCH_swarm.json", extract_swarm as _),
        ("BENCH_tail.json", extract_tail as _),
    ] {
        let base_path = Path::new(&baseline_dir).join(file);
        let cur_path = Path::new(&current_dir).join(file);
        match (load(&base_path), load(&cur_path)) {
            (Ok(base), Ok(cur)) => {
                let extracted = extract(&base, &cur);
                if extracted.is_empty() {
                    eprintln!("bench-diff: {file}: no comparable metrics (malformed report?)");
                    broken = true;
                }
                metrics.extend(extracted);
            }
            (Err(e), _) => {
                eprintln!("bench-diff: {}: {e}", base_path.display());
                broken = true;
            }
            (_, Err(e)) => {
                eprintln!("bench-diff: {}: {e}", cur_path.display());
                broken = true;
            }
        }
    }

    let mut regressions = 0usize;
    let mut rows: Vec<(String, f64, Option<f64>, String, String)> = Vec::new();
    println!(
        "\n## bench-diff — current vs {baseline_dir} (tolerance {:.0}%)\n",
        tolerance * 100.0
    );
    println!("| metric | baseline | current | delta | status |");
    println!("|--------|----------|---------|-------|--------|");
    for m in &metrics {
        let (delta, status) = match m.current {
            None => (String::from("—"), "REGRESSION (missing)"),
            Some(cur) => {
                let delta_pct = if m.baseline.abs() > f64::EPSILON {
                    (cur - m.baseline) / m.baseline * 100.0
                } else {
                    0.0
                };
                let status = match m.gate {
                    Gate::Context { context_reason } => context_reason,
                    Gate::Gated(Better::Lower) if cur > m.baseline * (1.0 + tolerance) => {
                        "REGRESSION"
                    }
                    Gate::Gated(Better::Higher) if cur < m.baseline * (1.0 - tolerance) => {
                        "REGRESSION"
                    }
                    Gate::Gated(_) => "ok",
                };
                (format!("{delta_pct:+.1}%"), status)
            }
        };
        if status.starts_with("REGRESSION") {
            regressions += 1;
        }
        println!(
            "| {} | {:.3} | {} | {} | {} |",
            m.key,
            m.baseline,
            m.current.map_or("—".into(), |c| format!("{c:.3}")),
            delta,
            status
        );
        rows.push((
            m.key.clone(),
            m.baseline,
            m.current,
            delta,
            status.to_string(),
        ));
    }
    println!(
        "\n{} metric(s), {} regression(s){}",
        metrics.len(),
        regressions,
        if broken { ", broken report(s)" } else { "" }
    );
    if let Some(path) = json_path {
        let doc = diff_json(&rows, tolerance, regressions, broken);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("bench-diff: cannot write {path}: {e}");
            broken = true;
        }
    }
    if regressions > 0 || broken {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The delta table as a JSON document, through the shared
/// [`crate::json::escape`] emitter (metric keys carry `/` and `%`
/// today, but the escaper owns the contract either way).
fn diff_json(
    rows: &[(String, f64, Option<f64>, String, String)],
    tolerance: f64,
    regressions: usize,
    broken: bool,
) -> String {
    use crate::json::escape;
    let mut s = format!("{{\"task\":\"bench-diff\",\"tolerance\":{tolerance},\"metrics\":[");
    for (i, (key, baseline, current, delta, status)) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"key\":\"{}\",\"baseline\":{baseline},\"current\":{},\"delta\":\"{}\",\"status\":\"{}\"}}",
            escape(key),
            current.map_or("null".to_string(), |c| format!("{c}")),
            escape(delta),
            escape(status)
        ));
    }
    s.push_str(&format!(
        "],\"regressions\":{regressions},\"broken\":{broken}}}\n"
    ));
    s
}

fn parse_tolerance(text: &str) -> Result<f64, String> {
    let trimmed = text.strip_suffix('%').unwrap_or(text);
    let value: f64 = trimmed
        .parse()
        .map_err(|_| format!("bad tolerance {text:?} (want e.g. 20%)"))?;
    if !(0.0..=100.0).contains(&value) {
        return Err(format!("tolerance {value} out of range 0..=100"));
    }
    Ok(value / 100.0)
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    parse(&text).map_err(|e| format!("invalid JSON: {e}"))
}

/// Float lookup helpers over the row arrays. Rows are matched by their
/// identity fields, not array position, so reordering a report never
/// produces a bogus diff.
fn row_metric(doc: &Json, section: &str, ident: &[&str], metric: &str) -> Vec<(String, f64)> {
    let Some(rows) = doc.get(section).and_then(Json::as_arr) else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|row| {
            let key = ident
                .iter()
                .map(|field| match row.get(field) {
                    Some(Json::Str(s)) => s.clone(),
                    Some(Json::Num(n)) => format!("{n}"),
                    _ => String::from("?"),
                })
                .collect::<Vec<_>>()
                .join("/");
            row.get(metric)
                .and_then(Json::as_f64)
                .map(|v| (format!("{section}:{key}:{metric}"), v))
        })
        .collect()
}

fn pair(
    base: Vec<(String, f64)>,
    cur: Vec<(String, f64)>,
    gate_for: impl Fn(&str) -> Gate,
) -> Vec<Metric> {
    base.into_iter()
        .map(|(key, baseline)| Metric {
            current: cur.iter().find(|(k, _)| *k == key).map(|(_, v)| *v),
            gate: gate_for(&key),
            key,
            baseline,
        })
        .collect()
}

fn extract_pingpong(base: &Json, cur: &Json) -> Vec<Metric> {
    pair(
        row_metric(
            base,
            "benchmarks",
            &["bench", "engine", "size"],
            "one_way_us_median",
        ),
        row_metric(
            cur,
            "benchmarks",
            &["bench", "engine", "size"],
            "one_way_us_median",
        ),
        // Simulated-time rows are deterministic and gate strictly; the
        // mem-driver rows are wall clock and only informational.
        |key| {
            if key.contains("/sim") {
                Gate::Gated(Better::Lower)
            } else {
                Gate::Context {
                    context_reason: "skipped (wall-clock)",
                }
            }
        },
    )
}

fn extract_overlap(base: &Json, cur: &Json) -> Vec<Metric> {
    // Overlap percentage is a two-thread wall-clock race on a shared
    // one-core runner: whether the progression thread runs at all
    // during the compute window is scheduler luck. A stable floor of
    // 50% was tried first, but even the saturated 256K threaded row
    // (baseline 99.9%) was then observed at 0.0%, 12.2% and 99.9% on
    // three consecutive runs of the *same build*, so no overlap row
    // gates. The deterministic overlap property is held by the
    // virtual-time tests instead; these rows are context.
    pair(
        row_metric(base, "overlap", &["mode", "size"], "overlap_pct"),
        row_metric(cur, "overlap", &["mode", "size"], "overlap_pct"),
        |_| Gate::Context {
            context_reason: "skipped (interference-bound)",
        },
    )
}

fn extract_batch(base: &Json, cur: &Json) -> Vec<Metric> {
    let speedups = |doc: &Json| -> Vec<(String, f64)> {
        doc.get("speedups")
            .and_then(Json::members)
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|f| (format!("speedups:{k}"), f)))
                    .collect()
            })
            .unwrap_or_default()
    };
    // Both batched-vs-single ratios are dominated by how the OS
    // interleaves the submitting thread with the progression threads
    // — observed 5x to 30x (send burst) and 2.7x to 8x (recv burst)
    // run to run on the *same build* on a one-core host, the latter
    // driven entirely by the batch1 denominator's doorbell/wake cost
    // — so they are context, not gates. The wheel ratio measures
    // single-thread machinery the scheduler barely touches and gates
    // normally.
    let mut out = pair(speedups(base), speedups(cur), |key| {
        if key.contains("_vs_batch1") {
            Gate::Context {
                context_reason: "skipped (interference-bound)",
            }
        } else {
            Gate::Gated(Better::Higher)
        }
    });
    out.extend(pair(
        row_metric(base, "batch", &["bench", "variant"], "ns_per_op"),
        row_metric(cur, "batch", &["bench", "variant"], "ns_per_op"),
        |_| Gate::Context {
            context_reason: "info (wall-clock ns)",
        },
    ));
    out
}

fn extract_shards(base: &Json, cur: &Json) -> Vec<Metric> {
    let scaling = |doc: &Json| -> Vec<(String, f64)> {
        doc.get("scaling")
            .and_then(Json::members)
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|f| (format!("scaling:{k}"), f)))
                    .collect()
            })
            .unwrap_or_default()
    };
    // The scaling ratios come from deterministic virtual time, so they
    // gate strictly: a shard-count that stops paying for itself is a
    // real routing or steal-path change. The absolute MB/s rows repeat
    // the same information per point and are context.
    let mut out = pair(scaling(base), scaling(cur), |_| Gate::Gated(Better::Higher));
    out.extend(pair(
        row_metric(base, "shards", &["shards"], "throughput_mbs"),
        row_metric(cur, "shards", &["shards"], "throughput_mbs"),
        |_| Gate::Context {
            context_reason: "info (absolute of gated ratio)",
        },
    ));
    out
}

fn extract_swarm(base: &Json, cur: &Json) -> Vec<Metric> {
    // The readiness-event counts are deterministic properties of the
    // endpoint pump — an idle pump touches zero sockets and K ready
    // sockets cost ~K events regardless of fanout — so they gate
    // strictly, lower is better. The idle baseline is 0.0, and the
    // zero-baseline rule (any positive current exceeds 0*(1+tol))
    // means a single leaked idle event fails the gate. Accept churn
    // and echo percentiles are wall clock on a shared one-core runner
    // and are context only.
    let mut out = pair(
        row_metric(base, "swarm", &["connections"], "idle_events_per_pump"),
        row_metric(cur, "swarm", &["connections"], "idle_events_per_pump"),
        |_| Gate::Gated(Better::Lower),
    );
    out.extend(pair(
        row_metric(base, "swarm", &["connections"], "probe_events_per_ready"),
        row_metric(cur, "swarm", &["connections"], "probe_events_per_ready"),
        |_| Gate::Gated(Better::Lower),
    ));
    let probes = |doc: &Json| -> Vec<(String, f64)> {
        doc.get("probes")
            .and_then(Json::members)
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|f| (format!("probes:{k}"), f)))
                    .collect()
            })
            .unwrap_or_default()
    };
    out.extend(pair(probes(base), probes(cur), |_| {
        Gate::Gated(Better::Lower)
    }));
    for metric in ["accepts_per_sec", "ping_p50_us", "ping_p99_us"] {
        out.extend(pair(
            row_metric(base, "swarm", &["connections"], metric),
            row_metric(cur, "swarm", &["connections"], metric),
            |_| Gate::Context {
                context_reason: "info (wall-clock)",
            },
        ));
    }
    out
}

fn extract_tail(base: &Json, cur: &Json) -> Vec<Metric> {
    // The tail benchmark's percentile ladder is deterministic virtual
    // time (log-bucketed, so values only move when scheduling actually
    // changes): every percentile row gates strictly, lower is better —
    // including p99.99, which is the whole point of the study. The
    // named cross-strategy ratios (aggreg-over-lanes p99.9, throughput
    // shares) gate in the higher-is-better direction: a collapse there
    // means the tail-aware strategies stopped paying for themselves.
    // Mean latency and absolute MB/s repeat gated information and are
    // context.
    //
    // One more wrinkle: the workload is saturating, so its backlog —
    // and with it every percentile and cross-strategy ratio — grows
    // with the sweep's message count. The rows only gate when both
    // reports ran the same sweep (the per-class `count` fields agree);
    // diffing the committed repo-root *full* sweep against the quick
    // baseline demotes them to context instead of false-failing. CI
    // regenerates quick against the quick baseline, where they gate
    // strictly.
    let mut out = Vec::new();
    let ident: &[&str] = &["scenario", "strategy", "class"];
    let base_counts = row_metric(base, "tail", ident, "count");
    let cur_counts = row_metric(cur, "tail", ident, "count");
    let same_sweep = !base_counts.is_empty()
        && base_counts.iter().all(|(key, n)| {
            cur_counts
                .iter()
                .find(|(k, _)| k == key)
                .is_none_or(|(_, c)| c == n)
        });
    let scale_gate = |better: Better| {
        if same_sweep {
            Gate::Gated(better)
        } else {
            Gate::Context {
                context_reason: "skipped (different sweep scale)",
            }
        }
    };
    for metric in ["p50_us", "p90_us", "p99_us", "p999_us", "p9999_us"] {
        out.extend(pair(
            row_metric(base, "tail", ident, metric),
            row_metric(cur, "tail", ident, metric),
            |_| scale_gate(Better::Lower),
        ));
    }
    out.extend(pair(
        row_metric(base, "tail", ident, "mean_us"),
        row_metric(cur, "tail", ident, "mean_us"),
        |_| Gate::Context {
            context_reason: "info (derived mean)",
        },
    ));
    let map = |doc: &Json, section: &str| -> Vec<(String, f64)> {
        doc.get(section)
            .and_then(Json::members)
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|f| (format!("{section}:{k}"), f)))
                    .collect()
            })
            .unwrap_or_default()
    };
    out.extend(pair(map(base, "ratios"), map(cur, "ratios"), |_| {
        scale_gate(Better::Higher)
    }));
    out.extend(pair(
        map(base, "throughput"),
        map(cur, "throughput"),
        |_| Gate::Context {
            context_reason: "info (absolute of gated ratio)",
        },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE_BATCH: &str = r#"{"batch":[
        {"bench":"submit_overhead","variant":"batch32","ns_per_op":20.0,"ops":256}],
        "speedups":{"submit_batch32_vs_batch1":4.0,"wheel_vs_heap_10k_flows":7.0}}"#;

    fn metrics_for(base: &str, cur: &str) -> Vec<Metric> {
        extract_batch(&parse(base).unwrap(), &parse(cur).unwrap())
    }

    fn regressed(m: &Metric, tolerance: f64) -> bool {
        // Mirrors the driver: a missing metric is a coverage
        // regression even for context rows.
        match (m.gate, m.current) {
            (_, None) => true,
            (Gate::Context { .. }, _) => false,
            (Gate::Gated(Better::Lower), Some(c)) => c > m.baseline * (1.0 + tolerance),
            (Gate::Gated(Better::Higher), Some(c)) => c < m.baseline * (1.0 - tolerance),
        }
    }

    #[test]
    fn diff_json_emits_valid_parseable_json() {
        let rows = vec![
            (
                "speedups:wheel_vs_heap".to_string(),
                7.0,
                Some(6.3),
                "-10.0%".to_string(),
                "ok".to_string(),
            ),
            (
                "tail:mixed/\"q\"\tclass:p99_us".to_string(),
                10.0,
                None,
                "—".to_string(),
                "REGRESSION (missing)".to_string(),
            ),
        ];
        let doc = parse(&diff_json(&rows, 0.20, 1, false)).expect("emitted JSON parses");
        let metrics = doc.get("metrics").and_then(Json::as_arr).unwrap();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[1].get("current"), Some(&Json::Null));
        assert_eq!(
            metrics[1].get("key"),
            Some(&Json::Str("tail:mixed/\"q\"\tclass:p99_us".into()))
        );
        assert_eq!(doc.get("regressions").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn tolerance_accepts_percent_and_plain_forms() {
        assert_eq!(parse_tolerance("20%").unwrap(), 0.20);
        assert_eq!(parse_tolerance("5").unwrap(), 0.05);
        assert!(parse_tolerance("abc").is_err());
        assert!(parse_tolerance("150%").is_err());
    }

    #[test]
    fn a_2x_speedup_drop_is_a_regression_but_small_drift_is_not() {
        let halved = BASE_BATCH.replace("7.0", "3.5");
        let m = metrics_for(BASE_BATCH, &halved);
        let slow = m.iter().find(|m| m.key.contains("wheel")).unwrap();
        assert!(regressed(slow, 0.20), "2x slowdown must gate");
        let drift = BASE_BATCH.replace("7.0", "6.3");
        let m = metrics_for(BASE_BATCH, &drift);
        let ok = m.iter().find(|m| m.key.contains("wheel")).unwrap();
        assert!(!regressed(ok, 0.20), "10% drift is within tolerance");
    }

    #[test]
    fn a_missing_metric_is_a_regression() {
        let gone = r#"{"batch":[],"speedups":{"submit_batch32_vs_batch1":4.0}}"#;
        let m = metrics_for(BASE_BATCH, gone);
        let lost = m.iter().find(|m| m.key.contains("wheel")).unwrap();
        assert!(lost.current.is_none());
        assert!(regressed(lost, 0.20));
    }

    #[test]
    fn ns_per_op_rows_are_context_not_gates() {
        let slower = BASE_BATCH.replace("20.0", "200.0");
        let m = metrics_for(BASE_BATCH, &slower);
        let info = m.iter().find(|m| m.key.contains("ns_per_op")).unwrap();
        assert!(info.context_reason().is_some());
        assert!(!regressed(info, 0.20));
    }

    #[test]
    fn overlap_rows_never_gate_even_from_a_saturated_baseline() {
        // Regression test for a flaky CI gate: the 256K threaded row
        // was observed at 0.0% and 99.9% on consecutive runs of the
        // same build on a one-core runner, so even a total collapse
        // from a saturated baseline must not fail the build.
        let base = r#"{"overlap":[
            {"mode":"inline","size":16384,"overlap_pct":0.6},
            {"mode":"threaded","size":262144,"overlap_pct":99.9}]}"#;
        let cur = r#"{"overlap":[
            {"mode":"inline","size":16384,"overlap_pct":0.0},
            {"mode":"threaded","size":262144,"overlap_pct":0.0}]}"#;
        let m = extract_overlap(&parse(base).unwrap(), &parse(cur).unwrap());
        assert_eq!(m.len(), 2);
        for metric in &m {
            assert_eq!(
                metric.context_reason(),
                Some("skipped (interference-bound)")
            );
            assert!(!regressed(metric, 0.20), "{} must not gate", metric.key);
        }
        // But a vanished row is still a coverage regression.
        let gone = r#"{"overlap":[]}"#;
        let m = extract_overlap(&parse(base).unwrap(), &parse(gone).unwrap());
        assert!(m.iter().all(|m| m.current.is_none()));
        assert!(m.iter().all(|m| regressed(m, 0.20)));
    }

    #[test]
    fn pingpong_latency_gates_in_the_lower_is_better_direction() {
        let base = r#"{"benchmarks":[
            {"bench":"pp/sim/MX","engine":"nmad","size":4096,"one_way_us_median":10.0}],"verify":{}}"#;
        let slower = base.replace("10.0", "25.0");
        let faster = base.replace("10.0", "5.0");
        let m = extract_pingpong(&parse(base).unwrap(), &parse(&slower).unwrap());
        assert!(regressed(&m[0], 0.20));
        let m = extract_pingpong(&parse(base).unwrap(), &parse(&faster).unwrap());
        assert!(!regressed(&m[0], 0.20));
    }

    #[test]
    fn wall_clock_pingpong_rows_never_gate() {
        let base = r#"{"benchmarks":[
            {"bench":"pp/mem","engine":"nmad","size":4096,"one_way_us_median":10.0}],"verify":{}}"#;
        let slower = base.replace("10.0", "25.0");
        let m = extract_pingpong(&parse(base).unwrap(), &parse(&slower).unwrap());
        assert_eq!(m[0].context_reason(), Some("skipped (wall-clock)"));
        assert!(!regressed(&m[0], 0.20));
    }

    const BASE_SHARDS: &str = r#"{"shards":[
        {"shards":1,"rails":1,"flows":64,"total_bytes":16777216,"virtual_us":13728.0,"throughput_mbs":1222.0},
        {"shards":4,"rails":4,"flows":64,"total_bytes":16777216,"virtual_us":3442.0,"throughput_mbs":4874.0}],
        "scaling":{"scale_4x_over_1x":3.989}}"#;

    #[test]
    fn a_collapsed_shard_scaling_ratio_is_a_regression() {
        let collapsed = BASE_SHARDS.replace("3.989", "1.100");
        let m = extract_shards(&parse(BASE_SHARDS).unwrap(), &parse(&collapsed).unwrap());
        let ratio = m.iter().find(|m| m.key.contains("scale_4x")).unwrap();
        assert!(regressed(ratio, 0.20), "4x -> 1.1x scaling must gate");
        let drift = BASE_SHARDS.replace("3.989", "3.700");
        let m = extract_shards(&parse(BASE_SHARDS).unwrap(), &parse(&drift).unwrap());
        let ok = m.iter().find(|m| m.key.contains("scale_4x")).unwrap();
        assert!(!regressed(ok, 0.20), "7% drift is within tolerance");
    }

    #[test]
    fn shard_throughput_rows_are_context_not_gates() {
        let slower = BASE_SHARDS.replace("4874.0", "100.0");
        let m = extract_shards(&parse(BASE_SHARDS).unwrap(), &parse(&slower).unwrap());
        let info = m.iter().find(|m| m.key.contains("throughput_mbs")).unwrap();
        assert!(info.context_reason().is_some());
        assert!(!regressed(info, 0.20));
    }

    #[test]
    fn a_missing_scaling_ratio_is_a_regression() {
        let gone = r#"{"shards":[],"scaling":{}}"#;
        let m = extract_shards(&parse(BASE_SHARDS).unwrap(), &parse(gone).unwrap());
        let lost = m.iter().find(|m| m.key.contains("scale_4x")).unwrap();
        assert!(lost.current.is_none());
        assert!(regressed(lost, 0.20));
    }

    const BASE_SWARM: &str = r#"{"swarm":[
        {"connections":64,"backend":"epoll","accepts_per_sec":6693.0,"ping_p50_us":3.5,"ping_p99_us":46.0,"ping_p999_us":57.6,"idle_events_per_pump":0.0000,"probe_events_per_ready":1.0000},
        {"connections":1024,"backend":"epoll","accepts_per_sec":331.0,"ping_p50_us":40.7,"ping_p99_us":54.4,"ping_p999_us":118.6,"idle_events_per_pump":0.0000,"probe_events_per_ready":1.0000}],
        "probes":{"ready_cost_max_vs_min":1.000}}"#;

    #[test]
    fn a_single_leaked_idle_event_fails_the_swarm_gate() {
        // Zero baseline + Better::Lower: any positive current exceeds
        // 0*(1+tol), so one idle socket touched per 200 pumps gates.
        let leaky = BASE_SWARM.replacen("0.0000", "0.0050", 1);
        let m = extract_swarm(&parse(BASE_SWARM).unwrap(), &parse(&leaky).unwrap());
        let idle = m
            .iter()
            .find(|m| m.key == "swarm:64:idle_events_per_pump")
            .unwrap();
        assert!(regressed(idle, 0.20), "leaked idle events must gate");
    }

    #[test]
    fn linear_scan_ready_cost_fails_the_swarm_gate_but_drift_does_not() {
        // O(held) pumping at 1024 conns / 32 ready would show ~32x.
        let scan = BASE_SWARM.replacen("1.0000", "32.0000", 2);
        let m = extract_swarm(&parse(BASE_SWARM).unwrap(), &parse(&scan).unwrap());
        let cost = m
            .iter()
            .find(|m| m.key == "swarm:64:probe_events_per_ready")
            .unwrap();
        assert!(regressed(cost, 0.20), "O(held) ready cost must gate");
        let drift = BASE_SWARM.replacen("1.0000", "1.0600", 2);
        let m = extract_swarm(&parse(BASE_SWARM).unwrap(), &parse(&drift).unwrap());
        let ok = m
            .iter()
            .find(|m| m.key == "swarm:64:probe_events_per_ready")
            .unwrap();
        assert!(!regressed(ok, 0.20), "6% drift is within tolerance");
    }

    #[test]
    fn swarm_probe_ratio_gates_and_extra_current_rows_are_ignored() {
        // A full-sweep current report carries more rows and a larger
        // fanout behind the same probe key; only baseline rows pair.
        let full = r#"{"swarm":[
            {"connections":64,"backend":"epoll","accepts_per_sec":5798.0,"ping_p50_us":3.6,"ping_p99_us":47.5,"ping_p999_us":328.2,"idle_events_per_pump":0.0000,"probe_events_per_ready":1.0000},
            {"connections":1024,"backend":"epoll","accepts_per_sec":972.0,"ping_p50_us":11.7,"ping_p99_us":67.6,"ping_p999_us":823.8,"idle_events_per_pump":0.0000,"probe_events_per_ready":1.0000},
            {"connections":10000,"backend":"epoll","accepts_per_sec":1522.0,"ping_p50_us":40.7,"ping_p99_us":51.9,"ping_p999_us":90.6,"idle_events_per_pump":0.0000,"probe_events_per_ready":1.0000}],
            "probes":{"ready_cost_max_vs_min":1.000}}"#;
        let m = extract_swarm(&parse(BASE_SWARM).unwrap(), &parse(full).unwrap());
        assert!(m.iter().all(|m| m.current.is_some()), "all rows must pair");
        assert!(m.iter().all(|m| !regressed(m, 0.20)));
        let degraded = full.replace(
            r#""ready_cost_max_vs_min":1.000"#,
            r#""ready_cost_max_vs_min":156.0"#,
        );
        let m = extract_swarm(&parse(BASE_SWARM).unwrap(), &parse(&degraded).unwrap());
        let probe = m
            .iter()
            .find(|m| m.key == "probes:ready_cost_max_vs_min")
            .unwrap();
        assert!(
            regressed(probe, 0.20),
            "fanout-dependent ready cost must gate"
        );
    }

    #[test]
    fn swarm_wall_clock_rows_are_context_not_gates() {
        let slower = BASE_SWARM
            .replace("6693.0", "100.0")
            .replace("3.5", "900.0")
            .replace("46.0", "9000.0");
        let m = extract_swarm(&parse(BASE_SWARM).unwrap(), &parse(&slower).unwrap());
        for metric in m.iter().filter(|m| {
            ["accepts_per_sec", "ping_p50_us", "ping_p99_us"]
                .iter()
                .any(|s| m.key.ends_with(s))
        }) {
            assert!(metric.context_reason().is_some(), "{}", metric.key);
            assert!(!regressed(metric, 0.20));
        }
    }

    const BASE_TAIL: &str = r#"{"tail":[
        {"scenario":"mixed","strategy":"aggreg","class":"urgent-small","count":415,"p50_us":217.1,"p90_us":4063.2,"p99_us":4587.5,"p999_us":4587.5,"p9999_us":4587.5,"mean_us":1000.0},
        {"scenario":"mixed","strategy":"lanes","class":"urgent-small","count":415,"p50_us":57.3,"p90_us":102.4,"p99_us":180.2,"p999_us":344.1,"p9999_us":344.1,"mean_us":70.0}],
        "throughput":{"mixed/aggreg":1813.00,"mixed/lanes":1816.00},
        "ratios":{"mixed/urgent-small/aggreg_p999_over_lanes":13.331,"mixed/lanes_throughput_over_aggreg":1.002}}"#;

    #[test]
    fn tail_percentile_rows_gate_lower_is_better() {
        let slower = BASE_TAIL.replace("\"p999_us\":344.1", "\"p999_us\":4000.0");
        let m = extract_tail(&parse(BASE_TAIL).unwrap(), &parse(&slower).unwrap());
        let p999 = m
            .iter()
            .find(|m| m.key == "tail:mixed/lanes/urgent-small:p999_us")
            .unwrap();
        assert_eq!(p999.gate, Gate::Gated(Better::Lower));
        assert!(regressed(p999, 0.20), "a 10x p99.9 blowup must gate");
        let m = extract_tail(&parse(BASE_TAIL).unwrap(), &parse(BASE_TAIL).unwrap());
        assert!(m.iter().all(|m| !regressed(m, 0.20)));
    }

    #[test]
    fn tail_rows_from_a_different_sweep_scale_demote_instead_of_gating() {
        // The committed repo-root report is the full sweep; the
        // baseline is the quick one. Percentiles and ratios of a
        // saturating workload scale with message count, so rows from
        // mismatched sweeps must demote with a reason — never gate.
        let full = BASE_TAIL
            .replace("\"count\":415", "\"count\":2393")
            .replace("\"p999_us\":344.1", "\"p999_us\":1605.6")
            .replace("13.331", "20.245");
        let m = extract_tail(&parse(BASE_TAIL).unwrap(), &parse(&full).unwrap());
        assert!(!m.is_empty());
        for metric in &m {
            assert!(!regressed(metric, 0.20), "{} must not gate", metric.key);
        }
        let p999 = m
            .iter()
            .find(|m| m.key == "tail:mixed/lanes/urgent-small:p999_us")
            .unwrap();
        assert_eq!(
            p999.context_reason(),
            Some("skipped (different sweep scale)")
        );
        let ratio = m
            .iter()
            .find(|m| m.key.contains("aggreg_p999_over_lanes"))
            .unwrap();
        assert_eq!(
            ratio.context_reason(),
            Some("skipped (different sweep scale)")
        );
    }

    #[test]
    fn a_collapsed_tail_ratio_is_a_regression_but_means_are_context() {
        let collapsed = BASE_TAIL.replace("13.331", "1.500");
        let m = extract_tail(&parse(BASE_TAIL).unwrap(), &parse(&collapsed).unwrap());
        let ratio = m
            .iter()
            .find(|m| m.key.contains("aggreg_p999_over_lanes"))
            .unwrap();
        assert!(regressed(ratio, 0.20), "13x -> 1.5x tail win must gate");
        let slower_mean = BASE_TAIL.replace("\"mean_us\":70.0", "\"mean_us\":900.0");
        let m = extract_tail(&parse(BASE_TAIL).unwrap(), &parse(&slower_mean).unwrap());
        let mean = m
            .iter()
            .find(|m| m.key == "tail:mixed/lanes/urgent-small:mean_us")
            .unwrap();
        assert!(mean.context_reason().is_some());
        assert!(!regressed(mean, 0.20));
        // Absolute throughput is context; the ratio above is the gate.
        let tp = m
            .iter()
            .find(|m| m.key == "throughput:mixed/lanes")
            .unwrap();
        assert!(tp.context_reason().is_some());
    }

    #[test]
    fn a_gated_row_cannot_silently_carry_a_context_reason() {
        // Structural guarantee of the `Gate` type: a reason exists if
        // and only if the row is demoted to context, so a row that
        // gates can never also carry a "why this doesn't gate" note.
        // Sweep every extractor over its sample document and check the
        // iff both ways; demoted rows must also explain themselves
        // with a non-empty reason.
        let all: Vec<Metric> = [
            extract_batch(&parse(BASE_BATCH).unwrap(), &parse(BASE_BATCH).unwrap()),
            extract_shards(&parse(BASE_SHARDS).unwrap(), &parse(BASE_SHARDS).unwrap()),
            extract_swarm(&parse(BASE_SWARM).unwrap(), &parse(BASE_SWARM).unwrap()),
            extract_tail(&parse(BASE_TAIL).unwrap(), &parse(BASE_TAIL).unwrap()),
        ]
        .into_iter()
        .flatten()
        .collect();
        assert!(all.iter().any(|m| matches!(m.gate, Gate::Gated(_))));
        assert!(all.iter().any(|m| matches!(m.gate, Gate::Context { .. })));
        for m in &all {
            match m.gate {
                Gate::Gated(_) => assert_eq!(m.context_reason(), None, "{}", m.key),
                Gate::Context { context_reason } => {
                    assert_eq!(m.context_reason(), Some(context_reason), "{}", m.key);
                    assert!(!context_reason.is_empty(), "{}", m.key);
                }
            }
        }
    }

    #[test]
    fn interference_bound_batch1_ratios_never_gate() {
        let base = r#"{"batch":[],"speedups":{"send_batch32_vs_batch1":30.0,"submit_batch32_vs_batch1":6.0}}"#;
        let cratered = base.replace("30.0", "5.0").replace("6.0", "2.7");
        let m = metrics_for(base, &cratered);
        for metric in &m {
            assert!(
                metric.context_reason().is_some(),
                "{} must be demoted",
                metric.key
            );
            assert!(!regressed(metric, 0.20));
        }
    }
}
