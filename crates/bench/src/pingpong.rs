//! Ping-pong measurement drivers — the workloads of paper §5.
//!
//! * [`pingpong_contig`] — §5.1 raw point-to-point ping-pong
//!   (fig. 2): single contiguous segment, latency and bandwidth;
//! * [`pingpong_multiseg`] — §5.2 multi-segment ping-pong (fig. 3):
//!   each "ping" is a burst of independent `MPI_Isend`s **on separate
//!   communicators**, demonstrating that the optimization scope is
//!   global;
//! * [`pingpong_typed`] — §5.3 indexed-datatype ping-pong (fig. 4);
//! * [`transfer_multirail`] — the heterogeneous multirail extension
//!   (§4/§7).
//!
//! All drivers run the same co-simulation pump and read virtual time,
//! so the numbers are exact and deterministic.

use mad_mpi::{
    pump_cluster, sim_cluster, sim_cluster_multirail, Datatype, EngineKind, MetricsSnapshot,
};
use nmad_sim::{NicModel, SharedWorld};

/// One measured sweep point.
#[derive(Clone, Debug)]
pub struct PingPongSample {
    /// Half round-trip, in microseconds (the paper's latency metric).
    pub one_way_us: f64,
    /// Payload bytes per one-way microsecond = MB/s.
    pub bandwidth_mbs: f64,
    /// Wire frames the initiator sent per ping (aggregation metric).
    pub frames_per_ping: f64,
    /// Observability snapshot of the initiator's engine at the end of
    /// the run (`None` for direct baselines, which have no scheduler).
    pub metrics: Option<MetricsSnapshot>,
}

fn sample(
    total_payload: usize,
    rtt_us: f64,
    halves: f64,
    frames: f64,
    pings: f64,
    metrics: Option<MetricsSnapshot>,
) -> PingPongSample {
    let one_way_us = rtt_us / halves;
    PingPongSample {
        one_way_us,
        bandwidth_mbs: total_payload as f64 / one_way_us,
        frames_per_ping: frames / pings,
        metrics,
    }
}

fn elapsed_us(world: &SharedWorld, t0: nmad_sim::SimTime) -> f64 {
    world.lock().now().saturating_since(t0).as_us_f64()
}

/// Raw single-segment ping-pong (paper fig. 2).
pub fn pingpong_contig(
    kind: EngineKind,
    nic: NicModel,
    size: usize,
    iters: usize,
) -> PingPongSample {
    assert!(iters > 0);
    let (world, mut procs) = sim_cluster(2, nic, kind);
    let comm = procs[0].comm_world();
    let payload = vec![0x5Au8; size];

    let t0 = world.lock().now();
    let frames0 = procs[0].backend().frames_sent();
    for _ in 0..iters {
        let r_pong = procs[0].irecv(comm, 1, 0, size);
        let r_ping = procs[1].irecv(comm, 0, 0, size);
        let _s = procs[0].isend(comm, 1, 0, payload.clone());
        pump_cluster(&world, &mut procs, |p| p[1].test(r_ping));
        let echo = procs[1].take(r_ping).expect("tested");
        debug_assert_eq!(echo.len(), size);
        let _s2 = procs[1].isend(comm, 0, 0, echo);
        pump_cluster(&world, &mut procs, |p| p[0].test(r_pong));
        procs[0].take(r_pong);
    }
    let frames = (procs[0].backend().frames_sent() - frames0) as f64;
    let metrics = procs[0].backend().metrics();
    sample(
        size,
        elapsed_us(&world, t0),
        2.0 * iters as f64,
        frames,
        iters as f64,
        metrics,
    )
}

/// Multi-segment ping-pong (paper fig. 3): `segs` independent isends
/// per direction, one communicator per segment.
pub fn pingpong_multiseg(
    kind: EngineKind,
    nic: NicModel,
    segs: usize,
    size: usize,
    iters: usize,
) -> PingPongSample {
    assert!(iters > 0 && segs > 0);
    let (world, mut procs) = sim_cluster(2, nic, kind);
    let world_comm = procs[0].comm_world();
    // Both ranks dup in the same order → identical context ids.
    let comms: Vec<_> = (0..segs)
        .map(|_| {
            let c0 = procs[0].comm_dup(world_comm);
            let c1 = procs[1].comm_dup(world_comm);
            assert_eq!(c0, c1);
            c0
        })
        .collect();
    let payload = vec![0xA5u8; size];

    let t0 = world.lock().now();
    let frames0 = procs[0].backend().frames_sent();
    for _ in 0..iters {
        let r_pong: Vec<_> = comms
            .iter()
            .map(|&c| procs[0].irecv(c, 1, 0, size))
            .collect();
        let r_ping: Vec<_> = comms
            .iter()
            .map(|&c| procs[1].irecv(c, 0, 0, size))
            .collect();
        // The ping burst: independent isends on distinct communicators.
        for &c in &comms {
            procs[0].isend(c, 1, 0, payload.clone());
        }
        pump_cluster(&world, &mut procs, |p| r_ping.iter().all(|&r| p[1].test(r)));
        let echoes: Vec<Vec<u8>> = r_ping
            .iter()
            .map(|&r| procs[1].take(r).expect("tested"))
            .collect();
        for (&c, echo) in comms.iter().zip(echoes) {
            procs[1].isend(c, 0, 0, echo);
        }
        pump_cluster(&world, &mut procs, |p| r_pong.iter().all(|&r| p[0].test(r)));
        for r in r_pong {
            procs[0].take(r);
        }
    }
    let frames = (procs[0].backend().frames_sent() - frames0) as f64;
    let metrics = procs[0].backend().metrics();
    sample(
        segs * size,
        elapsed_us(&world, t0),
        2.0 * iters as f64,
        frames,
        iters as f64,
        metrics,
    )
}

/// Indexed-datatype ping-pong (paper fig. 4). Returns one-way transfer
/// time of the whole datatype.
pub fn pingpong_typed(
    kind: EngineKind,
    nic: NicModel,
    dtype: &Datatype,
    iters: usize,
) -> PingPongSample {
    assert!(iters > 0);
    let (world, mut procs) = sim_cluster(2, nic, kind);
    let comm = procs[0].comm_world();
    let buf: Vec<u8> = (0..dtype.extent()).map(|i| (i % 251) as u8).collect();

    let t0 = world.lock().now();
    let frames0 = procs[0].backend().frames_sent();
    for _ in 0..iters {
        let r_pong = procs[0].irecv_typed(comm, 1, 0, dtype);
        let r_ping = procs[1].irecv_typed(comm, 0, 0, dtype);
        procs[0].isend_typed(comm, 1, 0, &buf, dtype);
        pump_cluster(&world, &mut procs, |p| p[1].test(r_ping));
        let echo = procs[1].take(r_ping).expect("tested");
        procs[1].isend_typed(comm, 0, 0, &echo, dtype);
        pump_cluster(&world, &mut procs, |p| p[0].test(r_pong));
        procs[0].take(r_pong);
    }
    let frames = (procs[0].backend().frames_sent() - frames0) as f64;
    let metrics = procs[0].backend().metrics();
    sample(
        dtype.total_bytes(),
        elapsed_us(&world, t0),
        2.0 * iters as f64,
        frames,
        iters as f64,
        metrics,
    )
}

/// One-way large transfer over several heterogeneous rails with the
/// multirail strategy (or any other `kind`). Returns the sample plus
/// the per-rail payload byte split observed on the wire.
pub fn transfer_multirail(
    kind: EngineKind,
    rails: Vec<NicModel>,
    size: usize,
    iters: usize,
) -> (PingPongSample, Vec<u64>) {
    assert!(iters > 0);
    let (world, mut procs) = sim_cluster_multirail(2, rails, kind);
    let comm = procs[0].comm_world();
    let payload = vec![0x3Cu8; size];

    let t0 = world.lock().now();
    let frames0 = procs[0].backend().frames_sent();
    for _ in 0..iters {
        let r_pong = procs[0].irecv(comm, 1, 0, size);
        let r_ping = procs[1].irecv(comm, 0, 0, size);
        procs[0].isend(comm, 1, 0, payload.clone());
        pump_cluster(&world, &mut procs, |p| p[1].test(r_ping));
        let echo = procs[1].take(r_ping).expect("tested");
        procs[1].isend(comm, 0, 0, echo);
        pump_cluster(&world, &mut procs, |p| p[0].test(r_pong));
        procs[0].take(r_pong);
    }
    let frames = (procs[0].backend().frames_sent() - frames0) as f64;
    let metrics = procs[0].backend().metrics();
    let per_rail = world.lock().stats().per_rail_bytes.clone();
    (
        sample(
            size,
            elapsed_us(&world, t0),
            2.0 * iters as f64,
            frames,
            iters as f64,
            metrics,
        ),
        per_rail,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mad_mpi::StrategyKind;
    use nmad_sim::nic;

    #[test]
    fn contig_latency_is_positive_and_orders_sanely() {
        let mad = pingpong_contig(
            EngineKind::MadMpi(StrategyKind::Aggreg),
            nic::mx_myri10g(),
            4,
            2,
        );
        let mpich = pingpong_contig(EngineKind::Mpich, nic::mx_myri10g(), 4, 2);
        assert!(mad.one_way_us > 0.0 && mpich.one_way_us > 0.0);
        // §5.1: MAD-MPI overhead vs MPICH is under half a microsecond.
        let overhead = mad.one_way_us - mpich.one_way_us;
        assert!(
            overhead > 0.0 && overhead < 0.5,
            "overhead {overhead:.3} us out of the paper band"
        );
    }

    #[test]
    fn multiseg_aggregation_beats_mpich() {
        let mad = pingpong_multiseg(
            EngineKind::MadMpi(StrategyKind::Aggreg),
            nic::mx_myri10g(),
            8,
            64,
            2,
        );
        let mpich = pingpong_multiseg(EngineKind::Mpich, nic::mx_myri10g(), 8, 64, 2);
        assert!(
            mad.one_way_us < mpich.one_way_us,
            "MadMPI {:.2} us must beat MPICH {:.2} us",
            mad.one_way_us,
            mpich.one_way_us
        );
        assert!(
            mad.frames_per_ping < mpich.frames_per_ping,
            "aggregation must reduce frames: {} vs {}",
            mad.frames_per_ping,
            mpich.frames_per_ping
        );
    }

    #[test]
    fn samples_carry_engine_metrics_for_madmpi_only() {
        let mad = pingpong_multiseg(
            EngineKind::MadMpi(StrategyKind::Aggreg),
            nic::mx_myri10g(),
            8,
            64,
            2,
        );
        let m = mad.metrics.expect("madmpi backends expose metrics");
        assert_eq!(m.strategy, "aggreg");
        assert!(
            m.aggregation_ratio() > 1.0,
            "a multiseg burst must aggregate: ratio {}",
            m.aggregation_ratio()
        );
        assert!(m.nics[0].link.busy_ns > 0);

        let mpich = pingpong_multiseg(EngineKind::Mpich, nic::mx_myri10g(), 8, 64, 2);
        assert!(
            mpich.metrics.is_none(),
            "direct baselines have no scheduler to observe"
        );
    }

    #[test]
    fn typed_zero_copy_beats_pack_and_copy() {
        let dtype = Datatype::alternating(64, 256 * 1024, 2);
        let mad = pingpong_typed(
            EngineKind::MadMpi(StrategyKind::Reorder),
            nic::mx_myri10g(),
            &dtype,
            2,
        );
        let mpich = pingpong_typed(EngineKind::Mpich, nic::mx_myri10g(), &dtype, 2);
        assert!(
            mad.one_way_us < mpich.one_way_us * 0.6,
            "expected a large datatype win: {:.0} vs {:.0} us",
            mad.one_way_us,
            mpich.one_way_us
        );
    }

    #[test]
    fn multirail_splits_bytes_across_rails() {
        let (sample, per_rail) = transfer_multirail(
            EngineKind::MadMpi(StrategyKind::Multirail),
            vec![nic::mx_myri10g(), nic::quadrics_qm500()],
            1 << 20,
            1,
        );
        assert!(sample.one_way_us > 0.0);
        assert_eq!(per_rail.len(), 2);
        assert!(
            per_rail.iter().all(|&b| b > 100_000),
            "both rails must carry payload: {per_rail:?}"
        );
    }
}
