//! Fan-in study: many clients bursting small requests at one server —
//! the composite-application traffic the paper's introduction motivates
//! ("irregular and multi-flow communication schemes", "increasingly
//! found in nowadays composite applications").
//!
//! Each of N−1 clients sends a burst of requests to rank 0; the server
//! answers each with a short reply. Aggregation works on both sides:
//! clients coalesce their own bursts, the server coalesces replies that
//! target the same client.
//!
//! Run: `cargo run --release -p bench --bin fanin [-- --quick]`

use bench::Table;
use mad_mpi::{pump_cluster, sim_cluster, EngineKind, Request, StrategyKind};
use nmad_sim::nic;

const REQS_PER_CLIENT: usize = 16;
const REQ_BYTES: usize = 96;
const REPLY_BYTES: usize = 32;

fn run(n: usize, kind: EngineKind, iters: usize) -> (f64, f64) {
    let (world, mut procs) = sim_cluster(n, nic::mx_myri10g(), kind);
    let comm = procs[0].comm_world();

    let t0 = world.lock().now();
    let frames0 = procs[0].backend().frames_sent();
    for _ in 0..iters {
        // Server posts all request receives; clients post reply recvs.
        let mut req_recvs: Vec<(usize, Request)> = Vec::new();
        for client in 1..n {
            for k in 0..REQS_PER_CLIENT {
                req_recvs.push((client, procs[0].irecv(comm, client, k as u16, REQ_BYTES)));
            }
        }
        let mut reply_recvs: Vec<(usize, Vec<Request>)> = Vec::new();
        for (client, proc) in procs.iter_mut().enumerate().skip(1) {
            let rs: Vec<Request> = (0..REQS_PER_CLIENT)
                .map(|k| proc.irecv(comm, 0, k as u16, REPLY_BYTES))
                .collect();
            reply_recvs.push((client, rs));
        }
        // Clients burst their requests.
        for (client, proc) in procs.iter_mut().enumerate().skip(1) {
            for k in 0..REQS_PER_CLIENT {
                proc.isend(comm, 0, k as u16, vec![client as u8; REQ_BYTES]);
            }
        }
        // Server answers as requests land.
        pump_cluster(&world, &mut procs, |p| {
            req_recvs.iter().all(|&(_, r)| p[0].test(r))
        });
        for &(client, r) in &req_recvs {
            let req = procs[0].take(r).expect("tested");
            debug_assert_eq!(req.len(), REQ_BYTES);
            // Tag of the reply mirrors the request position.
            let k = reply_tag(&req_recvs, client, r);
            procs[0].isend(comm, client, k, vec![0xAB; REPLY_BYTES]);
        }
        pump_cluster(&world, &mut procs, |p| {
            reply_recvs
                .iter()
                .all(|(client, rs)| rs.iter().all(|&r| p[*client].test(r)))
        });
        for (client, rs) in &reply_recvs {
            for &r in rs {
                procs[*client].take(r);
            }
        }
    }
    let elapsed = world.lock().now().saturating_since(t0).as_us_f64() / iters as f64;
    let server_frames = (procs[0].backend().frames_sent() - frames0) as f64 / iters as f64;
    (elapsed, server_frames)
}

/// Position of request `r` within `client`'s burst (the reply tag).
fn reply_tag(req_recvs: &[(usize, Request)], client: usize, r: Request) -> u16 {
    req_recvs
        .iter()
        .filter(|&&(c, _)| c == client)
        .position(|&(_, x)| x == r)
        .expect("request belongs to the client") as u16
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 1 } else { 3 };
    let sizes: &[usize] = if quick { &[3, 5] } else { &[3, 5, 9, 13] };

    println!("\n## Fan-in: N-1 clients x {REQS_PER_CLIENT} requests -> 1 server (MX)\n");
    let mut table = Table::new(vec![
        "ranks",
        "MadMPI (us)",
        "MPICH (us)",
        "gain",
        "server reply frames (Mad)",
    ]);
    for &n in sizes {
        let (mad, mad_frames) = run(n, EngineKind::MadMpi(StrategyKind::Aggreg), iters);
        let (mpich, _) = run(n, EngineKind::Mpich, iters);
        table.row(vec![
            n.to_string(),
            format!("{mad:.1}"),
            format!("{mpich:.1}"),
            format!("{:.0}%", (mpich - mad) / mpich * 100.0),
            format!("{mad_frames:.0} (of {} replies)", (n - 1) * REQS_PER_CLIENT),
        ]);
    }
    table.print();
    println!("\n- the server coalesces its per-client reply bursts into few frames;");
    println!("  the gain grows with fan-in because every request/reply pays per-");
    println!("  message posting costs under the direct-mapping baseline.");
}
