//! `nmad-verify`: the engine's in-repo verification layer.
//!
//! Two halves, both dependency-free so they work in the offline build:
//!
//! * A **bounded exhaustive model checker** ([`Checker`]) for the
//!   lock-free primitives behind the threaded progression engine
//!   (submit ring, seqlock metrics snapshots, completion board,
//!   request-id watermark). Code written against the [`sync`] facade
//!   runs unchanged; inside a [`Checker::check`] closure every atomic
//!   operation, fence, lock, and park becomes a decision point, and
//!   the checker enumerates thread interleavings *and* weak-memory
//!   load results with a bounded-preemption DFS plus state-hash
//!   pruning. An assertion that holds across the explored space holds
//!   for every schedule up to the bound — not for one lucky seed.
//!
//! * The **static-analysis engine** behind
//!   `cargo run -p xtask -- analyze`: repo invariants clippy cannot
//!   express. The [`lexer`] strips comments/strings and tokenizes,
//!   [`tree`] recovers the function/impl structure, and [`analyze`]
//!   runs the unified rule catalog — the eight original lexical rules
//!   ([`lint`]) re-expressed on the token stream plus five structural
//!   families (hot-path panic freedom, allocation audit, blocking-call
//!   detection, lock-order acyclicity, atomic-ordering audit) that
//!   walk a name-based intra-workspace call graph rooted at
//!   `// HOT-PATH` annotations.
//!
//! See `DESIGN.md` §12 for the memory-model write-up and §17 for the
//! static-analysis architecture.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod clock;
mod exec;
pub mod lexer;
pub mod lint;
pub mod sync;
pub mod thread;
pub mod tree;

mod checker;

pub use checker::{coverage_probe, Checker};
pub use exec::{CheckFailure, CheckStats};
