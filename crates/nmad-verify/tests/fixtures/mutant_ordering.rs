//! Mutant: both halves of `atomic-ordering-audit` — an unjustified
//! `Ordering::Relaxed` outside the sync facades, and a Release store
//! whose field has no Acquire/SeqCst reader anywhere in scope.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct MutantFlags {
    ready_flag: AtomicU64,
    tick_count: AtomicU64,
}

impl MutantFlags {
    pub fn mutant_publish(&self) {
        self.ready_flag.store(1, Ordering::Release);
    }

    pub fn mutant_tick(&self) -> u64 {
        self.tick_count.fetch_add(1, Ordering::Relaxed)
    }
}
