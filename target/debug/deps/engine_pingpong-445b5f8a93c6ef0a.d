/root/repo/target/debug/deps/engine_pingpong-445b5f8a93c6ef0a.d: tests/engine_pingpong.rs Cargo.toml

/root/repo/target/debug/deps/libengine_pingpong-445b5f8a93c6ef0a.rmeta: tests/engine_pingpong.rs Cargo.toml

tests/engine_pingpong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
