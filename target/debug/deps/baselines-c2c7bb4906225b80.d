/root/repo/target/debug/deps/baselines-c2c7bb4906225b80.d: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs

/root/repo/target/debug/deps/baselines-c2c7bb4906225b80: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs

crates/baselines/src/lib.rs:
crates/baselines/src/codec.rs:
crates/baselines/src/direct.rs:
