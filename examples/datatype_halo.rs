//! Derived-datatype halo exchange over MAD-MPI — both regimes of the
//! paper's §5.3 analysis.
//!
//! A 2-D grid is distributed as row blocks; each rank sends a boundary
//! *column strip* to its neighbour: a strided vector datatype, one
//! block per row. How it should travel depends on the block size:
//!
//! * **thin halo** (tiny blocks): packing everything into one
//!   contiguous buffer and sending once is cheaper than many tiny
//!   requests — the paper concedes exactly this ("this behaviour is
//!   certainly optimized when dealing with a small overall data size",
//!   §5.3). The MPICH-like backend wins here.
//! * **thick halo** (large blocks): the copies grow linearly while
//!   MAD-MPI's per-block segments ride rendezvous zero-copy — the
//!   engine wins, increasingly with size.
//!
//! Run: `cargo run --release --example datatype_halo`

use newmadeleine::mpi::{pump_cluster, sim_cluster, Datatype, EngineKind, StrategyKind};
use newmadeleine::sim::nic;

fn run(kind: EngineKind, rows: usize, width: usize, pitch: usize) -> (f64, Vec<u8>) {
    let (world, mut procs) = sim_cluster(2, nic::mx_myri10g(), kind);
    let comm = procs[0].comm_world();
    let grid0: Vec<u8> = vec![1u8; rows * pitch];
    let halo = Datatype::vector(rows, width, pitch).expect("valid layout");

    let t0 = world.lock().now();
    let r = procs[1].irecv_typed(comm, 0, 0, &halo);
    procs[0].isend_typed(comm, 1, 0, &grid0, &halo);
    pump_cluster(&world, &mut procs, |p| p[1].test(r));
    let received = procs[1].take(r).expect("tested");
    let elapsed = world.lock().now().saturating_since(t0).as_us_f64();
    (elapsed, received)
}

fn compare(label: &str, rows: usize, width: usize, pitch: usize) {
    let madmpi = run(
        EngineKind::MadMpi(StrategyKind::Reorder),
        rows,
        width,
        pitch,
    );
    let mpich = run(EngineKind::Mpich, rows, width, pitch);

    // Correctness on both: every block byte is the sender's fill value.
    let halo = Datatype::vector(rows, width, pitch).expect("valid layout");
    for (name, (_, data)) in [("MadMPI", &madmpi), ("MPICH", &mpich)] {
        for &(offset, len) in halo.blocks() {
            assert!(
                data[offset..offset + len].iter().all(|&b| b == 1),
                "{name}: halo block at {offset} corrupted"
            );
        }
    }

    let gain = (mpich.0 - madmpi.0) / mpich.0 * 100.0;
    println!(
        "{label}: {rows} blocks x {width} B = {} B of payload",
        rows * width
    );
    println!("  MadMPI (block segments):  {:>10.1} us", madmpi.0);
    println!("  MPICH  (pack + copy):     {:>10.1} us", mpich.0);
    println!(
        "  -> {}",
        if gain >= 0.0 {
            format!("MadMPI {gain:.0}% faster")
        } else {
            format!(
                "MPICH {:.0}% faster (tiny blocks: copies beat many requests)",
                -gain
            )
        }
    );
}

fn main() {
    // Thin halo: 64 rows, 8-byte strips — MPICH's single packed send
    // beats 64 tiny requests (the regime the paper concedes).
    compare("thin halo", 64, 8, 256);
    println!();
    // Thick halo: 8 rows, 64 KB strips — every block rides rendezvous
    // zero-copy while the baseline pays two full copies.
    compare("thick halo", 8, 64 * 1024, 96 * 1024);
}
