//! A token lexer for the structural analysis pass.
//!
//! [`lex`] runs one pass over a Rust source file and produces three
//! coordinated views the rule engine consumes:
//!
//! * `stripped` — the source with comments and string/char literals
//!   blanked to spaces, newlines and columns preserved. Semantically
//!   identical to the legacy `lint::strip_comments_and_strings` (a
//!   differential proptest in the umbrella crate holds the two
//!   implementations to byte equality), but produced by this lexer's
//!   own state machine so the legacy function can eventually retire.
//! * `toks` — the token stream over the stripped text: identifiers,
//!   numbers, lifetimes, string/char markers, and single-character
//!   punctuation, each carrying its 1-based line. This is what the
//!   item-tree builder ([`crate::tree`]) and the structural rules
//!   ([`crate::analyze`]) pattern-match on.
//! * `comments` — per-line comment text (line comments and each line
//!   of block comments), which is where the escape-hatch annotations
//!   (`HOT-PATH`, `PANIC-OK:`, `ALLOC-OK:`, `BLOCKING-OK:`,
//!   `ORDERING:`) live: annotations *are* comments, so the stripped
//!   views cannot see them.
//!
//! The lexer is intentionally not a full Rust parser: it does not
//! distinguish keywords from identifiers, fold multi-character
//! operators, or interpret literals. The downstream passes match small
//! token patterns (`fn` + name, `.` + `lock` + `(`, `Ordering` then
//! `::` then `Relaxed`) for which this resolution is exactly enough, and
//! anything subtler would drag in a dependency the verification crate
//! must not have.

/// Token kind. `Str`/`Char` tokens stand for whole (blanked) literals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Num,
    Lifetime,
    Str,
    Char,
    Punct,
}

/// One token of the stripped source.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. For `Str`/`Char` this is the opening delimiter
    /// only; the literal body was blanked before tokenization.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexed view of one source file.
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub stripped: String,
    /// Comment text per 1-based line (text after `//`, or a block
    /// comment's content attributed to each line it spans). Lines
    /// without comments are absent. Multiple comments on one line
    /// concatenate.
    pub comments: std::collections::BTreeMap<u32, String>,
}

impl Lexed {
    /// The comment text on `line`, if any.
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(String::as_str)
    }

    /// Searches for `marker` in the comment on `line`, in the
    /// contiguous run of comment-only context directly above it, and on
    /// the same line after the code. "Contiguous above" tolerates
    /// attribute lines between the comment block and the code line
    /// (`// HOT-PATH` above `#[inline]` above `pub fn push` must
    /// count), which callers signal via `attr_top`: the first line of
    /// the item's attribute block (== `line` when there are none).
    /// Returns the text following the first occurrence of `marker`.
    pub fn annotation(&self, line: u32, attr_top: u32, marker: &str) -> Option<&str> {
        let find = |l: u32| {
            self.comment_on(l)
                .and_then(|c| c.find(marker).map(|at| &self.comment_on(l).unwrap()[at..]))
        };
        if let Some(hit) = find(line) {
            return Some(&hit[marker.len()..]);
        }
        // Scan the contiguous comment block above the item (above its
        // first attribute, if any).
        let mut l = attr_top.min(line);
        while l > 1 {
            l -= 1;
            match find(l) {
                Some(hit) => return Some(&hit[marker.len()..]),
                None => {
                    if self.comment_on(l).is_none() {
                        break;
                    }
                }
            }
        }
        None
    }
}

/// Lexes `src`. See the module docs for the three output views.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let mut comments = std::collections::BTreeMap::<u32, String>::new();
    let mut line: u32 = 1;
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let note = |comments: &mut std::collections::BTreeMap<u32, String>, line: u32, c: char| {
        if c != '\n' {
            comments.entry(line).or_default().push(c);
        }
    };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            while i < b.len() && b[i] != '\n' {
                note(&mut comments, line, b[i]);
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nests in Rust).
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    note(&mut comments, line, ' ');
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    note(&mut comments, line, ' ');
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    note(&mut comments, line, b[i]);
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"…" / r#"…"# (also br…).
        if (c == 'r' || (c == 'b' && i + 1 < b.len() && b[i + 1] == 'r')) && !prev_is_ident(&out) {
            let start = if c == 'b' { i + 1 } else { i };
            let mut j = start + 1;
            let mut hashes = 0;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == '"' {
                for &p in &b[i..=j] {
                    out.push(p);
                }
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == '"' {
                        let mut k = i + 1;
                        let mut h = 0;
                        while k < b.len() && b[k] == '#' && h < hashes {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            // Quirk preserved from the legacy stripper:
                            // the closing hashes are emitted as quote
                            // characters, keeping column positions.
                            out.extend(std::iter::repeat_n('"', k - i));
                            i = k;
                            break 'raw;
                        }
                    }
                    if b[i] == '\n' {
                        line += 1;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    if b[i + 1] == '\n' {
                        line += 1;
                    }
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = if i + 1 < b.len() && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < b.len() && b[i + 2] == '\''
            };
            if is_char {
                out.push('\'');
                i += 1;
                while i < b.len() {
                    if b[i] == '\\' && i + 1 < b.len() {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else if b[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
                continue;
            }
        }
        if c == '\n' {
            line += 1;
        }
        out.push(c);
        i += 1;
    }
    let stripped: String = out.into_iter().collect();
    // Stripping is char-for-char: every branch replaces n source chars
    // with n output chars. (One consequence, inherited from the legacy
    // stripper: a `\<newline>` escape pair inside a string becomes two
    // spaces, so `stripped` can hold *fewer* newlines than the source.)
    // Token lines therefore come from a source-derived line table, not
    // from counting newlines in the stripped text.
    let mut line_at = Vec::with_capacity(b.len());
    let mut l: u32 = 1;
    for &c in &b {
        line_at.push(l);
        if c == '\n' {
            l += 1;
        }
    }
    let toks = tokenize(&stripped, &line_at);
    Lexed {
        toks,
        stripped,
        comments,
    }
}

fn prev_is_ident(out: &[char]) -> bool {
    out.last().is_some_and(|&c| c.is_alphanumeric() || c == '_')
}

/// Tokenizes the stripped text (no comments, blanked literals).
/// `line_at[i]` is the 1-based source line of character `i`.
fn tokenize(stripped: &str, line_at: &[u32]) -> Vec<Tok> {
    let b: Vec<char> = stripped.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let line = line_at[i];
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len()
                && (b[i].is_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
            {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Blanked string literal: `"   "` — one Str token, skip the body.
        if c == '"' {
            i += 1;
            while i < b.len() && b[i] != '"' {
                i += 1;
            }
            i += 1; // closing quote (or EOF)
            toks.push(Tok {
                kind: TokKind::Str,
                text: "\"".into(),
                line,
            });
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a`) or the shell of a blanked char literal.
            if b.get(i + 1).is_some_and(|d| d.is_alphabetic() || *d == '_') {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            // Blanked char literal `'   '`: consume to the closing quote.
            i += 1;
            while i < b.len() && b[i] != '\'' {
                i += 1;
            }
            i += 1;
            toks.push(Tok {
                kind: TokKind::Char,
                text: "'".into(),
                line,
            });
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_matches_the_legacy_stripper_on_representative_source() {
        let src = r##"let a = "unsafe"; // unsafe here too
/* unsafe
   in /* nested */ block */
let lt: &'static str = r#"unsafe"#;
let c = 'u';
let esc = "a\"b\\c";
"##;
        assert_eq!(
            lex(src).stripped,
            crate::lint::strip_comments_and_strings(src)
        );
    }

    #[test]
    fn tokens_carry_lines_and_kinds() {
        let lexed = lex("fn foo() {\n    bar.lock();\n}\n");
        let idents: Vec<(&str, u32)> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, vec![("fn", 1), ("foo", 1), ("bar", 2), ("lock", 2)]);
        assert!(lexed.toks.iter().any(|t| t.is_punct('{') && t.line == 1));
        assert!(lexed.toks.iter().any(|t| t.is_punct('}') && t.line == 3));
    }

    #[test]
    fn comments_are_captured_per_line() {
        let lexed = lex("// HOT-PATH\nfn f() {} // PANIC-OK: checked above\n/* block\nspan */\n");
        assert!(lexed.comment_on(1).unwrap().contains("HOT-PATH"));
        assert!(lexed
            .comment_on(2)
            .unwrap()
            .contains("PANIC-OK: checked above"));
        assert!(lexed.comment_on(3).unwrap().contains("block"));
        assert!(lexed.comment_on(4).unwrap().contains("span"));
    }

    #[test]
    fn annotation_lookup_spans_attribute_lines() {
        let src = "// HOT-PATH: the pump\n#[inline]\nfn pump() {}\n";
        let lexed = lex(src);
        // fn on line 3, attributes start line 2.
        assert_eq!(lexed.annotation(3, 2, "HOT-PATH"), Some(": the pump"));
        // Without the attr_top hint the block above line 3 is the
        // attribute line, which has no comment.
        assert_eq!(lexed.annotation(3, 3, "HOT-PATH"), None);
    }

    #[test]
    fn annotation_requires_contiguity() {
        let src = "// PANIC-OK: far away\n\nlet x = a.unwrap();\n";
        let lexed = lex(src);
        assert_eq!(lexed.annotation(3, 3, "PANIC-OK:"), None);
    }

    #[test]
    fn escaped_newline_in_string_does_not_shift_token_lines() {
        // The stripper turns `\<newline>` inside a string into two
        // spaces (legacy byte-equality), removing a newline from the
        // stripped text. Token lines must still track the source.
        let src = "let s = \"a\\\nb\";\nfn after() {}\n";
        let lexed = lex(src);
        let after = lexed.toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
        assert_eq!(lexed.stripped, crate::lint::strip_comments_and_strings(src));
    }

    #[test]
    fn literals_do_not_leak_tokens() {
        let lexed = lex("let s = \"unsafe fn lock\"; let c = 'x';\n");
        assert!(!lexed.toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(!lexed.toks.iter().any(|t| t.is_ident("lock")));
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }
}
