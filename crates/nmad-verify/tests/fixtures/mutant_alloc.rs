//! Mutant: allocations directly inside a hot function — a `vec!`
//! literal, a `format!`, and a `.clone()` — all flagged by `hot-alloc`
//! (the rule is direct-only, so the helper's Vec::new is exempt).

// HOT-PATH: fixture alloc root
pub fn mutant_hot_alloc(name: &str) -> usize {
    let buf = vec![0u8; 64];
    let label = format!("lane-{name}");
    let copy = label.clone();
    buf.len() + copy.len() + mutant_cold_alloc().len()
}

fn mutant_cold_alloc() -> Vec<u8> {
    Vec::new()
}
