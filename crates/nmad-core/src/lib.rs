//! # nmad-core — the NewMadeleine communication scheduling engine
//!
//! Rust reproduction of the engine described in *"NewMadeleine: a Fast
//! Communication Scheduling Engine for High Performance Networks"*
//! (Aumage, Brunet, Furmento, Namyst — INRIA RR-6085 / IPPS 2007).
//!
//! The engine unties communication-request processing from the
//! application workflow and ties it to NIC activity instead: requests
//! accumulate in an **optimization window** while the NICs are busy; as
//! soon as one goes idle, a pluggable **strategy** synthesizes the next
//! wire frame — aggregating small segments across logical flows,
//! reordering them, issuing rendezvous handshakes for large blocks, or
//! splitting them across heterogeneous rails.
//!
//! Layer map (paper Figure 1):
//!
//! | paper layer | module |
//! |---|---|
//! | application collect layer | [`api`], [`segment`], the submit half of [`engine`] |
//! | optimizer – scheduler | [`window`], [`strategy`] |
//! | transfer layer | the pump half of [`engine`], the rendezvous protocol in [`wire`]/[`matching`], drivers from `nmad_net` |
//!
//! Quick start (simulated two-node cluster):
//!
//! ```
//! use nmad_core::prelude::*;
//! use nmad_net::sim::SimDriver;
//! use nmad_sim::{nic, run_until, shared_world, NodeId, RailId, SimConfig};
//!
//! let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
//! let mk = |n: u32| {
//!     let d = SimDriver::new(world.clone(), NodeId(n), RailId(0));
//!     let m = Box::new(d.meter());
//!     NmadEngine::new(vec![Box::new(d)], m, Box::new(StratAggreg), EngineCosts::zero())
//! };
//! let (mut a, mut b) = (mk(0), mk(1));
//! let s = a.isend(NodeId(1), Tag(1), &b"hello"[..]);
//! let r = b.post_recv(NodeId(0), Tag(1), 64);
//! # let _ = s;
//! let done = std::cell::Cell::new(false);
//! {
//!     let mut ea = || a.progress();
//!     let mut eb = || { let m = b.progress(); if b.is_recv_done(r) { done.set(true); } m };
//!     run_until(&world, &mut [&mut ea, &mut eb], || done.get()).unwrap();
//! }
//! assert_eq!(b.try_take_recv(r).unwrap().data, b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod engine;
pub mod matching;
pub mod metrics;
pub mod ring;
pub mod segment;
pub mod steal;
pub mod strategy;
pub mod sync;
pub mod threaded;
pub mod window;
pub mod wire;

pub use api::{RecvHandle, RecvMessage, SendMessage};
pub use engine::{
    EngineConfig, EngineCosts, EngineDiagnostics, EngineStats, NmadEngine, ProgressMode,
    ShardPolicy, ShardRoute,
};
pub use matching::{Effect, Matching, RecvDone};
pub use metrics::{
    EngineMetrics, LogHistogram, MetricsRegistry, MetricsSnapshot, NicMetrics, Seqlock,
    SharedMetrics,
};
pub use ring::{Batch, SubmitRing};
pub use segment::{PackWrapper, Priority, RecvReqId, SendReqId, SeqNo, Tag, NUM_LANES};
pub use steal::{StealGroup, StealStats};
pub use strategy::{
    eager_cutoff, DynamicStats, FramePlan, NicView, PlanEntry, StratAggreg, StratAggregHol,
    StratDefault, StratDynamic, StratLanes, StratMultirail, StratReorder, Strategy, Tactic,
};
pub use threaded::{CompletionBoard, SubmitBatch, ThreadedEngine, ThreadedHandle, SLOT_OPS};
pub use window::{CtrlMsg, RdvChunk, RdvJob, Window};

/// Everything a typical application needs.
pub mod prelude {
    pub use crate::api::RecvHandle;
    pub use crate::engine::{EngineConfig, EngineCosts, NmadEngine, ProgressMode};
    pub use crate::segment::{Priority, RecvReqId, SendReqId, Tag};
    pub use crate::strategy::{
        StratAggreg, StratAggregHol, StratDefault, StratDynamic, StratLanes, StratMultirail,
        StratReorder, Strategy,
    };
    pub use crate::threaded::{ThreadedEngine, ThreadedHandle};
}
