//! Receiver-side matching and reassembly.
//!
//! Incoming entries are matched to posted receives by **(source, tag,
//! sequence number)** — the metadata the collect layer stamped on every
//! segment. Because identity is explicit, the scheduler is free to
//! reorder and aggregate wire traffic arbitrarily; the receiver always
//! reconstructs per-flow submission order.
//!
//! Protocol arrival cases handled here:
//!
//! * eager `Data` with a posted receive → landed in place by the NIC's
//!   matching/scatter hardware (no host copy);
//! * eager `Data` without a posted receive → *unexpected*: retained as
//!   a zero-copy [`Bytes`] slice of the received frame (the frame
//!   buffer stays pinned instead of being copied into a bounce buffer)
//!   and handed over as-is when the receive arrives — still the reason
//!   eager is wrong for large segments, which would pin whole frames
//!   indefinitely;
//! * `Rts` → reply CTS when the receive is posted, else park it;
//! * `RdvData` chunks → written straight at their offset (zero-copy
//!   when the NIC has RDMA; one copy otherwise), completion when every
//!   byte of the announced total has landed.

use crate::segment::{RecvReqId, SeqNo, Tag};
use bytes::Bytes;
use nmad_sim::NodeId;
use std::collections::{HashMap, HashSet};

/// Side effects the engine must apply after feeding an event in (CPU
/// cost accounting and outgoing control traffic).
#[derive(Debug, PartialEq, Eq)]
pub enum Effect {
    /// Account one memory copy of this many bytes.
    ChargeCopy(usize),
    /// Queue a CTS towards `dst` granting (tag, seq).
    SendCts {
        /// Destination node.
        dst: NodeId,
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Announced total length in bytes.
        total: u32,
    },
    /// A duplicate wire entry was discarded (retransmission or a
    /// conservative failover requeue re-delivered it); the engine
    /// counts these.
    DuplicateDropped,
}

/// A completed receive, ready for the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvDone {
    /// Source node.
    pub src: NodeId,
    /// Logical flow identifier.
    pub tag: Tag,
    /// The received payload (possibly truncated). For eager segments
    /// this is a zero-copy slice of the received frame buffer.
    pub data: Bytes,
    /// The sender's segment was larger than the posted buffer; `data`
    /// holds the truncated prefix.
    pub truncated: bool,
}

#[derive(Debug)]
struct Slot {
    req: RecvReqId,
    max: usize,
    /// Reassembly buffer, grown to the rendezvous total when granted.
    buf: Vec<u8>,
    /// Bytes of rendezvous payload landed so far.
    received: usize,
    /// Announced rendezvous total, once the RTS has been seen.
    total: Option<usize>,
    sender_len: usize,
    /// Offsets of rendezvous chunks already landed — duplicates of a
    /// chunk (retransmission, failover requeue) are dropped instead of
    /// double-counted.
    chunk_offsets: HashSet<u32>,
}

/// Per-flow record of sequence numbers whose receive has completed:
/// a watermark plus the out-of-order completions above it, compacted
/// as the watermark advances.
#[derive(Debug, Default)]
struct FlowDelivered {
    next: u32,
    ahead: HashSet<u32>,
}

impl FlowDelivered {
    fn contains(&self, seq: SeqNo) -> bool {
        seq.0 < self.next || self.ahead.contains(&seq.0)
    }

    fn mark(&mut self, seq: SeqNo) {
        if seq.0 == self.next {
            self.next += 1;
            while self.ahead.remove(&self.next) {
                self.next += 1;
            }
        } else if seq.0 > self.next {
            self.ahead.insert(seq.0);
        }
    }
}

/// Matching state of one engine (one node).
#[derive(Debug, Default)]
pub struct Matching {
    posted: HashMap<(NodeId, Tag, SeqNo), Slot>,
    next_seq: HashMap<(NodeId, Tag), SeqNo>,
    unexpected: HashMap<(NodeId, Tag, SeqNo), Bytes>,
    pending_rts: HashMap<(NodeId, Tag, SeqNo), u32>,
    done: HashMap<RecvReqId, RecvDone>,
    delivered: HashMap<(NodeId, Tag), FlowDelivered>,
}

impl Matching {
    /// Creates empty matching state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts a receive of up to `max` bytes for the next segment of the
    /// (src, tag) flow; returns the sequence number this receive will
    /// match plus effects (an unexpected segment may complete it
    /// immediately, a parked RTS may fire a CTS).
    pub fn post_recv(
        &mut self,
        src: NodeId,
        tag: Tag,
        max: usize,
        req: RecvReqId,
    ) -> (SeqNo, Vec<Effect>) {
        let seq_slot = self.next_seq.entry((src, tag)).or_insert(SeqNo(0));
        let seq = *seq_slot;
        *seq_slot = seq_slot.next();

        let mut effects = Vec::new();
        if let Some(staged) = self.unexpected.remove(&(src, tag, seq)) {
            // The staged segment is a zero-copy slice of its receive
            // frame; handing it over costs nothing — the frame buffer
            // was the bounce buffer.
            let truncated = staged.len() > max;
            let data = staged.slice(..staged.len().min(max));
            self.done.insert(
                req,
                RecvDone {
                    src,
                    tag,
                    data,
                    truncated,
                },
            );
            self.mark_delivered(src, tag, seq);
            return (seq, effects);
        }

        let mut slot = Slot {
            req,
            max,
            buf: Vec::new(),
            received: 0,
            total: None,
            sender_len: 0,
            chunk_offsets: HashSet::new(),
        };
        if let Some(total) = self.pending_rts.remove(&(src, tag, seq)) {
            Self::grant(&mut slot, total);
            effects.push(Effect::SendCts {
                dst: src,
                tag,
                seq,
                total,
            });
        }
        self.posted.insert((src, tag, seq), slot);
        (seq, effects)
    }

    fn grant(slot: &mut Slot, total: u32) {
        let total = total as usize;
        slot.total = Some(total);
        slot.sender_len = total;
        slot.buf = vec![0u8; total.min(slot.max)];
    }

    fn already_delivered(&self, src: NodeId, tag: Tag, seq: SeqNo) -> bool {
        self.delivered
            .get(&(src, tag))
            .is_some_and(|f| f.contains(seq))
    }

    fn mark_delivered(&mut self, src: NodeId, tag: Tag, seq: SeqNo) {
        self.delivered.entry((src, tag)).or_default().mark(seq);
    }

    /// Feeds an eager data entry as a zero-copy slice of the received
    /// frame buffer.
    pub fn on_data(&mut self, src: NodeId, tag: Tag, seq: SeqNo, payload: Bytes) -> Vec<Effect> {
        if self.already_delivered(src, tag, seq) || self.unexpected.contains_key(&(src, tag, seq)) {
            // Retransmission or failover requeue re-delivered the
            // segment: the first copy won.
            return vec![Effect::DuplicateDropped];
        }
        match self.posted.remove(&(src, tag, seq)) {
            Some(slot) => {
                let truncated = payload.len() > slot.max;
                let kept = payload.len().min(slot.max);
                self.done.insert(
                    slot.req,
                    RecvDone {
                        src,
                        tag,
                        data: payload.slice(..kept),
                        truncated,
                    },
                );
                self.mark_delivered(src, tag, seq);
                // Posted receive: the NIC's matching/scatter hardware
                // lands the segment in place — no host copy (MX and
                // Elan both match posted receives in hardware).
                vec![]
            }
            None => {
                // Unexpected: retain the slice — the receive frame
                // buffer stays pinned in place of a bounce-buffer copy.
                self.unexpected.insert((src, tag, seq), payload);
                vec![]
            }
        }
    }

    /// Feeds a rendezvous request-to-send.
    pub fn on_rts(&mut self, src: NodeId, tag: Tag, seq: SeqNo, total: u32) -> Vec<Effect> {
        if self.already_delivered(src, tag, seq) {
            return vec![Effect::DuplicateDropped];
        }
        match self.posted.get_mut(&(src, tag, seq)) {
            Some(slot) => {
                if slot.total.is_some() {
                    // Duplicate RTS for an already-granted transfer:
                    // the original CTS may have been lost. Re-grant
                    // idempotently — without resetting the reassembly
                    // buffer — so the handshake can recover.
                    return vec![
                        Effect::DuplicateDropped,
                        Effect::SendCts {
                            dst: src,
                            tag,
                            seq,
                            total,
                        },
                    ];
                }
                Self::grant(slot, total);
                vec![Effect::SendCts {
                    dst: src,
                    tag,
                    seq,
                    total,
                }]
            }
            None => {
                if self.pending_rts.insert((src, tag, seq), total).is_some() {
                    return vec![Effect::DuplicateDropped];
                }
                vec![]
            }
        }
    }

    /// Feeds one rendezvous data chunk. `zero_copy` reflects the NIC's
    /// RDMA capability: without it the chunk costs a copy out of the
    /// bounce area.
    pub fn on_rdv_chunk(
        &mut self,
        src: NodeId,
        tag: Tag,
        seq: SeqNo,
        offset: u32,
        payload: &[u8],
        zero_copy: bool,
    ) -> Vec<Effect> {
        let key = (src, tag, seq);
        let Some(slot) = self.posted.get_mut(&key) else {
            if self.already_delivered(src, tag, seq) {
                // Late chunk for a transfer that already completed —
                // a conservative failover requeue re-sent bytes the
                // first attempt had in fact delivered.
                return vec![Effect::DuplicateDropped];
            }
            panic!("rdv chunk for a never-granted segment (protocol bug)"); // PANIC-OK: peer protocol violation; failing loudly beats silent corruption
        };
        let total = slot
            .total
            .expect("rdv chunk before RTS grant (protocol bug)"); // PANIC-OK: peer protocol violation; failing loudly beats silent corruption
        if !slot.chunk_offsets.insert(offset) {
            return vec![Effect::DuplicateDropped];
        }
        let offset = offset as usize;
        // Place the bytes that fit in the application buffer.
        if offset < slot.buf.len() {
            let kept = payload.len().min(slot.buf.len() - offset);
            slot.buf[offset..offset + kept].copy_from_slice(&payload[..kept]);
        }
        slot.received += payload.len();
        // PANIC-OK: peer protocol violation; failing loudly beats silent corruption
        assert!(
            slot.received <= total,
            "rendezvous over-delivery: {} of {total} bytes",
            slot.received
        );
        let mut effects = Vec::new();
        if !zero_copy {
            effects.push(Effect::ChargeCopy(payload.len()));
        }
        if slot.received == total {
            let slot = self.posted.remove(&key).expect("present"); // PANIC-OK: key presence established by the grant check above
            let truncated = slot.sender_len > slot.max;
            self.done.insert(
                slot.req,
                RecvDone {
                    src,
                    tag,
                    // Zero-copy wrap: the reassembly buffer becomes the
                    // delivered payload without another copy.
                    data: Bytes::from(slot.buf),
                    truncated,
                },
            );
            self.mark_delivered(src, tag, seq);
        }
        effects
    }

    /// Takes the completion of `req`, if ready.
    pub fn try_take_done(&mut self, req: RecvReqId) -> Option<RecvDone> {
        self.done.remove(&req)
    }

    /// True if `req` has completed (non-destructive).
    pub fn is_done(&self, req: RecvReqId) -> bool {
        self.done.contains_key(&req)
    }

    /// Drains every ready completion at once. The threaded progression
    /// loop harvests with this after each pump so app threads observe
    /// completions through the completion board instead of probing the
    /// matching table request by request.
    pub fn drain_done(&mut self) -> Vec<(RecvReqId, RecvDone)> {
        if self.done.is_empty() {
            return Vec::new();
        }
        self.done.drain().collect()
    }

    /// Number of unexpected segments currently staged (tests/metrics).
    pub fn unexpected_count(&self) -> usize {
        self.unexpected.len()
    }

    /// Non-destructive probe: length of the next segment of (src, tag)
    /// if its arrival (eager payload) or announcement (rendezvous RTS)
    /// has already been seen, without posting a receive.
    pub fn probe(&self, src: NodeId, tag: Tag) -> Option<usize> {
        let seq = self.next_seq.get(&(src, tag)).copied().unwrap_or(SeqNo(0));
        if let Some(staged) = self.unexpected.get(&(src, tag, seq)) {
            return Some(staged.len());
        }
        self.pending_rts
            .get(&(src, tag, seq))
            .map(|&total| total as usize)
    }

    /// Number of posted-but-incomplete receives (deadlock diagnosis).
    pub fn posted_count(&self) -> usize {
        self.posted.len()
    }

    /// Partitions this matching state into `shards` independent states
    /// by flow ownership: every map entry keyed by a `(src, tag)` flow
    /// moves to the part `owner(src, tag) % shards` selects. Because
    /// every structure here is keyed by flow, the partition is exact —
    /// no state is shared between parts and [`Matching::merge`]
    /// restores the original.
    pub fn split_by(
        self,
        shards: usize,
        mut owner: impl FnMut(NodeId, Tag) -> usize,
    ) -> Vec<Matching> {
        assert!(shards > 0, "cannot split into zero shards");
        let mut parts: Vec<Matching> = (0..shards).map(|_| Matching::new()).collect();
        for (k, v) in self.posted {
            parts[owner(k.0, k.1) % shards].posted.insert(k, v);
        }
        for (k, v) in self.next_seq {
            parts[owner(k.0, k.1) % shards].next_seq.insert(k, v);
        }
        for (k, v) in self.unexpected {
            parts[owner(k.0, k.1) % shards].unexpected.insert(k, v);
        }
        for (k, v) in self.pending_rts {
            parts[owner(k.0, k.1) % shards].pending_rts.insert(k, v);
        }
        for (req, d) in self.done {
            parts[owner(d.src, d.tag) % shards].done.insert(req, d);
        }
        for (k, v) in self.delivered {
            parts[owner(k.0, k.1) % shards].delivered.insert(k, v);
        }
        parts
    }

    /// Reunites states produced by [`Matching::split_by`]. Keys are
    /// disjoint when the parts came from one split; overlapping flow
    /// records (possible when merging independently-grown states) are
    /// reconciled conservatively: sequence allocators take the maximum,
    /// delivery watermarks union.
    pub fn merge(parts: Vec<Matching>) -> Matching {
        let mut merged = Matching::new();
        for part in parts {
            merged.posted.extend(part.posted);
            for (k, v) in part.next_seq {
                let slot = merged.next_seq.entry(k).or_insert(v);
                if v.0 > slot.0 {
                    *slot = v;
                }
            }
            merged.unexpected.extend(part.unexpected);
            merged.pending_rts.extend(part.pending_rts);
            merged.done.extend(part.done);
            for (k, v) in part.delivered {
                match merged.delivered.entry(k) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(v);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let cur = e.get_mut();
                        cur.next = cur.next.max(v.next);
                        cur.ahead.extend(v.ahead);
                        cur.ahead.retain(|&s| s >= cur.next);
                        while cur.ahead.remove(&cur.next) {
                            cur.next += 1;
                        }
                    }
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: NodeId = NodeId(7);
    const TAG: Tag = Tag(3);

    fn by(p: &'static [u8]) -> Bytes {
        Bytes::from_static(p)
    }

    #[test]
    fn expected_eager_completes_copy_free() {
        let mut m = Matching::new();
        let fx = m.post_recv(SRC, TAG, 64, RecvReqId(1)).1;
        assert!(fx.is_empty());
        let fx = m.on_data(SRC, TAG, SeqNo(0), by(b"hello"));
        assert_eq!(fx, vec![], "posted receives land without a host copy");
        let done = m.try_take_done(RecvReqId(1)).unwrap();
        assert_eq!(done.data, b"hello");
        assert!(!done.truncated);
        assert!(m.try_take_done(RecvReqId(1)).is_none(), "taken once");
    }

    #[test]
    fn unexpected_eager_is_retained_and_delivered_copy_free() {
        let mut m = Matching::new();
        // The frame slice is retained as-is: no bounce-buffer copy at
        // arrival, no placement copy at post time.
        let frame = Bytes::from(b"frame: early".to_vec());
        let fx = m.on_data(SRC, TAG, SeqNo(0), frame.slice(7..));
        assert_eq!(fx, vec![], "staging an unexpected slice is copy-free");
        assert_eq!(m.unexpected_count(), 1);
        let fx = m.post_recv(SRC, TAG, 64, RecvReqId(9)).1;
        assert_eq!(fx, vec![], "handover is copy-free too");
        let done = m.try_take_done(RecvReqId(9)).unwrap();
        assert_eq!(done.data, b"early");
        // Zero-copy means the delivered data still shares the frame's
        // backing storage.
        assert_eq!(done.data.as_slice().as_ptr(), frame[7..].as_ptr());
        assert_eq!(m.unexpected_count(), 0);
    }

    #[test]
    fn unexpected_truncation_slices_the_retained_frame() {
        let mut m = Matching::new();
        m.on_data(SRC, TAG, SeqNo(0), by(b"oversized"));
        let fx = m.post_recv(SRC, TAG, 4, RecvReqId(9)).1;
        assert_eq!(fx, vec![]);
        let done = m.try_take_done(RecvReqId(9)).unwrap();
        assert!(done.truncated);
        assert_eq!(done.data, b"over");
    }

    #[test]
    fn out_of_order_arrival_matches_by_seq() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 64, RecvReqId(1)); // seq 0
        m.post_recv(SRC, TAG, 64, RecvReqId(2)); // seq 1
                                                 // Wire reordered: seq 1 lands first.
        m.on_data(SRC, TAG, SeqNo(1), by(b"second"));
        m.on_data(SRC, TAG, SeqNo(0), by(b"first"));
        assert_eq!(m.try_take_done(RecvReqId(1)).unwrap().data, b"first");
        assert_eq!(m.try_take_done(RecvReqId(2)).unwrap().data, b"second");
    }

    #[test]
    fn flows_are_isolated_by_tag_and_source() {
        let mut m = Matching::new();
        m.post_recv(SRC, Tag(1), 64, RecvReqId(1));
        m.post_recv(SRC, Tag(2), 64, RecvReqId(2));
        m.post_recv(NodeId(8), Tag(1), 64, RecvReqId(3));
        m.on_data(NodeId(8), Tag(1), SeqNo(0), by(b"other-source"));
        m.on_data(SRC, Tag(2), SeqNo(0), by(b"tag-two"));
        m.on_data(SRC, Tag(1), SeqNo(0), by(b"tag-one"));
        assert_eq!(m.try_take_done(RecvReqId(1)).unwrap().data, b"tag-one");
        assert_eq!(m.try_take_done(RecvReqId(2)).unwrap().data, b"tag-two");
        assert_eq!(m.try_take_done(RecvReqId(3)).unwrap().data, b"other-source");
    }

    #[test]
    fn rts_after_post_grants_immediately() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 1024, RecvReqId(1));
        let fx = m.on_rts(SRC, TAG, SeqNo(0), 1000);
        assert_eq!(
            fx,
            vec![Effect::SendCts {
                dst: SRC,
                tag: TAG,
                seq: SeqNo(0),
                total: 1000
            }]
        );
    }

    #[test]
    fn rts_before_post_is_parked_until_post() {
        let mut m = Matching::new();
        assert!(m.on_rts(SRC, TAG, SeqNo(0), 500).is_empty());
        let fx = m.post_recv(SRC, TAG, 1024, RecvReqId(1)).1;
        assert_eq!(
            fx,
            vec![Effect::SendCts {
                dst: SRC,
                tag: TAG,
                seq: SeqNo(0),
                total: 500
            }]
        );
    }

    #[test]
    fn rdv_chunks_reassemble_in_any_order() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 100, RecvReqId(1));
        m.on_rts(SRC, TAG, SeqNo(0), 100);
        let body: Vec<u8> = (0..100).collect();
        // Deliver the second half first (multirail out-of-order).
        let fx = m.on_rdv_chunk(SRC, TAG, SeqNo(0), 50, &body[50..], true);
        assert!(fx.is_empty(), "zero-copy chunk charges nothing");
        assert!(m.try_take_done(RecvReqId(1)).is_none());
        m.on_rdv_chunk(SRC, TAG, SeqNo(0), 0, &body[..50], true);
        let done = m.try_take_done(RecvReqId(1)).unwrap();
        assert_eq!(done.data, body);
        assert!(!done.truncated);
    }

    #[test]
    fn rdv_without_rdma_charges_copies() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 10, RecvReqId(1));
        m.on_rts(SRC, TAG, SeqNo(0), 10);
        let fx = m.on_rdv_chunk(SRC, TAG, SeqNo(0), 0, &[1u8; 10], false);
        assert_eq!(fx, vec![Effect::ChargeCopy(10)]);
    }

    #[test]
    fn eager_truncation_is_flagged() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 3, RecvReqId(1));
        m.on_data(SRC, TAG, SeqNo(0), by(b"toolong"));
        let done = m.try_take_done(RecvReqId(1)).unwrap();
        assert!(done.truncated);
        assert_eq!(done.data, b"too");
    }

    #[test]
    fn rdv_truncation_keeps_prefix() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 4, RecvReqId(1));
        m.on_rts(SRC, TAG, SeqNo(0), 8);
        m.on_rdv_chunk(SRC, TAG, SeqNo(0), 0, &[1, 2, 3, 4, 5, 6, 7, 8], true);
        let done = m.try_take_done(RecvReqId(1)).unwrap();
        assert!(done.truncated);
        assert_eq!(done.data, vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "protocol bug")]
    fn rdv_chunk_without_grant_is_a_protocol_bug() {
        let mut m = Matching::new();
        m.on_rdv_chunk(SRC, TAG, SeqNo(0), 0, b"x", true);
    }

    #[test]
    fn duplicate_eager_data_is_dropped_not_redelivered() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 64, RecvReqId(1));
        assert!(m.on_data(SRC, TAG, SeqNo(0), by(b"once")).is_empty());
        assert_eq!(
            m.on_data(SRC, TAG, SeqNo(0), by(b"once")),
            vec![Effect::DuplicateDropped]
        );
        assert_eq!(m.try_take_done(RecvReqId(1)).unwrap().data, b"once");
        // A third copy after the completion was taken is still a dup.
        assert_eq!(
            m.on_data(SRC, TAG, SeqNo(0), by(b"once")),
            vec![Effect::DuplicateDropped]
        );
        assert_eq!(m.unexpected_count(), 0, "duplicates must not be staged");
    }

    #[test]
    fn duplicate_unexpected_data_is_dropped_while_staged() {
        let mut m = Matching::new();
        m.on_data(SRC, TAG, SeqNo(0), by(b"early"));
        assert_eq!(
            m.on_data(SRC, TAG, SeqNo(0), by(b"early")),
            vec![Effect::DuplicateDropped]
        );
        assert_eq!(m.unexpected_count(), 1);
        m.post_recv(SRC, TAG, 64, RecvReqId(1));
        assert_eq!(m.try_take_done(RecvReqId(1)).unwrap().data, b"early");
        // And after consumption too.
        assert_eq!(
            m.on_data(SRC, TAG, SeqNo(0), by(b"early")),
            vec![Effect::DuplicateDropped]
        );
    }

    #[test]
    fn duplicate_rdv_chunk_offsets_are_dropped() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 100, RecvReqId(1));
        m.on_rts(SRC, TAG, SeqNo(0), 100);
        let body: Vec<u8> = (0..100).collect();
        m.on_rdv_chunk(SRC, TAG, SeqNo(0), 0, &body[..50], true);
        // A retransmitted copy of the same chunk must not double-count.
        assert_eq!(
            m.on_rdv_chunk(SRC, TAG, SeqNo(0), 0, &body[..50], true),
            vec![Effect::DuplicateDropped]
        );
        assert!(m.try_take_done(RecvReqId(1)).is_none());
        m.on_rdv_chunk(SRC, TAG, SeqNo(0), 50, &body[50..], true);
        assert_eq!(m.try_take_done(RecvReqId(1)).unwrap().data, body);
    }

    #[test]
    fn late_chunk_after_completion_is_dropped_not_a_panic() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 10, RecvReqId(1));
        m.on_rts(SRC, TAG, SeqNo(0), 10);
        m.on_rdv_chunk(SRC, TAG, SeqNo(0), 0, &[1u8; 10], true);
        assert!(m.is_done(RecvReqId(1)));
        // A failover requeue re-sent bytes the first rail delivered.
        assert_eq!(
            m.on_rdv_chunk(SRC, TAG, SeqNo(0), 0, &[1u8; 10], true),
            vec![Effect::DuplicateDropped]
        );
    }

    #[test]
    fn duplicate_rts_regrants_without_wiping_received_chunks() {
        let mut m = Matching::new();
        m.post_recv(SRC, TAG, 100, RecvReqId(1));
        m.on_rts(SRC, TAG, SeqNo(0), 100);
        let body: Vec<u8> = (0..100).collect();
        m.on_rdv_chunk(SRC, TAG, SeqNo(0), 0, &body[..50], true);
        // The CTS was lost; the sender re-announces. The re-grant must
        // not reset the reassembly buffer.
        let fx = m.on_rts(SRC, TAG, SeqNo(0), 100);
        assert_eq!(
            fx,
            vec![
                Effect::DuplicateDropped,
                Effect::SendCts {
                    dst: SRC,
                    tag: TAG,
                    seq: SeqNo(0),
                    total: 100
                }
            ]
        );
        m.on_rdv_chunk(SRC, TAG, SeqNo(0), 50, &body[50..], true);
        assert_eq!(m.try_take_done(RecvReqId(1)).unwrap().data, body);
    }

    #[test]
    fn duplicate_parked_rts_is_dropped() {
        let mut m = Matching::new();
        assert!(m.on_rts(SRC, TAG, SeqNo(0), 500).is_empty());
        assert_eq!(
            m.on_rts(SRC, TAG, SeqNo(0), 500),
            vec![Effect::DuplicateDropped]
        );
    }
}
