/root/repo/target/debug/examples/strategy_hints-94c8f122f877b4f5.d: examples/strategy_hints.rs Cargo.toml

/root/repo/target/debug/examples/libstrategy_hints-94c8f122f877b4f5.rmeta: examples/strategy_hints.rs Cargo.toml

examples/strategy_hints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
