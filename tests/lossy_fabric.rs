//! Integration: the complete NewMadeleine engine running over a *lossy*
//! simulated fabric through the go-back-N reliability decorator —
//! aggregation, rendezvous and MPI semantics all hold despite frame
//! loss, with virtual-time retransmission timeouts.

use newmadeleine::core::prelude::*;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::{Driver, LossyDriver, ReliableDriver, SimCpuMeter};
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig, SimTime};

const RTO_NS: u64 = 200_000; // 200 us

fn lossy_engine(world: &SharedWorld, node: u32, loss: f64, seed: u64) -> NmadEngine {
    let raw = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let lossy = LossyDriver::new(raw, loss, seed);
    let clock_world = world.clone();
    let now = Box::new(move || clock_world.lock().now().as_ns());
    let wake_world = world.clone();
    let wakeup = Box::new(move |deadline: u64| {
        wake_world
            .lock()
            .schedule_wakeup(SimTime::from_ns(deadline));
    });
    let reliable = ReliableDriver::new(lossy, now, Some(wakeup), RTO_NS);
    let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
    NmadEngine::new(
        vec![Box::new(reliable) as Box<dyn Driver>],
        meter,
        Box::new(StratAggreg),
        EngineCosts::zero(),
    )
}

fn pump(
    world: &SharedWorld,
    a: &mut NmadEngine,
    b: &mut NmadEngine,
    mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
) {
    for _ in 0..5_000_000u64 {
        let moved = a.progress() | b.progress();
        if done(a, b) {
            return;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    panic!("no convergence");
}

#[test]
fn aggregated_bursts_survive_frame_loss() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = lossy_engine(&world, 0, 0.25, 0xA11CE);
    let mut b = lossy_engine(&world, 1, 0.25, 0xB0B);
    let sends: Vec<_> = (0..12u32)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 200]))
        .collect();
    let recvs: Vec<_> = (0..12u32)
        .map(|i| b.post_recv(NodeId(0), Tag(i), 200))
        .collect();
    pump(&world, &mut a, &mut b, |a, b| {
        sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
    });
    for (i, r) in recvs.into_iter().enumerate() {
        assert_eq!(b.try_take_recv(r).unwrap().data, vec![i as u8; 200]);
    }
}

#[test]
fn rendezvous_protocol_survives_frame_loss() {
    // RTS, CTS and every data chunk may be dropped; the handshake and
    // the chunked transfer must all recover via retransmission.
    let world = shared_world(SimConfig::two_nodes(nic::quadrics_qm500()));
    let mut a = lossy_engine(&world, 0, 0.2, 7);
    let mut b = lossy_engine(&world, 1, 0.2, 8);
    let body: Vec<u8> = (0..120_000u32).map(|i| (i % 251) as u8).collect();
    let s = a.isend(NodeId(1), Tag(0), body.clone());
    let r = b.post_recv(NodeId(0), Tag(0), body.len());
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    assert_eq!(b.try_take_recv(r).unwrap().data, body);
}

#[test]
fn bidirectional_lossy_traffic_with_echo() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = lossy_engine(&world, 0, 0.15, 100);
    let mut b = lossy_engine(&world, 1, 0.15, 200);
    for round in 0..5u32 {
        let body = vec![round as u8; 500];
        let s = a.isend(NodeId(1), Tag(round), body.clone());
        let r = b.post_recv(NodeId(0), Tag(round), 500);
        pump(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        let got = b.try_take_recv(r).unwrap().data;
        let s2 = b.isend(NodeId(0), Tag(round), got);
        let r2 = a.post_recv(NodeId(1), Tag(round), 500);
        pump(&world, &mut a, &mut b, |a, b| {
            b.is_send_done(s2) && a.is_recv_done(r2)
        });
        assert_eq!(a.try_take_recv(r2).unwrap().data, body, "round {round}");
    }
}

#[test]
fn lossless_fabric_through_the_decorator_adds_no_retransmits() {
    // Sanity: with zero loss the reliability layer is pass-through.
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = lossy_engine(&world, 0, 0.0, 1);
    let mut b = lossy_engine(&world, 1, 0.0, 2);
    let s = a.isend(NodeId(1), Tag(0), vec![5u8; 10_000]);
    let r = b.post_recv(NodeId(0), Tag(0), 10_000);
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    assert_eq!(b.try_take_recv(r).unwrap().data, vec![5u8; 10_000]);
}
