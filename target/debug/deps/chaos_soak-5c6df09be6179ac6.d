/root/repo/target/debug/deps/chaos_soak-5c6df09be6179ac6.d: crates/bench/src/bin/chaos_soak.rs

/root/repo/target/debug/deps/chaos_soak-5c6df09be6179ac6: crates/bench/src/bin/chaos_soak.rs

crates/bench/src/bin/chaos_soak.rs:
