/root/repo/target/release/deps/hang_repro-aa22c94df838c46c.d: tests/hang_repro.rs

/root/repo/target/release/deps/hang_repro-aa22c94df838c46c: tests/hang_repro.rs

tests/hang_repro.rs:
