//! Figure 4 — indexed derived-datatype transfer (paper §5.3).
//!
//! The datatype alternates one small block (64 B) and one large block
//! (256 KB). The baselines pack everything into a contiguous buffer on
//! the sender and dispatch from a temporary area on the receiver — two
//! full memory copies on the critical path. MAD-MPI sends one request
//! per block, aggregating the small blocks (with reordering) alongside
//! the large blocks' rendezvous requests, and lands the large blocks
//! zero-copy. The paper reports ~70 % gain vs MPICH and ~50 % vs
//! OpenMPI over MX, and up to ~70 % vs MPICH over Quadrics.
//!
//! Run: `cargo run --release -p bench --bin fig4 [-- --quick]`

use bench::{fmt_size, gain_pct, pingpong_typed, LogLogChart, Series, Table};
use mad_mpi::{Datatype, EngineKind, StrategyKind};
use nmad_sim::{nic, NicModel};

const SMALL: usize = 64;
const LARGE: usize = 256 * 1024;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 1 } else { 4 };
    let madmpi = EngineKind::MadMpi(StrategyKind::Reorder);
    let pair_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };

    run_panel(
        "Fig 4(a) — indexed datatype, MX/Myri-10G",
        nic::mx_myri10g(),
        &[madmpi, EngineKind::Mpich, EngineKind::Ompi],
        pair_counts,
        iters,
    );
    run_panel(
        "Fig 4(b) — indexed datatype, Elan/Quadrics",
        nic::quadrics_qm500(),
        &[madmpi, EngineKind::Mpich],
        pair_counts,
        iters,
    );
}

fn run_panel(
    title: &str,
    nic_model: NicModel,
    kinds: &[EngineKind],
    pair_counts: &[usize],
    iters: usize,
) {
    println!("\n## {title}\n");
    let mut headers: Vec<String> = vec!["msg size".into()];
    headers.extend(kinds.iter().map(|k| format!("{} (us)", k.label())));
    for k in &kinds[1..] {
        headers.push(format!("gain vs {}", k.label()));
    }
    let mut table = Table::new(headers);
    let glyphs = ['*', 'o', '+'];
    let mut series: Vec<Series> = kinds
        .iter()
        .enumerate()
        .map(|(i, k)| Series::new(k.label(), glyphs[i % glyphs.len()]))
        .collect();

    for &pairs in pair_counts {
        // The paper's x axis is the (approximate) total payload:
        // pairs × 256 KB of large blocks (+ pairs × 64 B).
        let dtype = Datatype::alternating(SMALL, LARGE, pairs);
        let samples: Vec<_> = kinds
            .iter()
            .map(|&k| pingpong_typed(k, nic_model.clone(), &dtype, iters))
            .collect();
        for (i, s) in samples.iter().enumerate() {
            series[i].push((pairs * LARGE) as f64, s.one_way_us);
        }
        let mut row: Vec<String> = vec![fmt_size(pairs * LARGE)];
        row.extend(samples.iter().map(|s| format!("{:.0}", s.one_way_us)));
        for s in &samples[1..] {
            row.push(format!(
                "{:.0}%",
                gain_pct(samples[0].one_way_us, s.one_way_us)
            ));
        }
        table.row(row);
    }
    table.print();
    println!();
    let mut chart = LogLogChart::new(title.to_string(), "message size (B)", "transfer us");
    for s in series {
        chart.add(s);
    }
    chart.print();
}
