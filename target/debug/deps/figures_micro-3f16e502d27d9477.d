/root/repo/target/debug/deps/figures_micro-3f16e502d27d9477.d: crates/bench/benches/figures_micro.rs

/root/repo/target/debug/deps/figures_micro-3f16e502d27d9477: crates/bench/benches/figures_micro.rs

crates/bench/benches/figures_micro.rs:
