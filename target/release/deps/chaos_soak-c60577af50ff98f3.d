/root/repo/target/release/deps/chaos_soak-c60577af50ff98f3.d: crates/bench/src/bin/chaos_soak.rs

/root/repo/target/release/deps/chaos_soak-c60577af50ff98f3: crates/bench/src/bin/chaos_soak.rs

crates/bench/src/bin/chaos_soak.rs:
