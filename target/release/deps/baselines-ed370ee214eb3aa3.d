/root/repo/target/release/deps/baselines-ed370ee214eb3aa3.d: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs

/root/repo/target/release/deps/libbaselines-ed370ee214eb3aa3.rlib: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs

/root/repo/target/release/deps/libbaselines-ed370ee214eb3aa3.rmeta: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs

crates/baselines/src/lib.rs:
crates/baselines/src/codec.rs:
crates/baselines/src/direct.rs:
