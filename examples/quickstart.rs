//! Quickstart: two simulated nodes exchange a multi-piece message
//! through the NewMadeleine engine using the incremental pack/unpack
//! interface (paper §3.4), with the aggregation strategy coalescing the
//! pieces into a single wire frame.
//!
//! Run: `cargo run --example quickstart`

use newmadeleine::core::prelude::*;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::sim::{nic, run_until, shared_world, NodeId, RailId, SimConfig};

fn main() {
    // A two-node cluster wired with simulated Myri-10G NICs.
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mk_engine = |node: u32| {
        let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
        let meter = Box::new(driver.meter());
        NmadEngine::new(
            vec![Box::new(driver)],
            meter,
            Box::new(StratAggreg),
            EngineCosts::zero(),
        )
    };
    let mut sender = mk_engine(0);
    let mut receiver = mk_engine(1);

    // Build a message out of three pieces scattered in user space.
    let _req = sender
        .message_to(NodeId(1), Tag(1))
        .pack(&b"piece one, "[..])
        .pack(&b"piece two, "[..])
        .pack(&b"piece three"[..])
        .finish();

    // The receiver unpacks the same sequence of pieces.
    let handle = receiver
        .message_from(NodeId(0), Tag(1))
        .unpack(32)
        .unpack(32)
        .unpack(32)
        .finish();

    // Drive both engines under the co-simulation loop until delivery.
    let done = std::cell::Cell::new(false);
    {
        let mut pump_sender = || sender.progress();
        let mut pump_receiver = || {
            let moved = receiver.progress();
            if handle.is_done(&receiver) {
                done.set(true);
            }
            moved
        };
        run_until(&world, &mut [&mut pump_sender, &mut pump_receiver], || {
            done.get()
        })
        .expect("no deadlock");
    }

    let pieces = handle.take_all(&mut receiver);
    let text: String = pieces
        .iter()
        .map(|p| String::from_utf8_lossy(&p.data).into_owned())
        .collect();
    println!("received: {text}");
    println!(
        "virtual time: {} — wire frames sent: {} (3 pieces aggregated)",
        world.lock().now(),
        sender.stats().frames_sent,
    );
    assert_eq!(text, "piece one, piece two, piece three");
    assert_eq!(
        sender.stats().frames_sent,
        1,
        "the aggregation strategy coalesces all three pieces"
    );
}
