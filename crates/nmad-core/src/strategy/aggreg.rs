//! The paper's aggregation strategy (§4).
//!
//! "An aggregation [strategy] which accumulates communication requests
//! as long as the cumulated length does not require to switch to the
//! rendez-vous protocol." Small segments towards the same destination —
//! regardless of their logical flow / MPI communicator — are coalesced
//! into one frame; segments above the rendezvous threshold contribute an
//! RTS (which is tiny and aggregates for free). The scan keeps FIFO
//! discipline: it stops at the first segment that does not fit, so
//! submission order is preserved on the wire (reordering is
//! [`StratReorder`](super::StratReorder)'s job).

use super::{
    eager_cutoff, plan_ctrl, plan_rdv_chunk, Budget, FramePlan, NicView, PlanEntry, Strategy,
};
use crate::window::Window;

/// See the module documentation.
#[derive(Debug, Default)]
pub struct StratAggreg;

impl Strategy for StratAggreg {
    fn name(&self) -> &'static str {
        "aggreg"
    }

    fn for_shard(&self, _shard: usize, _shards: usize) -> Box<dyn Strategy> {
        Box::new(StratAggreg)
    }

    fn schedule(&mut self, window: &mut Window, nic: &NicView<'_>) -> Option<FramePlan> {
        let dst = window.next_dst(nic.index)?;
        let mut plan = FramePlan::new(dst);
        let mut budget = Budget::new(nic.caps);

        // Grants ride along with whatever else goes to this peer.
        plan_ctrl(&mut plan, window, &mut budget);

        // Granted rendezvous payload has priority: the receiver is
        // already waiting with a pinned buffer.
        plan_rdv_chunk(&mut plan, window, &mut budget, usize::MAX);

        // Aggregate fresh segments under FIFO discipline.
        let cutoff = eager_cutoff(nic.caps);
        loop {
            let fits = |w: &crate::segment::PackWrapper| {
                w.dst == dst && (w.len() > cutoff || budget.fits_data(w.len()))
            };
            let Some(wrapper) = window.take_front_if(nic.index, fits) else {
                break;
            };
            if wrapper.len() > cutoff {
                if !budget.fits_bare() {
                    window.push_segment(wrapper, None);
                    break;
                }
                budget.add_bare();
                plan.entries.push(PlanEntry::Rts(wrapper));
            } else {
                budget.add_data(wrapper.len());
                plan.entries.push(PlanEntry::Data(wrapper));
            }
        }

        if plan.is_empty() {
            None
        } else {
            Some(plan)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{PackWrapper, Priority, SendReqId, SeqNo, Tag};
    use crate::window::CtrlMsg;
    use bytes::Bytes;
    use nmad_net::Capabilities;
    use nmad_sim::{nic, NodeId};

    fn caps() -> Capabilities {
        Capabilities::from_nic(&nic::mx_myri10g())
    }

    fn seg(dst: u32, tag: u32, seq: u32, len: usize) -> PackWrapper {
        PackWrapper {
            dst: NodeId(dst),
            tag: Tag(tag),
            seq: SeqNo(seq),
            priority: Priority::Normal,
            data: Bytes::from(vec![0u8; len]),
            req: SendReqId(0),
            order: seq as u64,
        }
    }

    fn view(caps: &Capabilities) -> NicView<'_> {
        NicView { index: 0, caps }
    }

    #[test]
    fn aggregates_across_flows_to_same_destination() {
        let caps = caps();
        let mut w = Window::new(1);
        // Eight segments on eight different tags — the fig. 3 workload.
        for tag in 0..8 {
            w.push_segment(seg(1, tag, 0, 64), None);
        }
        let mut s = StratAggreg;
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(plan.entries.len(), 8, "all flows coalesced in one frame");
        assert!(w.is_empty());
    }

    #[test]
    fn stops_at_cumulated_rendezvous_threshold() {
        let caps = caps();
        let each = caps.rdv_threshold / 4;
        let mut w = Window::new(1);
        for seq in 0..6 {
            w.push_segment(seg(1, 0, seq, each), None);
        }
        let mut s = StratAggreg;
        let p1 = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(p1.entries.len(), 4, "cumulated length capped at threshold");
        let p2 = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(p2.entries.len(), 2);
    }

    #[test]
    fn keeps_fifo_discipline_no_skipping() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(1, 0, 0, caps.rdv_threshold - 10), None);
        w.push_segment(seg(1, 1, 0, 100), None); // does not fit after #0
        w.push_segment(seg(1, 2, 0, 4), None); // would fit, but FIFO stops
        let mut s = StratAggreg;
        let p1 = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(p1.entries.len(), 1);
        let p2 = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(p2.entries.len(), 2, "both remaining fit the next frame");
    }

    #[test]
    fn large_segments_become_rts_and_keep_aggregating() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(1, 0, 0, 64), None);
        w.push_segment(seg(1, 1, 0, caps.rdv_threshold + 1), None);
        w.push_segment(seg(1, 2, 0, 64), None);
        let mut s = StratAggreg;
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        let kinds: Vec<_> = plan
            .entries
            .iter()
            .map(|e| match e {
                PlanEntry::Data(_) => "data",
                PlanEntry::Rts(_) => "rts",
                PlanEntry::Cts(_) => "cts",
                PlanEntry::RdvChunk(_) => "chunk",
            })
            .collect();
        assert_eq!(kinds, ["data", "rts", "data"]);
    }

    #[test]
    fn different_destination_stops_the_scan() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_segment(seg(1, 0, 0, 64), None);
        w.push_segment(seg(2, 0, 0, 64), None);
        w.push_segment(seg(1, 1, 0, 64), None);
        let mut s = StratAggreg;
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(plan.dst, NodeId(1));
        assert_eq!(plan.entries.len(), 1, "FIFO: dst change is a barrier");
    }

    #[test]
    fn ctrl_rides_with_data_to_same_destination() {
        let caps = caps();
        let mut w = Window::new(1);
        w.push_ctrl(CtrlMsg {
            dst: NodeId(1),
            tag: Tag(5),
            seq: SeqNo(0),
            total: 1 << 20,
        });
        w.push_segment(seg(1, 0, 0, 64), None);
        let mut s = StratAggreg;
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        assert_eq!(plan.entries.len(), 2, "grant and data share the frame");
        assert!(matches!(plan.entries[0], PlanEntry::Cts(_)));
        assert!(matches!(plan.entries[1], PlanEntry::Data(_)));
    }

    #[test]
    fn mtu_bounds_the_frame_even_below_threshold() {
        let mut caps = caps();
        caps.mtu = 4096;
        let mut w = Window::new(1);
        for seq in 0..4 {
            w.push_segment(seg(1, 0, seq, 1500), None);
        }
        let mut s = StratAggreg;
        let plan = s.schedule(&mut w, &view(&caps)).unwrap();
        // 2 × (20 + 1500) + 8 = 3048 fits; 3 payloads would be 4568.
        assert_eq!(plan.entries.len(), 2);
    }
}
