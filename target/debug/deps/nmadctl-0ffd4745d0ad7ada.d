/root/repo/target/debug/deps/nmadctl-0ffd4745d0ad7ada.d: src/bin/nmadctl.rs

/root/repo/target/debug/deps/nmadctl-0ffd4745d0ad7ada: src/bin/nmadctl.rs

src/bin/nmadctl.rs:
