//! Mutant: an unwrap two calls deep below a hot root, plus direct
//! indexing inside the root. Both must be flagged by
//! `hot-panic-freedom` when this file is fed to the analyzer.

// HOT-PATH: fixture pump root
pub fn mutant_pump(slots: &[u32]) -> u32 {
    let first = slots[0];
    first + mutant_middle()
}

fn mutant_middle() -> u32 {
    mutant_leaf()
}

fn mutant_leaf() -> u32 {
    let v: Option<u32> = None;
    v.unwrap()
}
