/root/repo/target/debug/examples/rpc_multiflow-38196a55948ffd29.d: examples/rpc_multiflow.rs

/root/repo/target/debug/examples/rpc_multiflow-38196a55948ffd29: examples/rpc_multiflow.rs

examples/rpc_multiflow.rs:
