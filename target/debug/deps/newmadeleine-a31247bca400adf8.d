/root/repo/target/debug/deps/newmadeleine-a31247bca400adf8.d: src/lib.rs

/root/repo/target/debug/deps/libnewmadeleine-a31247bca400adf8.rlib: src/lib.rs

/root/repo/target/debug/deps/libnewmadeleine-a31247bca400adf8.rmeta: src/lib.rs

src/lib.rs:
