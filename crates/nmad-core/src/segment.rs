//! Application data segments and their identification metadata.
//!
//! The collect layer "registers the pieces of data submitted by the
//! various communication flows of the application as well as the
//! meta-data necessary in their identification by the receiving side
//! (tag number, sender id, sequence number)" (§3.3). A [`PackWrapper`]
//! is one such registered piece together with that metadata.

use bytes::Bytes;
use nmad_sim::NodeId;
use std::fmt;

/// Logical flow identifier. Different MPI communicators (or RPC
/// channels, DSM streams, ...) map to different tags; the engine may
/// still aggregate across them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub u32);

/// Per-(peer, tag) sequence number, assigned by the sender's collect
/// layer and used by the receiver to restore submission order no matter
/// how the scheduler reordered the wire traffic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNo(pub u32);

impl SeqNo {
    /// The following sequence number (wrapping).
    pub fn next(self) -> SeqNo {
        SeqNo(self.0.wrapping_add(1))
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

impl fmt::Debug for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Scheduling hint attached by the application: high-priority segments
/// (e.g. an RPC service id needed to prepare receive areas, §2) are
/// eligible for earlier delivery under reordering strategies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Priority {
    /// Deliver as early as possible (control/header fragments).
    High,
    #[default]
    /// No special treatment.
    Normal,
}

/// Handle of an application send request; completes when every segment
/// it submitted has left the host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SendReqId(pub u64);

/// Handle of an application receive request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RecvReqId(pub u64);

/// One collected application segment awaiting scheduling, sitting in
/// the optimization window.
#[derive(Clone, Debug)]
pub struct PackWrapper {
    /// Destination node.
    pub dst: NodeId,
    /// Logical flow identifier.
    pub tag: Tag,
    /// Per-flow sequence number.
    pub seq: SeqNo,
    /// Application scheduling hint.
    pub priority: Priority,
    /// The segment's payload (borrowed from user space).
    pub data: Bytes,
    /// Request this segment contributes one completion unit to.
    pub req: SendReqId,
    /// Submission order stamp (monotonic per engine) so strategies can
    /// reason about age.
    pub order: u64,
}

impl PackWrapper {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for zero-length segments.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_increments_and_wraps() {
        assert_eq!(SeqNo(0).next(), SeqNo(1));
        assert_eq!(SeqNo(u32::MAX).next(), SeqNo(0));
    }

    #[test]
    fn priority_defaults_to_normal() {
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn wrapper_len_tracks_payload() {
        let w = PackWrapper {
            dst: NodeId(1),
            tag: Tag(0),
            seq: SeqNo(0),
            priority: Priority::Normal,
            data: Bytes::from_static(b"12345"),
            req: SendReqId(0),
            order: 0,
        };
        assert_eq!(w.len(), 5);
        assert!(!w.is_empty());
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", Tag(4)), "tag4");
        assert_eq!(format!("{:?}", SeqNo(9)), "#9");
    }
}
