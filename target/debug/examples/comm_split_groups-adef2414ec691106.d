/root/repo/target/debug/examples/comm_split_groups-adef2414ec691106.d: examples/comm_split_groups.rs Cargo.toml

/root/repo/target/debug/examples/libcomm_split_groups-adef2414ec691106.rmeta: examples/comm_split_groups.rs Cargo.toml

examples/comm_split_groups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
