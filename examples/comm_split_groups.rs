//! Subcommunicators via a distributed MPI_Comm_split.
//!
//! Six ranks split into "compute" (even) and "io" (odd) groups; each
//! group then works entirely in its own communicator — ranks renumber,
//! traffic stays isolated, and the engine still aggregates whatever
//! shares a wire.
//!
//! Run: `cargo run --release --example comm_split_groups`

use newmadeleine::mpi::{
    pump_cluster, sim_cluster, CollectiveOp, CommSplitOp, EngineKind, StrategyKind,
};
use newmadeleine::sim::nic;

const COMPUTE: i32 = 0;
const IO: i32 = 1;

fn main() {
    let n = 6;
    let (world, mut procs) = sim_cluster(
        n,
        nic::mx_myri10g(),
        EngineKind::MadMpi(StrategyKind::Aggreg),
    );
    let parent = procs[0].comm_world();

    // Collective split: evens → compute, odds → io.
    let mut splits: Vec<CommSplitOp> = procs
        .iter()
        .map(|p| {
            let color = if p.rank() % 2 == 0 { COMPUTE } else { IO };
            CommSplitOp::new(p, parent, color, p.rank() as i32)
        })
        .collect();
    pump_cluster(&world, &mut procs, |procs| {
        let mut all = true;
        for (p, op) in procs.iter_mut().zip(splits.iter_mut()) {
            all &= op.advance(p);
        }
        all
    });
    let comms: Vec<_> = splits
        .iter_mut()
        .map(|s| s.take_result().unwrap())
        .collect();

    for (rank, comm) in comms.iter().enumerate() {
        println!(
            "global rank {rank}: {} group, local rank {}/{} (members {:?})",
            if rank % 2 == 0 { "compute" } else { "io" },
            procs[rank].comm_rank(*comm),
            procs[rank].comm_size(*comm),
            procs[rank].comm_group(*comm),
        );
    }

    // Each group runs its own ring exchange using *local* ranks.
    let mut recvs = Vec::new();
    for g in 0..n {
        let comm = comms[g];
        let me = procs[g].comm_rank(comm);
        let size = procs[g].comm_size(comm);
        let from = (me + size - 1) % size;
        recvs.push(procs[g].irecv(comm, from, 0, 16));
    }
    for g in 0..n {
        let comm = comms[g];
        let me = procs[g].comm_rank(comm);
        let size = procs[g].comm_size(comm);
        let to = (me + 1) % size;
        procs[g].isend(comm, to, 0, format!("hi from local {me}").into_bytes());
    }
    pump_cluster(&world, &mut procs, |p| {
        recvs.iter().enumerate().all(|(g, &r)| p[g].test(r))
    });
    for (g, r) in recvs.into_iter().enumerate() {
        let comm = comms[g];
        let me = procs[g].comm_rank(comm);
        let size = procs[g].comm_size(comm);
        let from = (me + size - 1) % size;
        let msg = String::from_utf8(procs[g].take(r).unwrap()).unwrap();
        assert_eq!(msg, format!("hi from local {from}"));
    }
    println!(
        "\nboth group rings completed in isolation at {}",
        world.lock().now()
    );
}
