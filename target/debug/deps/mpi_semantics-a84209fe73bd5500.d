/root/repo/target/debug/deps/mpi_semantics-a84209fe73bd5500.d: tests/mpi_semantics.rs

/root/repo/target/debug/deps/mpi_semantics-a84209fe73bd5500: tests/mpi_semantics.rs

tests/mpi_semantics.rs:
