/root/repo/target/debug/deps/metrics-99f965f49e17ee0a.d: tests/metrics.rs

/root/repo/target/debug/deps/metrics-99f965f49e17ee0a: tests/metrics.rs

tests/metrics.rs:
