/root/repo/target/debug/deps/chaos-6c8fdd0e7483e1eb.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-6c8fdd0e7483e1eb: tests/chaos.rs

tests/chaos.rs:
