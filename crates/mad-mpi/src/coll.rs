//! Collectives built on point-to-point (extension beyond the paper's
//! subset).
//!
//! Implemented as *nonblocking state machines*: a collective is created
//! on every rank, then advanced inside the usual progress loop. This
//! keeps them usable both under the co-simulation pump (virtual time)
//! and on real transports (each rank's thread advances its own op).
//!
//! Algorithms are the textbook ones: dissemination barrier and binomial
//! broadcast, both O(log n) rounds. Collectives use the reserved
//! context (0); as in MPI, every rank must issue its collectives in the
//! same order.

use bytes::Bytes;

use crate::p2p::{Comm, MpiProc, Request};

/// Internal tag bases inside the reserved context.
const TAG_BARRIER: u16 = 0;
const TAG_BCAST: u16 = 64;
const TAG_GATHER: u16 = 128;
const TAG_ALLTOALL: u16 = 192;
const TAG_SCATTER: u16 = 224;

/// A collective in progress on one rank.
pub trait CollectiveOp {
    /// Advances the state machine; returns true once complete locally.
    /// Does not pump the backend — run it inside a progress loop.
    fn advance(&mut self, proc: &mut MpiProc) -> bool;

    /// True once complete (idempotent).
    fn is_done(&self) -> bool;
}

/// Dissemination barrier: in round k every rank sends a token to
/// `(rank + 2^k) mod n` and waits for one from `(rank - 2^k) mod n`.
pub struct BarrierOp {
    round: u32,
    rounds: u32,
    sent: Option<Request>,
    rcvd: Option<Request>,
    done: bool,
}

impl BarrierOp {
    /// Constructs this rank's instance of the collective.
    pub fn new(proc: &MpiProc) -> Self {
        let n = proc.size();
        let rounds = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n), 0 for n=1
        BarrierOp {
            round: 0,
            rounds,
            sent: None,
            rcvd: None,
            done: n <= 1,
        }
    }
}

impl CollectiveOp for BarrierOp {
    fn advance(&mut self, proc: &mut MpiProc) -> bool {
        while !self.done {
            if self.sent.is_none() {
                let n = proc.size();
                let me = proc.rank();
                let dist = 1usize << self.round;
                let to = (me + dist) % n;
                let tag = TAG_BARRIER + self.round as u16;
                self.sent = Some(proc.internal_isend(to, tag, Bytes::from_static(&[0])));
                let from = (me + n - dist) % n;
                self.rcvd = Some(proc.internal_irecv(from, tag, 1));
            }
            let s = self.sent.expect("posted");
            let r = self.rcvd.expect("posted");
            if !(proc.test(s) && proc.test(r)) {
                return false;
            }
            proc.take(r);
            self.sent = None;
            self.rcvd = None;
            self.round += 1;
            if self.round == self.rounds {
                self.done = true;
            }
        }
        true
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Binomial-tree broadcast from `root`. Every rank constructs the op;
/// the root passes `Some(data)`, the others `None` plus the maximum
/// expected size. The payload is available from
/// [`BcastOp::take_result`] once done.
pub struct BcastOp {
    root: usize,
    max: usize,
    mask: usize,
    data: Option<Vec<u8>>,
    pending: Option<Request>,
    phase: BcastPhase,
    done: bool,
}

#[derive(PartialEq, Eq)]
enum BcastPhase {
    /// Waiting to receive our copy (non-root ranks).
    Receiving,
    /// Relaying down the tree.
    Sending,
}

impl BcastOp {
    /// Constructs this rank's instance of the collective.
    pub fn new(proc: &MpiProc, root: usize, data: Option<Vec<u8>>, max: usize) -> Self {
        assert!(root < proc.size(), "root out of range");
        let is_root = proc.rank() == root;
        assert_eq!(
            is_root,
            data.is_some(),
            "exactly the root provides the payload"
        );
        let n = proc.size();
        BcastOp {
            root,
            max,
            // The root may start relaying at mask 1; receivers first
            // wait for their copy.
            mask: 1,
            data,
            pending: None,
            phase: if is_root {
                BcastPhase::Sending
            } else {
                BcastPhase::Receiving
            },
            done: n <= 1,
        }
    }

    fn vrank(&self, proc: &MpiProc) -> usize {
        (proc.rank() + proc.size() - self.root) % proc.size()
    }

    /// The broadcast payload, once done (every rank).
    pub fn take_result(&mut self) -> Option<Vec<u8>> {
        if self.done {
            self.data.take()
        } else {
            None
        }
    }
}

impl CollectiveOp for BcastOp {
    fn advance(&mut self, proc: &mut MpiProc) -> bool {
        while !self.done {
            let n = proc.size();
            let vrank = self.vrank(proc);
            match self.phase {
                BcastPhase::Receiving => {
                    // Receive in the round where mask ≤ vrank < 2·mask.
                    if self.mask * 2 <= vrank {
                        self.mask *= 2;
                        continue;
                    }
                    if self.pending.is_none() {
                        let from = (vrank - self.mask + self.root) % n;
                        let round = self.mask.trailing_zeros() as u16;
                        self.pending = Some(proc.internal_irecv(from, TAG_BCAST + round, self.max));
                    }
                    let r = self.pending.expect("posted");
                    if !proc.test(r) {
                        return false;
                    }
                    self.data = Some(proc.take(r).expect("tested"));
                    self.pending = None;
                    self.mask *= 2;
                    self.phase = BcastPhase::Sending;
                }
                BcastPhase::Sending => {
                    if self.mask >= n {
                        self.done = true;
                        break;
                    }
                    let partner = vrank + self.mask;
                    if partner < n {
                        if self.pending.is_none() {
                            let to = (partner + self.root) % n;
                            let round = self.mask.trailing_zeros() as u16;
                            let body =
                                Bytes::from(self.data.clone().expect("sender holds the data"));
                            self.pending = Some(proc.internal_isend(to, TAG_BCAST + round, body));
                        }
                        let s = self.pending.expect("posted");
                        if !proc.test(s) {
                            return false;
                        }
                        self.pending = None;
                    }
                    self.mask *= 2;
                }
            }
        }
        true
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Linear gather to `root`: every other rank sends its contribution;
/// the root collects one payload per rank (its own included). Linear is
/// appropriate at the cluster sizes of the paper's platform.
pub struct GatherOp {
    root: usize,
    max: usize,
    pending: Vec<Option<Request>>,
    my_send: Option<Request>,
    parts: Vec<Option<Vec<u8>>>,
    done: bool,
}

impl GatherOp {
    /// Constructs this rank's instance of the collective.
    pub fn new(proc: &MpiProc, root: usize, contribution: Vec<u8>, max: usize) -> Self {
        assert!(root < proc.size(), "root out of range");
        let n = proc.size();
        let mut parts = vec![None; n];
        let is_root = proc.rank() == root;
        if is_root {
            parts[root] = Some(contribution.clone());
        }
        GatherOp {
            root,
            max,
            pending: vec![None; n],
            // Non-roots send exactly once; stash the data in `parts`
            // until posted.
            my_send: None,
            parts: if is_root {
                parts
            } else {
                let mut p = vec![None; n];
                p[proc.rank()] = Some(contribution);
                p
            },
            done: n == 1,
        }
    }

    /// The gathered payloads in rank order (root only), once done.
    pub fn take_result(&mut self) -> Option<Vec<Vec<u8>>> {
        if !self.done {
            return None;
        }
        let parts: Option<Vec<Vec<u8>>> = self.parts.iter_mut().map(|p| p.take()).collect();
        parts
    }
}

impl CollectiveOp for GatherOp {
    fn advance(&mut self, proc: &mut MpiProc) -> bool {
        if self.done {
            return true;
        }
        let me = proc.rank();
        let n = proc.size();
        if me == self.root {
            // Post all receives once, then harvest.
            for rank in 0..n {
                if rank == me || self.pending[rank].is_some() || self.parts[rank].is_some() {
                    continue;
                }
                self.pending[rank] = Some(proc.internal_irecv(rank, TAG_GATHER, self.max));
            }
            let mut all = true;
            for rank in 0..n {
                if rank == me || self.parts[rank].is_some() {
                    continue;
                }
                let r = self.pending[rank].expect("posted above");
                if proc.test(r) {
                    self.parts[rank] = Some(proc.take(r).expect("tested"));
                    self.pending[rank] = None;
                } else {
                    all = false;
                }
            }
            self.done = all;
        } else {
            if self.my_send.is_none() {
                let body = Bytes::from(self.parts[me].take().expect("own contribution"));
                self.my_send = Some(proc.internal_isend(self.root, TAG_GATHER, body));
            }
            let s = self.my_send.expect("posted");
            self.done = proc.test(s);
        }
        self.done
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Allreduce as reduce-to-root + broadcast. `op` folds one peer
/// contribution into the accumulator; it must be associative and
/// commutative, and every rank must pass the same function.
pub struct AllreduceOp {
    gather: GatherOp,
    bcast: Option<BcastOp>,
    op: fn(&mut Vec<u8>, &[u8]),
    max: usize,
    result: Option<Vec<u8>>,
}

impl AllreduceOp {
    /// Constructs this rank's instance of the collective.
    pub fn new(
        proc: &MpiProc,
        contribution: Vec<u8>,
        op: fn(&mut Vec<u8>, &[u8]),
        max: usize,
    ) -> Self {
        AllreduceOp {
            gather: GatherOp::new(proc, 0, contribution, max),
            bcast: None,
            op,
            max,
            result: None,
        }
    }

    /// The reduced payload (every rank), once done.
    pub fn take_result(&mut self) -> Option<Vec<u8>> {
        self.result.take()
    }
}

impl CollectiveOp for AllreduceOp {
    fn advance(&mut self, proc: &mut MpiProc) -> bool {
        if self.result.is_some() {
            return true;
        }
        if self.bcast.is_none() {
            if !self.gather.advance(proc) {
                return false;
            }
            // Rank 0 reduces; everyone then joins the broadcast.
            let data = if proc.rank() == 0 {
                let parts = self.gather.take_result().expect("gather done on root");
                let mut acc = parts[0].clone();
                for part in &parts[1..] {
                    (self.op)(&mut acc, part);
                }
                Some(acc)
            } else {
                None
            };
            self.bcast = Some(BcastOp::new(proc, 0, data, self.max));
        }
        let bcast = self.bcast.as_mut().expect("constructed above");
        if !bcast.advance(proc) {
            return false;
        }
        self.result = bcast.take_result();
        debug_assert!(self.result.is_some());
        true
    }

    fn is_done(&self) -> bool {
        self.result.is_some()
    }
}

/// Linear all-to-all personalized exchange: rank i sends `inputs[j]` to
/// rank j and collects one payload from every rank. All sends are
/// posted up front, so on the NewMadeleine backend the whole exchange
/// towards one destination coalesces into few frames.
pub struct AlltoallOp {
    sends: Vec<Option<Request>>,
    recvs: Vec<Option<Request>>,
    outputs: Vec<Option<Vec<u8>>>,
    posted: bool,
    inputs: Vec<Vec<u8>>,
    max: usize,
    done: bool,
}

impl AlltoallOp {
    /// Constructs this rank's instance of the collective.
    pub fn new(proc: &MpiProc, inputs: Vec<Vec<u8>>, max: usize) -> Self {
        let n = proc.size();
        assert_eq!(inputs.len(), n, "one payload per destination rank");
        AlltoallOp {
            sends: vec![None; n],
            recvs: vec![None; n],
            outputs: vec![None; n],
            posted: false,
            inputs,
            max,
            done: false,
        }
    }

    /// The payload received from every rank, in rank order, once done.
    pub fn take_result(&mut self) -> Option<Vec<Vec<u8>>> {
        if !self.done {
            return None;
        }
        self.outputs.iter_mut().map(|p| p.take()).collect()
    }
}

impl CollectiveOp for AlltoallOp {
    fn advance(&mut self, proc: &mut MpiProc) -> bool {
        if self.done {
            return true;
        }
        let n = proc.size();
        let me = proc.rank();
        if !self.posted {
            // Own contribution loops back locally.
            self.outputs[me] = Some(std::mem::take(&mut self.inputs[me]));
            for peer in 0..n {
                if peer == me {
                    continue;
                }
                let body = Bytes::from(std::mem::take(&mut self.inputs[peer]));
                self.sends[peer] = Some(proc.internal_isend(peer, TAG_ALLTOALL, body));
                self.recvs[peer] = Some(proc.internal_irecv(peer, TAG_ALLTOALL, self.max));
            }
            self.posted = true;
        }
        let mut all = true;
        for peer in 0..n {
            if peer == me {
                continue;
            }
            if let Some(s) = self.sends[peer] {
                if proc.test(s) {
                    self.sends[peer] = None;
                } else {
                    all = false;
                }
            }
            if self.outputs[peer].is_none() {
                let r = self.recvs[peer].expect("posted");
                if proc.test(r) {
                    self.outputs[peer] = Some(proc.take(r).expect("tested"));
                } else {
                    all = false;
                }
            }
        }
        self.done = all;
        self.done
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Allgather as gather-to-rank-0 + broadcast of the concatenation.
/// Every rank ends with every rank's contribution, in rank order.
pub struct AllgatherOp {
    gather: GatherOp,
    bcast: Option<BcastOp>,
    per_rank_max: usize,
    result: Option<Vec<Vec<u8>>>,
}

impl AllgatherOp {
    /// Constructs this rank's instance of the collective.
    pub fn new(proc: &MpiProc, contribution: Vec<u8>, per_rank_max: usize) -> Self {
        AllgatherOp {
            gather: GatherOp::new(proc, 0, contribution, per_rank_max),
            bcast: None,
            per_rank_max,
            result: None,
        }
    }

    /// Every rank's contribution, once done.
    pub fn take_result(&mut self) -> Option<Vec<Vec<u8>>> {
        self.result.take()
    }

    fn encode(parts: &[Vec<u8>]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in parts {
            out.extend_from_slice(&(u32::try_from(p.len()).expect("part too large")).to_le_bytes());
            out.extend_from_slice(p);
        }
        out
    }

    fn decode(mut bytes: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while bytes.len() >= 4 {
            let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
            out.push(bytes[4..4 + len].to_vec());
            bytes = &bytes[4 + len..];
        }
        out
    }
}

impl CollectiveOp for AllgatherOp {
    fn advance(&mut self, proc: &mut MpiProc) -> bool {
        if self.result.is_some() {
            return true;
        }
        if self.bcast.is_none() {
            if !self.gather.advance(proc) {
                return false;
            }
            let data = if proc.rank() == 0 {
                let parts = self.gather.take_result().expect("gather done on root");
                Some(Self::encode(&parts))
            } else {
                None
            };
            let max = proc.size() * (self.per_rank_max + 4);
            self.bcast = Some(BcastOp::new(proc, 0, data, max));
        }
        let bcast = self.bcast.as_mut().expect("constructed above");
        if !bcast.advance(proc) {
            return false;
        }
        let blob = bcast.take_result().expect("bcast done");
        self.result = Some(Self::decode(&blob));
        true
    }

    fn is_done(&self) -> bool {
        self.result.is_some()
    }
}

/// Linear scatter from `root`: the root sends `inputs[j]` to rank j;
/// every rank ends with its own slice.
pub struct ScatterOp {
    root: usize,
    max: usize,
    inputs: Vec<Vec<u8>>,
    sends: Vec<Option<Request>>,
    recv: Option<Request>,
    result: Option<Vec<u8>>,
    posted: bool,
    done: bool,
}

impl ScatterOp {
    /// The root passes one payload per rank; the others pass an empty
    /// vec.
    pub fn new(proc: &MpiProc, root: usize, inputs: Vec<Vec<u8>>, max: usize) -> Self {
        assert!(root < proc.size(), "root out of range");
        let is_root = proc.rank() == root;
        assert_eq!(
            is_root,
            !inputs.is_empty(),
            "exactly the root provides the payloads"
        );
        if is_root {
            assert_eq!(inputs.len(), proc.size(), "one payload per rank");
        }
        ScatterOp {
            root,
            max,
            inputs,
            sends: vec![None; proc.size()],
            recv: None,
            result: None,
            posted: false,
            done: false,
        }
    }

    /// This rank's slice, once done.
    pub fn take_result(&mut self) -> Option<Vec<u8>> {
        if self.done {
            self.result.take()
        } else {
            None
        }
    }
}

impl CollectiveOp for ScatterOp {
    fn advance(&mut self, proc: &mut MpiProc) -> bool {
        if self.done {
            return true;
        }
        let n = proc.size();
        let me = proc.rank();
        if me == self.root {
            if !self.posted {
                self.result = Some(std::mem::take(&mut self.inputs[me]));
                for rank in 0..n {
                    if rank == me {
                        continue;
                    }
                    let body = Bytes::from(std::mem::take(&mut self.inputs[rank]));
                    self.sends[rank] = Some(proc.internal_isend(rank, TAG_SCATTER, body));
                }
                self.posted = true;
            }
            let mut all = true;
            for rank in 0..n {
                if let Some(s) = self.sends[rank] {
                    if proc.test(s) {
                        self.sends[rank] = None;
                    } else {
                        all = false;
                    }
                }
            }
            self.done = all;
        } else {
            if self.recv.is_none() {
                self.recv = Some(proc.internal_irecv(self.root, TAG_SCATTER, self.max));
            }
            let r = self.recv.expect("posted");
            if proc.test(r) {
                self.result = Some(proc.take(r).expect("tested"));
                self.done = true;
            }
        }
        self.done
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Distributed MPI_Comm_split over the whole job: every rank
/// contributes `(color, key)`; ranks sharing a color form a new
/// communicator, ordered by `(key, global rank)`. Implemented as an
/// allgather of the `(color, key)` pairs followed by a purely local,
/// deterministic group computation — so every rank registers identical
/// groups under identical fresh contexts.
///
/// Current restriction: the parent must span the whole job (split of
/// MPI_COMM_WORLD or a duplicate of it).
pub struct CommSplitOp {
    allgather: AllgatherOp,
    color: i32,
    key: i32,
    result: Option<Comm>,
}

impl CommSplitOp {
    /// Begins the split; collective over every rank of the job.
    pub fn new(proc: &MpiProc, parent: Comm, color: i32, key: i32) -> Self {
        assert_eq!(
            proc.comm_size(parent),
            proc.size(),
            "comm_split currently requires a whole-job parent communicator"
        );
        let mut contribution = Vec::with_capacity(8);
        contribution.extend_from_slice(&color.to_le_bytes());
        contribution.extend_from_slice(&key.to_le_bytes());
        CommSplitOp {
            allgather: AllgatherOp::new(proc, contribution, 8),
            color,
            key,
            result: None,
        }
    }

    /// The new communicator, once done.
    pub fn take_result(&mut self) -> Option<Comm> {
        self.result.take()
    }
}

impl CollectiveOp for CommSplitOp {
    fn advance(&mut self, proc: &mut MpiProc) -> bool {
        if self.result.is_some() {
            return true;
        }
        if !self.allgather.advance(proc) {
            return false;
        }
        let parts = self.allgather.take_result().expect("allgather completed");
        let pairs: Vec<(i32, i32)> = parts
            .iter()
            .map(|p| {
                (
                    i32::from_le_bytes(p[0..4].try_into().expect("4 bytes")),
                    i32::from_le_bytes(p[4..8].try_into().expect("4 bytes")),
                )
            })
            .collect();
        // Deterministic registration order: ascending distinct colors.
        // Every rank registers EVERY color group so context allocation
        // stays aligned across the job; it keeps only its own comm.
        let mut colors: Vec<i32> = pairs.iter().map(|&(c, _)| c).collect();
        colors.sort_unstable();
        colors.dedup();
        let mut mine = None;
        for color in colors {
            let mut members: Vec<(i32, usize)> = pairs
                .iter()
                .enumerate()
                .filter(|&(_, &(c, _))| c == color)
                .map(|(rank, &(_, key))| (key, rank))
                .collect();
            members.sort_unstable();
            let group: Vec<usize> = members.into_iter().map(|(_, rank)| rank).collect();
            let comm = proc.register_comm(group);
            if color == self.color {
                mine = Some(comm);
            }
        }
        let _ = self.key;
        self.result = Some(mine.expect("own color always forms a group"));
        true
    }

    fn is_done(&self) -> bool {
        self.result.is_some()
    }
}

/// Reduce-to-root: gather + fold at the root (the root gets the result;
/// other ranks get `None`). `op` must be associative and commutative.
pub struct ReduceOp {
    gather: GatherOp,
    root: usize,
    op: fn(&mut Vec<u8>, &[u8]),
    result: Option<Vec<u8>>,
    done: bool,
}

impl ReduceOp {
    /// Constructs this rank's instance of the collective.
    pub fn new(
        proc: &MpiProc,
        root: usize,
        contribution: Vec<u8>,
        op: fn(&mut Vec<u8>, &[u8]),
        max: usize,
    ) -> Self {
        ReduceOp {
            gather: GatherOp::new(proc, root, contribution, max),
            root,
            op,
            result: None,
            done: false,
        }
    }

    /// The folded result (root only), once done.
    pub fn take_result(&mut self) -> Option<Vec<u8>> {
        self.result.take()
    }
}

impl CollectiveOp for ReduceOp {
    fn advance(&mut self, proc: &mut MpiProc) -> bool {
        if self.done {
            return true;
        }
        if !self.gather.advance(proc) {
            return false;
        }
        if proc.rank() == self.root {
            let parts = self.gather.take_result().expect("gather done on root");
            let mut acc = parts[0].clone();
            for part in &parts[1..] {
                (self.op)(&mut acc, part);
            }
            self.result = Some(acc);
        }
        self.done = true;
        true
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Runs one collective instance per rank to completion under the
/// co-simulation pump.
pub fn run_collective_sim(
    world: &nmad_sim::SharedWorld,
    procs: &mut [MpiProc],
    ops: &mut [Box<dyn CollectiveOp>],
) {
    assert_eq!(procs.len(), ops.len());
    crate::cluster::pump_cluster(world, procs, |procs| {
        let mut all = true;
        for (proc, op) in procs.iter_mut().zip(ops.iter_mut()) {
            all &= op.advance(proc);
        }
        all
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{sim_cluster, EngineKind, StrategyKind};
    use nmad_sim::nic;

    fn kinds() -> [EngineKind; 3] {
        [
            EngineKind::MadMpi(StrategyKind::Aggreg),
            EngineKind::Mpich,
            EngineKind::Ompi,
        ]
    }

    #[test]
    fn barrier_completes_on_every_backend_and_size() {
        for kind in kinds() {
            for n in [1usize, 2, 3, 5, 8] {
                let (world, mut procs) = sim_cluster(n, nic::quadrics_qm500(), kind);
                let mut ops: Vec<Box<dyn CollectiveOp>> = procs
                    .iter()
                    .map(|p| Box::new(BarrierOp::new(p)) as Box<dyn CollectiveOp>)
                    .collect();
                run_collective_sim(&world, &mut procs, &mut ops);
                assert!(ops.iter().all(|o| o.is_done()), "{} n={n}", kind.label());
            }
        }
    }

    #[test]
    fn bcast_delivers_payload_to_every_rank() {
        for root in [0usize, 2] {
            let n = 5;
            let (world, mut procs) = sim_cluster(
                n,
                nic::mx_myri10g(),
                EngineKind::MadMpi(StrategyKind::Aggreg),
            );
            let payload = b"broadcast body".to_vec();
            let mut ops: Vec<BcastOp> = procs
                .iter()
                .map(|p| {
                    let data = (p.rank() == root).then(|| payload.clone());
                    BcastOp::new(p, root, data, 64)
                })
                .collect();
            crate::cluster::pump_cluster(&world, &mut procs, |procs| {
                let mut all = true;
                for (proc, op) in procs.iter_mut().zip(ops.iter_mut()) {
                    all &= op.advance(proc);
                }
                all
            });
            for mut op in ops {
                assert_eq!(op.take_result().unwrap(), payload, "root={root}");
            }
        }
    }

    #[test]
    fn gather_collects_rank_contributions_in_order() {
        let n = 5;
        let (world, mut procs) = sim_cluster(
            n,
            nic::mx_myri10g(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let mut ops: Vec<GatherOp> = procs
            .iter()
            .map(|p| GatherOp::new(p, 1, vec![p.rank() as u8; 4 + p.rank()], 64))
            .collect();
        crate::cluster::pump_cluster(&world, &mut procs, |procs| {
            let mut all = true;
            for (proc, op) in procs.iter_mut().zip(ops.iter_mut()) {
                all &= op.advance(proc);
            }
            all
        });
        let gathered = ops[1].take_result().expect("root result");
        for (rank, part) in gathered.iter().enumerate() {
            assert_eq!(part, &vec![rank as u8; 4 + rank]);
        }
        assert!(
            ops[0].take_result().is_none() || 0 == 1,
            "only root gets data"
        );
    }

    #[test]
    fn allreduce_sums_on_every_rank() {
        fn sum_fold(acc: &mut Vec<u8>, other: &[u8]) {
            let a = u64::from_le_bytes(acc.as_slice().try_into().expect("8 bytes"));
            let b = u64::from_le_bytes(other.try_into().expect("8 bytes"));
            *acc = (a + b).to_le_bytes().to_vec();
        }
        let n = 6;
        let (world, mut procs) = sim_cluster(
            n,
            nic::quadrics_qm500(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let mut ops: Vec<AllreduceOp> = procs
            .iter()
            .map(|p| {
                AllreduceOp::new(
                    p,
                    ((p.rank() as u64) + 1).to_le_bytes().to_vec(),
                    sum_fold,
                    8,
                )
            })
            .collect();
        crate::cluster::pump_cluster(&world, &mut procs, |procs| {
            let mut all = true;
            for (proc, op) in procs.iter_mut().zip(ops.iter_mut()) {
                all &= op.advance(proc);
            }
            all
        });
        let expected: u64 = (1..=n as u64).sum();
        for mut op in ops {
            let out = op.take_result().expect("all ranks get the result");
            assert_eq!(
                u64::from_le_bytes(out.as_slice().try_into().unwrap()),
                expected
            );
        }
    }

    #[test]
    fn gather_single_rank_completes_immediately() {
        let (_, procs) = sim_cluster(
            1,
            nic::mx_myri10g(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let mut op = GatherOp::new(&procs[0], 0, vec![7], 8);
        assert!(op.is_done());
        assert_eq!(op.take_result().unwrap(), vec![vec![7]]);
    }

    #[test]
    fn alltoall_exchanges_personalized_payloads() {
        let n = 4;
        let (world, mut procs) = sim_cluster(
            n,
            nic::mx_myri10g(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let mut ops: Vec<AlltoallOp> = procs
            .iter()
            .map(|p| {
                let inputs: Vec<Vec<u8>> = (0..n)
                    .map(|dst| vec![(p.rank() * 10 + dst) as u8; 8])
                    .collect();
                AlltoallOp::new(p, inputs, 16)
            })
            .collect();
        crate::cluster::pump_cluster(&world, &mut procs, |procs| {
            let mut all = true;
            for (proc, op) in procs.iter_mut().zip(ops.iter_mut()) {
                all &= op.advance(proc);
            }
            all
        });
        for (me, mut op) in ops.into_iter().enumerate() {
            let outputs = op.take_result().expect("done");
            for (src, out) in outputs.iter().enumerate() {
                assert_eq!(out, &vec![(src * 10 + me) as u8; 8], "rank {me} from {src}");
            }
        }
    }

    #[test]
    fn allgather_gives_every_rank_everything() {
        let n = 5;
        let (world, mut procs) = sim_cluster(
            n,
            nic::mx_myri10g(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let mut ops: Vec<AllgatherOp> = procs
            .iter()
            .map(|p| AllgatherOp::new(p, vec![p.rank() as u8 + 1; 3 + p.rank()], 16))
            .collect();
        crate::cluster::pump_cluster(&world, &mut procs, |procs| {
            let mut all = true;
            for (p, op) in procs.iter_mut().zip(ops.iter_mut()) {
                all &= op.advance(p);
            }
            all
        });
        for mut op in ops {
            let parts = op.take_result().expect("done everywhere");
            assert_eq!(parts.len(), n);
            for (rank, part) in parts.iter().enumerate() {
                assert_eq!(part, &vec![rank as u8 + 1; 3 + rank]);
            }
        }
    }

    #[test]
    fn scatter_distributes_root_slices() {
        let n = 4;
        let root = 2;
        let (world, mut procs) = sim_cluster(
            n,
            nic::quadrics_qm500(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let mut ops: Vec<ScatterOp> = procs
            .iter()
            .map(|p| {
                let inputs = if p.rank() == root {
                    (0..n).map(|r| vec![r as u8 * 3; 5]).collect()
                } else {
                    Vec::new()
                };
                ScatterOp::new(p, root, inputs, 16)
            })
            .collect();
        crate::cluster::pump_cluster(&world, &mut procs, |procs| {
            let mut all = true;
            for (p, op) in procs.iter_mut().zip(ops.iter_mut()) {
                all &= op.advance(p);
            }
            all
        });
        for (rank, mut op) in ops.into_iter().enumerate() {
            assert_eq!(op.take_result().unwrap(), vec![rank as u8 * 3; 5]);
        }
    }

    #[test]
    fn comm_split_partitions_and_isolates() {
        let n = 6;
        let (world, mut procs) = sim_cluster(
            n,
            nic::mx_myri10g(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let parent = procs[0].comm_world();
        // Split into even/odd; key reverses the order within evens.
        let mut ops: Vec<CommSplitOp> = procs
            .iter()
            .map(|p| {
                let color = (p.rank() % 2) as i32;
                let key = if color == 0 {
                    -(p.rank() as i32)
                } else {
                    p.rank() as i32
                };
                CommSplitOp::new(p, parent, color, key)
            })
            .collect();
        crate::cluster::pump_cluster(&world, &mut procs, |procs| {
            let mut all = true;
            for (p, op) in procs.iter_mut().zip(ops.iter_mut()) {
                all &= op.advance(p);
            }
            all
        });
        let comms: Vec<Comm> = ops.iter_mut().map(|o| o.take_result().unwrap()).collect();

        // Groups: evens reversed by key, odds ascending.
        assert_eq!(procs[0].comm_group(comms[0]), &[4, 2, 0]);
        assert_eq!(procs[1].comm_group(comms[1]), &[1, 3, 5]);
        assert_eq!(procs[4].comm_rank(comms[4]), 0, "rank 4 leads the evens");
        assert_eq!(procs[0].comm_size(comms[0]), 3);

        // Exchange within the odd subcomm using subcomm ranks.
        let odd = comms[1];
        let s = procs[1].isend(odd, 2, 7, &b"to-odd-rank-2"[..]); // global rank 5
        let r = procs[5].irecv(odd, 0, 7, 32); // from odd rank 0 = global 1
        crate::cluster::pump_cluster(&world, &mut procs, |p| p[5].test(r));
        assert_eq!(procs[5].take(r).unwrap(), b"to-odd-rank-2");
        let _ = s;

        // Isolation: the same (rank, tag) on the parent does not match
        // subcomm traffic.
        let s2 = procs[1].isend(odd, 1, 9, &b"subcomm"[..]); // to global 3
        let r_wrong = procs[3].irecv(parent, 1, 9, 32);
        let r_right = procs[3].irecv(odd, 0, 9, 32);
        crate::cluster::pump_cluster(&world, &mut procs, |p| p[3].test(r_right));
        assert_eq!(procs[3].take(r_right).unwrap(), b"subcomm");
        assert!(
            !procs[3].test(r_wrong),
            "parent-comm receive must not match"
        );
        let _ = s2;
    }

    #[test]
    fn comm_split_single_color_is_a_dup_with_reordering() {
        let n = 4;
        let (world, mut procs) = sim_cluster(
            n,
            nic::quadrics_qm500(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let parent = procs[0].comm_world();
        // Same color everywhere, key = -rank: the new comm reverses ranks.
        let mut ops: Vec<CommSplitOp> = procs
            .iter()
            .map(|p| CommSplitOp::new(p, parent, 7, -(p.rank() as i32)))
            .collect();
        crate::cluster::pump_cluster(&world, &mut procs, |procs| {
            let mut all = true;
            for (p, op) in procs.iter_mut().zip(ops.iter_mut()) {
                all &= op.advance(p);
            }
            all
        });
        let comm = ops[0].take_result().unwrap();
        assert_eq!(procs[0].comm_group(comm), &[3, 2, 1, 0]);
        assert_eq!(procs[3].comm_rank(comm), 0);
    }

    #[test]
    fn reduce_folds_at_the_root_only() {
        fn sum_fold(acc: &mut Vec<u8>, other: &[u8]) {
            let a = u32::from_le_bytes(acc.as_slice().try_into().expect("4 bytes"));
            let b = u32::from_le_bytes(other.try_into().expect("4 bytes"));
            *acc = (a + b).to_le_bytes().to_vec();
        }
        let n = 5;
        let root = 3;
        let (world, mut procs) = sim_cluster(
            n,
            nic::mx_myri10g(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let mut ops: Vec<ReduceOp> = procs
            .iter()
            .map(|p| {
                ReduceOp::new(
                    p,
                    root,
                    ((p.rank() as u32) * 10).to_le_bytes().to_vec(),
                    sum_fold,
                    4,
                )
            })
            .collect();
        crate::cluster::pump_cluster(&world, &mut procs, |procs| {
            let mut all = true;
            for (p, op) in procs.iter_mut().zip(ops.iter_mut()) {
                all &= op.advance(p);
            }
            all
        });
        for (rank, mut op) in ops.into_iter().enumerate() {
            let out = op.take_result();
            if rank == root {
                let sum: u32 = (0..n as u32).map(|r| r * 10).sum();
                assert_eq!(
                    u32::from_le_bytes(out.unwrap().as_slice().try_into().unwrap()),
                    sum
                );
            } else {
                assert!(out.is_none(), "non-roots get no result");
            }
        }
    }

    #[test]
    fn barrier_actually_synchronizes() {
        // Rank 0 delays (big CPU charge); the barrier must not complete
        // before that charge has elapsed on the virtual clock.
        let (world, mut procs) = sim_cluster(
            3,
            nic::mx_myri10g(),
            EngineKind::MadMpi(StrategyKind::Aggreg),
        );
        let delay_us = 5_000.0;
        world.lock().charge_cpu(
            nmad_sim::NodeId(0),
            nmad_sim::SimDuration::from_us_f64(delay_us),
        );
        let mut ops: Vec<Box<dyn CollectiveOp>> = procs
            .iter()
            .map(|p| Box::new(BarrierOp::new(p)) as Box<dyn CollectiveOp>)
            .collect();
        run_collective_sim(&world, &mut procs, &mut ops);
        let t = world.lock().now();
        assert!(
            t.as_us_f64() >= delay_us,
            "barrier completed at {t} before the slow rank caught up"
        );
    }
}
