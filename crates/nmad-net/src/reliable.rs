//! Go-back-N reliability as a driver decorator.
//!
//! The paper's fabrics (Myrinet, Quadrics, SCI) are lossless and its
//! TCP port inherits reliability from TCP. [`ReliableDriver`] extends
//! the reproduction to *lossy datagram* fabrics: it wraps any
//! [`Driver`] and guarantees in-order, exactly-once frame delivery on
//! top of a link that may drop frames (for example a
//! [`LossyDriver`](crate::lossy::LossyDriver)).
//!
//! Protocol (classic go-back-N with cumulative acks):
//!
//! * every data frame carries `(seq, ack)`; `ack` is the receiver's
//!   next expected sequence, piggybacked on everything;
//! * the receiver delivers in-order frames, buffers a bounded window of
//!   out-of-order ones, and acknowledges every arrival (a duplicate
//!   cumulative ack signals a gap);
//! * the sender holds unacknowledged frames and retransmits them all on
//!   a duplicate ack or when the retransmission timeout fires.
//!
//! Time is abstracted: the decorator takes a `now` closure (virtual
//! time under the simulator, `Instant` on real transports) and an
//! optional wakeup hook so a simulated clock knows to stop at the
//! retransmission deadline.

use crate::backoff::BackoffPolicy;
use crate::driver::{Capabilities, Driver, LinkStats, NetResult, RxFrame, SendHandle};
use crate::fault::{checksum32, FaultPlan, FaultStats};
use bytes::Bytes;
use nmad_sim::NodeId;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Decorator header: kind (1) + seq (4) + ack (4) + checksum (4).
/// Public so harnesses can peel the header off captured frames.
pub const HEADER_LEN: usize = 13;
/// Frame kind: data carrying an engine frame as payload.
pub const KIND_DATA: u8 = 1;
/// Frame kind: standalone cumulative acknowledgement.
pub const KIND_ACK: u8 = 2;

/// Consecutive timeouts double the retransmission timeout up to this
/// multiple of the base RTO (exponential backoff; reset on ack
/// progress).
const RTO_BACKOFF_CAP: u64 = 32;

/// Cap on buffered out-of-order frames per peer (go-back-N resends
/// everything anyway; the buffer only saves bandwidth).
const REORDER_WINDOW: usize = 64;

/// Reliability-layer counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Data frames sent for the first time.
    pub data_sent: u64,
    /// Data frames retransmitted.
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Duplicate cumulative acks received (gap signals).
    pub dup_acks: u64,
    /// Duplicate/old data frames discarded at the receiver.
    pub duplicates_dropped: u64,
    /// Standalone ack frames sent.
    pub acks_sent: u64,
    /// Frames discarded because their checksum did not verify
    /// (corruption on the wire).
    pub corrupt_dropped: u64,
}

#[derive(Default)]
struct PeerState {
    // --- sender side ---
    next_tx_seq: u32,
    /// Unacknowledged payloads, oldest first: (seq, payload).
    unacked: VecDeque<(u32, Vec<u8>)>,
    last_tx_ns: u64,
    last_ack_seen: u32,
    /// Consecutive retransmission timeouts without ack progress; feeds
    /// the exponential backoff of this peer's effective RTO.
    rto_attempt: u32,
    // --- receiver side ---
    next_rx_seq: u32,
    out_of_order: BTreeMap<u32, Bytes>,
    owes_ack: bool,
}

/// See the module documentation.
pub struct ReliableDriver<D> {
    inner: D,
    now: Box<dyn Fn() -> u64 + Send>,
    request_wakeup: Option<Box<dyn Fn(u64) + Send>>,
    rto_ns: u64,
    peers: HashMap<NodeId, PeerState>,
    rx_ready: VecDeque<RxFrame>,
    /// Inner send handles we fire-and-forget (acks, retransmits);
    /// reaped opportunistically.
    inner_handles: VecDeque<SendHandle>,
    /// Public handles map 1:1 to data frames; complete once acked.
    pending: HashMap<SendHandle, (NodeId, u32)>,
    next_handle: u64,
    stats: ReliableStats,
}

fn encode(kind: u8, seq: u32, ack: u32, payload: &[u8]) -> Vec<u8> {
    encode_iov(kind, seq, ack, &[payload])
}

/// Encodes a decorator frame directly from the engine's gather iov, so
/// multi-segment posts are assembled once instead of concatenated into
/// an intermediate buffer first.
fn encode_iov(kind: u8, seq: u32, ack: u32, iov: &[&[u8]]) -> Vec<u8> {
    let len: usize = iov.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + len);
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&ack.to_le_bytes());
    let crc = {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(iov.len() + 1);
        parts.push(&out[..9]);
        parts.extend_from_slice(iov);
        checksum32(&parts)
    };
    out.extend_from_slice(&crc.to_le_bytes());
    for seg in iov {
        out.extend_from_slice(seg);
    }
    out
}

/// Verifies a received decorator frame's checksum.
fn verify(frame: &[u8]) -> bool {
    debug_assert!(frame.len() >= HEADER_LEN);
    let stamped = u32::from_le_bytes(frame[9..13].try_into().expect("4")); // PANIC-OK: 4-byte slice by construction
    stamped == checksum32(&[&frame[..9], &frame[HEADER_LEN..]])
}

impl<D: Driver> ReliableDriver<D> {
    /// Wraps `inner` with go-back-N reliability.
    ///
    /// `now` supplies monotonic nanoseconds; `request_wakeup` (if any)
    /// is invoked with the absolute deadline whenever a retransmission
    /// timer is armed, so a virtual clock can schedule a stop there.
    /// `rto_ns` is the retransmission timeout; size it above the
    /// worst-case round trip *including the serialization time of the
    /// largest frame*, or go-back-N will retransmit spuriously.
    pub fn new(
        inner: D,
        now: Box<dyn Fn() -> u64 + Send>,
        request_wakeup: Option<Box<dyn Fn(u64) + Send>>,
        rto_ns: u64,
    ) -> Self {
        assert!(rto_ns > 0, "zero retransmission timeout");
        ReliableDriver {
            inner,
            now,
            request_wakeup,
            rto_ns,
            peers: HashMap::new(),
            rx_ready: VecDeque::new(),
            inner_handles: VecDeque::new(),
            pending: HashMap::new(),
            next_handle: 0,
            stats: ReliableStats::default(),
        }
    }

    /// Reliability counters so far.
    pub fn stats(&self) -> ReliableStats {
        self.stats
    }

    /// The wrapped driver.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn arm_timer(&self, deadline: u64) {
        if let Some(hook) = &self.request_wakeup {
            hook(deadline);
        }
    }

    /// Effective RTO after `attempt` consecutive timeouts: the shared
    /// exponential-backoff schedule over the base RTO.
    fn rto_for(&self, attempt: u32) -> u64 {
        BackoffPolicy::new(self.rto_ns, self.rto_ns.saturating_mul(RTO_BACKOFF_CAP))
            .delay_for(attempt)
    }

    fn reap_inner_handles(&mut self) -> NetResult<()> {
        for _ in 0..self.inner_handles.len() {
            let h = self.inner_handles.pop_front().expect("len checked"); // PANIC-OK: len checked in the loop condition
            if !self.inner.test_send(h)? {
                self.inner_handles.push_back(h);
            }
        }
        Ok(())
    }

    fn send_raw(&mut self, dst: NodeId, frame: &[u8]) -> NetResult<()> {
        let h = self.inner.post_send(dst, &[frame])?;
        self.inner_handles.push_back(h);
        Ok(())
    }

    fn retransmit_all(&mut self, dst: NodeId) -> NetResult<()> {
        let now = (self.now)();
        let peer = self.peers.entry(dst).or_default();
        let ack = peer.next_rx_seq;
        let frames: Vec<(u32, Vec<u8>)> = peer
            .unacked
            .iter()
            .map(|(seq, payload)| (*seq, encode(KIND_DATA, *seq, ack, payload)))
            .collect();
        let count = frames.len() as u64;
        if count == 0 {
            return Ok(());
        }
        let attempt = {
            let peer = self.peers.get_mut(&dst).expect("present"); // PANIC-OK: dst drawn from the peers keys
            peer.last_tx_ns = now;
            peer.rto_attempt
        };
        for (_, frame) in frames {
            self.send_raw(dst, &frame)?;
        }
        self.stats.retransmits += count;
        self.arm_timer(now + self.rto_for(attempt));
        Ok(())
    }

    fn send_ack(&mut self, dst: NodeId) -> NetResult<()> {
        let peer = self.peers.entry(dst).or_default();
        let ack = peer.next_rx_seq;
        let seq = peer.next_tx_seq; // informational on ack frames
        peer.owes_ack = false;
        let frame = encode(KIND_ACK, seq, ack, &[]);
        self.send_raw(dst, &frame)?;
        self.stats.acks_sent += 1;
        Ok(())
    }

    fn handle_ack(&mut self, src: NodeId, ack: u32) -> NetResult<()> {
        let (stale, dup) = {
            let peer = self.peers.entry(src).or_default();
            let before = peer.unacked.len();
            while peer.unacked.front().is_some_and(|&(seq, _)| seq < ack) {
                peer.unacked.pop_front();
            }
            let advanced = peer.unacked.len() != before;
            if advanced {
                // Ack progress: the next timeout starts over at the
                // base RTO.
                peer.rto_attempt = 0;
            }
            let dup = !advanced && ack == peer.last_ack_seen && !peer.unacked.is_empty();
            peer.last_ack_seen = ack;
            (peer.unacked.is_empty(), dup)
        };
        // Completions: every pending handle whose seq is now acked.
        self.pending
            .retain(|_, &mut (peer, seq)| !(peer == src && seq < ack));
        let _ = stale;
        if dup {
            // A duplicate cumulative ack while data is outstanding is a
            // gap signal: go back and resend the window.
            self.stats.dup_acks += 1;
            self.retransmit_all(src)?;
        }
        Ok(())
    }

    fn handle_data(&mut self, src: NodeId, seq: u32, payload: Bytes) {
        let peer = self.peers.entry(src).or_default();
        if seq < peer.next_rx_seq {
            self.stats.duplicates_dropped += 1;
            peer.owes_ack = true; // re-ack so the sender advances
            return;
        }
        if seq == peer.next_rx_seq {
            peer.next_rx_seq += 1;
            self.rx_ready.push_back(RxFrame { src, payload });
            // Drain any directly following buffered frames.
            while let Some(p) = peer.out_of_order.remove(&peer.next_rx_seq) {
                peer.next_rx_seq += 1;
                self.rx_ready.push_back(RxFrame { src, payload: p });
            }
        } else if peer.out_of_order.len() < REORDER_WINDOW {
            peer.out_of_order.insert(seq, payload);
        }
        // Ack everything we see: in-order data advances the cumulative
        // ack, out-of-order data produces the duplicate-ack gap signal.
        peer.owes_ack = true;
    }
}

impl<D: Driver> Driver for ReliableDriver<D> {
    fn caps(&self) -> &Capabilities {
        self.inner.caps()
    }

    fn local_node(&self) -> NodeId {
        self.inner.local_node()
    }

    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
        let now = (self.now)();
        let (seq, frame, attempt) = {
            let peer = self.peers.entry(dst).or_default();
            let seq = peer.next_tx_seq;
            peer.next_tx_seq += 1;
            // Assemble the wire frame straight from the gather iov;
            // the retransmission copy is carved from the frame itself.
            let frame = encode_iov(KIND_DATA, seq, peer.next_rx_seq, iov);
            peer.unacked.push_back((seq, frame[HEADER_LEN..].to_vec()));
            peer.last_tx_ns = now;
            (seq, frame, peer.rto_attempt)
        };
        self.send_raw(dst, &frame)?;
        self.stats.data_sent += 1;
        self.arm_timer(now + self.rto_for(attempt));
        let handle = SendHandle(self.next_handle);
        self.next_handle += 1;
        self.pending.insert(handle, (dst, seq));
        Ok(handle)
    }

    fn test_send(&mut self, handle: SendHandle) -> NetResult<bool> {
        self.pump()?;
        Ok(!self.pending.contains_key(&handle))
    }

    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>> {
        if let Some(f) = self.rx_ready.pop_front() {
            return Ok(Some(f));
        }
        self.pump()?;
        Ok(self.rx_ready.pop_front())
    }

    fn tx_idle(&self) -> bool {
        self.inner.tx_idle()
    }

    fn link_stats(&self) -> LinkStats {
        let mut stats = self.inner.link_stats();
        stats.retransmits += self.stats.retransmits;
        stats.acks += self.stats.acks_sent;
        stats
    }

    fn pump(&mut self) -> NetResult<()> {
        self.inner.pump()?;
        self.reap_inner_handles()?;

        // Drain the wire.
        while let Some(frame) = self.inner.poll_recv()? {
            if frame.payload.len() < HEADER_LEN {
                continue; // not ours; drop (corrupt or foreign)
            }
            if !verify(&frame.payload) {
                // Bit rot on the wire: drop the whole frame; the
                // sender's window retransmits it intact.
                self.stats.corrupt_dropped += 1;
                continue;
            }
            let kind = frame.payload[0];
            let seq = u32::from_le_bytes(frame.payload[1..5].try_into().expect("4")); // PANIC-OK: 4-byte slice by construction
            let ack = u32::from_le_bytes(frame.payload[5..9].try_into().expect("4")); // PANIC-OK: 4-byte slice by construction
            self.handle_ack(frame.src, ack)?;
            if kind == KIND_DATA {
                // Zero-copy: the delivered payload is a slice of the
                // received frame buffer.
                self.handle_data(frame.src, seq, frame.payload.slice(HEADER_LEN..));
            }
        }

        // Send owed acks.
        let owing: Vec<NodeId> = self
            .peers
            .iter()
            .filter(|&(_, p)| p.owes_ack)
            .map(|(&n, _)| n)
            .collect();
        for dst in owing {
            self.send_ack(dst)?;
        }

        // Retransmission timeouts, each peer judged against its own
        // backed-off RTO.
        let now = (self.now)();
        let expired: Vec<NodeId> = self
            .peers
            .iter()
            .filter(|&(_, p)| {
                !p.unacked.is_empty()
                    && now.saturating_sub(p.last_tx_ns) >= self.rto_for(p.rto_attempt)
            })
            .map(|(&n, _)| n)
            .collect();
        for dst in expired {
            self.stats.timeouts += 1;
            // Another consecutive timeout: back the RTO off before the
            // retransmission arms the next timer.
            let peer = self.peers.get_mut(&dst).expect("expired implies present"); // PANIC-OK: expiry list built from live peers entries
            peer.rto_attempt = peer.rto_attempt.saturating_add(1);
            self.retransmit_all(dst)?;
        }
        Ok(())
    }

    fn install_faults(&mut self, plan: FaultPlan) -> bool {
        self.inner.install_faults(plan)
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    fn endpoint_stats(&self) -> crate::endpoint::EndpointStats {
        self.inner.endpoint_stats()
    }

    fn set_rx_backpressure(&mut self, paused: bool) {
        self.inner.set_rx_backpressure(paused);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lossy::LossyDriver;
    use crate::mem::mem_fabric;
    use nmad_verify::sync::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A controllable test clock.
    fn test_clock() -> (Arc<AtomicU64>, Box<dyn Fn() -> u64 + Send>) {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        (t, Box::new(move || t2.load(Ordering::Relaxed)))
    }

    fn wrap<D: Driver>(d: D, clock: Box<dyn Fn() -> u64 + Send>) -> ReliableDriver<D> {
        ReliableDriver::new(d, clock, None, 1_000_000)
    }

    #[test]
    fn lossless_path_delivers_in_order() {
        let mut fabric = mem_fabric(2);
        let (ca, _) = test_clock();
        let (cb, _) = test_clock();
        let _ = (ca, cb);
        let b_raw = fabric.pop().expect("pair");
        let a_raw = fabric.pop().expect("pair");
        let (_, clk_a) = test_clock();
        let (_, clk_b) = test_clock();
        let mut a = wrap(a_raw, clk_a);
        let mut b = wrap(b_raw, clk_b);
        let mut handles = Vec::new();
        for i in 0..20u8 {
            handles.push(a.post_send(NodeId(1), &[&[i; 8]]).unwrap());
        }
        let mut got = Vec::new();
        while got.len() < 20 {
            b.pump().unwrap();
            a.pump().unwrap();
            while let Some(f) = b.poll_recv().unwrap() {
                got.push(f.payload[0]);
            }
        }
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
        // Acks flow back: every handle eventually completes.
        for h in handles {
            let mut done = false;
            for _ in 0..100 {
                a.pump().unwrap();
                b.pump().unwrap();
                if a.test_send(h).unwrap() {
                    done = true;
                    break;
                }
            }
            assert!(done, "send never acknowledged");
        }
        assert_eq!(a.stats().retransmits, 0, "no loss, no retransmits");
    }

    #[test]
    fn heavy_loss_is_recovered_by_gap_signals_and_timeouts() {
        let mut fabric = mem_fabric(2);
        let b_raw = fabric.pop().expect("pair");
        let a_raw = fabric.pop().expect("pair");
        let (ta, clk_a) = test_clock();
        let (_, clk_b) = test_clock();
        // 30% loss in both directions.
        let mut a = wrap(LossyDriver::new(a_raw, 0.3, 0xFEED), clk_a);
        let mut b = wrap(LossyDriver::new(b_raw, 0.3, 0xBEEF), clk_b);

        for i in 0..40u8 {
            a.post_send(NodeId(1), &[&[i; 4]]).unwrap();
        }
        let mut got = Vec::new();
        for round in 0..200_000 {
            // Advance a's clock so its RTO can fire (b only acks).
            ta.fetch_add(50_000, Ordering::Relaxed);
            a.pump().unwrap();
            b.pump().unwrap();
            while let Some(f) = b.poll_recv().unwrap() {
                got.push(f.payload[0]);
            }
            if got.len() == 40 {
                break;
            }
            assert!(round < 199_999, "did not recover: got {} of 40", got.len());
        }
        assert_eq!(got, (0..40).collect::<Vec<u8>>(), "in order, exactly once");
        assert!(
            a.stats().retransmits > 0,
            "30% loss must force retransmissions: {:?}",
            a.stats()
        );
    }

    #[test]
    fn link_stats_surface_reliability_counters() {
        let mut fabric = mem_fabric(2);
        let b_raw = fabric.pop().expect("pair");
        let a_raw = fabric.pop().expect("pair");
        let (ta, clk_a) = test_clock();
        let (_, clk_b) = test_clock();
        let mut a = wrap(a_raw, clk_a);
        let mut b = wrap(b_raw, clk_b);
        let h = a.post_send(NodeId(1), &[b"ping"]).unwrap();
        for _ in 0..100 {
            ta.fetch_add(50_000, Ordering::Relaxed);
            a.pump().unwrap();
            b.pump().unwrap();
            while b.poll_recv().unwrap().is_some() {}
            if a.test_send(h).unwrap() {
                break;
            }
        }
        assert!(b.link_stats().acks > 0, "receiver acked at least once");
        assert_eq!(a.link_stats().retransmits, 0, "lossless path");
        // Counters stack on top of the inner driver's (mem driver: zero).
        assert_eq!(b.link_stats().acks, b.stats().acks_sent);
    }

    #[test]
    fn injected_corruption_is_detected_and_recovered() {
        let mut fabric = mem_fabric(2);
        let b_raw = fabric.pop().expect("pair");
        let mut a_raw = fabric.pop().expect("pair");
        // Corrupt ~half of a→b frames (mem pseudo-time = frame count).
        assert!(a_raw.install_faults(FaultPlan::new(0xC0).with_corrupt_probability(0.5)));
        let (ta, clk_a) = test_clock();
        let (_, clk_b) = test_clock();
        let mut a = wrap(a_raw, clk_a);
        let mut b = wrap(b_raw, clk_b);
        for i in 0..30u8 {
            a.post_send(NodeId(1), &[&[i; 16]]).unwrap();
        }
        let mut got = Vec::new();
        for round in 0..10_000 {
            ta.fetch_add(2_000_000, Ordering::Relaxed);
            a.pump().unwrap();
            b.pump().unwrap();
            while let Some(f) = b.poll_recv().unwrap() {
                assert_eq!(f.payload, vec![got.len() as u8; 16], "order and content");
                got.push(f.payload[0]);
            }
            if got.len() == 30 {
                break;
            }
            assert!(round < 9_999, "did not recover: got {} of 30", got.len());
        }
        assert!(
            b.stats().corrupt_dropped > 0,
            "checksum must catch the injected flips: {:?}",
            b.stats()
        );
        assert!(a.fault_stats().corrupted > 0);
    }

    #[test]
    fn rto_backs_off_exponentially_and_resets_on_progress() {
        let mut fabric = mem_fabric(2);
        let _b_raw = fabric.pop().expect("pair");
        let a_raw = fabric.pop().expect("pair");
        let (ta, clk_a) = test_clock();
        // b never pumps: no acks ever come back.
        let mut a = wrap(a_raw, clk_a);
        a.post_send(NodeId(1), &[b"never acked"]).unwrap();
        // Base RTO is 1ms. Walk time forward in base-RTO steps: with
        // exponential backoff, later timeouts need more steps to fire.
        let mut timeouts_at = Vec::new();
        for step in 0..64u64 {
            ta.fetch_add(1_000_000, Ordering::Relaxed);
            let before = a.stats().timeouts;
            a.pump().unwrap();
            if a.stats().timeouts > before {
                timeouts_at.push(step);
            }
        }
        assert!(
            timeouts_at.len() >= 3,
            "several timeouts must fire in 64ms: {timeouts_at:?}"
        );
        let gaps: Vec<u64> = timeouts_at.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.windows(2).all(|w| w[1] >= w[0]),
            "gaps must be non-decreasing: {gaps:?}"
        );
        assert!(
            *gaps.last().unwrap() > *gaps.first().unwrap(),
            "backoff must actually grow: {gaps:?}"
        );
    }

    #[test]
    fn duplicates_are_dropped_not_redelivered() {
        let mut fabric = mem_fabric(2);
        let b_raw = fabric.pop().expect("pair");
        let a_raw = fabric.pop().expect("pair");
        let (ta, clk_a) = test_clock();
        let (_, clk_b) = test_clock();
        // Lossless inner, but force a timeout retransmission by never
        // letting b's acks reach a... easiest: drop 100% of b→a frames.
        let mut a = wrap(a_raw, clk_a);
        let mut b = wrap(LossyDriver::new(b_raw, 0.99, 3), clk_b);
        a.post_send(NodeId(1), &[b"only-once"]).unwrap();
        let mut deliveries = 0;
        for _ in 0..50 {
            ta.fetch_add(2_000_000, Ordering::Relaxed); // exceed RTO
            a.pump().unwrap();
            b.pump().unwrap();
            while let Some(f) = b.poll_recv().unwrap() {
                assert_eq!(f.payload, b"only-once");
                deliveries += 1;
            }
        }
        assert_eq!(deliveries, 1, "retransmits must not duplicate delivery");
        assert!(a.stats().timeouts > 0);
        assert!(b.stats().duplicates_dropped > 0);
    }
}
