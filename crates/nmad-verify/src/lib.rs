//! `nmad-verify`: the engine's in-repo verification layer.
//!
//! Two halves, both dependency-free so they work in the offline build:
//!
//! * A **bounded exhaustive model checker** ([`Checker`]) for the
//!   lock-free primitives behind the threaded progression engine
//!   (submit ring, seqlock metrics snapshots, completion board,
//!   request-id watermark). Code written against the [`sync`] facade
//!   runs unchanged; inside a [`Checker::check`] closure every atomic
//!   operation, fence, lock, and park becomes a decision point, and
//!   the checker enumerates thread interleavings *and* weak-memory
//!   load results with a bounded-preemption DFS plus state-hash
//!   pruning. An assertion that holds across the explored space holds
//!   for every schedule up to the bound — not for one lucky seed.
//!
//! * The **lint rule catalog** ([`lint`]) behind
//!   `cargo run -p xtask -- lint`: repo invariants clippy cannot
//!   express (unsafe confinement, sync-facade discipline, virtual-time
//!   determinism, hot-path lock bans).
//!
//! See `DESIGN.md` §12 for the memory-model write-up and the list of
//! what is and is not covered.

#![forbid(unsafe_code)]

pub mod clock;
mod exec;
pub mod lint;
pub mod sync;
pub mod thread;

mod checker;

pub use checker::{coverage_probe, Checker};
pub use exec::{CheckFailure, CheckStats};
