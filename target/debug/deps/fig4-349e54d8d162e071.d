/root/repo/target/debug/deps/fig4-349e54d8d162e071.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-349e54d8d162e071: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
