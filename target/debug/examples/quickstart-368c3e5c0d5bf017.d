/root/repo/target/debug/examples/quickstart-368c3e5c0d5bf017.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-368c3e5c0d5bf017: examples/quickstart.rs

examples/quickstart.rs:
