//! Host (CPU + memory) timing model.
//!
//! The evaluation platform of the paper is a pair of dual-core 1.8 GHz
//! Opteron boxes (§5). For the reproduced experiments only two host-side
//! quantities enter the measured curves:
//!
//! * **memcpy throughput** — dominates the baseline MPI implementations'
//!   derived-datatype path (pack into a contiguous buffer on the sender,
//!   copy out of a staging area on the receiver, §5.3), and the
//!   receiver-side copy of eager messages;
//! * **per-request software cost** — the constant a communication
//!   library spends per application request; NewMadeleine adds a small
//!   extra constant for inspecting its ready list (§5.1: "a constant
//!   overhead of less than 0.5 µs").

use crate::time::SimDuration;

/// Host-side timing model shared by every engine running on a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostModel {
    /// Sustained memory-copy bandwidth in bytes per second.
    pub memcpy_bps: u64,
    /// Fixed cost per memcpy invocation (call + cache warmup).
    pub memcpy_overhead: SimDuration,
}

impl HostModel {
    /// CPU time to copy `bytes` bytes once.
    pub fn memcpy_time(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.memcpy_overhead + SimDuration::for_bytes(bytes, self.memcpy_bps)
    }
}

/// 1.8 GHz dual-core Opteron, DDR-era memory subsystem (paper platform).
pub fn opteron_1_8ghz() -> HostModel {
    HostModel {
        // Effective large-copy rate with cold caches on a 2006-era
        // 1.8 GHz Opteron (STREAM copy counts read+write traffic; the
        // usable memcpy rate is roughly half the DDR bandwidth).
        memcpy_bps: 1_200_000_000,
        memcpy_overhead: SimDuration::from_ns(60),
    }
}

/// Per-library software-cost constants used by the engines built on the
/// simulator. Grouped here so every comparator draws from one calibrated
/// table instead of scattering magic numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoftwareCosts {
    /// Cost charged per application-level send request (submission to
    /// the collect layer).
    pub per_request: SimDuration,
    /// Cost charged per posted receive (matching-structure insertion —
    /// comparable across libraries).
    pub per_recv: SimDuration,
    /// Cost charged each time the scheduler inspects its ready list to
    /// elect/synthesize the next packet (NewMadeleine only).
    pub scheduler_inspect: SimDuration,
    /// Cost per entry when packing/unpacking multiplexing headers.
    pub per_entry: SimDuration,
}

/// NewMadeleine / MAD-MPI: pays the scheduler inspection on the critical
/// path in exchange for global optimization opportunities.
pub fn costs_madmpi() -> SoftwareCosts {
    SoftwareCosts {
        // The collect layer only wraps and enqueues — the expensive
        // NIC interaction happens once per *frame*, not per request.
        per_request: SimDuration::from_ns(70),
        per_recv: SimDuration::from_ns(150),
        scheduler_inspect: SimDuration::from_ns(350),
        per_entry: SimDuration::from_ns(60),
    }
}

/// MPICH-like comparator: lean direct mapping, no scheduler.
pub fn costs_mpich() -> SoftwareCosts {
    SoftwareCosts {
        per_request: SimDuration::from_ns(260),
        per_recv: SimDuration::from_ns(260),
        scheduler_inspect: SimDuration::ZERO,
        per_entry: SimDuration::from_ns(40),
    }
}

/// OpenMPI 1.1-like comparator: heavier component stack per request
/// (visible in paper Fig. 2(a) and 3(a) as a constant shift).
pub fn costs_ompi() -> SoftwareCosts {
    SoftwareCosts {
        per_request: SimDuration::from_ns(650),
        per_recv: SimDuration::from_ns(650),
        scheduler_inspect: SimDuration::ZERO,
        per_entry: SimDuration::from_ns(50),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_time_zero_bytes_is_free() {
        assert_eq!(opteron_1_8ghz().memcpy_time(0), SimDuration::ZERO);
    }

    #[test]
    fn memcpy_large_block_close_to_bandwidth() {
        let host = opteron_1_8ghz();
        let bytes = 256 * 1024;
        let t = host.memcpy_time(bytes);
        let gbps = bytes as f64 / t.as_secs_f64() / 1e9;
        assert!(gbps > 1.1 && gbps < 1.3, "got {gbps} GB/s");
    }

    #[test]
    fn madmpi_extra_constant_under_half_microsecond() {
        // Reproduces the paper's §5.1 claim at the model level: the
        // extra critical-path constant of MAD-MPI vs MPICH is < 0.5us.
        let mad = costs_madmpi();
        let mpich = costs_mpich();
        let extra = mad.per_request + mad.scheduler_inspect + mad.per_entry
            - mpich.per_request
            - mpich.per_entry;
        let extra_us = extra.as_us_f64();
        assert!(extra_us > 0.0 && extra_us < 0.5, "extra = {extra}");
    }

    #[test]
    fn ompi_per_request_heavier_than_mpich() {
        assert!(costs_ompi().per_request > costs_mpich().per_request);
    }
}
