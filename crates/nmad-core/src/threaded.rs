//! Threaded asynchronous progression: a dedicated thread owns the
//! engine and pumps it, so communication overlaps application
//! computation instead of waiting for the application to poll.
//!
//! Ownership map:
//!
//! * the **progression thread** exclusively owns the [`NmadEngine`] —
//!   drivers, optimization window, strategy, matching state. No lock
//!   guards any of it: the engine's single-threaded state machine runs
//!   unmodified, just on another thread.
//! * **application threads** hold a cloneable [`ThreadedHandle`].
//!   Submissions cross over through a bounded lock-free
//!   [`SubmitRing`]; request ids are allocated application-side from
//!   one shared atomic, so the caller has its handle before the
//!   operation is even enqueued. Each ring slot carries an inline
//!   [`Batch`] of up to [`SLOT_OPS`] operations: single submissions
//!   ride as batches of one, and [`ThreadedHandle::submit_batch`]
//!   stages a run of operations with **one doorbell per flush**
//!   (io_uring-style), so a burst pays one CAS per `SLOT_OPS` ops and
//!   one wakeup total instead of one of each per op.
//! * **completions** come back through a sharded [`CompletionBoard`]
//!   that `test`/`wait` poll without touching the engine, and hot
//!   counters through a seqlock-published
//!   [`SharedMetrics`](crate::metrics::SharedMetrics) mirror.
//!
//! ## Sharding
//!
//! With [`EngineConfig::shards`] > 1 the runtime splits the engine
//! into **N progression shards** (see
//! [`NmadEngine::split_for_shards`]): each shard owns its own
//! submission ring, optimization-window slice, rail subset (rail `r`
//! belongs to shard `r % N`) and progression thread. Flows map to
//! shards by [`ShardPolicy`] — a symmetric hash over the node pair
//! (plus the tag under [`ShardPolicy::HashByDest`]), identical on both
//! endpoints, so a frame sent on shard `s`'s rails always lands on the
//! receiving node's shard `s`. [`ThreadedHandle`] routes every
//! submission to its owner shard's ring; the [`CompletionBoard`] keeps
//! one global id-keyed bucket space, so waiting works unchanged.
//!
//! An idle shard's NICs are kept busy through the steal facade
//! ([`crate::steal`]): a shard whose window backlog exceeds
//! [`EngineConfig::steal_depth`] donates small eager segments to an
//! idle shard, which transmits them as standalone spool frames on its
//! own rails; the receiving node's same-index shard forwards such
//! foreign frames to the flow's owner shard, and transmit completions
//! travel back to the victim. See `DESIGN.md` §14 for the protocol and
//! its memory-ordering obligations.
//!
//! The simulated transports stay on the inline path
//! ([`ProgressMode::Inline`]): virtual time only advances through the
//! co-simulation loop on the application thread, and a background pump
//! would desynchronise the discrete-event world. Drivers veto the
//! threaded mode through
//! [`Driver::threaded_progress_safe`](nmad_net::Driver::threaded_progress_safe).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::utils::CachePadded;
use nmad_sim::NodeId;

use crate::sync::{AtomicBool, AtomicU64, Condvar, Mutex, Ordering};

use crate::engine::{EngineConfig, NmadEngine, ProgressMode, ShardPolicy};
use crate::matching::RecvDone;
use crate::metrics::{EngineMetrics, MetricsSnapshot, NicMetrics, SharedMetrics};
use crate::ring::{Batch, SubmitRing};
use crate::segment::{PackWrapper, Priority, RecvReqId, SendReqId, Tag};
use crate::steal::{StealGroup, StealStats};
use crate::EngineStats;

// The whole design rests on the engine being movable to the
// progression thread; breaking any layer's Send bound must fail here,
// not in a user's build.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<NmadEngine>();
};

/// An operation crossing the submission ring.
enum EngineOp {
    Send {
        req: SendReqId,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    },
    Recv {
        req: RecvReqId,
        src: NodeId,
        tag: Tag,
        max: usize,
    },
    /// Request a full [`MetricsSnapshot`] (needs the engine, so it is
    /// taken on the progression thread and posted back).
    Snapshot,
    Shutdown,
}

/// Operations carried inline by one ring slot. Sized so a slot stays a
/// few cache lines: big enough to amortize the per-slot CAS across a
/// burst, small enough that a lone submission doesn't waste the ring.
pub const SLOT_OPS: usize = 8;

/// The ring slot format: an inline batch of up to [`SLOT_OPS`] ops.
type OpBatch = Batch<EngineOp, SLOT_OPS>;

/// Board buckets per engine shard: the total bucket count is
/// `BOARD_SHARDS × engine shards`, so poll-path lock contention stays
/// constant per shard as the runtime scales out.
const BOARD_SHARDS: usize = 16;

#[derive(Default)]
struct BoardShard {
    sends: HashSet<u64>,
    recvs: HashMap<u64, RecvDone>,
}

/// Sharded completion queue the progression threads fill and
/// application threads poll. Sharding by request id keeps unrelated
/// waiters off each other's cache lines and locks; the engine itself
/// is never touched on the poll path. The bucket index is a pure
/// function of the request id, so completions posted by *any*
/// progression shard land where the waiter looks.
pub struct CompletionBoard {
    shards: Vec<CachePadded<Mutex<BoardShard>>>,
    /// Completions posted for an id already on the board — always a
    /// bug (request ids are unique); counted instead of silently
    /// overwritten so stress tests can assert zero.
    duplicates: AtomicU64,
}

impl CompletionBoard {
    fn new(engine_shards: usize) -> Self {
        let buckets = BOARD_SHARDS * engine_shards.max(1);
        CompletionBoard {
            shards: (0..buckets)
                .map(|_| CachePadded::new(Mutex::new(BoardShard::default())))
                .collect(),
            duplicates: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_of(&self, id: u64) -> usize {
        (id as usize) % self.shards.len()
    }

    fn shard(&self, id: u64) -> &Mutex<BoardShard> {
        &self.shards[self.bucket_of(id)]
    }

    /// Posts a harvest of send completions, taking each shard lock at
    /// most once — the consumer-side half of batching: a pump that
    /// finishes a burst pays at most one lock round per bucket, not one
    /// per completion.
    fn post_sends_done(&self, reqs: &[SendReqId]) {
        if reqs.is_empty() {
            return;
        }
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for req in reqs {
            buckets[self.bucket_of(req.0)].push(req.0);
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let mut guard = shard.lock();
            for id in bucket {
                if !guard.sends.insert(id) {
                    self.duplicates.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; no synchronization role
                }
            }
        }
    }

    /// Posts a harvest of receive completions; same locking contract
    /// as [`post_sends_done`](Self::post_sends_done).
    fn post_recvs_done(&self, dones: Vec<(RecvReqId, RecvDone)>) {
        if dones.is_empty() {
            return;
        }
        let mut buckets: Vec<Vec<(u64, RecvDone)>> = vec![Vec::new(); self.shards.len()];
        for (req, done) in dones {
            buckets[self.bucket_of(req.0)].push((req.0, done));
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let mut guard = shard.lock();
            for (id, done) in bucket {
                if guard.recvs.insert(id, done).is_some() {
                    self.duplicates.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic stats counter; no synchronization role
                }
            }
        }
    }

    /// True once *every* listed send has left the host, taking each
    /// shard lock at most once (the poll half of batched waiting).
    pub fn all_sends_done(&self, reqs: &[SendReqId]) -> bool {
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for req in reqs {
            buckets[self.bucket_of(req.0)].push(req.0);
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let guard = shard.lock();
            if !bucket.iter().all(|id| guard.sends.contains(id)) {
                return false;
            }
        }
        true
    }

    /// True once the send has fully left the host.
    pub fn is_send_done(&self, req: SendReqId) -> bool {
        self.shard(req.0).lock().sends.contains(&req.0)
    }

    /// True once the receive completed (non-destructive).
    pub fn is_recv_done(&self, req: RecvReqId) -> bool {
        self.shard(req.0).lock().recvs.contains_key(&req.0)
    }

    /// Takes a completed receive's payload, once.
    pub fn try_take_recv(&self, req: RecvReqId) -> Option<RecvDone> {
        self.shard(req.0).lock().recvs.remove(&req.0)
    }

    /// Completions posted twice for one request id — must stay zero.
    pub fn duplicates(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed) // ORDERING: advisory stats snapshot
    }
}

/// A message crossing the steal facade between two progression shards.
/// The variants are the whole cross-shard protocol: everything else a
/// shard owns is private to its thread.
enum StealMsg {
    /// Victim → thief: eager segments for the thief's spool. The
    /// victim already debited flow-control credit for each.
    Donation {
        victim: usize,
        wrappers: Vec<PackWrapper>,
    },
    /// Thief → victim: a donation the thief could not place (it is
    /// departing); the victim re-queues and refunds.
    Undonate { wrappers: Vec<PackWrapper> },
    /// Receiving shard → owner shard: a frame for a flow you own
    /// arrived on my rails (the sender's thief transmitted it there).
    Frame {
        src: NodeId,
        frame: Bytes,
        rx_zero_copy: bool,
    },
    /// Thief → victim: a donated segment's frame fully left the host.
    Done(SendReqId),
}

/// Per-shard half of the shared state: one submission ring and one hot
/// mirror per progression thread, so shards never contend on the
/// submit or publish path.
struct ShardShared {
    ring: SubmitRing<OpBatch>,
    /// Seqlock mirror of this shard's hot counters, published after
    /// every pump.
    hot: SharedMetrics,
}

/// State shared between application threads and the progression
/// shards.
struct Shared {
    shards: Vec<ShardShared>,
    /// Flow → shard routing, identical to the split the engine did.
    policy: ShardPolicy,
    node: NodeId,
    /// One global id-keyed board: waiters don't care which shard
    /// completed their request.
    board: CompletionBoard,
    /// Application-side request id allocator, seeded from the engine's
    /// watermark at launch. Global across shards so ids stay unique.
    next_req: AtomicU64,
    /// The cross-shard work-stealing mailboxes.
    steal: StealGroup<StealMsg>,
    /// Serialises snapshot requesters (one RPC slot).
    snap_serial: Mutex<()>,
    /// One snapshot cell per shard; a requester broadcasts a
    /// [`EngineOp::Snapshot`] and waits until every cell fills.
    snap_slot: Mutex<Vec<Option<MetricsSnapshot>>>,
    snap_cv: Condvar,
    /// Some progression shard died on a transport error.
    dead: AtomicBool,
    fail: Mutex<Option<String>>,
}

impl Shared {
    fn route(&self, peer: NodeId, tag: Tag) -> usize {
        self.policy.route(self.shards.len(), self.node, peer, tag)
    }
}

/// A running progression runtime — one thread per shard — plus the
/// engine shards those threads own. Created with
/// [`ThreadedEngine::launch`]; hand out [`ThreadedHandle`]s with
/// [`handle`](Self::handle); get the (re-merged) engine back with
/// [`shutdown`](Self::shutdown).
pub struct ThreadedEngine {
    shared: Arc<Shared>,
    node: NodeId,
    threads: Vec<std::thread::JoinHandle<NmadEngine>>,
}

/// Cloneable application-side handle to a [`ThreadedEngine`]: submit
/// through the ring, poll the completion board, read mirrored metrics.
#[derive(Clone)]
pub struct ThreadedHandle {
    shared: Arc<Shared>,
    node: NodeId,
}

impl ThreadedEngine {
    /// Moves `engine` onto freshly spawned progression threads — one
    /// per shard. `config.shards` is clamped to the engine's rail
    /// count (a shard without a rail could make no progress); with one
    /// shard the runtime degenerates to the original single-thread
    /// layout, byte for byte.
    ///
    /// Panics if `config.mode` is not [`ProgressMode::Threaded`] or if
    /// any of the engine's drivers vetoes background progression (the
    /// simulated transport does — see the module documentation).
    pub fn launch(engine: NmadEngine, config: EngineConfig) -> Self {
        assert_eq!(
            config.mode,
            ProgressMode::Threaded,
            "ThreadedEngine requires EngineConfig::threaded()"
        );
        assert!(
            engine.threaded_progress_safe(),
            "a driver on node {} refuses background progression \
             (simulated transports must stay inline)",
            engine.node()
        );
        let node = engine.node();
        let shards = config.shards.max(1).min(engine.rail_count().max(1));
        let watermark = engine.req_watermark();
        let engines = if shards > 1 {
            engine.split_for_shards(shards, config.shard_policy)
        } else {
            vec![engine]
        };
        let shared = Arc::new(Shared {
            shards: (0..shards)
                .map(|_| ShardShared {
                    ring: SubmitRing::new(config.submit_ring_capacity),
                    hot: SharedMetrics::new(),
                })
                .collect(),
            policy: config.shard_policy,
            node,
            board: CompletionBoard::new(shards),
            next_req: AtomicU64::new(watermark),
            steal: StealGroup::new(shards),
            snap_serial: Mutex::new(()),
            snap_slot: Mutex::new(Vec::new()),
            snap_cv: Condvar::new(),
            dead: AtomicBool::new(false),
            fail: Mutex::new(None),
        });
        let threads = engines
            .into_iter()
            .enumerate()
            .map(|(shard, eng)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nmad-progress-{}-s{shard}", node.0))
                    .spawn(move || run(eng, &shared, &config, shard))
                    .expect("spawn progression thread")
            })
            .collect();
        ThreadedEngine {
            shared,
            node,
            threads,
        }
    }

    /// A cloneable submission/poll handle for application threads.
    pub fn handle(&self) -> ThreadedHandle {
        ThreadedHandle {
            shared: Arc::clone(&self.shared),
            node: self.node,
        }
    }

    /// Node this engine belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Progression shards this runtime is running (after the launch
    /// clamp to the rail count).
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Stops every progression shard — after draining its ring and
    /// quiescing its transmit side — and returns the re-merged engine
    /// for inline use. Completions still parked on the board are
    /// dropped with it.
    pub fn shutdown(mut self) -> NmadEngine {
        for shard in &self.shared.shards {
            shard.ring.push(Batch::of_one(EngineOp::Shutdown));
        }
        let parts: Vec<NmadEngine> = self
            .threads
            .drain(..)
            .map(|t| t.join().expect("progression thread panicked"))
            .collect();
        let mut engine = if parts.len() == 1 {
            parts.into_iter().next().expect("one shard")
        } else {
            NmadEngine::merge_shards(parts)
        };
        // Ids handed out by handles but never submitted must still
        // never be reallocated inline.
        engine.set_req_watermark(self.shared.next_req.load(Ordering::Relaxed)); // ORDERING: read after the submit ring quiesced; the drain orders it
        engine
    }
}

impl Drop for ThreadedEngine {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        for shard in &self.shared.shards {
            shard.ring.push(Batch::of_one(EngineOp::Shutdown));
        }
        // The engines are discarded; a panic on a progression thread
        // surfaces at the join unless we are already unwinding.
        for thread in self.threads.drain(..) {
            if std::thread::panicking() {
                let _ = thread.join();
            } else {
                let _engine = thread.join().expect("progression thread panicked");
            }
        }
    }
}

impl ThreadedHandle {
    /// Node the underlying engine belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    #[inline]
    fn alloc(&self) -> u64 {
        self.shared.next_req.fetch_add(1, Ordering::Relaxed) // ORDERING: id allocator; atomicity alone is the contract
    }

    fn check_alive(&self, waiting_on: &str) {
        // ORDERING: advisory liveness flag; the error message travels under the board mutex
        if self.shared.dead.load(Ordering::Relaxed) {
            let msg = self
                .shared
                .fail
                .lock()
                .clone()
                .unwrap_or_else(|| "progression thread stopped".to_string());
            // PANIC-OK: deliberate: surfaces progression-thread death to the caller
            panic!("progression thread died while waiting on {waiting_on}: {msg}");
        }
    }

    /// Progression shards behind this handle.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// The shard owning flow (peer, tag) — where a submission for that
    /// flow is routed. Exposed so tests and benches can pin flows to
    /// shards deliberately.
    pub fn shard_of(&self, peer: NodeId, tag: Tag) -> usize {
        self.shared.route(peer, tag)
    }

    /// Counters of the cross-shard steal machinery.
    pub fn steal_stats(&self) -> StealStats {
        self.shared.steal.stats()
    }

    /// Submits one application send made of `parts` segments (see
    /// [`NmadEngine::submit_send_parts`]). Routed to the ring of the
    /// shard owning flow (dst, tag). Blocks only for ring backpressure
    /// (a full submission ring).
    pub fn submit_send_parts(
        &self,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    ) -> SendReqId {
        let req = SendReqId(self.alloc());
        let shard = self.shared.route(dst, tag);
        self.shared.shards[shard]
            .ring
            .push(Batch::of_one(EngineOp::Send {
                req,
                dst,
                tag,
                parts,
                rail_hint,
            }));
        req
    }

    /// Nonblocking single-segment send.
    pub fn isend(&self, dst: NodeId, tag: Tag, data: impl Into<Bytes>) -> SendReqId {
        self.submit_send_parts(dst, tag, vec![(data.into(), Priority::Normal)], None)
    }

    /// Posts a receive of up to `max` bytes for the next segment of
    /// flow (src, tag), routed to the shard owning that flow (the hash
    /// is symmetric, so it is the shard whose rails the frame arrives
    /// on).
    pub fn post_recv(&self, src: NodeId, tag: Tag, max: usize) -> RecvReqId {
        let req = RecvReqId(self.alloc());
        let shard = self.shared.route(src, tag);
        self.shared.shards[shard]
            .ring
            .push(Batch::of_one(EngineOp::Recv { req, src, tag, max }));
        req
    }

    /// Opens a batched submission: operations staged on the returned
    /// builder share ring slots ([`SLOT_OPS`] per CAS) and the consumer
    /// doorbell rings **once**, at [`flush`](SubmitBatch::flush) (or
    /// drop). Request ids are allocated eagerly, so staged operations
    /// can be waited on — after the flush — exactly like single
    /// submissions.
    pub fn submit_batch(&self) -> SubmitBatch<'_> {
        let shards = self.shared.shards.len();
        SubmitBatch {
            handle: self,
            shards,
            primary: Batch::new(),
            primary_staged: 0,
            rest: (1..shards).map(|_| (Batch::new(), 0)).collect(),
            pending: 0,
            next_id: 0,
            id_limit: 0,
        }
    }

    /// True once the send has fully left the host.
    pub fn is_send_done(&self, req: SendReqId) -> bool {
        self.shared.board.is_send_done(req)
    }

    /// True once the receive completed (non-destructive).
    pub fn is_recv_done(&self, req: RecvReqId) -> bool {
        self.shared.board.is_recv_done(req)
    }

    /// Takes a completed receive's payload, once.
    pub fn try_take_recv(&self, req: RecvReqId) -> Option<RecvDone> {
        self.shared.board.try_take_recv(req)
    }

    /// Blocks until the send has fully left the host. Panics if the
    /// progression thread died of a transport error.
    pub fn wait_send(&self, req: SendReqId) {
        while !self.shared.board.is_send_done(req) {
            self.check_alive("send");
            std::thread::yield_now();
        }
    }

    /// Blocks until the receive completes and takes its payload.
    /// Panics if the progression thread died of a transport error.
    pub fn wait_recv(&self, req: RecvReqId) -> RecvDone {
        loop {
            if let Some(done) = self.shared.board.try_take_recv(req) {
                return done;
            }
            self.check_alive("recv");
            std::thread::yield_now();
        }
    }

    /// Blocks until *every* listed send has left the host. Each poll
    /// round takes each board shard lock at most once, instead of one
    /// lock per request per round as a `wait_send` loop would.
    pub fn wait_sends(&self, reqs: &[SendReqId]) {
        while !self.shared.board.all_sends_done(reqs) {
            self.check_alive("sends");
            std::thread::yield_now();
        }
    }

    /// Blocks until every listed receive completes; payloads come back
    /// in `reqs` order.
    pub fn wait_recvs(&self, reqs: &[RecvReqId]) -> Vec<RecvDone> {
        let mut out: Vec<Option<RecvDone>> = reqs.iter().map(|_| None).collect();
        let mut missing = reqs.len();
        while missing > 0 {
            for (slot, req) in out.iter_mut().zip(reqs) {
                if slot.is_none() {
                    if let Some(done) = self.shared.board.try_take_recv(*req) {
                        *slot = Some(done);
                        missing -= 1;
                    }
                }
            }
            if missing > 0 {
                self.check_alive("recvs");
                std::thread::yield_now();
            }
        }
        out.into_iter().map(|d| d.expect("all taken")).collect()
    }

    /// The hot counters as last published by the progression threads
    /// (seqlock reads: never torn, never blocking a publisher), summed
    /// across shards. Lags each shard's engine by at most one pump.
    pub fn hot_metrics(&self) -> (EngineMetrics, EngineStats) {
        let mut engine = EngineMetrics::default();
        let mut wire = EngineStats::default();
        for shard in &self.shared.shards {
            let (m, w) = shard.hot.read();
            engine.absorb(&m);
            wire.absorb(&w);
        }
        (engine, wire)
    }

    /// A full [`MetricsSnapshot`] including per-NIC link counters,
    /// taken *on the progression threads* between pumps — each shard's
    /// totals are exact at the moment its snapshot is taken, like the
    /// inline [`NmadEngine::metrics`]. With several shards the
    /// per-shard snapshots are aggregated: counters sum, NIC rows come
    /// back in global rail order.
    pub fn metrics(&self) -> MetricsSnapshot {
        let n = self.shared.shards.len();
        // One requester at a time owns the RPC slots.
        let _serial = self.shared.snap_serial.lock();
        {
            let mut slot = self.shared.snap_slot.lock();
            *slot = (0..n).map(|_| None).collect();
        }
        for shard in &self.shared.shards {
            shard.ring.push(Batch::of_one(EngineOp::Snapshot));
        }
        let mut slot = self.shared.snap_slot.lock();
        loop {
            if slot.iter().all(Option::is_some) {
                // The all-Some check above makes `flatten` lossless.
                let parts: Vec<MetricsSnapshot> = slot.drain(..).flatten().collect();
                return aggregate_snapshots(parts);
            }
            self.check_alive("metrics snapshot");
            let (g, _) = self
                .shared
                .snap_cv
                .wait_timeout(slot, Duration::from_millis(50)); // BLOCKING-OK: control-plane snapshot RPC, not the pump loop
            slot = g;
        }
    }

    /// Completions the board saw twice for one request id — must stay
    /// zero (stress tests assert it).
    pub fn completion_duplicates(&self) -> u64 {
        self.shared.board.duplicates()
    }
}

/// Sums per-shard snapshots into the view a single engine would have
/// produced: counters sum ([`EngineMetrics::absorb`] /
/// [`EngineStats::absorb`]), NIC rows interleave back into global rail
/// order (shard `s` owns rails `s`, `s + N`, `s + 2N`, …).
fn aggregate_snapshots(parts: Vec<MetricsSnapshot>) -> MetricsSnapshot {
    let shards = parts.len();
    let mut engine = EngineMetrics::default();
    let mut wire = EngineStats::default();
    let mut per_shard_nics: Vec<std::collections::VecDeque<NicMetrics>> = Vec::new();
    let mut strategy = "";
    for part in parts {
        strategy = part.strategy;
        engine.absorb(&part.engine);
        wire.absorb(&part.wire);
        per_shard_nics.push(part.nics.into());
    }
    let mut nics = Vec::new();
    loop {
        let mut any = false;
        for shard_nics in per_shard_nics.iter_mut().take(shards) {
            if let Some(nic) = shard_nics.pop_front() {
                nics.push(nic);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    MetricsSnapshot {
        strategy,
        engine,
        wire,
        nics,
    }
}

/// A staged run of submissions sharing ring slots and one doorbell.
///
/// Obtained from [`ThreadedHandle::submit_batch`]. Operations staged
/// here are pushed quietly — full slots go into the owner shard's ring
/// without waking the consumer — and each shard's doorbell rings at
/// most once, at [`flush`](Self::flush). Until the flush, a parked
/// progression thread stays parked, so **never wait on a staged
/// request before flushing**. Dropping the builder flushes.
pub struct SubmitBatch<'a> {
    handle: &'a ThreadedHandle,
    /// Cached shard count: lets the per-op path skip the routing hash
    /// (and the `Arc` dereference it needs) entirely when the runtime
    /// is single-sharded — the overwhelmingly common layout, and the
    /// one the hot-path microbenches gate.
    shards: usize,
    /// Shard 0's open slot, inline: in single-shard mode every staged
    /// op lands here with no per-op indexing or indirection.
    primary: OpBatch,
    /// Operations staged to shard 0 (pushed quietly or buffered) since
    /// the last flush; a nonzero count earns shard 0 exactly one
    /// doorbell at flush.
    primary_staged: usize,
    /// Open slot and staged count for shards `1..` — empty in
    /// single-shard mode. Operations for different shards ride
    /// different rings, so they cannot share a slot.
    rest: Vec<(OpBatch, usize)>,
    /// Total staged since the last flush, kept as a scalar because
    /// [`pending`](Self::pending) sits on the application's per-op
    /// flush-decision path.
    pending: usize,
    /// Block-reserved request ids: `next_id..id_limit` belong to this
    /// builder. Reserving [`SLOT_OPS`] ids per `fetch_add` amortizes
    /// the shared counter's RMW the same way slots amortize the ring
    /// CAS. Ids left unused when the builder drops are simply skipped
    /// — the id space only needs uniqueness, not density.
    next_id: u64,
    id_limit: u64,
}

impl SubmitBatch<'_> {
    #[inline]
    fn alloc_id(&mut self) -> u64 {
        if self.next_id == self.id_limit {
            let block = SLOT_OPS as u64;
            self.next_id = self
                .handle
                .shared
                .next_req
                .fetch_add(block, Ordering::Relaxed); // ORDERING: id allocator; atomicity alone is the contract
            self.id_limit = self.next_id + block;
        }
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// The shard owning flow (peer, tag) — constant 0 when the runtime
    /// is single-sharded, so the batched path pays no hash per op.
    #[inline]
    fn shard_of(&self, peer: NodeId, tag: Tag) -> usize {
        if self.shards == 1 {
            0
        } else {
            self.handle.shared.route(peer, tag)
        }
    }

    #[inline]
    fn stage(&mut self, shard: usize, op: EngineOp) {
        self.pending += 1;
        if shard == 0 {
            self.primary_staged += 1;
            if let Err(op) = self.primary.push(op) {
                let full = std::mem::take(&mut self.primary);
                let _ = self.primary.push(op);
                self.push_slot(0, full);
            }
        } else {
            let r = &mut self.rest[shard - 1];
            r.1 += 1;
            if let Err(op) = r.0.push(op) {
                let full = std::mem::take(&mut r.0);
                let _ = r.0.push(op);
                self.push_slot(shard, full);
            }
        }
    }

    /// Quiet slot push with backpressure: a full ring gets the doorbell
    /// (the consumer may be parked behind our own unflushed work) and a
    /// yield, never a drop.
    fn push_slot(&self, shard: usize, mut slot: OpBatch) {
        let ring = &self.handle.shared.shards[shard].ring;
        loop {
            match ring.try_push_quiet(slot) {
                Ok(()) => return,
                Err(back) => {
                    slot = back;
                    ring.doorbell();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Stages one application send made of `parts` segments; the id is
    /// live (waitable) once [`flush`](Self::flush) returns.
    pub fn submit_send_parts(
        &mut self,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    ) -> SendReqId {
        let req = SendReqId(self.alloc_id());
        let shard = self.shard_of(dst, tag);
        self.stage(
            shard,
            EngineOp::Send {
                req,
                dst,
                tag,
                parts,
                rail_hint,
            },
        );
        req
    }

    /// Stages a single-segment send.
    pub fn isend(&mut self, dst: NodeId, tag: Tag, data: impl Into<Bytes>) -> SendReqId {
        self.submit_send_parts(dst, tag, vec![(data.into(), Priority::Normal)], None)
    }

    /// Stages a receive of up to `max` bytes for flow (src, tag).
    #[inline]
    pub fn post_recv(&mut self, src: NodeId, tag: Tag, max: usize) -> RecvReqId {
        let req = RecvReqId(self.alloc_id());
        let shard = self.shard_of(src, tag);
        self.stage(shard, EngineOp::Recv { req, src, tag, max });
        req
    }

    /// Operations staged since the last flush, across all shards.
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Pushes the partially filled slots (if any) and rings each
    /// touched shard's doorbell once for everything staged since the
    /// last flush. The builder is reusable afterwards.
    pub fn flush(&mut self) {
        self.pending = 0;
        if !self.primary.is_empty() {
            let full = std::mem::take(&mut self.primary);
            self.push_slot(0, full);
        }
        if self.primary_staged > 0 {
            self.handle.shared.shards[0].ring.doorbell();
            self.primary_staged = 0;
        }
        for shard in 1..self.shards {
            if !self.rest[shard - 1].0.is_empty() {
                let full = std::mem::take(&mut self.rest[shard - 1].0);
                self.push_slot(shard, full);
            }
            if self.rest[shard - 1].1 > 0 {
                self.handle.shared.shards[shard].ring.doorbell();
                self.rest[shard - 1].1 = 0;
            }
        }
    }
}

impl Drop for SubmitBatch<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Drains shard `shard`'s steal mailbox into its engine. Returns true
/// if anything arrived.
fn drain_steal_mailbox(engine: &mut NmadEngine, shared: &Shared, shard: usize) -> bool {
    let mut moved = false;
    for msg in shared.steal.drain(shard) {
        moved = true;
        match msg {
            StealMsg::Donation { victim, wrappers } => engine.accept_donations(victim, wrappers),
            StealMsg::Undonate { wrappers } => {
                for w in wrappers {
                    engine.undonate(w);
                }
            }
            StealMsg::Frame {
                src,
                frame,
                rx_zero_copy,
            } => {
                // An injection error is a protocol corruption, not a
                // transport fault, but waiters still need the diagnosis.
                if let Err(e) = engine.inject_frame(src, frame, rx_zero_copy) {
                    *shared.fail.lock() = Some(format!(
                        "forwarded-frame injection failed on node {} shard {shard}: {e}",
                        engine.node()
                    ));
                    shared.dead.store(true, Ordering::SeqCst);
                }
            }
            StealMsg::Done(req) => engine.complete_foreign_done(req),
        }
    }
    moved
}

/// Forwards what the engine produced for *other* shards: received
/// foreign frames to their owner shard, spool-transmit completions to
/// their victim. Returns true if anything was forwarded.
fn forward_cross_shard(engine: &mut NmadEngine, shared: &Shared, shard: usize) -> bool {
    let mut moved = false;
    for (owner, src, frame, rx_zero_copy) in engine.drain_foreign_rx() {
        moved = true;
        debug_assert_ne!(owner, shard, "own frames never reach the foreign path");
        // On Err the owner departed: the runtime is shutting down and
        // the owner had no posted work left; the frame is dropped like
        // completions still parked on the board at shutdown.
        if let Ok(()) = shared.steal.push(
            owner,
            StealMsg::Frame {
                src,
                frame,
                rx_zero_copy,
            },
        ) {
            shared.steal.note_forwarded_frame()
        }
    }
    for (req, victim) in engine.drain_spool_done() {
        moved = true;
        // A victim with outstanding donations has a nonempty sends
        // map, is not tx-quiescent, and therefore cannot have
        // departed; the push only fails after a transport death.
        if shared.steal.push(victim, StealMsg::Done(req)).is_ok() {
            shared.steal.note_forwarded_done();
        }
    }
    moved
}

/// The victim half of the steal decision: if this shard's donation
/// backlog is deep and some other shard advertises idle, donate a
/// batch of small eager segments to it.
fn maybe_donate(engine: &mut NmadEngine, shared: &Shared, shard: usize, config: &EngineConfig) {
    if engine.donation_backlog() < config.steal_depth {
        return;
    }
    let Some(thief) = shared.steal.pick_thief(shard) else {
        return;
    };
    let wrappers = engine.donate_eager(config.steal_batch);
    if wrappers.is_empty() {
        return;
    }
    let n = wrappers.len() as u64;
    match shared.steal.push(
        thief,
        StealMsg::Donation {
            victim: shard,
            wrappers,
        },
    ) {
        Ok(()) => shared.steal.note_donated(n),
        Err(StealMsg::Donation { wrappers, .. }) => {
            // The thief departed between pick and push: take the work
            // back (re-queue + credit refund), nothing is lost.
            shared.steal.note_bounced(n);
            for w in wrappers {
                engine.undonate(w);
            }
        }
        // `push` hands back the message it was given, so a donation in
        // means a donation out; nothing to recover from other shapes.
        Err(_) => debug_assert!(false, "push returns the message it was given"),
    }
}

/// A progression shard's thread body: drain the steal mailbox and the
/// submission ring, pump the engine, forward cross-shard work, harvest
/// completions, publish metrics, park when idle.
/// The single-shard pump loop: the unsharded engine's loop, verbatim.
///
/// A single-shard runtime has no peer to steal from or forward to, so
/// none of the cross-shard protocol belongs in its pump. This is kept
/// as a separate loop rather than `sharded` branches inside [`run`]
/// because the submit-overhead microbench gates the pump's per-spin
/// cost on one core, where every cycle the consumer burns — including
/// dead branches bloating the loop body — lengthens the producer's
/// timed burst.
// HOT-PATH: single-shard pump loop
fn run_single(mut engine: NmadEngine, shared: &Shared, config: &EngineConfig) -> NmadEngine {
    let mut shutting_down = false;
    let my = &shared.shards[0]; // PANIC-OK: shard < shards.len() by the spawn loop
    loop {
        // 1. Drain a bounded batch of submissions.
        let mut drained = 0usize;
        while drained < config.submit_batch {
            let Some(batch) = my.ring.pop() else {
                break;
            };
            for op in batch {
                match op {
                    EngineOp::Send {
                        req,
                        dst,
                        tag,
                        parts,
                        rail_hint,
                    } => engine.submit_send_parts_as(req, dst, tag, parts, rail_hint),
                    EngineOp::Recv { req, src, tag, max } => {
                        engine.post_recv_as(req, src, tag, max)
                    }
                    EngineOp::Snapshot => {
                        let snap = engine.metrics();
                        shared.snap_slot.lock()[0] = Some(snap);
                        shared.snap_cv.notify_all();
                    }
                    EngineOp::Shutdown => shutting_down = true,
                }
                drained += 1;
            }
        }

        // 2. One engine pump.
        let moved = match engine.try_progress() {
            Ok(moved) => moved,
            Err(e) => {
                *shared.fail.lock() =
                    Some(format!("transport failure on node {}: {e}", engine.node())); // ALLOC-OK: fatal-error path; the pump exits after
                shared.dead.store(true, Ordering::SeqCst);
                break;
            }
        };

        // 3. Harvest completions onto the board.
        let done_sends = engine.drain_done_sends();
        let done_recvs = engine.drain_done_recvs();
        let harvested = !done_sends.is_empty() || !done_recvs.is_empty();
        shared.board.post_sends_done(&done_sends);
        shared.board.post_recvs_done(done_recvs);

        // 4. Mirror the hot counters.
        my.hot
            .publish(&engine.merged_engine_metrics(), engine.stats());

        if shutting_down && my.ring.is_empty() && engine.tx_quiescent() {
            break;
        }

        // 5. Pace: spin while work is outstanding, park otherwise.
        if !moved && !harvested && drained == 0 {
            if engine.has_outstanding() || shutting_down {
                std::thread::yield_now();
            } else {
                my.ring.wait_nonempty(config.idle_park);
            }
        }
    }
    // Keep the exit invariant the sharded loop establishes: the
    // mailbox refuses pushes once its owner is gone. Nothing can have
    // been pushed — only progression threads send steal messages.
    let residue = shared.steal.depart(0);
    debug_assert!(residue.is_empty(), "steal traffic on a lone shard");
    engine
}

// HOT-PATH: shard pump loop
fn run(mut engine: NmadEngine, shared: &Shared, config: &EngineConfig, shard: usize) -> NmadEngine {
    if shared.shards.len() == 1 {
        return run_single(engine, shared, config);
    }
    let mut shutting_down = false;
    let my = &shared.shards[shard]; // PANIC-OK: shard < shards.len() by the spawn loop
    loop {
        // 0. Cross-shard inbox: donations to spool, bounced donations
        // to re-queue, forwarded frames to inject, spool completions
        // to settle.
        let steal_moved = drain_steal_mailbox(&mut engine, shared, shard);

        // 1. Drain a bounded batch of submissions: one ring pop hands
        // over a whole slot of up to SLOT_OPS operations, so the
        // per-slot synchronization cost is amortized across the run.
        let mut drained = 0usize;
        while drained < config.submit_batch {
            let Some(batch) = my.ring.pop() else {
                break;
            };
            for op in batch {
                match op {
                    EngineOp::Send {
                        req,
                        dst,
                        tag,
                        parts,
                        rail_hint,
                    } => engine.submit_send_parts_as(req, dst, tag, parts, rail_hint),
                    EngineOp::Recv { req, src, tag, max } => {
                        engine.post_recv_as(req, src, tag, max)
                    }
                    EngineOp::Snapshot => {
                        let snap = engine.metrics();
                        shared.snap_slot.lock()[shard] = Some(snap);
                        shared.snap_cv.notify_all();
                    }
                    EngineOp::Shutdown => shutting_down = true,
                }
                drained += 1;
            }
        }

        // 2. One engine pump. A transport error kills the thread but
        // leaves a diagnosis for blocked waiters.
        let moved = match engine.try_progress() {
            Ok(moved) => moved,
            Err(e) => {
                *shared.fail.lock() =
                    Some(format!("transport failure on node {}: {e}", engine.node())); // ALLOC-OK: fatal-error path; the pump exits after
                shared.dead.store(true, Ordering::SeqCst);
                break;
            }
        };

        // 3. Cross-shard outbox, then the steal decision.
        let forwarded = forward_cross_shard(&mut engine, shared, shard);
        shared
            .steal
            .advertise_depth(shard, engine.donation_backlog());
        shared
            .steal
            .advertise_idle(shard, engine.tx_quiescent() && !shutting_down);
        if !shutting_down {
            maybe_donate(&mut engine, shared, shard, config);
        }

        // 4. Harvest completions onto the board, batched symmetrically
        // with submission: each board bucket's lock is taken at most
        // once per harvest instead of once per completion.
        let done_sends = engine.drain_done_sends();
        let done_recvs = engine.drain_done_recvs();
        let harvested = !done_sends.is_empty() || !done_recvs.is_empty();
        shared.board.post_sends_done(&done_sends);
        shared.board.post_recvs_done(done_recvs);

        // 5. Mirror the hot counters.
        my.hot
            .publish(&engine.merged_engine_metrics(), engine.stats());

        // Another shard died: exit even if not quiescent, so shutdown
        // joins don't hang behind work that can never finish.
        // ORDERING: advisory liveness flag; the error message travels under the board mutex
        if shared.dead.load(Ordering::Relaxed) {
            break;
        }

        if shutting_down && my.ring.is_empty() && engine.tx_quiescent() {
            break;
        }

        // 6. Pace: spin while work is outstanding, park on the ring
        // otherwise. (Steal messages don't ring the doorbell; a parked
        // shard sees them after at most one idle_park.)
        if !moved && !harvested && !steal_moved && !forwarded && drained == 0 {
            if engine.has_outstanding() || shutting_down {
                std::thread::yield_now();
            } else {
                my.ring.wait_nonempty(config.idle_park);
            }
        }
    }

    // Exit: refuse further steal messages and settle the residue in
    // one atomic step, so nothing is stranded in the mailbox.
    for msg in shared.steal.depart(shard) {
        match msg {
            // Bounce unplaced donations home. The victim still has the
            // donated requests in its sends map, so it is not
            // quiescent and cannot have departed.
            StealMsg::Donation { victim, wrappers } => {
                let n = wrappers.len() as u64;
                if shared
                    .steal
                    .push(victim, StealMsg::Undonate { wrappers })
                    .is_ok()
                {
                    shared.steal.note_bounced(n);
                }
            }
            // Our own donation bounced back after we decided to leave:
            // only possible when we were not quiescent, i.e. on the
            // dead-runtime path — re-queue for the merged engine.
            StealMsg::Undonate { wrappers } => {
                for w in wrappers {
                    engine.undonate(w);
                }
            }
            // A frame for a flow we own, arriving as we leave with no
            // posted work: dropped, like completions parked on the
            // board at shutdown.
            StealMsg::Frame { .. } => {}
            // A completion for a donation we made: unreachable on the
            // clean path (we'd not be quiescent), settle it anyway.
            StealMsg::Done(req) => engine.complete_foreign_done(req),
        }
    }
    engine
}

/// Model-checked board properties (see `tests/model_check.rs` for the
/// rest of the suite): the [`CompletionBoard`] constructor is private,
/// so its exhaustive checks live here.
#[cfg(all(test, nmad_model))]
mod model_tests {
    use super::*;
    use crate::matching::RecvDone;
    use nmad_verify::{thread, Checker};

    /// Concurrent posts of *distinct* request ids never count as
    /// duplicates and are all observable afterwards, in every schedule.
    #[test]
    fn model_board_distinct_posts_are_duplicate_free() {
        let stats = Checker::new()
            .check(|| {
                let board = Arc::new(CompletionBoard::new(1));
                let (b1, b2) = (Arc::clone(&board), Arc::clone(&board));
                let t1 = thread::spawn(move || b1.post_sends_done(&[SendReqId(1)]));
                let t2 = thread::spawn(move || b2.post_sends_done(&[SendReqId(2)]));
                board.post_recvs_done(vec![(
                    RecvReqId(3),
                    RecvDone {
                        src: NodeId(0),
                        tag: Tag(0),
                        data: Bytes::from_static(b"x"),
                        truncated: false,
                    },
                )]);
                t1.join();
                t2.join();
                assert_eq!(board.duplicates(), 0, "distinct ids flagged duplicate");
                assert!(board.is_send_done(SendReqId(1)));
                assert!(board.is_send_done(SendReqId(2)));
                assert!(board.is_recv_done(RecvReqId(3)));
            })
            .expect("board posting must be duplicate-free in every schedule");
        assert!(
            stats.schedules >= 20,
            "board model underexplored: {stats:?}"
        );
    }

    /// Racing posts of the *same* id are counted — exactly once — no
    /// matter which thread wins the shard lock.
    #[test]
    fn model_board_counts_racing_duplicate_posts() {
        Checker::new()
            .check(|| {
                let board = Arc::new(CompletionBoard::new(1));
                let (b1, b2) = (Arc::clone(&board), Arc::clone(&board));
                let t1 = thread::spawn(move || b1.post_sends_done(&[SendReqId(7)]));
                let t2 = thread::spawn(move || b2.post_sends_done(&[SendReqId(7)]));
                t1.join();
                t2.join();
                assert_eq!(
                    board.duplicates(),
                    1,
                    "exactly one of the two racing posts is the duplicate"
                );
                assert!(board.is_send_done(SendReqId(7)));
            })
            .expect("duplicate accounting must hold in every schedule");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineCosts;
    use crate::strategy::StratAggreg;
    use nmad_net::mem::mem_fabric;
    use nmad_net::NullMeter;

    fn mem_pair() -> (ThreadedEngine, ThreadedEngine) {
        let mut fabric = mem_fabric(2);
        let b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        let launch = |d: nmad_net::mem::MemDriver| {
            ThreadedEngine::launch(
                NmadEngine::new(
                    vec![Box::new(d)],
                    Box::new(NullMeter),
                    Box::new(StratAggreg),
                    EngineCosts::zero(),
                ),
                EngineConfig::threaded(),
            )
        };
        (launch(a), launch(b))
    }

    /// A two-node pair with `rails` independent in-memory rails per
    /// node (one fabric per rail), launched with `shards` progression
    /// shards.
    fn mem_pair_sharded(rails: usize, shards: usize) -> (ThreadedEngine, ThreadedEngine) {
        let mut a_rails: Vec<Box<dyn nmad_net::Driver>> = Vec::new();
        let mut b_rails: Vec<Box<dyn nmad_net::Driver>> = Vec::new();
        for _ in 0..rails {
            let mut fabric = mem_fabric(2);
            let b = fabric.pop().unwrap();
            let a = fabric.pop().unwrap();
            a_rails.push(Box::new(a));
            b_rails.push(Box::new(b));
        }
        let launch = |drivers: Vec<Box<dyn nmad_net::Driver>>| {
            ThreadedEngine::launch(
                NmadEngine::new(
                    drivers,
                    Box::new(NullMeter),
                    Box::new(StratAggreg),
                    EngineCosts::zero(),
                ),
                EngineConfig::sharded(shards),
            )
        };
        (launch(a_rails), launch(b_rails))
    }

    #[test]
    fn threaded_roundtrip_delivers_payload() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let r = bh.post_recv(NodeId(0), Tag(5), 64);
        let s = ah.isend(NodeId(1), Tag(5), &b"payload"[..]);
        ah.wait_send(s);
        let done = bh.wait_recv(r);
        assert_eq!(done.data, b"payload");
        assert_eq!(done.src, NodeId(0));
        assert!(bh.try_take_recv(r).is_none(), "taken once");
        assert_eq!(ah.completion_duplicates(), 0);
        assert_eq!(bh.completion_duplicates(), 0);
    }

    #[test]
    fn batched_submission_roundtrip_with_one_flush() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let n = 40u32; // several ring slots' worth

        let mut rb = bh.submit_batch();
        let recvs: Vec<_> = (0..n)
            .map(|t| rb.post_recv(NodeId(0), Tag(t), 64))
            .collect();
        assert_eq!(rb.pending(), n as usize);
        rb.flush();
        assert_eq!(rb.pending(), 0);
        drop(rb);

        let mut sb = ah.submit_batch();
        let sends: Vec<_> = (0..n)
            .map(|t| sb.isend(NodeId(1), Tag(t), vec![t as u8; 48]))
            .collect();
        sb.flush();

        ah.wait_sends(&sends);
        let dones = bh.wait_recvs(&recvs);
        for (t, done) in dones.iter().enumerate() {
            assert_eq!(done.data, vec![t as u8; 48], "payload for tag {t}");
            assert_eq!(done.src, NodeId(0));
        }
        assert_eq!(ah.completion_duplicates(), 0);
        assert_eq!(bh.completion_duplicates(), 0);
    }

    #[test]
    fn dropping_an_unflushed_batch_flushes_it() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let r = bh.post_recv(NodeId(0), Tag(9), 16);
        let s = {
            let mut batch = ah.submit_batch();
            batch.isend(NodeId(1), Tag(9), &b"implicit"[..])
            // No explicit flush: Drop must push the partial slot and
            // ring the doorbell.
        };
        ah.wait_send(s);
        assert_eq!(bh.wait_recv(r).data, b"implicit");
    }

    #[test]
    fn batched_and_single_submissions_interleave_per_flow_fifo() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let recvs: Vec<_> = (0..6).map(|_| bh.post_recv(NodeId(0), Tag(3), 8)).collect();
        let s1 = ah.isend(NodeId(1), Tag(3), &b"m0"[..]);
        let mut batch = ah.submit_batch();
        let s2 = batch.isend(NodeId(1), Tag(3), &b"m1"[..]);
        let s3 = batch.isend(NodeId(1), Tag(3), &b"m2"[..]);
        batch.flush();
        let s4 = ah.isend(NodeId(1), Tag(3), &b"m3"[..]);
        let mut batch2 = ah.submit_batch();
        let s5 = batch2.isend(NodeId(1), Tag(3), &b"m4"[..]);
        let s6 = batch2.isend(NodeId(1), Tag(3), &b"m5"[..]);
        batch2.flush();
        ah.wait_sends(&[s1, s2, s3, s4, s5, s6]);
        let dones = bh.wait_recvs(&recvs);
        let got: Vec<_> = dones.iter().map(|d| d.data.clone()).collect();
        assert_eq!(
            got,
            [&b"m0"[..], b"m1", b"m2", b"m3", b"m4", b"m5"],
            "same-flow order across batched/unbatched submissions"
        );
    }

    #[test]
    fn threaded_rendezvous_roundtrip() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let body: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
        let r = bh.post_recv(NodeId(0), Tag(1), body.len());
        let s = ah.isend(NodeId(1), Tag(1), body.clone());
        ah.wait_send(s);
        assert_eq!(bh.wait_recv(r).data, body);
    }

    #[test]
    fn threaded_shutdown_returns_the_engine_for_inline_use() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let r = bh.post_recv(NodeId(0), Tag(0), 16);
        let s = ah.isend(NodeId(1), Tag(0), &b"one"[..]);
        ah.wait_send(s);
        bh.wait_recv(r);
        let mut a = a.shutdown();
        let mut b = b.shutdown();
        // Inline use after shutdown; ids must not collide with the
        // threaded phase's.
        let r2 = b.post_recv(NodeId(0), Tag(0), 16);
        let s2 = a.isend(NodeId(1), Tag(0), &b"two"[..]);
        assert!(s2.0 > s.0, "request ids reused after shutdown");
        for _ in 0..10_000 {
            a.progress_until_idle();
            b.progress_until_idle();
            if a.is_send_done(s2) && b.is_recv_done(r2) {
                break;
            }
        }
        assert_eq!(b.try_take_recv(r2).unwrap().data, b"two");
    }

    #[test]
    fn threaded_metrics_snapshot_is_exact_and_hot_mirror_converges() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let n = 8u32;
        let recvs: Vec<_> = (0..n)
            .map(|t| bh.post_recv(NodeId(0), Tag(t), 64))
            .collect();
        let sends: Vec<_> = (0..n)
            .map(|t| ah.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
            .collect();
        for s in sends {
            ah.wait_send(s);
        }
        for r in recvs {
            bh.wait_recv(r);
        }
        // The snapshot RPC runs on the progression thread: totals are
        // exact, not approximate.
        let snap = ah.metrics();
        assert_eq!(snap.engine.requests_submitted, u64::from(n));
        assert_eq!(snap.engine.eager_entries, u64::from(n));
        assert_eq!(snap.wire.data_entries, u64::from(n));
        assert_eq!(snap.nics.len(), 1);
        // The seqlock mirror converges to the same totals.
        for _ in 0..1_000_000 {
            let (hot, wire) = ah.hot_metrics();
            if hot == snap.engine && wire == snap.wire {
                return;
            }
            std::thread::yield_now();
        }
        panic!("hot mirror never converged to the snapshot totals");
    }

    #[test]
    fn sharded_roundtrip_covers_every_shard() {
        let (a, b) = mem_pair_sharded(2, 2);
        assert_eq!(a.shards(), 2);
        let (ah, bh) = (a.handle(), b.handle());
        // Enough tags that HashByDest populates both shards.
        let n = 32u32;
        let shards_hit: HashSet<usize> = (0..n).map(|t| ah.shard_of(NodeId(1), Tag(t))).collect();
        assert_eq!(shards_hit.len(), 2, "tag mix must cover both shards");
        let recvs: Vec<_> = (0..n)
            .map(|t| bh.post_recv(NodeId(0), Tag(t), 64))
            .collect();
        let sends: Vec<_> = (0..n)
            .map(|t| ah.isend(NodeId(1), Tag(t), vec![t as u8; 48]))
            .collect();
        ah.wait_sends(&sends);
        let dones = bh.wait_recvs(&recvs);
        for (t, done) in dones.iter().enumerate() {
            assert_eq!(done.data, vec![t as u8; 48], "payload for tag {t}");
            assert_eq!(done.src, NodeId(0));
        }
        assert_eq!(ah.completion_duplicates(), 0);
        assert_eq!(bh.completion_duplicates(), 0);
    }

    #[test]
    fn sharded_launch_clamps_shards_to_rail_count() {
        let (a, b) = mem_pair_sharded(2, 8);
        assert_eq!(a.shards(), 2, "no shard may run without a rail");
        let (ah, bh) = (a.handle(), b.handle());
        let r = bh.post_recv(NodeId(0), Tag(1), 16);
        let s = ah.isend(NodeId(1), Tag(1), &b"clamped"[..]);
        ah.wait_send(s);
        assert_eq!(bh.wait_recv(r).data, b"clamped");
    }

    #[test]
    fn sharded_shutdown_merges_back_to_one_inline_engine() {
        let (a, b) = mem_pair_sharded(2, 2);
        let (ah, bh) = (a.handle(), b.handle());
        let n = 16u32;
        let recvs: Vec<_> = (0..n)
            .map(|t| bh.post_recv(NodeId(0), Tag(t), 32))
            .collect();
        let sends: Vec<_> = (0..n)
            .map(|t| ah.isend(NodeId(1), Tag(t), vec![t as u8; 24]))
            .collect();
        ah.wait_sends(&sends);
        bh.wait_recvs(&recvs);
        let max_send = sends.iter().map(|s| s.0).max().unwrap();
        let mut a = a.shutdown();
        let mut b = b.shutdown();
        assert_eq!(a.rail_count(), 2, "merge restores every rail");
        // Inline use after the merge; sequence state must continue the
        // threaded phase's per-flow numbering.
        let r2 = b.post_recv(NodeId(0), Tag(3), 32);
        let s2 = a.isend(NodeId(1), Tag(3), &b"post-merge"[..]);
        assert!(s2.0 > max_send, "request ids reused after shutdown");
        for _ in 0..10_000 {
            a.progress_until_idle();
            b.progress_until_idle();
            if a.is_send_done(s2) && b.is_recv_done(r2) {
                break;
            }
        }
        assert_eq!(b.try_take_recv(r2).unwrap().data, b"post-merge");
    }

    #[test]
    fn sharded_metrics_aggregate_across_shards() {
        let (a, b) = mem_pair_sharded(2, 2);
        let (ah, bh) = (a.handle(), b.handle());
        let n = 24u32;
        let recvs: Vec<_> = (0..n)
            .map(|t| bh.post_recv(NodeId(0), Tag(t), 64))
            .collect();
        let sends: Vec<_> = (0..n)
            .map(|t| ah.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
            .collect();
        ah.wait_sends(&sends);
        bh.wait_recvs(&recvs);
        let snap = ah.metrics();
        assert_eq!(snap.engine.requests_submitted, u64::from(n));
        assert_eq!(snap.wire.data_entries, u64::from(n));
        assert_eq!(snap.nics.len(), 2, "both rails in the aggregate");
        for _ in 0..1_000_000 {
            let (hot, wire) = ah.hot_metrics();
            if hot == snap.engine && wire == snap.wire {
                return;
            }
            std::thread::yield_now();
        }
        panic!("sharded hot mirror never converged to the snapshot totals");
    }

    #[test]
    #[should_panic(expected = "refuses background progression")]
    fn threaded_launch_rejects_simulated_drivers() {
        use nmad_net::sim::SimDriver;
        use nmad_sim::{nic, shared_world, RailId, SimConfig};
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let d = SimDriver::new(world, NodeId(0), RailId(0));
        let m = Box::new(d.meter());
        let engine = NmadEngine::new(
            vec![Box::new(d)],
            m,
            Box::new(StratAggreg),
            EngineCosts::zero(),
        );
        let _ = ThreadedEngine::launch(engine, EngineConfig::threaded());
    }
}
