//! Property-based integration tests (proptest): the engine's delivery
//! semantics hold for arbitrary workloads under every strategy, and the
//! wire codecs round-trip arbitrary content.

use bytes::Bytes;
use newmadeleine::core::prelude::*;
use newmadeleine::core::wire::{parse_frame, Entry, FrameBuilder, FrameEncoder};
use newmadeleine::core::SeqNo;
use newmadeleine::core::Strategy;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::Driver;
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig};
use proptest::prelude::*;

type MkStrategy = fn() -> Box<dyn Strategy>;

fn strategies() -> Vec<(&'static str, MkStrategy)> {
    vec![
        ("default", || Box::new(StratDefault)),
        ("aggreg", || Box::new(StratAggreg)),
        ("aggreg_hol", || Box::new(StratAggregHol::new())),
        ("reorder", || Box::new(StratReorder)),
        ("multirail", || Box::new(StratMultirail::default())),
        ("lanes", || Box::new(StratLanes::new())),
    ]
}

fn engine(world: &SharedWorld, node: u32, strategy: Box<dyn Strategy>) -> NmadEngine {
    let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let meter = Box::new(driver.meter());
    NmadEngine::new(
        vec![Box::new(driver) as Box<dyn Driver>],
        meter,
        strategy,
        EngineCosts::zero(),
    )
}

/// One submitted segment: flow tag, size class.
#[derive(Clone, Debug)]
struct Seg {
    tag: u32,
    len: usize,
}

fn seg_strategy() -> impl proptest::strategy::Strategy<Value = Seg> {
    use proptest::strategy::Strategy as _;
    (0u32..4, prop_oneof![0usize..200, 30_000usize..90_000]).prop_map(|(tag, len)| Seg { tag, len })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Whatever the strategy does on the wire (aggregate, reorder,
    /// split), every flow delivers exactly the submitted bytes in
    /// submission order.
    #[test]
    fn delivery_is_exact_under_every_strategy(segs in proptest::collection::vec(seg_strategy(), 1..12)) {
        for (name, mk) in strategies() {
            let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
            let mut a = engine(&world, 0, mk());
            let mut b = engine(&world, 1, mk());
            let mut expected: std::collections::HashMap<u32, Vec<Vec<u8>>> = Default::default();
            let mut sends = Vec::new();
            for (i, seg) in segs.iter().enumerate() {
                let body: Vec<u8> = (0..seg.len).map(|j| ((i * 31 + j) % 251) as u8).collect();
                expected.entry(seg.tag).or_default().push(body.clone());
                sends.push(a.isend(NodeId(1), Tag(seg.tag), body));
            }
            let mut recvs: Vec<(u32, usize, newmadeleine::core::RecvReqId)> = Vec::new();
            for seg in &segs {
                let idx = recvs.iter().filter(|(t, _, _)| *t == seg.tag).count();
                recvs.push((seg.tag, idx, b.post_recv(NodeId(0), Tag(seg.tag), seg.len)));
            }
            // Pump to completion.
            let mut spins = 0u32;
            loop {
                let mut moved = a.progress();
                moved |= b.progress();
                let all = sends.iter().all(|&s| a.is_send_done(s))
                    && recvs.iter().all(|&(_, _, r)| b.is_recv_done(r));
                if all { break; }
                if !moved && world.lock().advance().is_none() {
                    panic!("deadlock under {name}");
                }
                spins += 1;
                prop_assert!(spins < 1_000_000, "livelock under {name}");
            }
            for (tag, idx, r) in recvs {
                let done = b.try_take_recv(r).expect("completed");
                prop_assert_eq!(
                    &done.data,
                    &expected[&tag][idx],
                    "strategy {} flow {} item {}", name, tag, idx
                );
            }
        }
    }

    /// The engine wire codec round-trips arbitrary entry sequences.
    #[test]
    fn wire_frames_roundtrip(
        entries in proptest::collection::vec(
            (0u32..1000, 0u32..1000, proptest::collection::vec(any::<u8>(), 0..300), 0u8..4),
            0..20
        )
    ) {
        let mut fb = FrameBuilder::new();
        for (tag, seq, payload, kind) in &entries {
            match kind {
                0 => fb.push_data_lane(Tag(*tag), SeqNo(*seq), (*tag % 4) as u8, payload),
                1 => fb.push_rts_lane(Tag(*tag), SeqNo(*seq), (*tag % 4) as u8, payload.len() as u32),
                2 => fb.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                _ => fb.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload),
            }
        }
        let frame = fb.finish();
        let parsed = parse_frame(&frame).expect("self-built frame parses");
        prop_assert_eq!(parsed.len(), entries.len());
        for (entry, (tag, seq, payload, kind)) in parsed.iter().zip(&entries) {
            match (entry, kind) {
                (Entry::Data { tag: t, seq: s, lane, payload: p }, 0) => {
                    prop_assert_eq!(t.0, *tag);
                    prop_assert_eq!(s.0, *seq);
                    prop_assert_eq!(*lane, (*tag % 4) as u8);
                    prop_assert_eq!(*p, payload.as_slice());
                }
                (Entry::Rts { total, lane, .. }, 1) => {
                    prop_assert_eq!(*total as usize, payload.len());
                    prop_assert_eq!(*lane, (*tag % 4) as u8);
                }
                (Entry::Cts { total, .. }, 2) => {
                    prop_assert_eq!(*total as usize, payload.len());
                }
                (Entry::RdvData { offset, payload: p, .. }, _) => {
                    prop_assert_eq!(*offset, *seq);
                    prop_assert_eq!(*p, payload.as_slice());
                }
                other => prop_assert!(false, "kind mismatch {:?}", other),
            }
        }
    }

    /// The gather encoder is bit-identical to the staged builder: for
    /// any entry sequence, concatenating [`FrameEncoder`]'s iov
    /// segments yields exactly the bytes [`FrameBuilder`] produces,
    /// `stage_into` produces the same bytes again, and the result
    /// parses back to the same entries (paper §4: gather vs staging
    /// copy must be a pure transport decision, invisible on the wire).
    #[test]
    fn gather_iov_is_bit_identical_to_staged_frame(
        entries in proptest::collection::vec(
            (0u32..1000, 0u32..1000, proptest::collection::vec(any::<u8>(), 0..300), 0u8..5),
            0..20
        )
    ) {
        let mut fb = FrameBuilder::new();
        let mut fe = FrameEncoder::new();
        for (tag, seq, payload, kind) in &entries {
            match kind {
                0 => {
                    fb.push_data(Tag(*tag), SeqNo(*seq), payload);
                    fe.push_data(Tag(*tag), SeqNo(*seq), payload);
                }
                1 => {
                    fb.push_rts(Tag(*tag), SeqNo(*seq), payload.len() as u32);
                    fe.push_rts(Tag(*tag), SeqNo(*seq), payload.len() as u32);
                }
                2 => {
                    fb.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32);
                    fe.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32);
                }
                3 => {
                    fb.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload);
                    fe.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload);
                }
                _ => {
                    fb.push_credit(*tag);
                    fe.push_credit(*tag);
                }
            }
        }
        prop_assert_eq!(fb.len(), fe.wire_len());
        let staged_by_builder = fb.finish();
        let iov = fe.finish();
        let segs = iov.segments();
        prop_assert_eq!(segs.len(), iov.segment_count());
        let gathered: Vec<u8> = segs.concat();
        prop_assert_eq!(&gathered, &staged_by_builder, "gather iov differs from builder bytes");
        let mut staged_by_iov = vec![0xAAu8; 7]; // dirty pooled buffer
        iov.stage_into(&mut staged_by_iov);
        prop_assert_eq!(&staged_by_iov, &staged_by_builder, "staged copy differs from builder bytes");
        let parsed = parse_frame(&gathered).expect("gather-built frame parses");
        prop_assert_eq!(parsed.len(), entries.len());
    }

    /// Every strict prefix of a valid frame is rejected with an error:
    /// the count header promises entries the truncated bytes cannot
    /// hold, so `parse_frame` must return `Err`, never deliver a
    /// partial parse and never panic.
    #[test]
    fn truncated_frames_are_rejected_not_panicked(
        entries in proptest::collection::vec(
            (0u32..1000, 0u32..1000, proptest::collection::vec(any::<u8>(), 0..200), 0u8..4),
            1..10
        ),
        cut_sel in 0u32..10_000
    ) {
        let mut fb = FrameBuilder::new();
        for (tag, seq, payload, kind) in &entries {
            match kind {
                0 => fb.push_data(Tag(*tag), SeqNo(*seq), payload),
                1 => fb.push_rts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                2 => fb.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                _ => fb.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload),
            }
        }
        let frame = fb.finish();
        // Any strict prefix, from the empty slice to one byte short.
        let cut = (frame.len() * cut_sel as usize) / 10_000;
        prop_assert!(cut < frame.len());
        prop_assert!(
            parse_frame(&frame[..cut]).is_err(),
            "truncation to {} of {} bytes must be rejected", cut, frame.len()
        );
    }

    /// A single flipped bit anywhere in a frame never panics the
    /// parser: it either still parses (the flip landed in payload
    /// bytes) or returns a structured error.
    #[test]
    fn bit_flipped_frames_never_panic_the_parser(
        entries in proptest::collection::vec(
            (0u32..1000, 0u32..1000, proptest::collection::vec(any::<u8>(), 0..200), 0u8..4),
            0..10
        ),
        pos_sel in 0u32..10_000,
        bit in 0u8..8
    ) {
        let mut fb = FrameBuilder::new();
        for (tag, seq, payload, kind) in &entries {
            match kind {
                0 => fb.push_data(Tag(*tag), SeqNo(*seq), payload),
                1 => fb.push_rts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                2 => fb.push_cts(Tag(*tag), SeqNo(*seq), payload.len() as u32),
                _ => fb.push_rdv_data(Tag(*tag), SeqNo(*seq), *seq, *seq % 2 == 0, payload),
            }
        }
        let mut frame = fb.finish();
        let pos = (frame.len() * pos_sel as usize) / 10_000;
        frame[pos] ^= 1 << bit;
        // Must not panic; Ok or Err are both acceptable outcomes.
        let _ = parse_frame(&frame);
    }

    /// Baseline codec round-trips arbitrary payloads.
    #[test]
    fn baseline_codec_roundtrips(tag in any::<u32>(), seq in any::<u32>(), payload in proptest::collection::vec(any::<u8>(), 0..500)) {
        use newmadeleine::baseline::codec::{decode, Msg};
        let msg = Msg::Eager { tag: Tag(tag), seq: SeqNo(seq), payload: &payload };
        let wire = msg.encode();
        prop_assert_eq!(decode(&wire).expect("valid"), msg);
    }

    /// Datatype pack → unpack is identity on the blocks and zero on
    /// the gaps, for arbitrary non-overlapping layouts.
    #[test]
    fn datatype_pack_unpack_identity(raw_blocks in proptest::collection::vec((0usize..64, 1usize..64), 0..10)) {
        use newmadeleine::mpi::Datatype;
        // Make blocks disjoint by accumulating offsets.
        let mut blocks = Vec::new();
        let mut at = 0usize;
        for (gap, len) in raw_blocks {
            at += gap;
            blocks.push((at, len));
            at += len;
        }
        let dtype = Datatype::indexed(blocks).expect("disjoint by construction");
        let src: Vec<u8> = (0..dtype.extent()).map(|i| (i % 255) as u8 | 1).collect();
        let packed = dtype.pack(&src);
        prop_assert_eq!(packed.len(), dtype.total_bytes());
        let back = dtype.unpack(&packed);
        let mut covered = vec![false; dtype.extent()];
        for &(offset, len) in dtype.blocks() {
            prop_assert_eq!(&back[offset..offset + len], &src[offset..offset + len]);
            for c in &mut covered[offset..offset + len] { *c = true; }
        }
        for (i, c) in covered.iter().enumerate() {
            if !c {
                prop_assert_eq!(back[i], 0, "gap byte {} must be zero", i);
            }
        }
    }

    /// Rendezvous chunking covers segments exactly once whatever the
    /// chunk size.
    #[test]
    fn rdv_chunking_partitions_payload(len in 1usize..100_000, chunk in 1usize..40_000) {
        use newmadeleine::core::{RdvJob, SendReqId};
        let data: Bytes = (0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>().into();
        let mut job = RdvJob::new(NodeId(1), Tag(0), SeqNo(0), data.clone(), SendReqId(0));
        let mut rebuilt = vec![0u8; len];
        let mut total = 0usize;
        let mut saw_last = false;
        while let Some(c) = job.take_chunk(chunk) {
            prop_assert!(!saw_last, "chunks after last");
            rebuilt[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
            total += c.data.len();
            saw_last = c.last;
        }
        prop_assert!(saw_last);
        prop_assert_eq!(total, len);
        prop_assert_eq!(rebuilt.as_slice(), &data[..]);
    }

    /// Priority classes survive the submission hot path's slot format:
    /// arbitrary op sequences packed into `SLOT_OPS`-sized batches and
    /// pushed through the MPSC ring drain in submission order with
    /// every priority intact.
    #[test]
    fn priority_survives_ring_slot_batching(
        ops in proptest::collection::vec((0u32..64, 0u8..4), 1..100)
    ) {
        use newmadeleine::core::ring::{Batch, SubmitRing};
        use newmadeleine::core::SLOT_OPS;
        let ring: SubmitRing<Batch<(u32, Priority), SLOT_OPS>> = SubmitRing::new(64);
        let mut batch = Batch::new();
        for &(tag, lane) in &ops {
            let op = (tag, Priority::from_lane(lane));
            if let Err(op) = batch.push(op) {
                ring.push(std::mem::replace(&mut batch, Batch::new()));
                batch.push(op).expect("fresh batch has room");
            }
        }
        if !batch.is_empty() {
            ring.push(batch);
        }
        let mut drained = Vec::new();
        while let Some(b) = ring.pop() {
            drained.extend(b);
        }
        let expected: Vec<(u32, Priority)> = ops
            .iter()
            .map(|&(tag, lane)| (tag, Priority::from_lane(lane)))
            .collect();
        prop_assert_eq!(drained, expected);
    }

    /// Sharded routing with mixed priorities: flows hash to a shard on
    /// both nodes, every class of traffic rides its flow's shard, and
    /// delivery is exact per flow under the tail-aware strategies —
    /// lane-based reordering never crosses a flow boundary.
    #[test]
    fn sharded_routing_delivers_mixed_priority_flows_exactly(
        items in proptest::collection::vec((0u32..12, 1usize..2000, 0u8..4), 1..16)
    ) {
        use newmadeleine::core::ShardPolicy;
        const SHARDS: usize = 2;
        for (name, mk) in [
            ("lanes", (|| Box::new(StratLanes::new())) as MkStrategy),
            ("aggreg_hol", || Box::new(StratAggregHol::new())),
        ] {
            let world = shared_world(SimConfig::two_nodes_multirail(vec![nic::mx_myri10g(); SHARDS]));
            let policy = ShardPolicy::HashByDest;
            let multi = |node: u32| {
                let drivers: Vec<Box<dyn Driver>> = SimDriver::all_rails(&world, NodeId(node))
                    .into_iter()
                    .map(|d| Box::new(d) as Box<dyn Driver>)
                    .collect();
                let meter = Box::new(newmadeleine::net::SimCpuMeter::new(world.clone(), NodeId(node)));
                NmadEngine::new(drivers, meter, mk(), EngineCosts::zero())
            };
            let mut senders = multi(0).split_for_shards(SHARDS, policy);
            let mut sinks = multi(1).split_for_shards(SHARDS, policy);
            let shard_of = |tag: u32| policy.route(SHARDS, NodeId(0), NodeId(1), Tag(tag));
            let mut expected: std::collections::HashMap<u32, Vec<Vec<u8>>> = Default::default();
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for (i, &(tag, len, lane)) in items.iter().enumerate() {
                let body: Vec<u8> = (0..len).map(|j| ((i * 17 + j) % 251) as u8).collect();
                let s = shard_of(tag);
                let idx = expected.get(&tag).map_or(0, Vec::len);
                recvs.push((tag, idx, s, sinks[s].post_recv(NodeId(0), Tag(tag), len)));
                sends.push((s, senders[s].submit_send_parts(
                    NodeId(1),
                    Tag(tag),
                    vec![(Bytes::from(body.clone()), Priority::from_lane(lane))],
                    None,
                )));
                expected.entry(tag).or_default().push(body);
            }
            let mut spins = 0u32;
            loop {
                let mut moved = false;
                for e in senders.iter_mut().chain(sinks.iter_mut()) {
                    moved |= e.progress_until_idle();
                }
                let all = sends.iter().all(|&(s, r)| senders[s].is_send_done(r))
                    && recvs.iter().all(|&(_, _, s, r)| sinks[s].is_recv_done(r));
                if all { break; }
                if !moved && world.lock().advance().is_none() {
                    panic!("sharded deadlock under {name}");
                }
                spins += 1;
                prop_assert!(spins < 1_000_000, "sharded livelock under {name}");
            }
            for (tag, idx, s, r) in recvs {
                let done = sinks[s].try_take_recv(r).expect("completed");
                prop_assert_eq!(
                    &done.data,
                    &expected[&tag][idx],
                    "strategy {} flow {} item {}", name, tag, idx
                );
            }
        }
    }

    /// The steal path is priority-transparent: segments pulled off a
    /// victim by `donate_eager` keep their class, payload, and request
    /// identity; the thief transmits them as spool frames; and the
    /// `TxDone::Foreign` hand-back (`drain_spool_done` →
    /// `complete_foreign_done`) completes the victim's requests while
    /// the sink receives every byte exactly.
    #[test]
    fn steal_donation_keeps_priority_and_completes_foreign_sends(
        items in proptest::collection::vec((1usize..2048, 0u8..4), 1..12),
        donate_sel in 0usize..16
    ) {
        use newmadeleine::core::PackWrapper;
        let world = shared_world(SimConfig::two_nodes_multirail(vec![nic::mx_myri10g(); 2]));
        let single = |node: u32, rail: u16, strat: Box<dyn Strategy>| {
            let driver = SimDriver::new(world.clone(), NodeId(node), RailId(rail));
            let meter = Box::new(driver.meter());
            NmadEngine::new(vec![Box::new(driver) as Box<dyn Driver>], meter, strat, EngineCosts::zero())
        };
        let mut victim = single(0, 0, Box::new(StratLanes::new()));
        let mut thief = single(0, 1, Box::new(StratDefault));
        let drivers: Vec<Box<dyn Driver>> = SimDriver::all_rails(&world, NodeId(1))
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn Driver>)
            .collect();
        let meter = Box::new(newmadeleine::net::SimCpuMeter::new(world.clone(), NodeId(1)));
        let mut sink = NmadEngine::new(drivers, meter, Box::new(StratDefault), EngineCosts::zero());

        let mut sends = Vec::new();
        for (i, &(len, lane)) in items.iter().enumerate() {
            let body: Vec<u8> = (0..len).map(|j| ((i * 13 + j) % 251) as u8).collect();
            sends.push(victim.submit_send_parts(
                NodeId(1),
                Tag(i as u32),
                vec![(Bytes::from(body), Priority::from_lane(lane))],
                None,
            ));
        }
        let donated: Vec<PackWrapper> = victim.donate_eager(donate_sel % (items.len() + 1));
        for w in &donated {
            let (len, lane) = items[w.tag.0 as usize];
            prop_assert_eq!(w.priority, Priority::from_lane(lane), "donation changed the class");
            prop_assert_eq!(w.len(), len, "donation changed the payload");
        }
        let donated_reqs: Vec<_> = donated.iter().map(|w| w.req).collect();
        thief.accept_donations(0, donated);

        let mut recvs = Vec::new();
        for (i, &(len, _)) in items.iter().enumerate() {
            recvs.push(sink.post_recv(NodeId(0), Tag(i as u32), len));
        }
        let mut spins = 0u32;
        loop {
            let mut moved = victim.progress();
            moved |= thief.progress();
            moved |= sink.progress();
            for (req, victim_idx) in thief.drain_spool_done() {
                prop_assert_eq!(victim_idx, 0, "foreign done routed to the wrong victim");
                victim.complete_foreign_done(req);
            }
            let all = sends.iter().all(|&s| victim.is_send_done(s))
                && recvs.iter().all(|&r| sink.is_recv_done(r));
            if all { break; }
            if !moved && world.lock().advance().is_none() {
                panic!("steal co-simulation deadlock");
            }
            spins += 1;
            prop_assert!(spins < 1_000_000, "steal co-simulation livelock");
        }
        for req in donated_reqs {
            prop_assert!(victim.is_send_done(req), "foreign completion lost");
        }
        for (i, &(len, _)) in items.iter().enumerate() {
            let done = sink.try_take_recv(recvs[i]).expect("completed");
            prop_assert_eq!(done.data.len(), len, "flow {} truncated", i);
        }
    }
}

/// Drives both engines (and virtual time) until `done` holds.
fn pump_until(
    world: &SharedWorld,
    a: &mut NmadEngine,
    b: &mut NmadEngine,
    done: impl Fn(&NmadEngine, &NmadEngine) -> bool,
) {
    let mut spins = 0u32;
    loop {
        let mut moved = a.progress();
        moved |= b.progress();
        if done(a, b) {
            break;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock");
        }
        spins += 1;
        assert!(spins < 1_000_000, "livelock");
    }
}

/// One eager data frame is two iov segments (header block + payload).
/// A NIC whose gather limit is exactly two must take the gather path
/// with zero staging copies: the `segments <= gather_max_segs` decision
/// is inclusive at the boundary.
#[test]
fn frame_exactly_at_gather_limit_posts_without_staging() {
    let model = newmadeleine::sim::NicModel {
        gather_max_segs: 2,
        ..nic::mx_myri10g()
    };
    let world = shared_world(SimConfig::two_nodes(model));
    let mut a = engine(&world, 0, Box::new(StratDefault));
    let mut b = engine(&world, 1, Box::new(StratDefault));
    let s = a.isend(NodeId(1), Tag(7), vec![0x42u8; 128]);
    let r = b.post_recv(NodeId(0), Tag(7), 128);
    pump_until(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    let m = a.metrics();
    assert!(m.engine.gather_sends > 0, "boundary frame must gather");
    assert_eq!(m.wire.staging_copies, 0, "no staging at the boundary");
}

/// The same frame on a NIC that allows one segment fewer must fall
/// back to a staged copy — and still deliver identical bytes.
#[test]
fn frame_one_over_gather_limit_stages_a_copy() {
    let model = newmadeleine::sim::NicModel {
        gather_max_segs: 1,
        ..nic::mx_myri10g()
    };
    let world = shared_world(SimConfig::two_nodes(model));
    let mut a = engine(&world, 0, Box::new(StratDefault));
    let mut b = engine(&world, 1, Box::new(StratDefault));
    let body: Vec<u8> = (0..128u32).map(|i| (i % 251) as u8).collect();
    let s = a.isend(NodeId(1), Tag(7), body.clone());
    let r = b.post_recv(NodeId(0), Tag(7), 128);
    pump_until(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    let m = a.metrics();
    assert_eq!(m.engine.gather_sends, 0, "gatherless NIC must not gather");
    assert!(m.wire.staging_copies > 0, "fallback must stage");
    assert_eq!(&b.try_take_recv(r).expect("completed").data, &body);
}

/// The sim driver enforces its MTU exactly: a frame of `mtu` bytes is
/// accepted, one byte more is rejected as `FrameTooLarge`.
#[test]
fn mtu_boundary_is_exact_at_the_driver() {
    let model = newmadeleine::sim::NicModel {
        mtu: 4096,
        ..nic::mx_myri10g()
    };
    let world = shared_world(SimConfig::two_nodes(model));
    let mut d = SimDriver::new(world.clone(), NodeId(0), RailId(0));
    let mut fb = FrameBuilder::new();
    fb.push_data(Tag(0), SeqNo(0), &vec![0u8; 4096 - fb.len() - 20]);
    let at_mtu = fb.finish();
    assert_eq!(at_mtu.len(), 4096);
    d.post_send(NodeId(1), &[&at_mtu])
        .expect("frame at mtu fits");
    let over = vec![0u8; 4097];
    assert!(
        d.post_send(NodeId(1), &[&over]).is_err(),
        "frame one byte over mtu must be rejected"
    );
}
