//! Exhaustive model-checking of the engine's lock-free protocols.
//!
//! Compiled only under `--features nmad-model` (mapped to
//! `cfg(nmad_model)` by build.rs): the `crate::sync` facade then routes
//! every atomic, fence, mutex and condvar on the hot path into the
//! nmad-verify runtime, and each `Checker::check` call below runs its
//! closure under *every* thread interleaving (up to the preemption
//! bound) and every weak-memory-allowed load result. A property that
//! holds here holds for all schedules the bound reaches — not just the
//! ones a stress test happened to hit.
//!
//! Each protocol suite is paired with a *mutant*: a copy of the
//! protocol with a deliberately weakened memory ordering that the
//! checker must catch. The mutants keep the checker honest — a
//! verification pass that cannot fail is not evidence.

#![cfg(nmad_model)]

use nmad_core::ring::{Batch, SubmitRing};
use nmad_core::sync::{fence, spin_loop, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};
use nmad_core::Seqlock;
use nmad_core::StealGroup;
use nmad_verify::{thread, Checker};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Submission ring: FIFO, no loss, no double-pop, wakeup protocol.
// ---------------------------------------------------------------------

/// One producer, one consumer: values come out in push order, none are
/// lost, none are duplicated — across every schedule.
#[test]
fn model_ring_spsc_fifo_no_loss() {
    let stats = Checker::new()
        .max_schedules(15_000)
        .check(|| {
            let ring = Arc::new(SubmitRing::new(2));
            let r = Arc::clone(&ring);
            let producer = thread::spawn(move || {
                r.push(1u64);
                r.push(2u64);
            });
            let mut got = Vec::new();
            while got.len() < 2 {
                match ring.pop() {
                    Some(v) => got.push(v),
                    None => spin_loop(),
                }
            }
            producer.join();
            assert_eq!(got, [1, 2], "ring broke FIFO or duplicated a value");
            assert!(ring.pop().is_none(), "ring invented a value");
        })
        .expect("SPSC ring protocol must hold in every schedule");
    assert!(
        stats.schedules >= 100,
        "ring model underexplored: {stats:?}"
    );
    assert_eq!(
        stats.truncated, 0,
        "ring model hit the step bound: {stats:?}"
    );
}

/// Two producers race into the ring, the consumer drains: every value
/// arrives exactly once (MPMC slot claiming never loses or doubles).
#[test]
fn model_ring_mpmc_no_loss_no_double_pop() {
    let stats = Checker::new()
        .max_schedules(15_000)
        .check(|| {
            let ring = Arc::new(SubmitRing::new(2));
            let (r1, r2) = (Arc::clone(&ring), Arc::clone(&ring));
            let p1 = thread::spawn(move || r1.push(1u64));
            let p2 = thread::spawn(move || r2.push(2u64));
            let mut got = Vec::new();
            while got.len() < 2 {
                match ring.pop() {
                    Some(v) => got.push(v),
                    None => spin_loop(),
                }
            }
            p1.join();
            p2.join();
            got.sort_unstable();
            assert_eq!(got, [1, 2], "a value was lost or popped twice");
        })
        .expect("MPMC ring protocol must hold in every schedule");
    assert!(
        stats.schedules >= 100,
        "MPMC model underexplored: {stats:?}"
    );
}

/// The Dekker-style wakeup protocol (`SeqCst` flag + fences on both
/// sides) never strands the consumer: in no schedule does the park
/// have to be rescued by its timeout.
#[test]
fn model_ring_wakeup_never_needs_the_timeout() {
    let stats = Checker::new()
        .max_schedules(15_000)
        .check(|| {
            let ring = Arc::new(SubmitRing::new(2));
            let r = Arc::clone(&ring);
            let consumer = thread::spawn(move || loop {
                if let Some(v) = r.pop() {
                    return v;
                }
                r.wait_nonempty(Duration::from_millis(1));
            });
            ring.push(7u64);
            assert_eq!(consumer.join(), 7);
        })
        .expect("wakeup protocol must hold in every schedule");
    assert_eq!(
        stats.timeouts_fired, 0,
        "a schedule exists where the wakeup is lost and only the \
         park timeout rescues the consumer: {stats:?}"
    );
}

/// The batched slot protocol: a producer stages two slots with
/// `push_quiet` and rings the doorbell **once**, after the last push.
/// In every schedule the parked consumer is woken without its timeout
/// firing, and the flattened slots preserve FIFO across the whole run —
/// the exact invariant `SubmitBatch::flush` relies on.
#[test]
fn model_ring_batched_slots_flatten_fifo() {
    let stats = Checker::new()
        .max_schedules(15_000)
        .check(|| {
            let ring: Arc<SubmitRing<Batch<u64, 2>>> = Arc::new(SubmitRing::new(2));
            let r = Arc::clone(&ring);
            let consumer = thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 4 {
                    match r.pop() {
                        Some(slot) => got.extend(slot),
                        None => {
                            r.wait_nonempty(Duration::from_millis(1));
                        }
                    }
                }
                got
            });
            let mut s1 = Batch::<u64, 2>::new();
            s1.push(1).unwrap();
            s1.push(2).unwrap();
            let mut s2 = Batch::<u64, 2>::new();
            s2.push(3).unwrap();
            s2.push(4).unwrap();
            ring.push_quiet(s1);
            ring.push_quiet(s2);
            ring.doorbell();
            assert_eq!(
                consumer.join(),
                [1, 2, 3, 4],
                "flattened slots broke FIFO or lost an op"
            );
        })
        .expect("batched slot protocol must hold in every schedule");
    assert!(
        stats.schedules >= 100,
        "batched ring model underexplored: {stats:?}"
    );
    assert_eq!(
        stats.timeouts_fired, 0,
        "a schedule exists where the single flush doorbell is lost and \
         only the park timeout rescues the consumer: {stats:?}"
    );
}

/// Mutant: the doorbell rung *before* the quiet pushes (the ordering
/// `SubmitBatch::flush` must never produce). The consumer can then
/// check emptiness after the doorbell but before the pushes and park
/// with the batch already committed — the checker must find a schedule
/// where only the timeout rescues it.
#[test]
fn model_ring_doorbell_before_push_mutant_is_caught() {
    let stats = Checker::new()
        .max_schedules(30_000)
        .check(|| {
            let ring: Arc<SubmitRing<Batch<u64, 2>>> = Arc::new(SubmitRing::new(2));
            let r = Arc::clone(&ring);
            let consumer = thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 2 {
                    match r.pop() {
                        Some(slot) => got.extend(slot),
                        None => {
                            r.wait_nonempty(Duration::from_millis(1));
                        }
                    }
                }
                got
            });
            let mut slot = Batch::<u64, 2>::new();
            slot.push(1).unwrap();
            slot.push(2).unwrap();
            ring.doorbell(); // mutant: doorbell precedes the push
            ring.push_quiet(slot);
            assert_eq!(consumer.join(), [1, 2]);
        })
        .expect("the park timeout keeps even the mutant live");
    assert!(
        stats.timeouts_fired > 0,
        "the doorbell-before-push mutant must exhibit a stranded park \
         (rescued only by the timeout) in some schedule: {stats:?}"
    );
}

/// Mutant: the same wakeup protocol with the `SeqCst` fences stripped
/// and the flag demoted to `Relaxed`. The lost-wakeup window opens and
/// the checker finds it — visible as parks that only the last-resort
/// timeout rescues.
#[test]
fn model_ring_wakeup_fence_mutant_is_caught() {
    struct WeakMailbox {
        data: AtomicU64,
        sleeping: AtomicU64,
        lock: Mutex<()>,
        cv: Condvar,
    }
    let stats = Checker::new()
        .max_schedules(30_000)
        .check(|| {
            let mb = Arc::new(WeakMailbox {
                data: AtomicU64::new(0),
                sleeping: AtomicU64::new(0),
                lock: Mutex::new(()),
                cv: Condvar::new(),
            });
            let m = Arc::clone(&mb);
            let consumer = thread::spawn(move || loop {
                if m.data.load(Ordering::Relaxed) != 0 {
                    return m.data.load(Ordering::Relaxed);
                }
                let guard = m.lock.lock();
                m.sleeping.store(1, Ordering::Relaxed);
                // mutant: no SeqCst fence before the recheck
                if m.data.load(Ordering::Relaxed) == 0 {
                    let (g, _) = m.cv.wait_timeout(guard, Duration::from_millis(1));
                    drop(g);
                } else {
                    drop(guard);
                }
                m.sleeping.store(0, Ordering::Relaxed);
            });
            mb.data.store(7, Ordering::Relaxed);
            // mutant: no SeqCst fence before the sleeping check
            if mb.sleeping.load(Ordering::Relaxed) != 0 {
                let _guard = mb.lock.lock();
                mb.cv.notify_one();
            }
            assert_eq!(consumer.join(), 7);
        })
        .expect("the park timeout keeps even the mutant live");
    assert!(
        stats.timeouts_fired > 0,
        "the fence-stripped mutant must exhibit a lost wakeup \
         (rescued only by the timeout) in some schedule: {stats:?}"
    );
}

// ---------------------------------------------------------------------
// Seqlock: reads are never torn; the weakened mutant is.
// ---------------------------------------------------------------------

/// Every read returns a pair some publish actually wrote — never a mix
/// of two publishes — in every schedule and for every weak-memory load
/// result.
#[test]
fn model_seqlock_reads_never_tear() {
    let stats = Checker::new()
        .max_schedules(15_000)
        .check(|| {
            let lock = Arc::new(Seqlock::<2>::new());
            let l = Arc::clone(&lock);
            let writer = thread::spawn(move || {
                l.publish(&[7, 7]);
                l.publish(&[9, 9]);
            });
            let words = lock.read();
            assert_eq!(
                words[0], words[1],
                "torn seqlock read: {words:?} mixes two publishes"
            );
            assert!(matches!(words[0], 0 | 7 | 9), "value from nowhere");
            writer.join();
        })
        .expect("seqlock reads must be tear-free in every schedule");
    assert!(
        stats.schedules >= 100,
        "seqlock model underexplored: {stats:?}"
    );
}

/// Mutant: a seqlock whose publish skips the `Release` fence/store and
/// whose read skips the `Acquire` edges — all `Relaxed`. The sequence
/// check can then validate a torn pair, and the checker must find the
/// schedule (and load result) where it does.
#[test]
fn model_seqlock_relaxed_mutant_is_torn() {
    struct WeakSeqlock {
        seq: AtomicU64,
        vals: [AtomicU64; 2],
    }
    impl WeakSeqlock {
        fn publish(&self, words: &[u64; 2]) {
            let s = self.seq.load(Ordering::Relaxed);
            self.seq.store(s + 1, Ordering::Relaxed);
            // mutant: no Release fence
            for (cell, w) in self.vals.iter().zip(words) {
                cell.store(*w, Ordering::Relaxed);
            }
            self.seq.store(s + 2, Ordering::Relaxed); // mutant: not Release
        }
        fn read(&self) -> Option<[u64; 2]> {
            let s1 = self.seq.load(Ordering::Relaxed); // mutant: not Acquire
            if s1 % 2 == 1 {
                return None;
            }
            let words = [
                self.vals[0].load(Ordering::Relaxed),
                self.vals[1].load(Ordering::Relaxed),
            ];
            // mutant: no Acquire fence
            if self.seq.load(Ordering::Relaxed) == s1 {
                Some(words)
            } else {
                None
            }
        }
    }
    let failure = Checker::new()
        .max_schedules(30_000)
        .check(|| {
            let lock = Arc::new(WeakSeqlock {
                seq: AtomicU64::new(0),
                vals: [AtomicU64::new(0), AtomicU64::new(0)],
            });
            let l = Arc::clone(&lock);
            let writer = thread::spawn(move || l.publish(&[7, 7]));
            if let Some(words) = lock.read() {
                assert_eq!(words[0], words[1], "torn read validated: {words:?}");
            }
            writer.join();
        })
        .expect_err("the relaxed seqlock mutant must be caught");
    assert!(
        failure.message.contains("torn read validated"),
        "wrong failure: {failure}"
    );
}

// ---------------------------------------------------------------------
// Request-id watermark: unique, monotone allocation.
// ---------------------------------------------------------------------

/// The application-side id allocator (`fetch_add` on one shared
/// watermark, as in `ThreadedHandle::alloc`) hands out distinct,
/// dense ids no matter how threads race.
#[test]
fn model_id_watermark_allocates_unique_ids() {
    let stats = Checker::new()
        .check(|| {
            let next = Arc::new(AtomicUsize::new(0));
            let (n1, n2) = (Arc::clone(&next), Arc::clone(&next));
            let t1 = thread::spawn(move || n1.fetch_add(1, Ordering::Relaxed));
            let t2 = thread::spawn(move || n2.fetch_add(1, Ordering::Relaxed));
            let c = next.fetch_add(1, Ordering::Relaxed);
            let (a, b) = (t1.join(), t2.join());
            let mut ids = [a, b, c];
            ids.sort_unstable();
            assert_eq!(ids, [0, 1, 2], "ids must be unique and dense: {ids:?}");
            assert_eq!(
                next.load(Ordering::Relaxed),
                3,
                "watermark must be monotone"
            );
        })
        .expect("atomic id allocation must be unique in every schedule");
    // Three commuting fetch_adds dedup down to a small state space —
    // the floor only guards against the model not exploring at all.
    assert!(stats.schedules >= 10, "id model underexplored: {stats:?}");
}

/// Mutant: the allocator decomposed into a racy load-then-store. The
/// checker must find the schedule where two threads read the same
/// watermark and hand out a duplicate id.
#[test]
fn model_id_watermark_load_store_mutant_is_caught() {
    let failure = Checker::new()
        .check(|| {
            let next = Arc::new(AtomicUsize::new(0));
            let alloc = |n: &AtomicUsize| {
                let id = n.load(Ordering::Relaxed);
                n.store(id + 1, Ordering::Relaxed); // mutant: not a fetch_add
                id
            };
            let n1 = Arc::clone(&next);
            let t = thread::spawn(move || alloc(&n1));
            let a = alloc(&next);
            let b = t.join();
            assert_ne!(a, b, "duplicate request id handed out");
        })
        .expect_err("the load/store id mutant must be caught");
    assert!(
        failure.message.contains("duplicate request id"),
        "wrong failure: {failure}"
    );
}

// ---------------------------------------------------------------------
// Work-steal handoff: no donation is lost or doubly owned.
// ---------------------------------------------------------------------

/// The steal-mailbox handoff ([`StealGroup`]): a victim donates tokens
/// while the thief drains and then departs. In every schedule, every
/// donated token ends up owned exactly once — drained by the thief,
/// returned in the departure residue, or bounced straight back to the
/// victim. Nothing is lost, nothing is owned twice.
#[test]
fn model_steal_handoff_never_loses_or_double_owns() {
    let stats = Checker::new()
        .max_schedules(15_000)
        .check(|| {
            let group: Arc<StealGroup<u64>> = Arc::new(StealGroup::new(2));
            let g = Arc::clone(&group);
            // Victim (shard 0) donates two tokens to the thief
            // (shard 1); a bounced donation stays with the victim.
            let victim = thread::spawn(move || {
                let mut kept = Vec::new();
                for token in [1u64, 2] {
                    if let Err(back) = g.push(1, token) {
                        kept.push(back);
                    }
                }
                kept
            });
            // Thief: drain once mid-race, then depart — the departure
            // atomically refuses later pushes and returns the residue.
            let drained = group.drain(1);
            let residue = group.depart(1);
            let kept = victim.join();
            let mut all: Vec<u64> = drained.into_iter().chain(residue).chain(kept).collect();
            all.sort_unstable();
            assert_eq!(
                all,
                [1, 2],
                "a donation was lost or doubly owned across the steal handoff"
            );
            assert_eq!(
                group.drain(1),
                Vec::<u64>::new(),
                "a departed mailbox re-issued a token"
            );
        })
        .expect("steal handoff must conserve donations in every schedule");
    // The mailbox lock serializes most interleavings, so dedup shrinks
    // this model to a few dozen distinct schedules (the exact count
    // varies with exploration order). The floor only guards against
    // the model not exploring at all; raw-interleaving volume is
    // counted by the dedup-off suites in model_shard.rs.
    assert!(
        stats.schedules >= 10,
        "steal handoff model underexplored: {stats:?}"
    );
    assert_eq!(
        stats.truncated, 0,
        "steal handoff model hit the step bound: {stats:?}"
    );
}

/// Mutant: the departure flag demoted to an atomic checked *outside*
/// the queue lock (the ordering `StealMailbox` must never have). A
/// donation can then slip into the mailbox after the departure drain —
/// stranded forever, neither processed nor bounced. The checker must
/// find that schedule and report a replayable failing path.
#[test]
fn model_steal_departed_flag_outside_lock_mutant_is_caught() {
    struct WeakMailbox {
        queue: Mutex<Vec<u64>>,
        departed: AtomicU64,
    }
    impl WeakMailbox {
        fn push(&self, token: u64) -> Result<(), u64> {
            // mutant: the departure check races ahead of the enqueue
            // instead of sharing the queue's critical section.
            if self.departed.load(Ordering::Relaxed) == 1 {
                return Err(token);
            }
            self.queue.lock().push(token);
            Ok(())
        }
        fn depart(&self) -> Vec<u64> {
            self.departed.store(1, Ordering::Relaxed);
            std::mem::take(&mut *self.queue.lock())
        }
    }
    let failure = Checker::new()
        .max_schedules(30_000)
        .check(|| {
            let mailbox = Arc::new(WeakMailbox {
                queue: Mutex::new(Vec::new()),
                departed: AtomicU64::new(0),
            });
            let m = Arc::clone(&mailbox);
            let victim = thread::spawn(move || m.push(7).err());
            let residue = mailbox.depart();
            let bounced = victim.join();
            // After departure the mailbox is never drained again: a
            // token in neither the residue nor the bounce is lost.
            assert_eq!(
                residue.len() + usize::from(bounced.is_some()),
                1,
                "donation lost across the steal handoff"
            );
        })
        .expect_err("the unlocked departure-flag mutant must be caught");
    assert!(
        failure.message.contains("donation lost"),
        "wrong failure: {failure}"
    );
    assert!(
        !failure.schedule.is_empty(),
        "the failing path must be replayable: {failure}"
    );
}

// ---------------------------------------------------------------------
// Exploration volume.
// ---------------------------------------------------------------------

/// The suites above individually assert correctness; this one pins the
/// *amount* of state space they cover. Re-runs the three protocol
/// models and requires ≥ 10 000 distinct schedules in total, so a
/// future change that silently guts the exploration (say, an
/// over-eager dedup) fails loudly.
#[test]
fn model_exploration_covers_ten_thousand_schedules() {
    let ring = Checker::new()
        .max_schedules(8_000)
        .check(|| {
            let ring = Arc::new(SubmitRing::new(2));
            let (r1, r2) = (Arc::clone(&ring), Arc::clone(&ring));
            let p1 = thread::spawn(move || r1.push(1u64));
            let p2 = thread::spawn(move || r2.push(2u64));
            let mut got = 0;
            while got < 2 {
                match ring.pop() {
                    Some(_) => got += 1,
                    None => spin_loop(),
                }
            }
            p1.join();
            p2.join();
        })
        .expect("ring model is correct");
    let seqlock = Checker::new()
        .max_schedules(8_000)
        .check(|| {
            let lock = Arc::new(Seqlock::<2>::new());
            let (l1, l2) = (Arc::clone(&lock), Arc::clone(&lock));
            let writer = thread::spawn(move || {
                l1.publish(&[7, 7]);
                l1.publish(&[9, 9]);
            });
            let reader = thread::spawn(move || {
                let w = l2.read();
                assert_eq!(w[0], w[1]);
            });
            let w = lock.read();
            assert_eq!(w[0], w[1]);
            writer.join();
            reader.join();
        })
        .expect("seqlock model is correct");
    let fence_dekker = Checker::new()
        .check(|| {
            // Store-buffering core of the ring's wakeup handshake.
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x1.store(1, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                y1.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let saw_x = x.load(Ordering::Relaxed);
            let saw_y = t.join();
            assert!(
                saw_x == 1 || saw_y == 1,
                "both sides of the Dekker handshake went blind"
            );
        })
        .expect("fenced store-buffering is correct");
    let total = ring.schedules + seqlock.schedules + fence_dekker.schedules;
    assert!(
        total >= 10_000,
        "exploration volume regressed below 10k schedules: \
         ring={} seqlock={} dekker={}",
        ring.schedules,
        seqlock.schedules,
        fence_dekker.schedules
    );
}
