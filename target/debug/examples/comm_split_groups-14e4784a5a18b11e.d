/root/repo/target/debug/examples/comm_split_groups-14e4784a5a18b11e.d: examples/comm_split_groups.rs

/root/repo/target/debug/examples/comm_split_groups-14e4784a5a18b11e: examples/comm_split_groups.rs

examples/comm_split_groups.rs:
