/root/repo/target/debug/deps/codec-6a02ee4e812bfaf3.d: crates/bench/benches/codec.rs

/root/repo/target/debug/deps/codec-6a02ee4e812bfaf3: crates/bench/benches/codec.rs

crates/bench/benches/codec.rs:
