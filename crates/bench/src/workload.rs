//! Seeded synthetic workload generation.
//!
//! The paper motivates the engine with "irregular and multi-flow
//! communication schemes" (§1–2). This module generates such schemes
//! reproducibly: mixes of small and rendezvous-sized segments spread
//! over several logical flows, from a fixed seed, so stress tests and
//! ablations see *irregular but deterministic* traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic traffic mix.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of messages to generate.
    pub messages: usize,
    /// Number of distinct logical flows (tags).
    pub flows: u32,
    /// Small messages are uniform in `1..=small_max` bytes.
    pub small_max: usize,
    /// Probability that a message is rendezvous-sized.
    pub large_prob: f64,
    /// Large messages are uniform in `large_min..=large_max` bytes.
    pub large_min: usize,
    pub large_max: usize,
    /// RNG seed: same spec + seed ⇒ identical workload.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A mixed RPC-like default: mostly small control traffic with
    /// occasional bulk payloads.
    pub fn rpc_mix(messages: usize, seed: u64) -> Self {
        WorkloadSpec {
            messages,
            flows: 6,
            small_max: 512,
            large_prob: 0.15,
            large_min: 40_000,
            large_max: 150_000,
            seed,
        }
    }

    /// Pure small-message burst traffic (the fig. 3 regime).
    pub fn burst(messages: usize, seed: u64) -> Self {
        WorkloadSpec {
            messages,
            flows: 16,
            small_max: 256,
            large_prob: 0.0,
            large_min: 0,
            large_max: 0,
            seed,
        }
    }
}

/// One generated message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkItem {
    pub tag: u32,
    pub len: usize,
}

/// Generates the workload described by `spec`.
pub fn generate(spec: &WorkloadSpec) -> Vec<WorkItem> {
    assert!(spec.flows > 0, "need at least one flow");
    assert!((0.0..=1.0).contains(&spec.large_prob));
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.messages)
        .map(|_| {
            let tag = rng.gen_range(0..spec.flows);
            let len = if spec.large_prob > 0.0 && rng.gen_bool(spec.large_prob) {
                rng.gen_range(spec.large_min..=spec.large_max)
            } else {
                rng.gen_range(1..=spec.small_max.max(1))
            };
            WorkItem { tag, len }
        })
        .collect()
}

/// Deterministic per-item payload (content checkable at the receiver).
pub fn payload_for(index: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((index * 37 + j) % 251) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let spec = WorkloadSpec::rpc_mix(200, 42);
        assert_eq!(generate(&spec), generate(&spec));
    }

    #[test]
    fn different_seed_different_workload() {
        let a = generate(&WorkloadSpec::rpc_mix(200, 1));
        let b = generate(&WorkloadSpec::rpc_mix(200, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn burst_spec_generates_only_small_messages() {
        let items = generate(&WorkloadSpec::burst(500, 7));
        assert_eq!(items.len(), 500);
        assert!(items.iter().all(|i| i.len <= 256 && i.len >= 1));
        assert!(items.iter().all(|i| i.tag < 16));
    }

    #[test]
    fn rpc_mix_contains_both_size_classes() {
        let items = generate(&WorkloadSpec::rpc_mix(500, 3));
        let large = items.iter().filter(|i| i.len >= 40_000).count();
        let small = items.iter().filter(|i| i.len <= 512).count();
        assert!(large > 20, "expected some bulk messages, got {large}");
        assert!(small > 300, "expected mostly small messages, got {small}");
        assert_eq!(large + small, 500, "no sizes outside the two classes");
    }

    #[test]
    fn payloads_are_deterministic_and_distinct() {
        assert_eq!(payload_for(3, 16), payload_for(3, 16));
        assert_ne!(payload_for(3, 16), payload_for(4, 16));
        assert_eq!(payload_for(0, 0), Vec::<u8>::new());
    }
}
