/root/repo/target/debug/deps/multirail-7d9a4fa40a4f9735.d: crates/bench/src/bin/multirail.rs

/root/repo/target/debug/deps/multirail-7d9a4fa40a4f9735: crates/bench/src/bin/multirail.rs

crates/bench/src/bin/multirail.rs:
