//! Simulated drivers: bind one node × rail of a [`SimWorld`] to the
//! [`Driver`] trait.
//!
//! One `SimDriver` plays the role of the MX, Elan, GM or SISCI transfer
//! module of the paper, depending on the NIC model the rail was
//! configured with. Gather sends are free up to the hardware's gather
//! capability (the card DMA-gathers); the corresponding [`SimCpuMeter`]
//! charges staging copies and software costs to the node's virtual CPU
//! account.

use crate::driver::{
    Capabilities, CpuMeter, Driver, LinkStats, NetError, NetResult, RxFrame, SendHandle,
    StrategyDecision,
};
use crate::fault::{FaultInjector, FaultPlan, FaultStats, FaultVerdict};
use nmad_sim::{NodeId, RailId, SendToken, SharedWorld, SimDuration, SimTime};
use std::collections::HashMap;

/// A [`Driver`] over one rail of a shared simulated world.
pub struct SimDriver {
    world: SharedWorld,
    node: NodeId,
    rail: RailId,
    caps: Capabilities,
    gather_entry_overhead: SimDuration,
    next_handle: u64,
    tokens: HashMap<SendHandle, SendToken>,
    faults: Option<FaultInjector>,
}

impl SimDriver {
    /// Binds `node`'s NIC on `rail`.
    pub fn new(world: SharedWorld, node: NodeId, rail: RailId) -> Self {
        let (caps, gather_entry_overhead) = {
            let w = world.lock();
            assert!(node.index() < w.node_count(), "unknown node {node}");
            let model = w.rail_model(rail);
            (Capabilities::from_nic(model), model.gather_entry_overhead)
        };
        SimDriver {
            world,
            node,
            rail,
            caps,
            gather_entry_overhead,
            next_handle: 0,
            tokens: HashMap::new(),
            faults: None,
        }
    }

    /// One driver per rail for `node` — the multi-NIC endpoint of the
    /// multirail experiments.
    pub fn all_rails(world: &SharedWorld, node: NodeId) -> Vec<SimDriver> {
        let rails = world.lock().rail_count();
        (0..rails)
            .map(|r| SimDriver::new(world.clone(), node, RailId(r as u16)))
            .collect()
    }

    /// Rail (NIC index) the event occurred on.
    pub fn rail(&self) -> RailId {
        self.rail
    }

    /// A meter charging this node's virtual CPU account.
    pub fn meter(&self) -> SimCpuMeter {
        SimCpuMeter {
            world: self.world.clone(),
            node: self.node,
        }
    }
}

impl Driver for SimDriver {
    fn caps(&self) -> &Capabilities {
        &self.caps
    }

    fn local_node(&self) -> NodeId {
        self.node
    }

    fn threaded_progress_safe(&self) -> bool {
        // Virtual time advances only through the co-simulation loop on
        // the application thread; a background pump would deadlock (or
        // worse, desynchronise) the discrete-event world.
        false
    }

    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
        if self.world.lock().rail_failed(self.node, self.rail) {
            return Err(NetError::Closed);
        }
        if iov.len() > self.caps.gather_max_segs {
            return Err(NetError::TooManySegments {
                got: iov.len(),
                max: self.caps.gather_max_segs,
            });
        }
        let len: usize = iov.iter().map(|s| s.len()).sum();
        if len > self.caps.mtu {
            return Err(NetError::FrameTooLarge {
                len,
                mtu: self.caps.mtu,
            });
        }
        // The card gathers: assembly costs no memcpy, only the per-
        // descriptor DMA setup the firmware charges for each gather
        // entry beyond the first (the paper's MX model). Single-segment
        // posts pay nothing extra.
        if iov.len() > 1 && self.gather_entry_overhead > SimDuration::ZERO {
            let extra =
                SimDuration::from_ns(self.gather_entry_overhead.as_ns() * (iov.len() as u64 - 1));
            self.world.lock().charge_cpu(self.node, extra);
        }
        let mut frame = Vec::with_capacity(len);
        for seg in iov {
            frame.extend_from_slice(seg);
        }
        // An installed fault plan judges the frame just before the wire.
        let mut extra_delay = SimDuration::ZERO;
        if let Some(inj) = &mut self.faults {
            let now_ns = self.world.lock().now().as_ns();
            match inj.on_post(now_ns, &mut frame) {
                FaultVerdict::Dead => {
                    // The NIC died: tear the rail down in the world so
                    // every layer (tx_idle, future posts, in-flight
                    // delivery) sees the same death, and refuse.
                    self.world.lock().fail_rail(self.node, self.rail);
                    return Err(NetError::Closed);
                }
                FaultVerdict::Drop => {
                    // Swallow the frame but report a completed send:
                    // a handle with no token tests complete at once.
                    let handle = SendHandle(self.next_handle);
                    self.next_handle += 1;
                    return Ok(handle);
                }
                FaultVerdict::Deliver { extra_delay_ns } => {
                    extra_delay = SimDuration::from_ns(extra_delay_ns);
                }
            }
        }
        let token =
            self.world
                .lock()
                .post_send_delayed(self.node, self.rail, dst, frame, extra_delay);
        let handle = SendHandle(self.next_handle);
        self.next_handle += 1;
        self.tokens.insert(handle, token);
        Ok(handle)
    }

    fn test_send(&mut self, handle: SendHandle) -> NetResult<bool> {
        match self.tokens.get(&handle) {
            None => Ok(true), // already completed and consumed
            Some(&token) => {
                let done = self.world.lock().test_send(self.node, self.rail, token);
                if done {
                    self.tokens.remove(&handle);
                }
                Ok(done)
            }
        }
    }

    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>> {
        Ok(self
            .world
            .lock()
            .poll_recv(self.node, self.rail)
            .map(|p| RxFrame {
                src: p.src,
                payload: p.payload.into(),
            }))
    }

    fn tx_idle(&self) -> bool {
        // A failed rail reports idle so the engine probes it, receives
        // `Closed` from post_send, and marks the NIC dead (failover
        // discovery); the simulator's own `nic_idle` stays false for
        // failed rails.
        let w = self.world.lock();
        w.rail_failed(self.node, self.rail) || w.nic_idle(self.node, self.rail)
    }

    fn link_stats(&self) -> LinkStats {
        let w = self.world.lock();
        let busy_ns = w.nic_busy_total(self.node, self.rail).as_ns();
        let elapsed_ns = w.now().saturating_since(SimTime::ZERO).as_ns();
        LinkStats {
            busy_ns,
            // Busy time is charged at post time for the whole frame, so
            // it can briefly run ahead of the clock; saturate.
            idle_ns: elapsed_ns.saturating_sub(busy_ns),
            retransmits: 0,
            acks: 0,
        }
    }

    fn install_faults(&mut self, plan: FaultPlan) -> bool {
        self.faults = Some(FaultInjector::new(plan));
        true
    }

    fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }
}

/// [`CpuMeter`] charging a node's virtual CPU account.
pub struct SimCpuMeter {
    world: SharedWorld,
    node: NodeId,
}

impl SimCpuMeter {
    /// A meter bound to `node` of `world`.
    pub fn new(world: SharedWorld, node: NodeId) -> Self {
        SimCpuMeter { world, node }
    }
}

impl CpuMeter for SimCpuMeter {
    fn charge_ns(&mut self, ns: u64) {
        if ns > 0 {
            self.world
                .lock()
                .charge_cpu(self.node, SimDuration::from_ns(ns));
        }
    }

    fn charge_memcpy(&mut self, bytes: usize) {
        if bytes > 0 {
            self.world.lock().charge_memcpy(self.node, bytes);
        }
    }

    fn note_decision(&mut self, decision: &StrategyDecision) {
        self.world.lock().record_strategy_decision(
            self.node,
            decision.strategy,
            decision.entries,
            decision.reordered,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_sim::{nic, shared_world, SimConfig};

    fn pair() -> (SharedWorld, SimDriver, SimDriver) {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let a = SimDriver::new(world.clone(), NodeId(0), RailId(0));
        let b = SimDriver::new(world.clone(), NodeId(1), RailId(0));
        (world, a, b)
    }

    fn settle(world: &SharedWorld) {
        while world.lock().advance().is_some() {}
    }

    #[test]
    fn gather_send_concatenates_segments() {
        let (world, mut a, mut b) = pair();
        a.post_send(NodeId(1), &[b"hello ", b"gather ", b"world"])
            .unwrap();
        settle(&world);
        let frame = b.poll_recv().unwrap().expect("frame delivered");
        assert_eq!(frame.src, NodeId(0));
        assert_eq!(frame.payload, b"hello gather world");
    }

    #[test]
    fn gather_limit_is_enforced() {
        let world = shared_world(SimConfig::two_nodes(nic::gm_myrinet2000()));
        let mut a = SimDriver::new(world, NodeId(0), RailId(0));
        // GM has no hardware gather (max 1 segment).
        let err = a.post_send(NodeId(1), &[b"a", b"b"]).unwrap_err();
        assert!(matches!(err, NetError::TooManySegments { max: 1, .. }));
    }

    #[test]
    fn multi_segment_posts_charge_gather_dma_setup() {
        let (world, mut a, _b) = pair();
        a.post_send(NodeId(1), &[b"one"]).unwrap();
        let single = world.lock().cpu_free_at(NodeId(0));
        a.post_send(NodeId(1), &[b"hd", b"p1", b"p2"]).unwrap();
        let multi = world.lock().cpu_free_at(NodeId(0));
        let model = nic::mx_myri10g();
        let expected = model.tx_overhead.as_ns() + 2 * model.gather_entry_overhead.as_ns();
        assert_eq!(multi.saturating_since(single).as_ns(), expected);
    }

    #[test]
    fn send_handle_completion_is_idempotent() {
        let (world, mut a, _b) = pair();
        let h = a.post_send(NodeId(1), &[b"x"]).unwrap();
        assert!(!a.test_send(h).unwrap());
        settle(&world);
        assert!(a.test_send(h).unwrap());
        assert!(a.test_send(h).unwrap(), "re-testing stays true");
    }

    #[test]
    fn tx_idle_tracks_wire_occupancy() {
        let (world, mut a, _b) = pair();
        assert!(a.tx_idle());
        a.post_send(NodeId(1), &[&vec![0u8; 1 << 20]]).unwrap();
        assert!(!a.tx_idle(), "large frame occupies the wire");
        settle(&world);
        assert!(a.tx_idle());
    }

    #[test]
    fn meter_charges_virtual_cpu() {
        let (world, a, _b) = pair();
        let before = world.lock().cpu_free_at(NodeId(0));
        a.meter().charge_memcpy(1 << 20);
        let after = world.lock().cpu_free_at(NodeId(0));
        assert!(after > before);
        // zero-byte copies are free
        a.meter().charge_memcpy(0);
        assert_eq!(world.lock().cpu_free_at(NodeId(0)), after);
    }

    #[test]
    fn link_stats_split_busy_and_idle_time() {
        let (world, mut a, _b) = pair();
        assert_eq!(a.link_stats(), LinkStats::default());
        a.post_send(NodeId(1), &[&vec![0u8; 1 << 20]]).unwrap();
        settle(&world);
        let stats = a.link_stats();
        assert!(stats.busy_ns > 0, "wire time must be accounted");
        assert!(stats.idle_ns > 0, "latency tail counts as idle");
        let elapsed = world
            .lock()
            .now()
            .saturating_since(nmad_sim::SimTime::ZERO)
            .as_ns();
        assert_eq!(stats.busy_ns + stats.idle_ns, elapsed);
    }

    #[test]
    fn meter_forwards_decisions_to_the_trace() {
        let (world, a, _b) = pair();
        world.lock().enable_trace();
        a.meter().note_decision(&StrategyDecision {
            strategy: "aggreg",
            entries: 5,
            data_entries: 4,
            rts_entries: 1,
            cts_entries: 0,
            chunk_entries: 0,
            reordered: 2,
        });
        let trace = world.lock().take_trace();
        assert_eq!(trace.decisions(), 1);
        assert_eq!(trace.decision_entries_for(NodeId(0)), 5);
    }

    #[test]
    fn fault_drop_swallows_the_frame_but_completes_the_send() {
        let (world, mut a, mut b) = pair();
        assert!(a.install_faults(FaultPlan::new(1).link_down(0, u64::MAX)));
        let h = a.post_send(NodeId(1), &[b"vanishes"]).unwrap();
        assert!(a.test_send(h).unwrap(), "dropped sends complete at once");
        settle(&world);
        assert!(b.poll_recv().unwrap().is_none(), "frame must be swallowed");
        assert_eq!(a.fault_stats().link_down_drops, 1);
    }

    #[test]
    fn fault_death_tears_the_rail_down() {
        let (world, mut a, _b) = pair();
        assert!(a.install_faults(FaultPlan::new(1).nic_death(0)));
        let err = a.post_send(NodeId(1), &[b"x"]).unwrap_err();
        assert!(matches!(err, NetError::Closed));
        assert!(world.lock().rail_failed(NodeId(0), RailId(0)));
        // Subsequent posts are refused by the failed rail itself.
        let err = a.post_send(NodeId(1), &[b"y"]).unwrap_err();
        assert!(matches!(err, NetError::Closed));
        assert_eq!(a.fault_stats().dead_posts, 1);
    }

    #[test]
    fn fault_latency_spike_delays_delivery() {
        let (world, mut a, mut b) = pair();
        let extra = 10_000_000;
        assert!(a.install_faults(FaultPlan::new(1).latency_spike(0, u64::MAX, extra)));
        a.post_send(NodeId(1), &[b"slow"]).unwrap();
        let mut delivered_at = None;
        for _ in 0..64 {
            if let Some(_f) = b.poll_recv().unwrap() {
                delivered_at = Some(world.lock().now().as_ns());
                break;
            }
            if world.lock().advance().is_none() {
                break;
            }
        }
        let at = delivered_at.expect("frame still delivered");
        assert!(at >= extra, "delivery at {at} ns, expected ≥ {extra} ns");
        assert_eq!(a.fault_stats().delayed, 1);
    }

    #[test]
    fn all_rails_builds_one_driver_per_rail() {
        let world = shared_world(SimConfig::two_nodes_multirail(vec![
            nic::mx_myri10g(),
            nic::quadrics_qm500(),
        ]));
        let drivers = SimDriver::all_rails(&world, NodeId(0));
        assert_eq!(drivers.len(), 2);
        assert_eq!(drivers[0].caps().name, "MX/Myri-10G");
        assert_eq!(drivers[1].caps().name, "Elan/QM500");
    }
}
