//! RPC-style multi-flow scenario — the motivation of paper §2.
//!
//! A remote method invocation consists of several dependent fragments:
//! a *service id* (tiny, urgent — the receiver needs it to prepare data
//! areas), the *argument descriptor*, and the *argument payload*.
//! Several concurrent RPC flows share the NICs. The engine:
//!
//! * delivers service ids early (high priority under the reordering
//!   strategy),
//! * aggregates the small fragments of *different* RPC flows into
//!   shared frames,
//! * runs the large payloads through rendezvous without blocking the
//!   small traffic.
//!
//! Run: `cargo run --example rpc_multiflow`

use newmadeleine::core::prelude::*;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::sim::{nic, run_until, shared_world, NodeId, RailId, SimConfig};

const N_RPCS: u32 = 6;
const PAYLOAD: usize = 200 * 1024; // above the MX rendezvous threshold

fn main() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mk_engine = |node: u32| {
        let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
        let meter = Box::new(driver.meter());
        NmadEngine::new(
            vec![Box::new(driver)],
            meter,
            Box::new(StratReorder),
            EngineCosts::zero(),
        )
    };
    let mut client = mk_engine(0);
    let mut server = mk_engine(1);

    // Issue N_RPCS invocations back-to-back; each is one flow (tag).
    for rpc in 0..N_RPCS {
        let service_id = rpc.to_le_bytes().to_vec();
        let descriptor = format!("rpc-{rpc}: {PAYLOAD}-byte arg").into_bytes();
        let payload = vec![rpc as u8; PAYLOAD];
        client
            .message_to(NodeId(1), Tag(rpc))
            .pack_priority(service_id, Priority::High)
            .pack(descriptor)
            .pack(payload)
            .finish();
    }

    // The server posts the matching unpacks per flow.
    let handles: Vec<_> = (0..N_RPCS)
        .map(|rpc| {
            server
                .message_from(NodeId(0), Tag(rpc))
                .unpack(4)
                .unpack(64)
                .unpack(PAYLOAD)
                .finish()
        })
        .collect();

    let done = std::cell::Cell::new(false);
    {
        let mut pump_client = || client.progress();
        let mut pump_server = || {
            let moved = server.progress();
            if handles.iter().all(|h| h.is_done(&server)) {
                done.set(true);
            }
            moved
        };
        run_until(&world, &mut [&mut pump_client, &mut pump_server], || {
            done.get()
        })
        .expect("no deadlock");
    }

    for (rpc, handle) in handles.iter().enumerate() {
        let pieces = handle.take_all(&mut server);
        let id = u32::from_le_bytes(pieces[0].data.as_slice().try_into().expect("4 bytes"));
        assert_eq!(id, rpc as u32);
        assert_eq!(pieces[2].data.len(), PAYLOAD);
        assert!(pieces[2].data.iter().all(|&b| b == rpc as u8));
    }

    let stats = client.stats();
    println!(
        "{N_RPCS} RPCs ({PAYLOAD} B payload each) completed at {}",
        world.lock().now()
    );
    println!(
        "wire frames: {} | eager entries: {} | rendezvous: {} RTS / {} data chunks",
        stats.frames_sent, stats.data_entries, stats.rts_entries, stats.chunk_entries
    );
    assert_eq!(
        stats.rts_entries as u32, N_RPCS,
        "one rendezvous per payload"
    );
    assert!(
        stats.frames_sent < (3 * N_RPCS) as u64,
        "small fragments of different flows must share frames"
    );
}
