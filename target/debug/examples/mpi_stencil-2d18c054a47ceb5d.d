/root/repo/target/debug/examples/mpi_stencil-2d18c054a47ceb5d.d: examples/mpi_stencil.rs Cargo.toml

/root/repo/target/debug/examples/libmpi_stencil-2d18c054a47ceb5d.rmeta: examples/mpi_stencil.rs Cargo.toml

examples/mpi_stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
