/root/repo/target/debug/deps/nmad_sim-9f3aadf6083d1165.d: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs

/root/repo/target/debug/deps/libnmad_sim-9f3aadf6083d1165.rlib: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs

/root/repo/target/debug/deps/libnmad_sim-9f3aadf6083d1165.rmeta: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs

crates/nmad-sim/src/lib.rs:
crates/nmad-sim/src/host.rs:
crates/nmad-sim/src/nic.rs:
crates/nmad-sim/src/runner.rs:
crates/nmad-sim/src/time.rs:
crates/nmad-sim/src/timeline.rs:
crates/nmad-sim/src/topo.rs:
crates/nmad-sim/src/trace.rs:
crates/nmad-sim/src/world.rs:
