/root/repo/target/debug/deps/properties-06fcd64af62d23c3.d: tests/properties.rs

/root/repo/target/debug/deps/properties-06fcd64af62d23c3: tests/properties.rs

tests/properties.rs:
