/root/repo/target/debug/deps/platforms-fd6406e74b36be14.d: crates/bench/src/bin/platforms.rs Cargo.toml

/root/repo/target/debug/deps/libplatforms-fd6406e74b36be14.rmeta: crates/bench/src/bin/platforms.rs Cargo.toml

crates/bench/src/bin/platforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
