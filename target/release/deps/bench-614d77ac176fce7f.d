/root/repo/target/release/deps/bench-614d77ac176fce7f.d: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libbench-614d77ac176fce7f.rlib: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libbench-614d77ac176fce7f.rmeta: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/pingpong.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
crates/bench/src/workload.rs:
