//! Integration: MPI semantics across all three backends (MAD-MPI,
//! MPICH-like, OpenMPI-like) over the simulated network.

use newmadeleine::mpi::{
    pump_cluster, sim_cluster, Datatype, EngineKind, MpiProc, Request, StrategyKind,
};
use newmadeleine::sim::nic;

fn backends() -> [EngineKind; 4] {
    [
        EngineKind::MadMpi(StrategyKind::Aggreg),
        EngineKind::MadMpi(StrategyKind::Reorder),
        EngineKind::Mpich,
        EngineKind::Ompi,
    ]
}

#[test]
fn message_ordering_within_comm_and_tag() {
    for kind in backends() {
        let (world, mut procs) = sim_cluster(2, nic::mx_myri10g(), kind);
        let comm = procs[0].comm_world();
        let n = 20;
        for i in 0..n {
            procs[0].isend(comm, 1, 5, vec![i as u8; 64]);
        }
        let recvs: Vec<Request> = (0..n).map(|_| procs[1].irecv(comm, 0, 5, 64)).collect();
        pump_cluster(&world, &mut procs, |p| recvs.iter().all(|&r| p[1].test(r)));
        for (i, &r) in recvs.iter().enumerate() {
            assert_eq!(
                procs[1].take(r).expect("tested"),
                vec![i as u8; 64],
                "{} message {i}",
                kind.label()
            );
        }
    }
}

#[test]
fn tags_and_communicators_are_isolated() {
    for kind in backends() {
        let (world, mut procs) = sim_cluster(2, nic::quadrics_qm500(), kind);
        let world_comm = procs[0].comm_world();
        let dup0 = procs[0].comm_dup(world_comm);
        let dup1 = procs[1].comm_dup(world_comm);
        assert_eq!(dup0, dup1);

        // Same tag on two comms, two tags on one comm — all isolated.
        procs[0].isend(world_comm, 1, 3, &b"world-3"[..]);
        procs[0].isend(dup0, 1, 3, &b"dup-3"[..]);
        procs[0].isend(world_comm, 1, 4, &b"world-4"[..]);
        // Post receives in scrambled order.
        let r_dup = procs[1].irecv(dup1, 0, 3, 16);
        let r_w4 = procs[1].irecv(world_comm, 0, 4, 16);
        let r_w3 = procs[1].irecv(world_comm, 0, 3, 16);
        pump_cluster(&world, &mut procs, |p| {
            p[1].test(r_dup) && p[1].test(r_w4) && p[1].test(r_w3)
        });
        assert_eq!(procs[1].take(r_dup).unwrap(), b"dup-3", "{}", kind.label());
        assert_eq!(procs[1].take(r_w4).unwrap(), b"world-4");
        assert_eq!(procs[1].take(r_w3).unwrap(), b"world-3");
    }
}

#[test]
fn unexpected_messages_complete_after_late_post() {
    for kind in backends() {
        let (world, mut procs) = sim_cluster(2, nic::mx_myri10g(), kind);
        let comm = procs[0].comm_world();
        let s = procs[0].isend(comm, 1, 9, &b"early"[..]);
        // Deliver before any receive is posted.
        pump_cluster(&world, &mut procs, |p| p[0].test(s));
        let r = procs[1].irecv(comm, 0, 9, 16);
        pump_cluster(&world, &mut procs, |p| p[1].test(r));
        assert_eq!(procs[1].take(r).unwrap(), b"early", "{}", kind.label());
    }
}

#[test]
fn typed_transfers_agree_across_backends() {
    let dtype = Datatype::alternating(64, 64 * 1024, 3);
    let buf: Vec<u8> = (0..dtype.extent()).map(|i| (i % 241) as u8).collect();
    let mut outputs: Vec<Vec<u8>> = Vec::new();
    for kind in backends() {
        let (world, mut procs) = sim_cluster(2, nic::mx_myri10g(), kind);
        let comm = procs[0].comm_world();
        let r = procs[1].irecv_typed(comm, 0, 0, &dtype);
        procs[0].isend_typed(comm, 1, 0, &buf, &dtype);
        pump_cluster(&world, &mut procs, |p| p[1].test(r));
        outputs.push(procs[1].take(r).expect("tested"));
    }
    // Every backend delivers the identical extent-sized region.
    for w in outputs.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    // And the blocks match the source.
    for &(offset, len) in dtype.blocks() {
        assert_eq!(
            &outputs[0][offset..offset + len],
            &buf[offset..offset + len]
        );
    }
}

#[test]
fn rendezvous_sized_contiguous_messages_roundtrip() {
    for kind in backends() {
        let (world, mut procs) = sim_cluster(2, nic::mx_myri10g(), kind);
        let comm = procs[0].comm_world();
        let body: Vec<u8> = (0..500_000).map(|i| (i % 239) as u8).collect();
        let r = procs[1].irecv(comm, 0, 0, body.len());
        let s = procs[0].isend(comm, 1, 0, body.clone());
        pump_cluster(&world, &mut procs, |p| p[0].test(s) && p[1].test(r));
        assert_eq!(procs[1].take(r).unwrap(), body, "{}", kind.label());
    }
}

#[test]
fn three_rank_traffic_patterns() {
    for kind in [EngineKind::MadMpi(StrategyKind::Aggreg), EngineKind::Mpich] {
        let (world, mut procs) = sim_cluster(3, nic::mx_myri10g(), kind);
        let comm = procs[0].comm_world();
        // Ring: i sends to (i+1) % 3.
        let mut recvs = Vec::new();
        for (i, proc) in procs.iter_mut().enumerate() {
            let from = (i + 2) % 3;
            recvs.push(proc.irecv(comm, from, 0, 16));
        }
        for (i, proc) in procs.iter_mut().enumerate() {
            let to = (i + 1) % 3;
            proc.isend(comm, to, 0, vec![i as u8; 16]);
        }
        pump_cluster(&world, &mut procs, |p| {
            (0..3).all(|i| {
                let r = recvs[i];
                p[i].test(r)
            })
        });
        for (i, &r) in recvs.iter().enumerate() {
            let from = (i + 2) % 3;
            assert_eq!(procs[i].take(r).unwrap(), vec![from as u8; 16]);
        }
    }
}

#[test]
fn testall_and_progressive_completion() {
    let (world, mut procs) = sim_cluster(
        2,
        nic::mx_myri10g(),
        EngineKind::MadMpi(StrategyKind::Aggreg),
    );
    let comm = procs[0].comm_world();
    let reqs: Vec<Request> = (0..5)
        .map(|i| procs[0].isend(comm, 1, i, vec![0u8; 128]))
        .collect();
    let recvs: Vec<Request> = (0..5).map(|i| procs[1].irecv(comm, 0, i, 128)).collect();
    assert!(!procs[0].testall(&reqs), "nothing moved yet");
    pump_cluster(&world, &mut procs, |p| {
        p[0].testall(&reqs) && p[1].testall(&recvs)
    });
    assert!(procs[0].testall(&reqs));
}

#[test]
fn mpi_proc_metadata_is_consistent() {
    let (_, procs) = sim_cluster(4, nic::gm_myrinet2000(), EngineKind::Mpich);
    for (i, p) in procs.iter().enumerate() {
        assert_eq!(p.rank(), i);
        assert_eq!(p.size(), 4);
        assert_eq!(p.backend_name(), "mpich");
    }
}

fn _assert_object_safe(_: &dyn FnMut(&mut [MpiProc])) {}
