/root/repo/target/debug/examples/multirail_transfer-7f48aa3074cfbe2e.d: examples/multirail_transfer.rs Cargo.toml

/root/repo/target/debug/examples/libmultirail_transfer-7f48aa3074cfbe2e.rmeta: examples/multirail_transfer.rs Cargo.toml

examples/multirail_transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
