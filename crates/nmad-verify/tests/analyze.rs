//! The committed mutant fixtures, fed through the full analyzer.
//!
//! Each fixture under `tests/fixtures/` holds a seeded defect for one
//! structural rule family. The workspace walker skips the `fixtures`
//! directory, so the gate stays green; this test proves each mutant
//! *would* fail it — i.e. the rules actually fire on the defect shapes
//! they claim to catch.

use nmad_verify::analyze::analyze_files;
use nmad_verify::lint::Violation;

/// Feeds one fixture to the analyzer under an in-scope core path.
fn analyze_fixture(name: &str, src: &str) -> Vec<Violation> {
    let path = format!("crates/nmad-core/src/{name}.rs");
    analyze_files(&[(path, src.to_string())])
}

fn rules_of(vs: &[Violation]) -> Vec<&str> {
    vs.iter().map(|v| v.rule).collect()
}

#[test]
fn panic_mutant_fails_the_gate() {
    let vs = analyze_fixture("mutant_panic", include_str!("fixtures/mutant_panic.rs"));
    let rules = rules_of(&vs);
    // Direct indexing in the root plus the unwrap two calls down.
    assert!(
        rules.iter().filter(|r| **r == "hot-panic-freedom").count() >= 2,
        "{vs:?}"
    );
    assert!(vs.iter().any(|v| v.excerpt.contains("unwrap")), "{vs:?}");
    assert!(vs.iter().any(|v| v.excerpt.contains("slots[..]")), "{vs:?}");
}

#[test]
fn alloc_mutant_fails_the_gate() {
    let vs = analyze_fixture("mutant_alloc", include_str!("fixtures/mutant_alloc.rs"));
    let rules = rules_of(&vs);
    // vec!, format!, .clone() — all direct in the hot fn; the helper's
    // Vec::new is outside it and exempt (direct-only rule).
    assert_eq!(
        rules.iter().filter(|r| **r == "hot-alloc").count(),
        3,
        "{vs:?}"
    );
}

#[test]
fn blocking_mutant_fails_the_gate() {
    let vs = analyze_fixture(
        "mutant_blocking",
        include_str!("fixtures/mutant_blocking.rs"),
    );
    // sleep and Instant::now, both one call below the root —
    // transitivity is what this mutant exercises.
    let blocking: Vec<&Violation> = vs.iter().filter(|v| v.rule == "hot-blocking").collect();
    assert_eq!(blocking.len(), 2, "{vs:?}");
    assert!(blocking.iter().all(|v| v.excerpt.contains("via")), "{vs:?}");
}

#[test]
fn lock_order_mutant_fails_the_gate() {
    let vs = analyze_fixture(
        "mutant_lock_order",
        include_str!("fixtures/mutant_lock_order.rs"),
    );
    // The AB/BA cycle exists only through call propagation; the rule
    // must name both locks in the reported ring.
    let cycles: Vec<&Violation> = vs.iter().filter(|v| v.rule == "lock-order-cycle").collect();
    assert!(!cycles.is_empty(), "{vs:?}");
    assert!(
        cycles[0].excerpt.contains("alpha_mu") && cycles[0].excerpt.contains("beta_mu"),
        "{vs:?}"
    );
}

#[test]
fn ordering_mutant_fails_the_gate() {
    let vs = analyze_fixture(
        "mutant_ordering",
        include_str!("fixtures/mutant_ordering.rs"),
    );
    let audits: Vec<&Violation> = vs
        .iter()
        .filter(|v| v.rule == "atomic-ordering-audit")
        .collect();
    // One unjustified Relaxed, one unpaired Release store.
    assert_eq!(audits.len(), 2, "{vs:?}");
    assert!(
        audits.iter().any(|v| v.excerpt.contains("Relaxed")),
        "{vs:?}"
    );
    assert!(
        audits
            .iter()
            .any(|v| v.excerpt.contains("no Acquire/SeqCst read")),
        "{vs:?}"
    );
}

#[test]
fn the_workspace_rules_are_the_published_catalog() {
    let names: Vec<&str> = nmad_verify::analyze::rule_catalog()
        .iter()
        .map(|(n, _)| *n)
        .collect();
    assert_eq!(names.len(), 13);
    for family in [
        "hot-panic-freedom",
        "hot-alloc",
        "hot-blocking",
        "lock-order-cycle",
        "atomic-ordering-audit",
    ] {
        assert!(names.contains(&family), "missing {family}");
    }
}
