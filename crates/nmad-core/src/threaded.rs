//! Threaded asynchronous progression: a dedicated thread owns the
//! engine and pumps it, so communication overlaps application
//! computation instead of waiting for the application to poll.
//!
//! Ownership map:
//!
//! * the **progression thread** exclusively owns the [`NmadEngine`] —
//!   drivers, optimization window, strategy, matching state. No lock
//!   guards any of it: the engine's single-threaded state machine runs
//!   unmodified, just on another thread.
//! * **application threads** hold a cloneable [`ThreadedHandle`].
//!   Submissions cross over through a bounded lock-free
//!   [`SubmitRing`]; request ids are allocated application-side from
//!   one shared atomic, so the caller has its handle before the
//!   operation is even enqueued. Each ring slot carries an inline
//!   [`Batch`] of up to [`SLOT_OPS`] operations: single submissions
//!   ride as batches of one, and [`ThreadedHandle::submit_batch`]
//!   stages a run of operations with **one doorbell per flush**
//!   (io_uring-style), so a burst pays one CAS per `SLOT_OPS` ops and
//!   one wakeup total instead of one of each per op.
//! * **completions** come back through a sharded [`CompletionBoard`]
//!   that `test`/`wait` poll without touching the engine, and hot
//!   counters through a seqlock-published
//!   [`SharedMetrics`](crate::metrics::SharedMetrics) mirror.
//!
//! The simulated transports stay on the inline path
//! ([`ProgressMode::Inline`]): virtual time only advances through the
//! co-simulation loop on the application thread, and a background pump
//! would desynchronise the discrete-event world. Drivers veto the
//! threaded mode through
//! [`Driver::threaded_progress_safe`](nmad_net::Driver::threaded_progress_safe).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::utils::CachePadded;
use nmad_sim::NodeId;

use crate::sync::{AtomicBool, AtomicU64, Condvar, Mutex, Ordering};

use crate::engine::{EngineConfig, NmadEngine, ProgressMode};
use crate::matching::RecvDone;
use crate::metrics::{EngineMetrics, MetricsSnapshot, SharedMetrics};
use crate::ring::{Batch, SubmitRing};
use crate::segment::{Priority, RecvReqId, SendReqId, Tag};
use crate::EngineStats;

// The whole design rests on the engine being movable to the
// progression thread; breaking any layer's Send bound must fail here,
// not in a user's build.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<NmadEngine>();
};

/// An operation crossing the submission ring.
enum EngineOp {
    Send {
        req: SendReqId,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    },
    Recv {
        req: RecvReqId,
        src: NodeId,
        tag: Tag,
        max: usize,
    },
    /// Request a full [`MetricsSnapshot`] (needs the engine, so it is
    /// taken on the progression thread and posted back).
    Snapshot,
    Shutdown,
}

/// Operations carried inline by one ring slot. Sized so a slot stays a
/// few cache lines: big enough to amortize the per-slot CAS across a
/// burst, small enough that a lone submission doesn't waste the ring.
pub const SLOT_OPS: usize = 8;

/// The ring slot format: an inline batch of up to [`SLOT_OPS`] ops.
type OpBatch = Batch<EngineOp, SLOT_OPS>;

const BOARD_SHARDS: usize = 16;

#[derive(Default)]
struct BoardShard {
    sends: HashSet<u64>,
    recvs: HashMap<u64, RecvDone>,
}

/// Sharded completion queue the progression thread fills and
/// application threads poll. Sharding by request id keeps unrelated
/// waiters off each other's cache lines and locks; the engine itself
/// is never touched on the poll path.
pub struct CompletionBoard {
    shards: Vec<CachePadded<Mutex<BoardShard>>>,
    /// Completions posted for an id already on the board — always a
    /// bug (request ids are unique); counted instead of silently
    /// overwritten so stress tests can assert zero.
    duplicates: AtomicU64,
}

impl CompletionBoard {
    fn new() -> Self {
        CompletionBoard {
            shards: (0..BOARD_SHARDS)
                .map(|_| CachePadded::new(Mutex::new(BoardShard::default())))
                .collect(),
            duplicates: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: u64) -> &Mutex<BoardShard> {
        &self.shards[(id as usize) % BOARD_SHARDS]
    }

    /// Posts a harvest of send completions, taking each shard lock at
    /// most once — the consumer-side half of batching: a pump that
    /// finishes a burst pays ≤ [`BOARD_SHARDS`] lock rounds, not one
    /// per completion.
    fn post_sends_done(&self, reqs: &[SendReqId]) {
        if reqs.is_empty() {
            return;
        }
        let mut buckets: [Vec<u64>; BOARD_SHARDS] = std::array::from_fn(|_| Vec::new());
        for req in reqs {
            buckets[(req.0 as usize) % BOARD_SHARDS].push(req.0);
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let mut guard = shard.lock();
            for id in bucket {
                if !guard.sends.insert(id) {
                    self.duplicates.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Posts a harvest of receive completions; same locking contract
    /// as [`post_sends_done`](Self::post_sends_done).
    fn post_recvs_done(&self, dones: Vec<(RecvReqId, RecvDone)>) {
        if dones.is_empty() {
            return;
        }
        let mut buckets: [Vec<(u64, RecvDone)>; BOARD_SHARDS] = std::array::from_fn(|_| Vec::new());
        for (req, done) in dones {
            buckets[(req.0 as usize) % BOARD_SHARDS].push((req.0, done));
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let mut guard = shard.lock();
            for (id, done) in bucket {
                if guard.recvs.insert(id, done).is_some() {
                    self.duplicates.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// True once *every* listed send has left the host, taking each
    /// shard lock at most once (the poll half of batched waiting).
    pub fn all_sends_done(&self, reqs: &[SendReqId]) -> bool {
        let mut buckets: [Vec<u64>; BOARD_SHARDS] = std::array::from_fn(|_| Vec::new());
        for req in reqs {
            buckets[(req.0 as usize) % BOARD_SHARDS].push(req.0);
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let guard = shard.lock();
            if !bucket.iter().all(|id| guard.sends.contains(id)) {
                return false;
            }
        }
        true
    }

    /// True once the send has fully left the host.
    pub fn is_send_done(&self, req: SendReqId) -> bool {
        self.shard(req.0).lock().sends.contains(&req.0)
    }

    /// True once the receive completed (non-destructive).
    pub fn is_recv_done(&self, req: RecvReqId) -> bool {
        self.shard(req.0).lock().recvs.contains_key(&req.0)
    }

    /// Takes a completed receive's payload, once.
    pub fn try_take_recv(&self, req: RecvReqId) -> Option<RecvDone> {
        self.shard(req.0).lock().recvs.remove(&req.0)
    }

    /// Completions posted twice for one request id — must stay zero.
    pub fn duplicates(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed)
    }
}

/// State shared between application threads and the progression thread.
struct Shared {
    ring: SubmitRing<OpBatch>,
    board: CompletionBoard,
    /// Application-side request id allocator, seeded from the engine's
    /// watermark at launch.
    next_req: AtomicU64,
    /// Seqlock mirror of the hot counters, published after every pump.
    hot: SharedMetrics,
    /// Serialises snapshot requesters (one RPC slot).
    snap_serial: Mutex<()>,
    snap_slot: Mutex<Option<MetricsSnapshot>>,
    snap_cv: Condvar,
    /// The progression thread died on a transport error.
    dead: AtomicBool,
    fail: Mutex<Option<String>>,
}

/// A running progression thread plus the engine it owns. Created with
/// [`ThreadedEngine::launch`]; hand out [`ThreadedHandle`]s with
/// [`handle`](Self::handle); get the engine back with
/// [`shutdown`](Self::shutdown).
pub struct ThreadedEngine {
    shared: Arc<Shared>,
    node: NodeId,
    thread: Option<std::thread::JoinHandle<NmadEngine>>,
}

/// Cloneable application-side handle to a [`ThreadedEngine`]: submit
/// through the ring, poll the completion board, read mirrored metrics.
#[derive(Clone)]
pub struct ThreadedHandle {
    shared: Arc<Shared>,
    node: NodeId,
}

impl ThreadedEngine {
    /// Moves `engine` onto a freshly spawned progression thread.
    ///
    /// Panics if `config.mode` is not [`ProgressMode::Threaded`] or if
    /// any of the engine's drivers vetoes background progression (the
    /// simulated transport does — see the module documentation).
    pub fn launch(engine: NmadEngine, config: EngineConfig) -> Self {
        assert_eq!(
            config.mode,
            ProgressMode::Threaded,
            "ThreadedEngine requires EngineConfig::threaded()"
        );
        assert!(
            engine.threaded_progress_safe(),
            "a driver on node {} refuses background progression \
             (simulated transports must stay inline)",
            engine.node()
        );
        let node = engine.node();
        let shared = Arc::new(Shared {
            ring: SubmitRing::new(config.submit_ring_capacity),
            board: CompletionBoard::new(),
            next_req: AtomicU64::new(engine.req_watermark()),
            hot: SharedMetrics::new(),
            snap_serial: Mutex::new(()),
            snap_slot: Mutex::new(None),
            snap_cv: Condvar::new(),
            dead: AtomicBool::new(false),
            fail: Mutex::new(None),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("nmad-progress-{}", node.0))
                .spawn(move || run(engine, &shared, &config))
                .expect("spawn progression thread")
        };
        ThreadedEngine {
            shared,
            node,
            thread: Some(thread),
        }
    }

    /// A cloneable submission/poll handle for application threads.
    pub fn handle(&self) -> ThreadedHandle {
        ThreadedHandle {
            shared: Arc::clone(&self.shared),
            node: self.node,
        }
    }

    /// Node this engine belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Stops the progression thread — after draining the ring and
    /// quiescing the transmit side — and returns the engine for inline
    /// use. Completions still parked on the board are dropped with it.
    pub fn shutdown(mut self) -> NmadEngine {
        self.shared.ring.push(Batch::of_one(EngineOp::Shutdown));
        let thread = self.thread.take().expect("not yet joined");
        let mut engine = thread.join().expect("progression thread panicked");
        // Ids handed out by handles but never submitted must still
        // never be reallocated inline.
        engine.set_req_watermark(self.shared.next_req.load(Ordering::Relaxed));
        engine
    }
}

impl Drop for ThreadedEngine {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.shared.ring.push(Batch::of_one(EngineOp::Shutdown));
            // The engine is discarded; a panic on the progression
            // thread surfaces at the join unless we are already
            // unwinding.
            if std::thread::panicking() {
                let _ = thread.join();
            } else {
                let _engine = thread.join().expect("progression thread panicked");
            }
        }
    }
}

impl ThreadedHandle {
    /// Node the underlying engine belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    #[inline]
    fn alloc(&self) -> u64 {
        self.shared.next_req.fetch_add(1, Ordering::Relaxed)
    }

    fn check_alive(&self, waiting_on: &str) {
        if self.shared.dead.load(Ordering::Relaxed) {
            let msg = self
                .shared
                .fail
                .lock()
                .clone()
                .unwrap_or_else(|| "progression thread stopped".to_string());
            panic!("progression thread died while waiting on {waiting_on}: {msg}");
        }
    }

    /// Submits one application send made of `parts` segments (see
    /// [`NmadEngine::submit_send_parts`]). Blocks only for ring
    /// backpressure (a full submission ring).
    pub fn submit_send_parts(
        &self,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    ) -> SendReqId {
        let req = SendReqId(self.alloc());
        self.shared.ring.push(Batch::of_one(EngineOp::Send {
            req,
            dst,
            tag,
            parts,
            rail_hint,
        }));
        req
    }

    /// Nonblocking single-segment send.
    pub fn isend(&self, dst: NodeId, tag: Tag, data: impl Into<Bytes>) -> SendReqId {
        self.submit_send_parts(dst, tag, vec![(data.into(), Priority::Normal)], None)
    }

    /// Posts a receive of up to `max` bytes for the next segment of
    /// flow (src, tag).
    pub fn post_recv(&self, src: NodeId, tag: Tag, max: usize) -> RecvReqId {
        let req = RecvReqId(self.alloc());
        self.shared
            .ring
            .push(Batch::of_one(EngineOp::Recv { req, src, tag, max }));
        req
    }

    /// Opens a batched submission: operations staged on the returned
    /// builder share ring slots ([`SLOT_OPS`] per CAS) and the consumer
    /// doorbell rings **once**, at [`flush`](SubmitBatch::flush) (or
    /// drop). Request ids are allocated eagerly, so staged operations
    /// can be waited on — after the flush — exactly like single
    /// submissions.
    pub fn submit_batch(&self) -> SubmitBatch<'_> {
        SubmitBatch {
            handle: self,
            current: Batch::new(),
            staged: 0,
            next_id: 0,
            id_limit: 0,
        }
    }

    /// True once the send has fully left the host.
    pub fn is_send_done(&self, req: SendReqId) -> bool {
        self.shared.board.is_send_done(req)
    }

    /// True once the receive completed (non-destructive).
    pub fn is_recv_done(&self, req: RecvReqId) -> bool {
        self.shared.board.is_recv_done(req)
    }

    /// Takes a completed receive's payload, once.
    pub fn try_take_recv(&self, req: RecvReqId) -> Option<RecvDone> {
        self.shared.board.try_take_recv(req)
    }

    /// Blocks until the send has fully left the host. Panics if the
    /// progression thread died of a transport error.
    pub fn wait_send(&self, req: SendReqId) {
        while !self.shared.board.is_send_done(req) {
            self.check_alive("send");
            std::thread::yield_now();
        }
    }

    /// Blocks until the receive completes and takes its payload.
    /// Panics if the progression thread died of a transport error.
    pub fn wait_recv(&self, req: RecvReqId) -> RecvDone {
        loop {
            if let Some(done) = self.shared.board.try_take_recv(req) {
                return done;
            }
            self.check_alive("recv");
            std::thread::yield_now();
        }
    }

    /// Blocks until *every* listed send has left the host. Each poll
    /// round takes each board shard lock at most once, instead of one
    /// lock per request per round as a `wait_send` loop would.
    pub fn wait_sends(&self, reqs: &[SendReqId]) {
        while !self.shared.board.all_sends_done(reqs) {
            self.check_alive("sends");
            std::thread::yield_now();
        }
    }

    /// Blocks until every listed receive completes; payloads come back
    /// in `reqs` order.
    pub fn wait_recvs(&self, reqs: &[RecvReqId]) -> Vec<RecvDone> {
        let mut out: Vec<Option<RecvDone>> = reqs.iter().map(|_| None).collect();
        let mut missing = reqs.len();
        while missing > 0 {
            for (slot, req) in out.iter_mut().zip(reqs) {
                if slot.is_none() {
                    if let Some(done) = self.shared.board.try_take_recv(*req) {
                        *slot = Some(done);
                        missing -= 1;
                    }
                }
            }
            if missing > 0 {
                self.check_alive("recvs");
                std::thread::yield_now();
            }
        }
        out.into_iter().map(|d| d.expect("all taken")).collect()
    }

    /// The hot counters as last published by the progression thread
    /// (seqlock read: never torn, never blocking the publisher). Lags
    /// the engine by at most one pump.
    pub fn hot_metrics(&self) -> (EngineMetrics, EngineStats) {
        self.shared.hot.read()
    }

    /// A full [`MetricsSnapshot`] including per-NIC link counters,
    /// taken *on the progression thread* between pumps — exact at the
    /// moment it is taken, like the inline [`NmadEngine::metrics`].
    pub fn metrics(&self) -> MetricsSnapshot {
        // One requester at a time owns the RPC slot.
        let _serial = self.shared.snap_serial.lock();
        let mut slot = self.shared.snap_slot.lock();
        *slot = None;
        self.shared.ring.push(Batch::of_one(EngineOp::Snapshot));
        loop {
            if let Some(snap) = slot.take() {
                return snap;
            }
            self.check_alive("metrics snapshot");
            let (g, _) = self
                .shared
                .snap_cv
                .wait_timeout(slot, Duration::from_millis(50));
            slot = g;
        }
    }

    /// Completions the board saw twice for one request id — must stay
    /// zero (stress tests assert it).
    pub fn completion_duplicates(&self) -> u64 {
        self.shared.board.duplicates()
    }
}

/// A staged run of submissions sharing ring slots and one doorbell.
///
/// Obtained from [`ThreadedHandle::submit_batch`]. Operations staged
/// here are pushed quietly — full slots go into the ring without waking
/// the consumer — and the doorbell rings once at
/// [`flush`](Self::flush). Until the flush, a parked progression thread
/// stays parked, so **never wait on a staged request before flushing**.
/// Dropping the builder flushes.
pub struct SubmitBatch<'a> {
    handle: &'a ThreadedHandle,
    current: OpBatch,
    /// Operations staged (pushed quietly or buffered) since the last
    /// flush.
    staged: usize,
    /// Block-reserved request ids: `next_id..id_limit` belong to this
    /// builder. Reserving [`SLOT_OPS`] ids per `fetch_add` amortizes
    /// the shared counter's RMW the same way slots amortize the ring
    /// CAS. Ids left unused when the builder drops are simply skipped
    /// — the id space only needs uniqueness, not density.
    next_id: u64,
    id_limit: u64,
}

impl SubmitBatch<'_> {
    #[inline]
    fn alloc_id(&mut self) -> u64 {
        if self.next_id == self.id_limit {
            let block = SLOT_OPS as u64;
            self.next_id = self
                .handle
                .shared
                .next_req
                .fetch_add(block, Ordering::Relaxed);
            self.id_limit = self.next_id + block;
        }
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    #[inline]
    fn stage(&mut self, op: EngineOp) {
        if let Err(op) = self.current.push(op) {
            let full = std::mem::take(&mut self.current);
            self.push_slot(full);
            let _ = self.current.push(op);
        }
        self.staged += 1;
    }

    /// Quiet slot push with backpressure: a full ring gets the doorbell
    /// (the consumer may be parked behind our own unflushed work) and a
    /// yield, never a drop.
    fn push_slot(&self, mut slot: OpBatch) {
        let ring = &self.handle.shared.ring;
        loop {
            match ring.try_push_quiet(slot) {
                Ok(()) => return,
                Err(back) => {
                    slot = back;
                    ring.doorbell();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Stages one application send made of `parts` segments; the id is
    /// live (waitable) once [`flush`](Self::flush) returns.
    pub fn submit_send_parts(
        &mut self,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    ) -> SendReqId {
        let req = SendReqId(self.alloc_id());
        self.stage(EngineOp::Send {
            req,
            dst,
            tag,
            parts,
            rail_hint,
        });
        req
    }

    /// Stages a single-segment send.
    pub fn isend(&mut self, dst: NodeId, tag: Tag, data: impl Into<Bytes>) -> SendReqId {
        self.submit_send_parts(dst, tag, vec![(data.into(), Priority::Normal)], None)
    }

    /// Stages a receive of up to `max` bytes for flow (src, tag).
    #[inline]
    pub fn post_recv(&mut self, src: NodeId, tag: Tag, max: usize) -> RecvReqId {
        let req = RecvReqId(self.alloc_id());
        self.stage(EngineOp::Recv { req, src, tag, max });
        req
    }

    /// Operations staged since the last flush.
    pub fn pending(&self) -> usize {
        self.staged
    }

    /// Pushes the partially filled slot (if any) and rings the doorbell
    /// once for everything staged since the last flush. The builder is
    /// reusable afterwards.
    pub fn flush(&mut self) {
        if !self.current.is_empty() {
            let full = std::mem::take(&mut self.current);
            self.push_slot(full);
        }
        if self.staged > 0 {
            self.handle.shared.ring.doorbell();
            self.staged = 0;
        }
    }
}

impl Drop for SubmitBatch<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The progression thread body: drain the ring, pump the engine,
/// harvest completions, publish metrics, park when idle.
fn run(mut engine: NmadEngine, shared: &Shared, config: &EngineConfig) -> NmadEngine {
    let mut shutting_down = false;
    loop {
        // 1. Drain a bounded batch of submissions: one ring pop hands
        // over a whole slot of up to SLOT_OPS operations, so the
        // per-slot synchronization cost is amortized across the run.
        let mut drained = 0usize;
        while drained < config.submit_batch {
            let Some(batch) = shared.ring.pop() else {
                break;
            };
            for op in batch {
                match op {
                    EngineOp::Send {
                        req,
                        dst,
                        tag,
                        parts,
                        rail_hint,
                    } => engine.submit_send_parts_as(req, dst, tag, parts, rail_hint),
                    EngineOp::Recv { req, src, tag, max } => {
                        engine.post_recv_as(req, src, tag, max)
                    }
                    EngineOp::Snapshot => {
                        let snap = engine.metrics();
                        *shared.snap_slot.lock() = Some(snap);
                        shared.snap_cv.notify_all();
                    }
                    EngineOp::Shutdown => shutting_down = true,
                }
                drained += 1;
            }
        }

        // 2. One engine pump. A transport error kills the thread but
        // leaves a diagnosis for blocked waiters.
        let moved = match engine.try_progress() {
            Ok(moved) => moved,
            Err(e) => {
                *shared.fail.lock() =
                    Some(format!("transport failure on node {}: {e}", engine.node()));
                shared.dead.store(true, Ordering::SeqCst);
                shared.snap_cv.notify_all();
                return engine;
            }
        };

        // 3. Harvest completions onto the board, batched symmetrically
        // with submission: each shard lock is taken at most once per
        // harvest instead of once per completion.
        let done_sends = engine.drain_done_sends();
        let done_recvs = engine.drain_done_recvs();
        let harvested = !done_sends.is_empty() || !done_recvs.is_empty();
        shared.board.post_sends_done(&done_sends);
        shared.board.post_recvs_done(done_recvs);

        // 4. Mirror the hot counters.
        shared.hot.publish(engine.engine_metrics(), engine.stats());

        if shutting_down && shared.ring.is_empty() && engine.tx_quiescent() {
            return engine;
        }

        // 5. Pace: spin while work is outstanding, park on the ring
        // otherwise.
        if !moved && !harvested && drained == 0 {
            if engine.has_outstanding() || shutting_down {
                std::thread::yield_now();
            } else {
                shared.ring.wait_nonempty(config.idle_park);
            }
        }
    }
}

/// Model-checked board properties (see `tests/model_check.rs` for the
/// rest of the suite): the [`CompletionBoard`] constructor is private,
/// so its exhaustive checks live here.
#[cfg(all(test, nmad_model))]
mod model_tests {
    use super::*;
    use crate::matching::RecvDone;
    use nmad_verify::{thread, Checker};

    /// Concurrent posts of *distinct* request ids never count as
    /// duplicates and are all observable afterwards, in every schedule.
    #[test]
    fn model_board_distinct_posts_are_duplicate_free() {
        let stats = Checker::new()
            .check(|| {
                let board = Arc::new(CompletionBoard::new());
                let (b1, b2) = (Arc::clone(&board), Arc::clone(&board));
                let t1 = thread::spawn(move || b1.post_sends_done(&[SendReqId(1)]));
                let t2 = thread::spawn(move || b2.post_sends_done(&[SendReqId(2)]));
                board.post_recvs_done(vec![(
                    RecvReqId(3),
                    RecvDone {
                        src: NodeId(0),
                        tag: Tag(0),
                        data: Bytes::from_static(b"x"),
                        truncated: false,
                    },
                )]);
                t1.join();
                t2.join();
                assert_eq!(board.duplicates(), 0, "distinct ids flagged duplicate");
                assert!(board.is_send_done(SendReqId(1)));
                assert!(board.is_send_done(SendReqId(2)));
                assert!(board.is_recv_done(RecvReqId(3)));
            })
            .expect("board posting must be duplicate-free in every schedule");
        assert!(
            stats.schedules >= 20,
            "board model underexplored: {stats:?}"
        );
    }

    /// Racing posts of the *same* id are counted — exactly once — no
    /// matter which thread wins the shard lock.
    #[test]
    fn model_board_counts_racing_duplicate_posts() {
        Checker::new()
            .check(|| {
                let board = Arc::new(CompletionBoard::new());
                let (b1, b2) = (Arc::clone(&board), Arc::clone(&board));
                let t1 = thread::spawn(move || b1.post_sends_done(&[SendReqId(7)]));
                let t2 = thread::spawn(move || b2.post_sends_done(&[SendReqId(7)]));
                t1.join();
                t2.join();
                assert_eq!(
                    board.duplicates(),
                    1,
                    "exactly one of the two racing posts is the duplicate"
                );
                assert!(board.is_send_done(SendReqId(7)));
            })
            .expect("duplicate accounting must hold in every schedule");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineCosts;
    use crate::strategy::StratAggreg;
    use nmad_net::mem::mem_fabric;
    use nmad_net::NullMeter;

    fn mem_pair() -> (ThreadedEngine, ThreadedEngine) {
        let mut fabric = mem_fabric(2);
        let b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        let launch = |d: nmad_net::mem::MemDriver| {
            ThreadedEngine::launch(
                NmadEngine::new(
                    vec![Box::new(d)],
                    Box::new(NullMeter),
                    Box::new(StratAggreg),
                    EngineCosts::zero(),
                ),
                EngineConfig::threaded(),
            )
        };
        (launch(a), launch(b))
    }

    #[test]
    fn threaded_roundtrip_delivers_payload() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let r = bh.post_recv(NodeId(0), Tag(5), 64);
        let s = ah.isend(NodeId(1), Tag(5), &b"payload"[..]);
        ah.wait_send(s);
        let done = bh.wait_recv(r);
        assert_eq!(done.data, b"payload");
        assert_eq!(done.src, NodeId(0));
        assert!(bh.try_take_recv(r).is_none(), "taken once");
        assert_eq!(ah.completion_duplicates(), 0);
        assert_eq!(bh.completion_duplicates(), 0);
    }

    #[test]
    fn batched_submission_roundtrip_with_one_flush() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let n = 40u32; // several ring slots' worth

        let mut rb = bh.submit_batch();
        let recvs: Vec<_> = (0..n)
            .map(|t| rb.post_recv(NodeId(0), Tag(t), 64))
            .collect();
        assert_eq!(rb.pending(), n as usize);
        rb.flush();
        assert_eq!(rb.pending(), 0);
        drop(rb);

        let mut sb = ah.submit_batch();
        let sends: Vec<_> = (0..n)
            .map(|t| sb.isend(NodeId(1), Tag(t), vec![t as u8; 48]))
            .collect();
        sb.flush();

        ah.wait_sends(&sends);
        let dones = bh.wait_recvs(&recvs);
        for (t, done) in dones.iter().enumerate() {
            assert_eq!(done.data, vec![t as u8; 48], "payload for tag {t}");
            assert_eq!(done.src, NodeId(0));
        }
        assert_eq!(ah.completion_duplicates(), 0);
        assert_eq!(bh.completion_duplicates(), 0);
    }

    #[test]
    fn dropping_an_unflushed_batch_flushes_it() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let r = bh.post_recv(NodeId(0), Tag(9), 16);
        let s = {
            let mut batch = ah.submit_batch();
            batch.isend(NodeId(1), Tag(9), &b"implicit"[..])
            // No explicit flush: Drop must push the partial slot and
            // ring the doorbell.
        };
        ah.wait_send(s);
        assert_eq!(bh.wait_recv(r).data, b"implicit");
    }

    #[test]
    fn batched_and_single_submissions_interleave_per_flow_fifo() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let recvs: Vec<_> = (0..6).map(|_| bh.post_recv(NodeId(0), Tag(3), 8)).collect();
        let s1 = ah.isend(NodeId(1), Tag(3), &b"m0"[..]);
        let mut batch = ah.submit_batch();
        let s2 = batch.isend(NodeId(1), Tag(3), &b"m1"[..]);
        let s3 = batch.isend(NodeId(1), Tag(3), &b"m2"[..]);
        batch.flush();
        let s4 = ah.isend(NodeId(1), Tag(3), &b"m3"[..]);
        let mut batch2 = ah.submit_batch();
        let s5 = batch2.isend(NodeId(1), Tag(3), &b"m4"[..]);
        let s6 = batch2.isend(NodeId(1), Tag(3), &b"m5"[..]);
        batch2.flush();
        ah.wait_sends(&[s1, s2, s3, s4, s5, s6]);
        let dones = bh.wait_recvs(&recvs);
        let got: Vec<_> = dones.iter().map(|d| d.data.clone()).collect();
        assert_eq!(
            got,
            [&b"m0"[..], b"m1", b"m2", b"m3", b"m4", b"m5"],
            "same-flow order across batched/unbatched submissions"
        );
    }

    #[test]
    fn threaded_rendezvous_roundtrip() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let body: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
        let r = bh.post_recv(NodeId(0), Tag(1), body.len());
        let s = ah.isend(NodeId(1), Tag(1), body.clone());
        ah.wait_send(s);
        assert_eq!(bh.wait_recv(r).data, body);
    }

    #[test]
    fn threaded_shutdown_returns_the_engine_for_inline_use() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let r = bh.post_recv(NodeId(0), Tag(0), 16);
        let s = ah.isend(NodeId(1), Tag(0), &b"one"[..]);
        ah.wait_send(s);
        bh.wait_recv(r);
        let mut a = a.shutdown();
        let mut b = b.shutdown();
        // Inline use after shutdown; ids must not collide with the
        // threaded phase's.
        let r2 = b.post_recv(NodeId(0), Tag(0), 16);
        let s2 = a.isend(NodeId(1), Tag(0), &b"two"[..]);
        assert!(s2.0 > s.0, "request ids reused after shutdown");
        for _ in 0..10_000 {
            a.progress_until_idle();
            b.progress_until_idle();
            if a.is_send_done(s2) && b.is_recv_done(r2) {
                break;
            }
        }
        assert_eq!(b.try_take_recv(r2).unwrap().data, b"two");
    }

    #[test]
    fn threaded_metrics_snapshot_is_exact_and_hot_mirror_converges() {
        let (a, b) = mem_pair();
        let (ah, bh) = (a.handle(), b.handle());
        let n = 8u32;
        let recvs: Vec<_> = (0..n)
            .map(|t| bh.post_recv(NodeId(0), Tag(t), 64))
            .collect();
        let sends: Vec<_> = (0..n)
            .map(|t| ah.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
            .collect();
        for s in sends {
            ah.wait_send(s);
        }
        for r in recvs {
            bh.wait_recv(r);
        }
        // The snapshot RPC runs on the progression thread: totals are
        // exact, not approximate.
        let snap = ah.metrics();
        assert_eq!(snap.engine.requests_submitted, u64::from(n));
        assert_eq!(snap.engine.eager_entries, u64::from(n));
        assert_eq!(snap.wire.data_entries, u64::from(n));
        assert_eq!(snap.nics.len(), 1);
        // The seqlock mirror converges to the same totals.
        for _ in 0..1_000_000 {
            let (hot, wire) = ah.hot_metrics();
            if hot == snap.engine && wire == snap.wire {
                return;
            }
            std::thread::yield_now();
        }
        panic!("hot mirror never converged to the snapshot totals");
    }

    #[test]
    #[should_panic(expected = "refuses background progression")]
    fn threaded_launch_rejects_simulated_drivers() {
        use nmad_net::sim::SimDriver;
        use nmad_sim::{nic, shared_world, RailId, SimConfig};
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let d = SimDriver::new(world, NodeId(0), RailId(0));
        let m = Box::new(d.meter());
        let engine = NmadEngine::new(
            vec![Box::new(d)],
            m,
            Box::new(StratAggreg),
            EngineCosts::zero(),
        );
        let _ = ThreadedEngine::launch(engine, EngineConfig::threaded());
    }
}
