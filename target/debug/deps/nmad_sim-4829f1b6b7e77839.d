/root/repo/target/debug/deps/nmad_sim-4829f1b6b7e77839.d: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libnmad_sim-4829f1b6b7e77839.rmeta: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs Cargo.toml

crates/nmad-sim/src/lib.rs:
crates/nmad-sim/src/host.rs:
crates/nmad-sim/src/nic.rs:
crates/nmad-sim/src/runner.rs:
crates/nmad-sim/src/time.rs:
crates/nmad-sim/src/timeline.rs:
crates/nmad-sim/src/topo.rs:
crates/nmad-sim/src/trace.rs:
crates/nmad-sim/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
