//! Mutant: an AB/BA lock-order cycle that only exists through the call
//! graph — neither function nests both locks itself, so the
//! `lock-order-cycle` rule must propagate held locks through the
//! (uniquely named) callees to see it.

use crate::sync::Mutex;

pub struct MutantPair {
    alpha_mu: Mutex<u64>,
    beta_mu: Mutex<u64>,
}

impl MutantPair {
    pub fn mutant_forward(&self) {
        let g = self.alpha_mu.lock();
        self.mutant_grab_beta();
        drop(g);
    }

    fn mutant_grab_beta(&self) {
        let _g = self.beta_mu.lock();
    }

    pub fn mutant_backward(&self) {
        let g = self.beta_mu.lock();
        self.mutant_grab_alpha();
        drop(g);
    }

    fn mutant_grab_alpha(&self) {
        let _g = self.alpha_mu.lock();
    }
}
