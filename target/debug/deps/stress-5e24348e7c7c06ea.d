/root/repo/target/debug/deps/stress-5e24348e7c7c06ea.d: tests/stress.rs

/root/repo/target/debug/deps/stress-5e24348e7c7c06ea: tests/stress.rs

tests/stress.rs:
