/root/repo/target/debug/deps/fig3-32c0ab012d06f570.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-32c0ab012d06f570: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
