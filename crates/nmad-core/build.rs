//! Maps the `nmad-model` cargo feature onto `cfg(nmad_model)` so the
//! sync facade and the model-check test suites can use a plain cfg
//! (usable in `#[cfg(...)]` on tests and modules alike) while staying
//! a well-known cfg for `--cfg`-checking lints.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(nmad_model)");
    if std::env::var_os("CARGO_FEATURE_NMAD_MODEL").is_some() {
        println!("cargo::rustc-cfg=nmad_model");
    }
}
