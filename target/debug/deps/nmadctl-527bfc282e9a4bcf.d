/root/repo/target/debug/deps/nmadctl-527bfc282e9a4bcf.d: src/bin/nmadctl.rs

/root/repo/target/debug/deps/nmadctl-527bfc282e9a4bcf: src/bin/nmadctl.rs

src/bin/nmadctl.rs:
