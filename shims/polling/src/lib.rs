//! Offline shim for the `polling` crate: portable OS readiness
//! polling behind a safe facade.
//!
//! The massive-fanout TCP endpoint layer needs to know *which* of its
//! thousands of sockets are ready without scanning all of them. The
//! kernel interface for that is `epoll` on Linux and the portable
//! `poll(2)` everywhere else on Unix; both are raw syscalls, and the
//! engine crates all carry `#![forbid(unsafe_code)]`, so the unsafe
//! FFI surface lives here — lint-contained, with every call site
//! documenting its invariant (`cargo run -p xtask -- lint` enforces
//! both the containment and the `// SAFETY:` comments).
//!
//! The safe API mirrors the real `polling` crate's shape (`Poller`,
//! `Event`, add/modify/delete/wait) with one deliberate difference:
//! registrations here are **level-triggered and persistent**, not
//! oneshot — the endpoint layer re-registers interest only on edge
//! transitions (write interest appears when an output buffer becomes
//! non-empty and disappears when it drains), so persistent level
//! triggering is the cheaper contract.
//!
//! Backends:
//!
//! * [`Poller::new`] — `epoll` on Linux, `poll(2)` on other Unixes;
//! * [`Poller::portable`] — forces the `poll(2)` backend (O(registered)
//!   per wait instead of O(ready); exists so the fallback is testable
//!   on Linux too).

#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// One readiness event: the `key` the file descriptor was registered
/// under plus the directions that are ready. Error/hangup conditions
/// surface as `readable` (a read will then observe the EOF or error —
/// the same convention the real crate uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen registration key (the endpoint layer stores slab
    /// tokens here).
    pub key: usize,
    /// A read would make progress (data, EOF, error, or hangup).
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
}

/// Interest directions for a registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when a read would make progress.
    pub readable: bool,
    /// Wake when a write would make progress.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but silent (parked: no wakeups either way).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// A readiness poller over one OS backend.
///
/// Not `Sync`: the endpoint layer owns its poller exclusively, so the
/// shim does not pay for cross-thread registration safety.
pub struct Poller {
    backend: Backend,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(pollfd::PollSet),
}

impl Poller {
    /// The best backend for the platform: `epoll` on Linux (O(ready)
    /// wakeups), `poll(2)` elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller {
                backend: Backend::Epoll(epoll::Epoll::new()?),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::portable()
        }
    }

    /// The portable `poll(2)` backend, regardless of platform. Wait
    /// cost is O(registered descriptors); correctness is identical to
    /// the epoll backend (level-triggered, persistent registrations).
    pub fn portable() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend::Poll(pollfd::PollSet::new()),
        })
    }

    /// Backend name, for reports.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    /// Registers `source` under `key` with `interest`. One registration
    /// per descriptor; registering the same fd twice is an error on the
    /// epoll backend (EEXIST) and replaces on the poll backend — don't.
    pub fn add(&mut self, source: &impl AsRawFd, key: usize, interest: Interest) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::CTL_ADD, fd, key, interest),
            Backend::Poll(p) => p.add(fd, key, interest),
        }
    }

    /// Changes the interest set (and key) of an already-registered
    /// descriptor.
    pub fn modify(
        &mut self,
        source: &impl AsRawFd,
        key: usize,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::CTL_MOD, fd, key, interest),
            Backend::Poll(p) => p.modify(fd, key, interest),
        }
    }

    /// Removes a registration. Call before closing the descriptor.
    pub fn delete(&mut self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::CTL_DEL, fd, 0, Interest::NONE),
            Backend::Poll(p) => p.delete(fd),
        }
    }

    /// Appends ready events to `events`; returns how many were
    /// appended. `timeout` of `Some(ZERO)` is a non-blocking check (the
    /// endpoint layer's pump), `None` blocks until something is ready.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(events, timeout_ms),
            Backend::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

/// Raises the process's open-file soft limit towards `want` (capped at
/// the hard limit), returning the resulting soft limit. Massive-fanout
/// benches call this before opening tens of thousands of sockets; a
/// refusal is not an error — the caller sizes its sweep to the returned
/// limit.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    sys::raise_nofile_limit(want)
}

// ---------------------------------------------------------------------
// Raw syscall surface. Everything below is the FFI boundary; nothing
// outside this shim may speak epoll_ctl / pollfd directly (lint rule
// `raw-poll-outside-shim`).
// ---------------------------------------------------------------------

mod sys {
    use std::io;
    use std::os::raw::{c_int, c_uint};

    #[repr(C)]
    struct RLimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }

    /// Errno-to-io::Error for a syscall that signals failure with -1.
    pub fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let mut lim = RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `lim` is a valid, writable RLimit; getrlimit writes
        // exactly one RLimit through the pointer.
        cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
        let target = want.min(lim.rlim_max);
        if target > lim.rlim_cur {
            let new = RLimit {
                rlim_cur: target,
                rlim_max: lim.rlim_max,
            };
            // SAFETY: `new` is a valid RLimit read (not retained) by
            // the kernel; raising cur towards the unchanged hard limit
            // is always permitted.
            cvt(unsafe { setrlimit(RLIMIT_NOFILE, &new) })?;
            Ok(target)
        } else {
            Ok(lim.rlim_cur)
        }
    }

    /// `poll(2)` — POSIX, hence the portable fallback.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    pub fn poll_all(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` points at `fds.len()` valid PollFd records the
        // kernel reads (fd, events) and writes (revents) in place; the
        // slice outlives the call.
        let n = cvt(unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms) });
        match n {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }

    #[cfg(target_os = "linux")]
    pub mod linux {
        use super::cvt;
        use std::io;
        use std::os::raw::c_int;

        /// Matches the kernel ABI: packed on x86-64, where the struct
        /// would otherwise pad `events` to 8 bytes.
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub u64: u64,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        const EPOLL_CLOEXEC: c_int = 0o2000000;

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }

        pub fn create() -> io::Result<c_int> {
            // SAFETY: plain fd-returning syscall, no pointers.
            cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
        }

        pub fn ctl(epfd: c_int, op: c_int, fd: c_int, ev: &mut EpollEvent) -> io::Result<()> {
            // SAFETY: `ev` is a valid EpollEvent the kernel copies out
            // of during the call; epfd/fd validity is the caller's
            // resource management, and an invalid fd surfaces as EBADF,
            // not UB.
            cvt(unsafe { epoll_ctl(epfd, op, fd, ev) }).map(|_| ())
        }

        pub fn wait(epfd: c_int, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            let cap = buf.len() as c_int;
            // SAFETY: `buf` points at `cap` writable EpollEvent slots;
            // the kernel writes at most `cap` of them and returns how
            // many.
            let n = cvt(unsafe { epoll_wait(epfd, buf.as_mut_ptr(), cap, timeout_ms) });
            match n {
                Ok(n) => Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
                Err(e) => Err(e),
            }
        }

        pub fn close(fd: c_int) {
            // SAFETY: the Epoll owner holds the only copy of this fd
            // and is being dropped; double-close is impossible.
            let _ = unsafe { super::close(fd) };
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::sys::linux as raw;
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    pub const CTL_ADD: i32 = raw::EPOLL_CTL_ADD;
    pub const CTL_DEL: i32 = raw::EPOLL_CTL_DEL;
    pub const CTL_MOD: i32 = raw::EPOLL_CTL_MOD;

    pub struct Epoll {
        epfd: RawFd,
        /// Reused kernel-event buffer; grows to the largest burst seen.
        buf: Vec<raw::EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            Ok(Epoll {
                epfd: raw::create()?,
                buf: vec![raw::EpollEvent { events: 0, u64: 0 }; 1024],
            })
        }

        pub fn ctl(
            &mut self,
            op: i32,
            fd: RawFd,
            key: usize,
            interest: Interest,
        ) -> io::Result<()> {
            let mut events = raw::EPOLLRDHUP;
            if interest.readable {
                events |= raw::EPOLLIN;
            }
            if interest.writable {
                events |= raw::EPOLLOUT;
            }
            let mut ev = raw::EpollEvent {
                events,
                u64: key as u64,
            };
            raw::ctl(self.epfd, op, fd, &mut ev)
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let n = raw::wait(self.epfd, &mut self.buf, timeout_ms)?;
            for ev in &self.buf[..n] {
                let bits = ev.events;
                let key = ev.u64;
                out.push(Event {
                    key: key as usize,
                    readable: bits
                        & (raw::EPOLLIN | raw::EPOLLERR | raw::EPOLLHUP | raw::EPOLLRDHUP)
                        != 0,
                    writable: bits & (raw::EPOLLOUT | raw::EPOLLERR | raw::EPOLLHUP) != 0,
                });
            }
            if n == self.buf.len() {
                // A full buffer means the burst may have been larger;
                // grow so the next wait drains it in one call.
                self.buf
                    .resize(n * 2, raw::EpollEvent { events: 0, u64: 0 });
            }
            Ok(n)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            raw::close(self.epfd);
        }
    }
}

mod pollfd {
    use super::sys;
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    /// The portable backend: a dense registration table rebuilt into a
    /// `pollfd` array per wait. O(registered) per wait — the price of
    /// portability; the epoll backend is O(ready).
    pub struct PollSet {
        fds: Vec<sys::PollFd>,
        keys: Vec<usize>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet {
                fds: Vec::new(),
                keys: Vec::new(),
            }
        }

        fn events_for(interest: Interest) -> i16 {
            let mut ev = 0i16;
            if interest.readable {
                ev |= sys::POLLIN;
            }
            if interest.writable {
                ev |= sys::POLLOUT;
            }
            ev
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.fds.iter().position(|p| p.fd == fd)
        }

        pub fn add(&mut self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            if self.position(fd).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.fds.push(sys::PollFd {
                fd,
                events: Self::events_for(interest),
                revents: 0,
            });
            self.keys.push(key);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let i = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = Self::events_for(interest);
            self.keys[i] = key;
            Ok(())
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.keys.swap_remove(i);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            if self.fds.is_empty() {
                return Ok(0);
            }
            let n = sys::poll_all(&mut self.fds, timeout_ms)?;
            if n == 0 {
                return Ok(0);
            }
            let mut appended = 0;
            for (p, &key) in self.fds.iter().zip(&self.keys) {
                let re = p.revents;
                if re == 0 {
                    continue;
                }
                out.push(Event {
                    key,
                    readable: re & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0,
                    writable: re & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP) != 0,
                });
                appended += 1;
            }
            Ok(appended)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::portable().unwrap()];
        if cfg!(target_os = "linux") {
            v.push(Poller::new().unwrap());
        }
        v
    }

    #[test]
    fn readable_only_when_data_pending() {
        for mut poller in backends() {
            let (mut a, mut b) = pair();
            poller.add(&b, 7, Interest::READABLE).unwrap();
            let mut events = Vec::new();
            // Nothing written yet: a zero-timeout wait reports nothing.
            let n = poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
            assert_eq!(n, 0, "{}", poller.backend_name());
            a.write_all(b"x").unwrap();
            // Readiness may take a scheduler tick on loopback.
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            assert_eq!(events[0].key, 7);
            assert!(events[0].readable);
            drop(a);
            drop(poller); // deregistration via drop is fine for epoll
            let mut buf = [0u8; 8];
            assert_eq!(b.read(&mut buf).unwrap(), 1);
        }
    }

    #[test]
    fn modify_flips_interest_and_delete_unregisters() {
        for mut poller in backends() {
            let (mut a, b) = pair();
            poller.add(&b, 1, Interest::NONE).unwrap();
            a.write_all(b"ping").unwrap();
            let mut events = Vec::new();
            // Parked: data pending but no interest, no wakeup.
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(poller.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);
            poller.modify(&b, 2, Interest::BOTH).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(n, 1);
            assert_eq!(events[0].key, 2);
            assert!(events[0].readable && events[0].writable);
            poller.delete(&b).unwrap();
            events.clear();
            assert_eq!(poller.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);
        }
    }

    #[test]
    fn hangup_reports_readable() {
        for mut poller in backends() {
            let (a, b) = pair();
            poller.add(&b, 3, Interest::READABLE).unwrap();
            drop(a);
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(n >= 1, "{}", poller.backend_name());
            assert!(events[0].readable, "hangup must surface as readable");
        }
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let now = raise_nofile_limit(0).unwrap();
        assert!(now > 0);
        let after = raise_nofile_limit(now).unwrap();
        assert!(after >= now);
    }
}
