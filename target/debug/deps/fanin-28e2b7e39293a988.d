/root/repo/target/debug/deps/fanin-28e2b7e39293a988.d: crates/bench/src/bin/fanin.rs Cargo.toml

/root/repo/target/debug/deps/libfanin-28e2b7e39293a988.rmeta: crates/bench/src/bin/fanin.rs Cargo.toml

crates/bench/src/bin/fanin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
