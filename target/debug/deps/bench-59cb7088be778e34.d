/root/repo/target/debug/deps/bench-59cb7088be778e34.d: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/bench-59cb7088be778e34: crates/bench/src/lib.rs crates/bench/src/pingpong.rs crates/bench/src/plot.rs crates/bench/src/table.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/pingpong.rs:
crates/bench/src/plot.rs:
crates/bench/src/table.rs:
crates/bench/src/workload.rs:
