//! # bench — experiment harnesses for the NewMadeleine reproduction
//!
//! One binary per paper figure (`fig2`, `fig3`, `fig4`) plus ablation
//! and multirail extension studies. This library holds the shared
//! machinery: size sweeps, the ping-pong drivers (single-segment,
//! multi-segment, derived-datatype), and a markdown table printer.
//!
//! All timings are **virtual time** from the discrete-event simulator:
//! deterministic, reproducible, and directly comparable to the paper's
//! microsecond axes.

#![forbid(unsafe_code)]

pub mod pingpong;
pub mod plot;
pub mod report;
pub mod table;
pub mod workload;

pub use pingpong::{
    pingpong_contig, pingpong_multiseg, pingpong_typed, transfer_multirail, PingPongSample,
};
pub use plot::{LogLogChart, Series};
pub use report::{
    bench_json_arg, median, percentile, BatchReport, BatchRow, BenchReport, BenchRow,
    OverlapReport, OverlapRow, ShardReport, ShardRow, SwarmReport, SwarmRow, TailReport, TailRow,
    BENCH_BATCH_JSON_PATH, BENCH_JSON_PATH, BENCH_OVERLAP_JSON_PATH, BENCH_SHARDS_JSON_PATH,
    BENCH_SWARM_JSON_PATH, BENCH_TAIL_JSON_PATH,
};
pub use table::Table;
pub use workload::{
    generate, generate_tail, payload_for, ArrivalModel, ClassMix, SizeDist, TailItem, TailSpec,
    WorkItem, WorkloadSpec, CLASS_TAG_STRIDE,
};

/// Power-of-two sizes from `from` to `to` inclusive.
pub fn byte_sizes(from: usize, to: usize) -> Vec<usize> {
    assert!(from > 0 && from <= to);
    let mut out = Vec::new();
    let mut s = from;
    while s <= to {
        out.push(s);
        if s > usize::MAX / 2 {
            break;
        }
        s *= 2;
    }
    out
}

/// Formats a byte count the way the paper's x axes do (4, 64, 1K, 2M).
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

/// Relative gain of `fast` over `slow` in percent (paper's "up to 70%
/// faster" metric).
pub fn gain_pct(fast: f64, slow: f64) -> f64 {
    if slow <= 0.0 {
        return 0.0;
    }
    (slow - fast) / slow * 100.0
}

/// Value of a `--json PATH` argument on the command line, if present.
/// Every bench binary accepts it and writes its collected engine
/// metrics snapshots there as one JSON report.
pub fn json_arg() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            let Some(path) = args.next() else {
                eprintln!("--json requires a path; no report will be written");
                return None;
            };
            return Some(path);
        }
    }
    None
}

/// Writes the registry's JSON report to `path` when `--json` was given.
/// Benchmarks must not die on a bad path: failures are printed, not
/// propagated.
pub fn write_json_report(path: Option<&str>, registry: &nmad_core::MetricsRegistry) {
    let Some(path) = path else { return };
    match std::fs::write(path, registry.to_json()) {
        Ok(()) => eprintln!("wrote {} metrics snapshots to {path}", registry.len()),
        Err(e) => eprintln!("could not write metrics report {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes_cover_the_paper_sweep() {
        let sizes = byte_sizes(4, 2 << 20);
        assert_eq!(sizes.first(), Some(&4));
        assert_eq!(sizes.last(), Some(&(2 << 20)));
        assert_eq!(sizes.len(), 20);
    }

    #[test]
    fn fmt_size_matches_axis_labels() {
        assert_eq!(fmt_size(4), "4");
        assert_eq!(fmt_size(512), "512");
        assert_eq!(fmt_size(1024), "1K");
        assert_eq!(fmt_size(256 * 1024), "256K");
        assert_eq!(fmt_size(2 << 20), "2M");
    }

    #[test]
    fn gain_pct_is_the_paper_metric() {
        assert!((gain_pct(3.0, 10.0) - 70.0).abs() < 1e-9);
        assert_eq!(gain_pct(1.0, 0.0), 0.0);
    }
}
