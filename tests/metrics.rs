//! Integration tests for the engine-wide observability layer: the
//! aggregation ratio separates the optimizing strategies from the FIFO
//! baseline, counters stay monotone while the engine runs, and the
//! JSON report machinery holds together end to end.

use newmadeleine::core::{
    EngineCosts, MetricsRegistry, MetricsSnapshot, NmadEngine, StratAggreg, StratDefault, Strategy,
    Tag,
};
use newmadeleine::net::SimDriver;
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig};

fn engine(world: &SharedWorld, node: u32, strategy: Box<dyn Strategy>) -> NmadEngine {
    let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let meter = Box::new(driver.meter());
    NmadEngine::new(vec![Box::new(driver)], meter, strategy, EngineCosts::zero())
}

/// Runs an 8×64 B small-message burst from node 0 to node 1 and
/// returns the sender's final snapshot.
fn small_burst(mk: fn() -> Box<dyn Strategy>) -> MetricsSnapshot {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = engine(&world, 0, mk());
    let mut b = engine(&world, 1, mk());
    let sends: Vec<_> = (0..8)
        .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
        .collect();
    let recvs: Vec<_> = (0..8).map(|t| b.post_recv(NodeId(0), Tag(t), 64)).collect();
    for _ in 0..100_000 {
        let moved = a.progress() | b.progress();
        if sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r)) {
            return a.metrics();
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock before the burst completed");
        }
    }
    panic!("burst did not converge");
}

#[test]
fn aggreg_ratio_beats_one_while_the_baseline_stays_at_one() {
    let agg = small_burst(|| Box::new(StratAggreg));
    assert_eq!(agg.strategy, "aggreg");
    assert!(
        agg.aggregation_ratio() > 1.0,
        "aggregation must coalesce the burst: ratio {}",
        agg.aggregation_ratio()
    );
    assert_eq!(agg.engine.entries_aggregated, 8);
    assert!(agg.engine.frames_synthesized < 8);

    let def = small_burst(|| Box::new(StratDefault));
    assert_eq!(def.strategy, "default");
    assert_eq!(
        def.aggregation_ratio(),
        1.0,
        "the FIFO baseline ships one segment per frame"
    );
    assert_eq!(def.engine.frames_synthesized, 8);
}

#[test]
fn snapshot_reflects_every_layer_after_a_burst() {
    let m = small_burst(|| Box::new(StratAggreg));
    // Collect layer.
    assert_eq!(m.engine.requests_submitted, 8);
    assert_eq!(m.engine.bytes_enqueued, 8 * 64);
    assert!(m.engine.window_depth_hwm >= 1);
    // Scheduling layer.
    assert_eq!(m.engine.eager_entries, 8);
    assert_eq!(m.engine.rendezvous_entries, 0);
    // Transfer layer.
    assert_eq!(m.nics.len(), 1);
    assert_eq!(m.nics[0].name, "MX/Myri-10G");
    assert!(m.nics[0].link.busy_ns > 0);
    assert!(m.nics[0].link.idle_ns > 0);
    assert_eq!(m.nics[0].link.retransmits, 0);
    // Wire statistics agree with the scheduler's view.
    assert_eq!(m.wire.frames_sent, m.engine.frames_synthesized);
    assert_eq!(m.wire.data_entries, m.engine.eager_entries);
}

#[test]
fn registry_collects_labeled_snapshots_into_one_report() {
    let reg = MetricsRegistry::new();
    reg.record("burst/aggreg", small_burst(|| Box::new(StratAggreg)));
    reg.record("burst/default", small_burst(|| Box::new(StratDefault)));
    let json = reg.to_json();
    assert!(json.contains("\"label\":\"burst/aggreg\""));
    assert!(json.contains("\"label\":\"burst/default\""));
    assert!(json.contains("\"strategy\":\"aggreg\""));
    assert!(json.contains("\"strategy\":\"default\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
