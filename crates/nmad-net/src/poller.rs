//! Safe readiness-polling facade for the event-driven TCP endpoint
//! layer.
//!
//! Wraps the `polling` shim (epoll on Linux, `poll(2)` elsewhere — the
//! raw syscalls are confined there) and adds the accounting the
//! endpoint layer reports through
//! [`EndpointStats`](crate::endpoint::EndpointStats): how often a wait
//! woke with work and how many per-socket readiness events it
//! delivered. The contract is level-triggered and persistent:
//! registrations stay until [`Poller::delete`], and callers change
//! interest only on edge transitions (write interest appears when an
//! output buffer becomes non-empty, disappears when it drains), so the
//! kernel is consulted O(transitions), not O(pumps).

pub use polling::{raise_nofile_limit, Event, Interest};

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Cumulative counters of one [`Poller`]'s life.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollerStats {
    /// Wait calls issued (each is one `epoll_wait`/`poll` syscall).
    pub polls: u64,
    /// Wait calls that returned at least one event.
    pub wakeups: u64,
    /// Per-socket readiness events delivered in total.
    pub events: u64,
    /// Interest re-registrations (edge transitions only).
    pub interest_mods: u64,
}

/// A readiness poller bound to one endpoint table.
pub struct Poller {
    inner: polling::Poller,
    stats: PollerStats,
}

impl Poller {
    /// Best backend for the platform (epoll on Linux: O(ready) waits).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: polling::Poller::new()?,
            stats: PollerStats::default(),
        })
    }

    /// The portable `poll(2)` backend, O(registered) per wait. Exists
    /// so the fallback stays tested on Linux.
    pub fn portable() -> io::Result<Poller> {
        Ok(Poller {
            inner: polling::Poller::portable()?,
            stats: PollerStats::default(),
        })
    }

    /// Backend name for reports (`"epoll"` / `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }

    /// Registers `source` under `key` with `interest`.
    pub fn add(&mut self, source: &impl AsRawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.inner.add(source, key, interest)
    }

    /// Changes the interest set of a registered descriptor. Callers
    /// invoke this only on actual transitions; the count is exposed so
    /// tests can pin that no per-pump re-registration sneaks in.
    pub fn modify(
        &mut self,
        source: &impl AsRawFd,
        key: usize,
        interest: Interest,
    ) -> io::Result<()> {
        self.stats.interest_mods += 1;
        self.inner.modify(source, key, interest)
    }

    /// Removes a registration (before closing the descriptor).
    pub fn delete(&mut self, source: &impl AsRawFd) -> io::Result<()> {
        self.inner.delete(source)
    }

    /// Appends ready events to `events`, returning how many. The
    /// endpoint pump uses a zero timeout; mesh setup uses short real
    /// timeouts instead of sleep loops.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let n = self.inner.wait(events, timeout)?; // BLOCKING-OK: bounded poll; the pump passes a zero timeout when busy
        self.stats.polls += 1;
        if n > 0 {
            self.stats.wakeups += 1;
            self.stats.events += n as u64;
        }
        Ok(n)
    }

    /// Counters since construction.
    pub fn stats(&self) -> PollerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wakeup_accounting_counts_only_productive_polls() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        b.set_nonblocking(true).unwrap();

        let mut p = Poller::new().unwrap();
        p.add(&b, 1, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        assert_eq!(p.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);
        a.write_all(b"hi").unwrap();
        let n = p.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        let s = p.stats();
        assert_eq!(s.polls, 2);
        assert_eq!(s.wakeups, 1, "empty poll must not count as a wakeup");
        assert_eq!(s.events, 1);
        assert_eq!(s.interest_mods, 0);
        p.modify(&b, 1, Interest::NONE).unwrap();
        assert_eq!(p.stats().interest_mods, 1);
    }
}
