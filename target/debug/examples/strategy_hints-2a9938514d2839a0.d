/root/repo/target/debug/examples/strategy_hints-2a9938514d2839a0.d: examples/strategy_hints.rs

/root/repo/target/debug/examples/strategy_hints-2a9938514d2839a0: examples/strategy_hints.rs

examples/strategy_hints.rs:
