/root/repo/target/debug/deps/protocol_edges-67cca28e98ee2e2d.d: tests/protocol_edges.rs

/root/repo/target/debug/deps/protocol_edges-67cca28e98ee2e2d: tests/protocol_edges.rs

tests/protocol_edges.rs:
