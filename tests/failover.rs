//! Integration: NIC failure injection and multirail failover.
//!
//! The paper's related work (§6) contrasts NewMadeleine with VMI 2.0,
//! whose multirail exists for *availability*. Our engine gets the same
//! property structurally: window work scheduled onto a NIC that refuses
//! the send is handed back and picked up by the surviving rails.

use newmadeleine::core::prelude::*;
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::{Driver, FaultPlan, FaultStats, NetError, SimCpuMeter};
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig};

fn multirail_engine(world: &SharedWorld, node: u32) -> NmadEngine {
    let drivers: Vec<Box<dyn Driver>> = SimDriver::all_rails(world, NodeId(node))
        .into_iter()
        .map(|d| Box::new(d) as Box<dyn Driver>)
        .collect();
    let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
    NmadEngine::new(
        drivers,
        meter,
        Box::new(StratMultirail::default()),
        EngineCosts::zero(),
    )
}

fn pump(
    world: &SharedWorld,
    a: &mut NmadEngine,
    b: &mut NmadEngine,
    mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
) {
    for _ in 0..1_000_000 {
        let moved = a.progress() | b.progress();
        if done(a, b) {
            return;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    panic!("no convergence");
}

fn two_rail_world() -> SharedWorld {
    shared_world(SimConfig::two_nodes_multirail(vec![
        nic::mx_myri10g(),
        nic::quadrics_qm500(),
    ]))
}

#[test]
fn traffic_fails_over_to_the_surviving_rail() {
    let world = two_rail_world();
    let mut a = multirail_engine(&world, 0);
    let mut b = multirail_engine(&world, 1);

    // Kill rail 0 on both ends before any traffic.
    world.lock().fail_rail(NodeId(0), RailId(0));
    world.lock().fail_rail(NodeId(1), RailId(0));

    let body: Vec<u8> = (0..300_000u32).map(|i| (i % 249) as u8).collect();
    let s = a.isend(NodeId(1), Tag(0), body.clone());
    let smalls: Vec<_> = (1..9u32)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 64]))
        .collect();
    let r = b.post_recv(NodeId(0), Tag(0), body.len());
    let small_rs: Vec<_> = (1..9u32)
        .map(|i| b.post_recv(NodeId(0), Tag(i), 64))
        .collect();
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s)
            && smalls.iter().all(|&x| a.is_send_done(x))
            && b.is_recv_done(r)
            && small_rs.iter().all(|&x| b.is_recv_done(x))
    });
    assert_eq!(b.try_take_recv(r).unwrap().data, body);
    for (i, x) in small_rs.into_iter().enumerate() {
        assert_eq!(b.try_take_recv(x).unwrap().data, vec![(i + 1) as u8; 64]);
    }
    let stats = world.lock().stats().clone();
    assert_eq!(stats.per_rail_bytes[0], 0, "dead rail carried traffic");
    assert!(stats.per_rail_bytes[1] > 300_000);
}

#[test]
fn mid_stream_failure_requeues_window_work() {
    let world = two_rail_world();
    let mut a = multirail_engine(&world, 0);
    let mut b = multirail_engine(&world, 1);

    // Establish traffic on both rails first.
    let s0 = a.isend(NodeId(1), Tag(0), vec![1u8; 64]);
    let r0 = b.post_recv(NodeId(0), Tag(0), 64);
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s0) && b.is_recv_done(r0)
    });
    b.try_take_recv(r0);

    // Fail rail 0 while the engine is quiescent, then run a burst: the
    // engine discovers the failure on its next post and fails over.
    world.lock().fail_rail(NodeId(0), RailId(0));
    let sends: Vec<_> = (10..30u32)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 128]))
        .collect();
    let recvs: Vec<_> = (10..30u32)
        .map(|i| b.post_recv(NodeId(0), Tag(i), 128))
        .collect();
    pump(&world, &mut a, &mut b, |a, b| {
        sends.iter().all(|&x| a.is_send_done(x)) && recvs.iter().all(|&x| b.is_recv_done(x))
    });
    for (i, x) in recvs.into_iter().enumerate() {
        assert_eq!(
            b.try_take_recv(x).unwrap().data,
            vec![(i + 10) as u8; 128],
            "message {i} lost or corrupted across the failover"
        );
    }
}

#[test]
fn losing_every_rail_surfaces_a_transport_error() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let driver = SimDriver::new(world.clone(), NodeId(0), RailId(0));
    let meter = Box::new(driver.meter());
    let mut a = NmadEngine::new(
        vec![Box::new(driver)],
        meter,
        Box::new(StratAggreg),
        EngineCosts::zero(),
    );
    world.lock().fail_rail(NodeId(0), RailId(0));
    a.isend(NodeId(1), Tag(0), vec![0u8; 64]);
    // First pump marks the NIC dead (post refused, work requeued); a
    // later pump, with work pending and no NIC alive, must error.
    let mut saw_error = false;
    for _ in 0..4 {
        match a.try_progress() {
            Ok(_) => {}
            Err(NetError::Closed) => {
                saw_error = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(saw_error, "a fully dead endpoint must report Closed");
}

/// The engine's fault counters in `MetricsSnapshot` must agree with
/// the injected `FaultPlan`: a plan that kills one rail produces
/// exactly one recorded rail fault, requeued entries, dead-post stats
/// on that rail only, and a "faults" section in the JSON export.
#[test]
fn fault_counters_pin_to_the_injected_plan() {
    let world = two_rail_world();
    let mut a = multirail_engine(&world, 0);
    let mut b = multirail_engine(&world, 1);
    // Rail 0 dies on its very first post; rail 1 runs a long latency
    // spike, so every surviving post is delayed but delivered.
    assert!(a.install_faults(0, FaultPlan::new(1).nic_death(0)));
    assert!(a.install_faults(1, FaultPlan::new(2).latency_spike(0, 10_000_000, 50_000)));

    let sends: Vec<_> = (0..12u32)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 256]))
        .collect();
    let recvs: Vec<_> = (0..12u32)
        .map(|i| b.post_recv(NodeId(0), Tag(i), 256))
        .collect();
    pump(&world, &mut a, &mut b, |a, b| {
        sends.iter().all(|&x| a.is_send_done(x)) && recvs.iter().all(|&x| b.is_recv_done(x))
    });
    for (i, x) in recvs.into_iter().enumerate() {
        assert_eq!(b.try_take_recv(x).unwrap().data, vec![i as u8; 256]);
    }

    let m = a.metrics();
    assert_eq!(m.engine.rail_faults, 1, "one rail died exactly once");
    assert!(
        m.engine.requeued_entries >= 1,
        "dead-rail work must have been requeued: {:?}",
        m.engine
    );
    let f0 = a.fault_stats(0);
    assert!(f0.dead_posts >= 1, "rail 0 refused posts: {f0:?}");
    assert_eq!(
        f0.total(),
        f0.dead_posts,
        "a pure-death plan inflicts nothing but dead posts: {f0:?}"
    );
    let f1 = a.fault_stats(1);
    assert!(f1.delayed >= 1, "rail 1 spiked: {f1:?}");
    assert_eq!(
        f1.total(),
        f1.delayed,
        "a pure-spike plan inflicts nothing but delays: {f1:?}"
    );
    assert_eq!(
        b.fault_stats(0),
        FaultStats::default(),
        "no plan was installed on the receiver"
    );
    let json = m.to_json();
    assert!(json.contains("\"faults\""), "metrics JSON: {json}");
    assert!(json.contains("\"rail_faults\":1"), "metrics JSON: {json}");
}

/// Satellite invariant: a rail fault that fires while the optimization
/// window is non-empty reclaims dedicated work and requeues stranded
/// plans — and the window's per-destination (ctrl, rdv) index must
/// stay consistent with the queues through every one of those
/// mutations. The index is recounted after every pump on both ends
/// (the receiver's window carries the CTS control traffic).
#[test]
fn rail_fault_with_nonempty_window_keeps_dst_index_consistent() {
    let world = two_rail_world();
    let mut a = multirail_engine(&world, 0);
    let mut b = multirail_engine(&world, 1);
    // Rail 0 dies on its third post: by then the burst below has
    // filled the window, so the fault reclaims live dedicated queues
    // and requeues a non-trivial plan.
    assert!(a.install_faults(0, FaultPlan::new(7).nic_death(2)));

    // Mixed traffic: eager segments plus two rendezvous-sized
    // messages, so the requeue touches segments, control (CTS on the
    // receiver) and granted rendezvous jobs.
    let big: Vec<u8> = (0..200_000u32).map(|i| (i % 239) as u8).collect();
    let mut sends = vec![
        a.isend(NodeId(1), Tag(100), big.clone()),
        a.isend(NodeId(1), Tag(101), big.clone()),
    ];
    sends.extend((0..10u32).map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 256])));
    let mut recvs = vec![
        b.post_recv(NodeId(0), Tag(100), big.len()),
        b.post_recv(NodeId(0), Tag(101), big.len()),
    ];
    recvs.extend((0..10u32).map(|i| b.post_recv(NodeId(0), Tag(i), 256)));

    for _ in 0..1_000_000 {
        let moved = a.progress() | b.progress();
        assert!(
            a.window_index_consistent(),
            "sender window index diverged: {:?}",
            a.diagnostics()
        );
        assert!(
            b.window_index_consistent(),
            "receiver window index diverged: {:?}",
            b.diagnostics()
        );
        if sends.iter().all(|&x| a.is_send_done(x)) && recvs.iter().all(|&x| b.is_recv_done(x)) {
            break;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    assert_eq!(b.try_take_recv(recvs[0]).unwrap().data, big);
    assert_eq!(b.try_take_recv(recvs[1]).unwrap().data, big);
    for (i, &x) in recvs[2..].iter().enumerate() {
        assert_eq!(
            b.try_take_recv(x).unwrap().data,
            vec![i as u8; 256],
            "message {i} lost or corrupted across the failover"
        );
    }
    let m = a.metrics();
    assert_eq!(m.engine.rail_faults, 1, "rail 0 died exactly once");
    assert!(
        m.engine.requeued_entries >= 1,
        "the fault fired with work in flight: {:?}",
        m.engine
    );
    assert!(a.window_index_consistent() && b.window_index_consistent());
}

#[test]
fn fail_rail_drops_in_flight_packets() {
    // Documented loss semantics: what was already on the wire towards
    // a failed NIC is gone (no retransmission protocol).
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    world
        .lock()
        .post_send(NodeId(0), RailId(0), NodeId(1), vec![1u8; 64]);
    world.lock().fail_rail(NodeId(1), RailId(0));
    while world.lock().advance().is_some() {}
    assert!(world.lock().poll_recv(NodeId(1), RailId(0)).is_none());
}
