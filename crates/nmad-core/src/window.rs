//! The optimization window.
//!
//! "While the NICs are busy, NewMadeleine keeps accumulating packets in
//! its optimization window. As soon as a NIC becomes idle, the
//! optimization window is analyzed so as to create a new ready-to-send
//! packet" (§3.1). The window holds three classes of outgoing work:
//!
//! * **control messages** — rendezvous CTS grants, always urgent;
//! * **application segments** — on a *dedicated* per-NIC list when the
//!   application pinned a network, otherwise on the *common* list used
//!   for automatic load balancing across NICs (§3.3);
//! * **rendezvous jobs** — large segments whose CTS has arrived, ready
//!   for (possibly chunked, possibly multi-rail) zero-copy transfer.

use crate::segment::{PackWrapper, SendReqId, SeqNo, Tag, NUM_LANES};
use bytes::Bytes;
use nmad_sim::NodeId;
use std::collections::{HashMap, VecDeque};

/// An outgoing control message (currently only rendezvous CTS).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtrlMsg {
    /// Destination node.
    pub dst: NodeId,
    /// Logical flow identifier.
    pub tag: Tag,
    /// Per-flow sequence number.
    pub seq: SeqNo,
    /// Announced total length in bytes.
    pub total: u32,
}

/// A granted rendezvous transfer in progress.
#[derive(Clone, Debug)]
pub struct RdvJob {
    /// Destination node.
    pub dst: NodeId,
    /// Logical flow identifier.
    pub tag: Tag,
    /// Per-flow sequence number.
    pub seq: SeqNo,
    /// The full granted payload.
    pub data: Bytes,
    /// Send request this transfer completes.
    pub req: SendReqId,
    cursor: usize,
    /// Wire offset of `data[0]` within the full segment (non-zero when
    /// the job resumes a chunk requeued after a NIC failure).
    base: u32,
    /// Submission-order stamp for deadline-aware admission (0 = old).
    order: u64,
}

/// One chunk cut from a rendezvous job by a strategy.
#[derive(Clone, Debug)]
pub struct RdvChunk {
    /// Destination node.
    pub dst: NodeId,
    /// Logical flow identifier.
    pub tag: Tag,
    /// Per-flow sequence number.
    pub seq: SeqNo,
    /// Byte offset within the full segment.
    pub offset: u32,
    /// This chunk's bytes.
    pub data: Bytes,
    /// Whether this is the final chunk of its segment.
    pub last: bool,
    /// Send request this transfer completes.
    pub req: SendReqId,
}

impl RdvJob {
    /// A fresh job covering `data` from offset zero.
    pub fn new(dst: NodeId, tag: Tag, seq: SeqNo, data: Bytes, req: SendReqId) -> Self {
        RdvJob {
            dst,
            tag,
            seq,
            data,
            req,
            cursor: 0,
            base: 0,
            order: 0,
        }
    }

    /// Stamps the job's submission-order age (deadline-aware rendezvous
    /// admission compares it against the window's order horizon).
    pub fn with_order(mut self, order: u64) -> Self {
        self.order = order;
        self
    }

    /// Submission-order stamp of the grant that created this job. Zero
    /// (infinitely old, admitted at full size) for resumed failover
    /// chunks and untracked callers.
    pub fn order(&self) -> u64 {
        self.order
    }

    /// Rebuilds a job from a chunk that could not be posted (NIC
    /// failure failover): the chunk's bytes re-enter the window at
    /// their original wire offset.
    pub fn resume(chunk: RdvChunk) -> Self {
        RdvJob {
            dst: chunk.dst,
            tag: chunk.tag,
            seq: chunk.seq,
            data: chunk.data,
            req: chunk.req,
            cursor: 0,
            base: chunk.offset,
            order: 0,
        }
    }

    /// Bytes not yet cut into chunks.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.cursor
    }

    /// Cuts the next chunk of at most `max` bytes. Returns `None` when
    /// exhausted (the caller should then drop the job).
    pub fn take_chunk(&mut self, max: usize) -> Option<RdvChunk> {
        if self.remaining() == 0 || max == 0 {
            return None;
        }
        let len = self.remaining().min(max);
        let offset = self.cursor;
        let data = self.data.slice(offset..offset + len);
        self.cursor += len;
        Some(RdvChunk {
            dst: self.dst,
            tag: self.tag,
            seq: self.seq,
            offset: self.base + u32::try_from(offset).expect("segment larger than 4 GiB"), // PANIC-OK: offsets bounded by the 4 GiB segment cap at submit
            data,
            last: self.remaining() == 0,
            req: self.req,
        })
    }
}

/// Per-destination work index, maintained at every push and take so
/// the per-refill queries below never have to scan a queue that holds
/// nothing for their destination.
///
/// `lanes[l]` holds the submission-order stamps of every queued
/// segment (common *and* dedicated) towards this destination on lane
/// `l`, sorted ascending — so "the oldest lane-`l` byte for this
/// destination" is the front, in O(1). Stamps arrive almost always in
/// increasing order (the engine's submission counter), so maintaining
/// sortedness is an O(1) `push_back` except on failover requeues.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct DstCounts {
    ctrl: usize,
    rdv: usize,
    lanes: [VecDeque<u64>; NUM_LANES],
}

impl DstCounts {
    fn is_zero(&self) -> bool {
        self.ctrl == 0 && self.rdv == 0 && self.lanes.iter().all(VecDeque::is_empty)
    }
}

/// The optimization window. See the module documentation.
///
/// Every refill of an idle NIC queries the window per destination
/// (drain the grants for `dst`, cut a rendezvous chunk for `dst`, is
/// there credit-exempt work for `dst`?). The window keeps a
/// per-destination count index so those queries return in O(1) when
/// the answer is "nothing", instead of rescanning the full control and
/// rendezvous queues on every poll.
#[derive(Debug)]
pub struct Window {
    ctrl: VecDeque<CtrlMsg>,
    dedicated: Vec<VecDeque<PackWrapper>>,
    common: VecDeque<PackWrapper>,
    rdv: VecDeque<RdvJob>,
    index: HashMap<NodeId, DstCounts>,
    /// Global queued-segment count per lane (all destinations), so
    /// "is any lane-`l` work pending at all?" is O(1).
    lane_counts: [usize; NUM_LANES],
    /// One past the largest submission-order stamp ever indexed; ages
    /// are measured against this horizon (aging promotion, rendezvous
    /// admission deadlines).
    order_horizon: u64,
}

impl Window {
    /// A fresh job covering `data` from offset zero.
    pub fn new(nic_count: usize) -> Self {
        Window {
            ctrl: VecDeque::new(),
            dedicated: (0..nic_count).map(|_| VecDeque::new()).collect(),
            common: VecDeque::new(),
            rdv: VecDeque::new(),
            index: HashMap::new(),
            lane_counts: [0; NUM_LANES],
            order_horizon: 0,
        }
    }

    /// Recomputes the per-destination index from the actual queue
    /// contents and compares. `true` when every entry matches (counts,
    /// per-lane order deques sorted ascending, global lane counts) and
    /// no zero entry lingers. O(window contents) — meant for
    /// `debug_assert!` on the mutation paths a rail fault exercises
    /// (requeue, reclaim) and for regression tests, not for the
    /// per-refill hot path.
    pub fn index_is_consistent(&self) -> bool {
        let mut expect: HashMap<NodeId, DstCounts> = HashMap::new();
        let mut expect_lanes = [0usize; NUM_LANES];
        for msg in &self.ctrl {
            expect.entry(msg.dst).or_default().ctrl += 1;
        }
        for job in &self.rdv {
            expect.entry(job.dst).or_default().rdv += 1;
        }
        for w in self.common.iter().chain(self.dedicated.iter().flatten()) {
            let lane = w.priority.lane() as usize;
            expect_lanes[lane] += 1;
            expect.entry(w.dst).or_default().lanes[lane].push_back(w.order);
        }
        for counts in expect.values_mut() {
            for q in &mut counts.lanes {
                q.make_contiguous().sort_unstable();
            }
        }
        // Comparing against a sorted expectation also proves the live
        // deques are sorted, which the O(1) oldest queries rely on.
        self.lane_counts == expect_lanes
            && self.index.len() == expect.len()
            && self
                .index
                .iter()
                .all(|(dst, counts)| !counts.is_zero() && expect.get(dst) == Some(counts))
    }

    fn update_counts(&mut self, dst: NodeId, f: impl FnOnce(&mut DstCounts)) {
        let counts = self.index.entry(dst).or_default();
        f(counts);
        if counts.is_zero() {
            self.index.remove(&dst);
        }
    }

    /// Records a queued segment in the per-(dst, lane) order index.
    fn index_segment(&mut self, w: &PackWrapper) {
        let lane = w.priority.lane() as usize;
        self.lane_counts[lane] += 1;
        self.order_horizon = self.order_horizon.max(w.order.saturating_add(1));
        let q = &mut self.index.entry(w.dst).or_default().lanes[lane];
        // Fresh submissions carry increasing stamps → O(1) append; a
        // failover requeue re-inserts an older stamp by position.
        match q.back() {
            Some(&back) if back > w.order => {
                let pos = q.partition_point(|&o| o <= w.order);
                q.insert(pos, w.order);
            }
            _ => q.push_back(w.order),
        }
    }

    /// Removes a no-longer-queued segment from the order index.
    fn unindex_segment(&mut self, w: &PackWrapper) {
        let lane = w.priority.lane() as usize;
        debug_assert!(self.lane_counts[lane] > 0, "lane count underflow");
        self.lane_counts[lane] = self.lane_counts[lane].saturating_sub(1);
        let order = w.order;
        self.update_counts(w.dst, |c| {
            let q = &mut c.lanes[lane];
            match q.binary_search(&order) {
                Ok(pos) => {
                    q.remove(pos);
                }
                Err(_) => debug_assert!(false, "unindex of untracked segment"),
            }
        });
    }

    // --- submission side (collect layer) ---

    /// Push ctrl.
    // HOT-PATH: window plan
    pub fn push_ctrl(&mut self, msg: CtrlMsg) {
        self.update_counts(msg.dst, |c| c.ctrl += 1);
        self.ctrl.push_back(msg);
    }

    /// Registers a collected segment; `rail_hint` selects a dedicated
    /// per-NIC list, `None` the common load-balanced list.
    // HOT-PATH: window plan
    pub fn push_segment(&mut self, wrapper: PackWrapper, rail_hint: Option<usize>) {
        self.index_segment(&wrapper);
        match rail_hint {
            Some(nic) => self.dedicated[nic].push_back(wrapper), // PANIC-OK: nic < dedicated.len() checked at enqueue
            None => self.common.push_back(wrapper),
        }
    }

    /// Re-inserts a segment at the *front* of the common list (failover
    /// requeue: the segment was already scheduled once and must keep
    /// its place).
    // HOT-PATH: window plan
    pub fn push_segment_front(&mut self, wrapper: PackWrapper) {
        self.index_segment(&wrapper);
        self.common.push_front(wrapper);
    }

    /// The segment at the back of the common list, if any (the steal
    /// path peeks here before deciding to donate).
    pub fn common_back(&self) -> Option<&PackWrapper> {
        self.common.back()
    }

    /// Pops the back of the common list. Donations come from the back
    /// so the front — the oldest traffic, next in line for a NIC —
    /// keeps its position.
    // HOT-PATH: window drain
    pub fn pop_common_back(&mut self) -> Option<PackWrapper> {
        let w = self.common.pop_back()?;
        self.unindex_segment(&w);
        Some(w)
    }

    /// Push rdv.
    // HOT-PATH: window plan
    pub fn push_rdv(&mut self, job: RdvJob) {
        self.update_counts(job.dst, |c| c.rdv += 1);
        self.rdv.push_back(job);
    }

    /// Moves every segment dedicated to `nic` back onto the front of
    /// the common list, preserving their order (failover: the rail
    /// died, the survivors take its work). Returns how many moved.
    pub fn reclaim_dedicated(&mut self, nic: usize) -> usize {
        let mut moved = 0;
        while let Some(w) = self.dedicated[nic].pop_back() {
            self.common.push_front(w);
            moved += 1;
        }
        // The lane index spans common and dedicated lists alike, so
        // moving segments between them leaves every count untouched.
        debug_assert!(
            self.index_is_consistent(),
            "DstCounts index diverged across reclaim_dedicated({nic})"
        );
        moved
    }

    // --- strategy side ---

    /// True when nothing at all is pending for NIC `nic`.
    pub fn is_empty_for(&self, nic: usize) -> bool {
        self.ctrl.is_empty()
            && self.rdv.is_empty()
            && self.common.is_empty()
            && self.dedicated[nic].is_empty()
    }

    /// True when the whole window is drained.
    pub fn is_empty(&self) -> bool {
        self.ctrl.is_empty()
            && self.rdv.is_empty()
            && self.common.is_empty()
            && self.dedicated.iter().all(VecDeque::is_empty)
    }

    /// Pending application segments visible to NIC `nic` (window depth,
    /// an input the paper lists for the optimization function).
    pub fn depth_for(&self, nic: usize) -> usize {
        self.dedicated[nic].len() + self.common.len()
    }

    /// Destination the next frame for `nic` should target, honouring
    /// the urgency order control > rendezvous data > fresh segments.
    // HOT-PATH: window drain
    pub fn next_dst(&self, nic: usize) -> Option<NodeId> {
        if let Some(c) = self.ctrl.front() {
            return Some(c.dst);
        }
        if let Some(j) = self.rdv.front() {
            return Some(j.dst);
        }
        // PANIC-OK: nic < dedicated.len() checked at enqueue
        if let Some(w) = self.dedicated[nic].front() {
            return Some(w.dst);
        }
        self.common.front().map(|w| w.dst)
    }

    /// Pops every queued control message towards `dst`. O(1) when the
    /// index shows none pending.
    // HOT-PATH: window drain
    pub fn drain_ctrl_for(&mut self, dst: NodeId) -> Vec<CtrlMsg> {
        let pending = self.index.get(&dst).map_or(0, |c| c.ctrl);
        if pending == 0 {
            return Vec::new(); // ALLOC-OK: Vec::new does not allocate
        }
        let mut out = Vec::with_capacity(pending); // ALLOC-OK: one exactly-sized drain batch
        let mut rest = VecDeque::with_capacity(self.ctrl.len() - pending);
        for msg in self.ctrl.drain(..) {
            if msg.dst == dst {
                out.push(msg);
            } else {
                rest.push_back(msg);
            }
        }
        self.ctrl = rest;
        self.update_counts(dst, |c| c.ctrl = 0);
        debug_assert!(
            self.index_is_consistent(),
            "DstCounts index diverged across drain_ctrl_for({dst:?})"
        );
        out
    }

    /// Front rendezvous job towards `dst`, if any. O(1) when the index
    /// shows none pending.
    pub fn rdv_front_for(&self, dst: NodeId) -> Option<&RdvJob> {
        if self.index.get(&dst).map_or(0, |c| c.rdv) == 0 {
            return None;
        }
        self.rdv.iter().find(|j| j.dst == dst)
    }

    /// Cuts a chunk of at most `max` bytes from the first rendezvous
    /// job towards `dst`, dropping the job once exhausted. O(1) when
    /// the index shows none pending.
    // HOT-PATH: window drain
    pub fn take_rdv_chunk(&mut self, dst: NodeId, max: usize) -> Option<RdvChunk> {
        if self.index.get(&dst).map_or(0, |c| c.rdv) == 0 {
            return None;
        }
        let idx = self.rdv.iter().position(|j| j.dst == dst)?;
        let chunk = self.rdv[idx].take_chunk(max)?; // PANIC-OK: idx from enumerate over rdv
        if chunk.last {
            self.rdv.remove(idx);
            self.update_counts(dst, |c| c.rdv -= 1);
        }
        debug_assert!(
            self.index_is_consistent(),
            "DstCounts index diverged across take_rdv_chunk({dst:?})"
        );
        Some(chunk)
    }

    /// True if any rendezvous job towards anyone has bytes pending.
    pub fn has_rdv(&self) -> bool {
        !self.rdv.is_empty()
    }

    /// True when `dst` has pending work that is exempt from eager flow
    /// control: control messages or granted rendezvous data. O(1) via
    /// the destination index (the engine asks on every refill poll).
    pub fn has_non_data_work_for(&self, dst: NodeId) -> bool {
        self.index
            .get(&dst)
            .is_some_and(|c| c.ctrl > 0 || c.rdv > 0)
    }

    // --- lane queries (tail-aware strategies) ---

    /// Submission-order stamp of the oldest queued segment towards
    /// `dst` on `lane`, in O(1) via the lane index.
    pub fn oldest_in_lane(&self, dst: NodeId, lane: u8) -> Option<u64> {
        self.index
            .get(&dst)?
            .lanes
            .get(lane as usize)?
            .front()
            .copied()
    }

    /// Oldest stamp per lane towards `dst` (one O(1) lookup per lane).
    pub fn oldest_per_lane(&self, dst: NodeId) -> [Option<u64>; NUM_LANES] {
        let mut out = [None; NUM_LANES];
        if let Some(counts) = self.index.get(&dst) {
            for (slot, q) in out.iter_mut().zip(&counts.lanes) {
                *slot = q.front().copied();
            }
        }
        out
    }

    /// Queued segments towards `dst` on `lane`, in O(1).
    pub fn lane_pending(&self, dst: NodeId, lane: u8) -> usize {
        self.index
            .get(&dst)
            .and_then(|c| c.lanes.get(lane as usize))
            .map_or(0, VecDeque::len)
    }

    /// Queued segments on `lane` across every destination, in O(1).
    pub fn lane_depth(&self, lane: u8) -> usize {
        self.lane_counts.get(lane as usize).copied().unwrap_or(0)
    }

    /// Destination holding the globally-oldest queued segment on
    /// `lane`, with its stamp. O(active destinations) — one indexed
    /// front per destination, no queue scan; strategies call it once
    /// per frame synthesis, not per poll.
    pub fn global_oldest_in_lane(&self, lane: u8) -> Option<(NodeId, u64)> {
        if self.lane_depth(lane) == 0 {
            return None;
        }
        self.index
            .iter()
            .filter_map(|(dst, c)| c.lanes[lane as usize].front().map(|&o| (*dst, o)))
            .min_by_key(|&(_, o)| o)
    }

    /// One past the largest submission-order stamp ever indexed here.
    /// `order_horizon() - w.order` is a segment's age in submissions.
    pub fn order_horizon(&self) -> u64 {
        self.order_horizon
    }

    /// Read-only view of the common list (selection heuristics).
    pub fn common_ref(&self) -> &VecDeque<PackWrapper> {
        &self.common
    }

    /// Read-only view of the queued control messages (tests, shard
    /// split verification).
    pub fn ctrl_ref(&self) -> &VecDeque<CtrlMsg> {
        &self.ctrl
    }

    /// Read-only view of the queued rendezvous jobs (tests, shard
    /// split verification).
    pub fn rdv_ref(&self) -> &VecDeque<RdvJob> {
        &self.rdv
    }

    /// Number of dedicated per-NIC lists this window was built with.
    pub fn nic_count(&self) -> usize {
        self.dedicated.len()
    }

    // --- shard split / merge ---

    /// Splits the window into `shards` parts for the sharded
    /// progression runtime.
    ///
    /// * **Dedicated lists** follow their rail: global rail `r` belongs
    ///   to shard `r % shards` (the same round-robin partition the
    ///   engine applies to its drivers), becoming that part's local
    ///   list `r / shards`. Their contents move wholesale and in order
    ///   — an application that pinned a rail keeps its pinning.
    /// * **Control messages, common segments and rendezvous jobs** go
    ///   to `owner(dst, tag)` — the shard-routing function — keeping
    ///   their relative order within each part.
    ///
    /// Every queued item lands in exactly one part and every part's
    /// destination index is consistent ([`Self::index_is_consistent`]);
    /// [`Window::merge`] restores the original window exactly up to the
    /// documented interleaving (per-flow order is always preserved,
    /// which is the delivery-relevant invariant — receivers restore
    /// per-flow order from sequence numbers regardless).
    pub fn split(self, shards: usize, mut owner: impl FnMut(NodeId, Tag) -> usize) -> Vec<Window> {
        assert!(shards > 0, "cannot split into zero shards");
        let nic_count = self.dedicated.len();
        let mut parts: Vec<Window> = (0..shards)
            .map(|s| {
                // Rails r with r % shards == s, i.e. one list per
                // global rail this shard owns (possibly zero).
                let local_nics = (s..nic_count).step_by(shards.max(1)).count();
                Window::new(local_nics)
            })
            .collect();
        for (rail, list) in self.dedicated.into_iter().enumerate() {
            // push_segment keeps each part's lane index covering the
            // moved list; order within the list is preserved.
            for w in list {
                parts[rail % shards].push_segment(w, Some(rail / shards));
            }
        }
        for msg in self.ctrl {
            let s = owner(msg.dst, msg.tag) % shards;
            parts[s].push_ctrl(msg);
        }
        for w in self.common {
            let s = owner(w.dst, w.tag) % shards;
            parts[s].push_segment(w, None);
        }
        for job in self.rdv {
            let s = owner(job.dst, job.tag) % shards;
            parts[s].push_rdv(job);
        }
        debug_assert!(parts.iter().all(Window::index_is_consistent));
        parts
    }

    /// Reassembles a window from the parts produced by
    /// [`Window::split`], inverting the rail partition: part `s`'s
    /// local list `j` becomes global rail `j * parts.len() + s`.
    /// Control, common and rendezvous queues concatenate in part
    /// order, preserving each part's internal (hence per-flow) order.
    pub fn merge(parts: Vec<Window>) -> Window {
        assert!(!parts.is_empty(), "cannot merge zero windows");
        let shards = parts.len();
        let nic_count: usize = parts.iter().map(|p| p.dedicated.len()).sum();
        let mut merged = Window::new(nic_count);
        for (s, part) in parts.into_iter().enumerate() {
            for (j, list) in part.dedicated.into_iter().enumerate() {
                for w in list {
                    merged.push_segment(w, Some(j * shards + s));
                }
            }
            for msg in part.ctrl {
                merged.push_ctrl(msg);
            }
            for w in part.common {
                merged.push_segment(w, None);
            }
            for job in part.rdv {
                merged.push_rdv(job);
            }
        }
        debug_assert!(merged.index_is_consistent());
        merged
    }

    /// Read-only view of a dedicated list (selection heuristics).
    pub fn dedicated_ref(&self, nic: usize) -> &VecDeque<PackWrapper> {
        &self.dedicated[nic]
    }

    /// Removes and returns the first segment visible to `nic` (its
    /// dedicated list first, then the common list) satisfying `pred`,
    /// scanning past non-matching segments (reordering permitted).
    // HOT-PATH: window drain
    pub fn take_first_matching(
        &mut self,
        nic: usize,
        pred: impl FnMut(&PackWrapper) -> bool,
    ) -> Option<PackWrapper> {
        self.take_first_matching_tracked(nic, pred).map(|(w, _)| w)
    }

    /// Like [`take_first_matching`](Self::take_first_matching) but also
    /// reports whether the take jumped past earlier-queued segments
    /// (i.e. an actual reordering decision, not a FIFO pop).
    // HOT-PATH: window drain
    pub fn take_first_matching_tracked(
        &mut self,
        nic: usize,
        mut pred: impl FnMut(&PackWrapper) -> bool,
    ) -> Option<(PackWrapper, bool)> {
        // PANIC-OK: nic < dedicated.len() checked at enqueue
        if let Some(pos) = self.dedicated[nic].iter().position(&mut pred) {
            let w = self.dedicated[nic].remove(pos)?; // PANIC-OK: nic < dedicated.len() checked at enqueue
            self.unindex_segment(&w);
            return Some((w, pos > 0));
        }
        if let Some(pos) = self.common.iter().position(&mut pred) {
            let jumped = pos > 0 || !self.dedicated[nic].is_empty(); // PANIC-OK: nic < dedicated.len() checked at enqueue
            let w = self.common.remove(pos)?;
            self.unindex_segment(&w);
            return Some((w, jumped));
        }
        None
    }

    /// Removes and returns the front segment visible to `nic` if it
    /// satisfies `pred` (FIFO discipline, no reordering).
    // HOT-PATH: window drain
    pub fn take_front_if(
        &mut self,
        nic: usize,
        mut pred: impl FnMut(&PackWrapper) -> bool,
    ) -> Option<PackWrapper> {
        // PANIC-OK: nic < dedicated.len() checked at enqueue
        if let Some(front) = self.dedicated[nic].front() {
            if pred(front) {
                let w = self.dedicated[nic].pop_front()?; // PANIC-OK: nic < dedicated.len() checked at enqueue
                self.unindex_segment(&w);
                return Some(w);
            }
            return None;
        }
        if let Some(front) = self.common.front() {
            if pred(front) {
                let w = self.common.pop_front()?;
                self.unindex_segment(&w);
                return Some(w);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Priority;

    fn wrapper(dst: u32, tag: u32, seq: u32, len: usize) -> PackWrapper {
        PackWrapper {
            dst: NodeId(dst),
            tag: Tag(tag),
            seq: SeqNo(seq),
            priority: Priority::Normal,
            data: Bytes::from(vec![0u8; len]),
            req: SendReqId(0),
            order: 0,
        }
    }

    #[test]
    fn urgency_order_ctrl_then_rdv_then_segments() {
        let mut w = Window::new(1);
        w.push_segment(wrapper(3, 0, 0, 8), None);
        assert_eq!(w.next_dst(0), Some(NodeId(3)));
        w.push_rdv(RdvJob::new(
            NodeId(2),
            Tag(0),
            SeqNo(0),
            Bytes::from_static(b"abc"),
            SendReqId(1),
        ));
        assert_eq!(w.next_dst(0), Some(NodeId(2)));
        w.push_ctrl(CtrlMsg {
            dst: NodeId(1),
            tag: Tag(0),
            seq: SeqNo(0),
            total: 3,
        });
        assert_eq!(w.next_dst(0), Some(NodeId(1)));
    }

    #[test]
    fn drain_ctrl_filters_by_destination() {
        let mut w = Window::new(1);
        for dst in [1, 2, 1, 3] {
            w.push_ctrl(CtrlMsg {
                dst: NodeId(dst),
                tag: Tag(dst),
                seq: SeqNo(0),
                total: 0,
            });
        }
        let for_one = w.drain_ctrl_for(NodeId(1));
        assert_eq!(for_one.len(), 2);
        assert!(for_one.iter().all(|c| c.dst == NodeId(1)));
        assert_eq!(w.drain_ctrl_for(NodeId(2)).len(), 1);
        assert_eq!(w.drain_ctrl_for(NodeId(3)).len(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn rdv_job_chunks_cover_exactly_the_payload() {
        let data: Bytes = (0..100u8).collect::<Vec<u8>>().into();
        let mut job = RdvJob::new(NodeId(1), Tag(0), SeqNo(0), data.clone(), SendReqId(0));
        let mut rebuilt = Vec::new();
        let mut last_seen = false;
        while let Some(chunk) = job.take_chunk(33) {
            assert_eq!(chunk.offset as usize, rebuilt.len());
            rebuilt.extend_from_slice(&chunk.data);
            last_seen = chunk.last;
        }
        assert!(last_seen);
        assert_eq!(rebuilt, data.to_vec());
        assert!(job.take_chunk(33).is_none(), "exhausted job yields nothing");
    }

    #[test]
    fn take_rdv_chunk_drops_exhausted_jobs() {
        let mut w = Window::new(1);
        w.push_rdv(RdvJob::new(
            NodeId(1),
            Tag(0),
            SeqNo(0),
            Bytes::from(vec![0u8; 10]),
            SendReqId(0),
        ));
        let c = w.take_rdv_chunk(NodeId(1), 100).unwrap();
        assert!(c.last);
        assert!(!w.has_rdv());
        assert!(w.take_rdv_chunk(NodeId(1), 100).is_none());
    }

    #[test]
    fn dedicated_list_is_preferred_over_common() {
        let mut w = Window::new(2);
        w.push_segment(wrapper(5, 0, 0, 4), None);
        w.push_segment(wrapper(6, 0, 0, 4), Some(1));
        // NIC 1 sees its dedicated segment first.
        assert_eq!(w.next_dst(1), Some(NodeId(6)));
        // NIC 0 has no dedicated work and sees the common list.
        assert_eq!(w.next_dst(0), Some(NodeId(5)));
        assert_eq!(w.depth_for(0), 1);
        assert_eq!(w.depth_for(1), 2);
    }

    #[test]
    fn take_first_matching_skips_non_matching() {
        let mut w = Window::new(1);
        w.push_segment(wrapper(1, 10, 0, 4), None);
        w.push_segment(wrapper(2, 20, 0, 4), None);
        w.push_segment(wrapper(1, 30, 0, 4), None);
        let got = w.take_first_matching(0, |s| s.dst == NodeId(2)).unwrap();
        assert_eq!(got.tag, Tag(20));
        // Order of the rest preserved.
        let a = w.take_front_if(0, |_| true).unwrap();
        let b = w.take_front_if(0, |_| true).unwrap();
        assert_eq!((a.tag, b.tag), (Tag(10), Tag(30)));
    }

    #[test]
    fn tracked_take_flags_out_of_order_pops() {
        let mut w = Window::new(2);
        w.push_segment(wrapper(1, 10, 0, 4), None);
        w.push_segment(wrapper(2, 20, 0, 4), None);
        // Front of the common list: a FIFO pop, not a reorder.
        let (got, jumped) = w
            .take_first_matching_tracked(0, |s| s.dst == NodeId(1))
            .unwrap();
        assert_eq!(got.tag, Tag(10));
        assert!(!jumped);
        // Only one left; taking it is again in order.
        let (_, jumped) = w.take_first_matching_tracked(0, |_| true).unwrap();
        assert!(!jumped);

        // Jumping past an earlier segment is a reorder.
        w.push_segment(wrapper(1, 10, 0, 4), None);
        w.push_segment(wrapper(2, 20, 0, 4), None);
        let (got, jumped) = w
            .take_first_matching_tracked(0, |s| s.dst == NodeId(2))
            .unwrap();
        assert_eq!(got.tag, Tag(20));
        assert!(jumped);

        // A common-list take behind queued dedicated work also jumps.
        let mut w = Window::new(2);
        w.push_segment(wrapper(3, 30, 0, 4), Some(1));
        w.push_segment(wrapper(4, 40, 0, 4), None);
        let (got, jumped) = w
            .take_first_matching_tracked(1, |s| s.dst == NodeId(4))
            .unwrap();
        assert_eq!(got.tag, Tag(40));
        assert!(jumped);
    }

    #[test]
    fn destination_index_tracks_every_push_and_take() {
        let mut w = Window::new(1);
        // Interleave control and rendezvous work for two destinations.
        for dst in [1u32, 2, 1] {
            w.push_ctrl(CtrlMsg {
                dst: NodeId(dst),
                tag: Tag(0),
                seq: SeqNo(0),
                total: 0,
            });
        }
        w.push_rdv(RdvJob::new(
            NodeId(2),
            Tag(0),
            SeqNo(0),
            Bytes::from(vec![0u8; 10]),
            SendReqId(0),
        ));
        assert!(w.has_non_data_work_for(NodeId(1)));
        assert!(w.has_non_data_work_for(NodeId(2)));
        assert!(!w.has_non_data_work_for(NodeId(3)));

        // Draining node 1's grants empties its index entry.
        assert_eq!(w.drain_ctrl_for(NodeId(1)).len(), 2);
        assert!(!w.has_non_data_work_for(NodeId(1)));
        assert!(w.drain_ctrl_for(NodeId(1)).is_empty(), "indexed early-out");

        // Node 2 still has a grant and a rendezvous job.
        assert_eq!(w.drain_ctrl_for(NodeId(2)).len(), 1);
        assert!(w.has_non_data_work_for(NodeId(2)), "rdv job still queued");
        assert!(w.rdv_front_for(NodeId(2)).is_some());
        assert!(w.rdv_front_for(NodeId(1)).is_none());

        // A partial chunk keeps the job (and the index entry); the
        // final chunk removes both.
        let head = w.take_rdv_chunk(NodeId(2), 6).unwrap();
        assert!(!head.last);
        assert!(w.has_non_data_work_for(NodeId(2)));
        let tail = w.take_rdv_chunk(NodeId(2), 100).unwrap();
        assert!(tail.last);
        assert!(!w.has_non_data_work_for(NodeId(2)));
        assert!(w.take_rdv_chunk(NodeId(2), 100).is_none());
        assert!(w.is_empty());
    }

    fn lane_wrapper(dst: u32, lane: u8, order: u64) -> PackWrapper {
        PackWrapper {
            dst: NodeId(dst),
            tag: Tag(0),
            seq: SeqNo(order as u32),
            priority: Priority::from_lane(lane),
            data: Bytes::from(vec![0u8; 4]),
            req: SendReqId(order),
            order,
        }
    }

    #[test]
    fn lane_index_answers_oldest_queries_in_o1() {
        let mut w = Window::new(2);
        w.push_segment(lane_wrapper(1, 2, 10), None);
        w.push_segment(lane_wrapper(1, 0, 11), Some(1)); // dedicated counts too
        w.push_segment(lane_wrapper(2, 0, 12), None);
        w.push_segment(lane_wrapper(1, 0, 13), None);

        assert_eq!(w.oldest_in_lane(NodeId(1), 0), Some(11));
        assert_eq!(w.oldest_in_lane(NodeId(1), 2), Some(10));
        assert_eq!(w.oldest_in_lane(NodeId(1), 3), None);
        assert_eq!(w.oldest_in_lane(NodeId(9), 0), None);
        assert_eq!(
            w.oldest_per_lane(NodeId(1)),
            [Some(11), None, Some(10), None]
        );
        assert_eq!(w.lane_pending(NodeId(1), 0), 2);
        assert_eq!(w.lane_depth(0), 3);
        assert_eq!(w.lane_depth(1), 0);
        assert_eq!(w.global_oldest_in_lane(0), Some((NodeId(1), 11)));
        assert_eq!(w.global_oldest_in_lane(1), None);
        assert_eq!(w.order_horizon(), 14);
        assert!(w.index_is_consistent());

        // Taking the dedicated Urgent segment re-points the oldest.
        let got = w.take_first_matching(1, |s| s.order == 11).unwrap();
        assert_eq!(got.order, 11);
        assert_eq!(w.oldest_in_lane(NodeId(1), 0), Some(13));
        assert_eq!(w.global_oldest_in_lane(0), Some((NodeId(2), 12)));
        assert!(w.index_is_consistent());

        // Draining everything clears counts but keeps the horizon.
        while w.take_front_if(0, |_| true).is_some() {}
        assert_eq!(w.lane_depth(0), 0);
        assert_eq!(w.lane_depth(2), 0);
        assert_eq!(w.order_horizon(), 14);
        assert!(w.index_is_consistent());
    }

    #[test]
    fn requeue_at_front_restores_sorted_lane_order() {
        let mut w = Window::new(1);
        w.push_segment(lane_wrapper(1, 0, 5), None);
        w.push_segment(lane_wrapper(1, 0, 6), None);
        // Failover requeue: order 4 was scheduled before either.
        w.push_segment_front(lane_wrapper(1, 0, 4));
        assert_eq!(w.oldest_in_lane(NodeId(1), 0), Some(4));
        assert!(w.index_is_consistent());
        let first = w.take_front_if(0, |_| true).unwrap();
        assert_eq!(first.order, 4);
        assert_eq!(w.oldest_in_lane(NodeId(1), 0), Some(5));
        assert!(w.index_is_consistent());
    }

    #[test]
    fn donation_pop_unindexes_the_back() {
        let mut w = Window::new(1);
        w.push_segment(lane_wrapper(1, 3, 1), None);
        w.push_segment(lane_wrapper(1, 3, 2), None);
        let donated = w.pop_common_back().unwrap();
        assert_eq!(donated.order, 2);
        assert_eq!(w.lane_pending(NodeId(1), 3), 1);
        assert_eq!(w.oldest_in_lane(NodeId(1), 3), Some(1));
        assert!(w.index_is_consistent());
    }

    #[test]
    fn rdv_job_order_stamp_roundtrips() {
        let job = RdvJob::new(
            NodeId(1),
            Tag(0),
            SeqNo(0),
            Bytes::from_static(b"abc"),
            SendReqId(0),
        );
        assert_eq!(job.order(), 0, "fresh jobs default to infinitely old");
        assert_eq!(job.with_order(42).order(), 42);
    }

    #[test]
    fn take_front_if_respects_fifo_discipline() {
        let mut w = Window::new(1);
        w.push_segment(wrapper(1, 10, 0, 4), None);
        w.push_segment(wrapper(2, 20, 0, 4), None);
        // Front is dst 1, predicate wants dst 2: nothing may be taken.
        assert!(w.take_front_if(0, |s| s.dst == NodeId(2)).is_none());
        assert_eq!(w.depth_for(0), 2);
    }

    #[test]
    fn front_of_dedicated_blocks_common_under_fifo() {
        // FIFO discipline is per-view: a non-matching dedicated front
        // hides the common list for take_front_if.
        let mut w = Window::new(1);
        w.push_segment(wrapper(1, 10, 0, 4), Some(0));
        w.push_segment(wrapper(2, 20, 0, 4), None);
        assert!(w.take_front_if(0, |s| s.dst == NodeId(2)).is_none());
    }
}

#[cfg(test)]
mod failover_tests {
    use super::*;
    use crate::segment::Priority;

    fn wrapper(tag: u32, len: usize) -> PackWrapper {
        PackWrapper {
            dst: NodeId(1),
            tag: Tag(tag),
            seq: SeqNo(0),
            priority: Priority::Normal,
            data: Bytes::from(vec![0u8; len]),
            req: SendReqId(0),
            order: 0,
        }
    }

    #[test]
    fn push_segment_front_restores_queue_position() {
        let mut w = Window::new(1);
        w.push_segment(wrapper(2, 4), None);
        w.push_segment_front(wrapper(1, 4));
        let first = w.take_front_if(0, |_| true).unwrap();
        assert_eq!(first.tag, Tag(1), "requeued segment leads the queue");
    }

    #[test]
    fn resumed_rdv_job_keeps_wire_offsets() {
        // Cut a chunk at offset 40, resume it, and check the chunks it
        // emits still carry absolute offsets.
        let data = Bytes::from((0..100u8).collect::<Vec<u8>>());
        let mut job = RdvJob::new(NodeId(1), Tag(0), SeqNo(0), data, SendReqId(0));
        let _head = job.take_chunk(40).unwrap();
        let tail = job.take_chunk(100).unwrap();
        assert_eq!(tail.offset, 40);
        assert!(tail.last);
        let mut resumed = RdvJob::resume(tail);
        let c1 = resumed.take_chunk(25).unwrap();
        assert_eq!(c1.offset, 40, "absolute offset preserved after resume");
        let c2 = resumed.take_chunk(100).unwrap();
        assert_eq!(c2.offset, 65);
        assert_eq!(c2.data.len(), 35);
        assert!(c2.last);
    }

    #[test]
    fn reclaim_keeps_the_destination_index_consistent() {
        // A rail fault reclaims dedicated segments while control and
        // rendezvous work is queued: the (ctrl, rdv) index must come
        // through untouched and the checker must agree.
        let mut w = Window::new(2);
        w.push_segment(wrapper(1, 8), Some(0));
        w.push_segment(wrapper(2, 8), Some(0));
        w.push_ctrl(CtrlMsg {
            dst: NodeId(1),
            tag: Tag(0),
            seq: SeqNo(0),
            total: 10,
        });
        w.push_rdv(RdvJob::new(
            NodeId(1),
            Tag(1),
            SeqNo(0),
            Bytes::from(vec![0u8; 16]),
            SendReqId(3),
        ));
        assert!(w.index_is_consistent());
        assert_eq!(w.reclaim_dedicated(0), 2);
        assert!(w.index_is_consistent());
        assert!(w.has_non_data_work_for(NodeId(1)));
        // The reclaimed segments lead the common list in order.
        let first = w.take_front_if(1, |_| true).unwrap();
        assert_eq!(first.tag, Tag(1));
    }

    #[test]
    fn index_consistency_checker_detects_divergence() {
        let mut w = Window::new(1);
        w.push_ctrl(CtrlMsg {
            dst: NodeId(1),
            tag: Tag(0),
            seq: SeqNo(0),
            total: 0,
        });
        assert!(w.index_is_consistent());
        // Corrupt the index directly: the checker must notice both an
        // inflated count and a lingering zero entry.
        w.index.get_mut(&NodeId(1)).unwrap().ctrl += 1;
        assert!(!w.index_is_consistent());
        w.index.get_mut(&NodeId(1)).unwrap().ctrl = 1;
        w.index.insert(NodeId(9), DstCounts::default());
        assert!(!w.index_is_consistent());
    }

    #[test]
    fn split_partitions_by_owner_and_rail() {
        let mut w = Window::new(4);
        w.push_segment(wrapper(11, 4), Some(0));
        w.push_segment(wrapper(12, 4), Some(3));
        w.push_segment(wrapper(13, 4), None);
        w.push_ctrl(CtrlMsg {
            dst: NodeId(1),
            tag: Tag(20),
            seq: SeqNo(0),
            total: 9,
        });
        // Owner = tag parity.
        let parts = w.split(2, |_, tag| tag.0 as usize % 2);
        assert_eq!(parts.len(), 2);
        // Rails 0 and 2 belong to part 0; rails 1 and 3 to part 1.
        assert_eq!(parts[0].nic_count(), 2);
        assert_eq!(parts[1].nic_count(), 2);
        assert_eq!(parts[0].dedicated_ref(0).len(), 1, "rail 0 moved whole");
        assert_eq!(
            parts[1].dedicated_ref(1).len(),
            1,
            "rail 3 is part 1's list 1"
        );
        // tag 13 is odd → part 1's common list; ctrl tag 20 is even → part 0.
        assert_eq!(parts[1].common_ref().len(), 1);
        assert_eq!(parts[0].ctrl_ref().len(), 1);
        assert!(parts.iter().all(Window::index_is_consistent));
        let merged = Window::merge(parts);
        assert_eq!(merged.nic_count(), 4);
        assert!(merged.index_is_consistent());
        assert_eq!(merged.dedicated_ref(0).len(), 1);
        assert_eq!(merged.dedicated_ref(3).len(), 1);
        assert_eq!(merged.common_ref().len(), 1);
        assert_eq!(merged.ctrl_ref().len(), 1);
    }

    #[test]
    fn has_non_data_work_distinguishes_traffic_classes() {
        let mut w = Window::new(1);
        assert!(!w.has_non_data_work_for(NodeId(1)));
        w.push_segment(wrapper(0, 8), None);
        assert!(
            !w.has_non_data_work_for(NodeId(1)),
            "plain segments are credit-gated data"
        );
        w.push_ctrl(CtrlMsg {
            dst: NodeId(1),
            tag: Tag(0),
            seq: SeqNo(0),
            total: 10,
        });
        assert!(w.has_non_data_work_for(NodeId(1)));
        assert!(!w.has_non_data_work_for(NodeId(2)), "per-destination");
    }
}

/// Satellite 3: `Window::split` / `Window::merge` round-trip exactly for
/// arbitrary shard counts and destination mixes. "Exactly" means: the
/// per-destination index stays consistent in every part and after the
/// merge, dedicated rail lists are restored verbatim, and every traffic
/// class is restored as a multiset with per-flow (dst, tag) relative
/// order preserved.
#[cfg(test)]
mod split_roundtrip_props {
    use super::*;
    use crate::segment::Priority;
    use proptest::prelude::*;

    /// One generated push. `kind` selects the traffic class, `rail`
    /// picks a dedicated list when the class is a pinned segment.
    type Op = (u8, u32, u32, u8);

    fn owner_hash(dst: NodeId, tag: Tag) -> usize {
        (dst.0 as usize)
            .wrapping_mul(31)
            .wrapping_add(tag.0 as usize)
            .wrapping_mul(0x9e37)
    }

    fn seg(dst: u32, tag: u32, seq: u32) -> PackWrapper {
        PackWrapper {
            dst: NodeId(dst),
            tag: Tag(tag),
            seq: SeqNo(seq),
            // Cycle through every lane so the split/merge round trip
            // exercises the lane index, not just the Normal lane.
            priority: Priority::from_lane((seq % NUM_LANES as u32) as u8),
            data: Bytes::from(vec![seq as u8; 4]),
            req: SendReqId(u64::from(seq)),
            order: u64::from(seq),
        }
    }

    /// Flattened identity of a queued item, comparable across the
    /// round trip: (class, dst, tag, seq).
    fn build(nics: usize, ops: &[Op]) -> Window {
        let mut w = Window::new(nics);
        for (i, &(kind, dst, tag, rail)) in ops.iter().enumerate() {
            let seq = i as u32;
            match kind % 4 {
                0 => w.push_segment(seg(dst, tag, seq), None),
                1 => w.push_segment(seg(dst, tag, seq), Some(rail as usize % nics)),
                2 => w.push_ctrl(CtrlMsg {
                    dst: NodeId(dst),
                    tag: Tag(tag),
                    seq: SeqNo(seq),
                    total: seq,
                }),
                _ => w.push_rdv(RdvJob::new(
                    NodeId(dst),
                    Tag(tag),
                    SeqNo(seq),
                    Bytes::from(vec![0u8; 8]),
                    SendReqId(u64::from(seq)),
                )),
            }
        }
        w
    }

    fn ctrl_ids(w: &Window) -> Vec<(u32, u32, u32)> {
        w.ctrl_ref()
            .iter()
            .map(|m| (m.dst.0, m.tag.0, m.seq.0))
            .collect()
    }

    fn common_ids(w: &Window) -> Vec<(u32, u32, u32)> {
        w.common_ref()
            .iter()
            .map(|s| (s.dst.0, s.tag.0, s.seq.0))
            .collect()
    }

    fn rdv_ids(w: &Window) -> Vec<(u32, u32, u32)> {
        w.rdv_ref()
            .iter()
            .map(|j| (j.dst.0, j.tag.0, j.seq.0))
            .collect()
    }

    fn dedicated_ids(w: &Window) -> Vec<Vec<(u32, u32, u32)>> {
        (0..w.nic_count())
            .map(|n| {
                w.dedicated_ref(n)
                    .iter()
                    .map(|s| (s.dst.0, s.tag.0, s.seq.0))
                    .collect()
            })
            .collect()
    }

    fn per_flow(ids: &[(u32, u32, u32)]) -> HashMap<(u32, u32), Vec<u32>> {
        let mut flows: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for &(dst, tag, seq) in ids {
            flows.entry((dst, tag)).or_default().push(seq);
        }
        flows
    }

    fn sorted(mut ids: Vec<(u32, u32, u32)>) -> Vec<(u32, u32, u32)> {
        ids.sort_unstable();
        ids
    }

    proptest! {
        #[test]
        fn split_merge_roundtrips_exactly(
            nics in 1usize..5,
            shards in 1usize..6,
            ops in proptest::collection::vec(
                (0u8..4, 0u32..5, 0u32..6, 0u8..4),
                0..60,
            ),
        ) {
            let original = build(nics, &ops);
            let before_ctrl = ctrl_ids(&original);
            let before_common = common_ids(&original);
            let before_rdv = rdv_ids(&original);
            let before_dedicated = dedicated_ids(&original);

            let parts = original.split(shards, owner_hash);
            prop_assert_eq!(parts.len(), shards);
            let mut total_nics = 0;
            for (s, part) in parts.iter().enumerate() {
                prop_assert!(part.index_is_consistent(), "part {} index diverged", s);
                total_nics += part.nic_count();
                // Routed classes must actually live on their owner shard.
                for m in part.ctrl_ref() {
                    prop_assert_eq!(owner_hash(m.dst, m.tag) % shards, s);
                }
                for w in part.common_ref() {
                    prop_assert_eq!(owner_hash(w.dst, w.tag) % shards, s);
                }
                for j in part.rdv_ref() {
                    prop_assert_eq!(owner_hash(j.dst, j.tag) % shards, s);
                }
            }
            prop_assert_eq!(total_nics, nics, "no rail lost or duplicated");

            let merged = Window::merge(parts);
            prop_assert!(merged.index_is_consistent());
            prop_assert_eq!(merged.nic_count(), nics);

            // Dedicated rail lists are restored verbatim.
            prop_assert_eq!(dedicated_ids(&merged), before_dedicated);

            // Routed classes: multiset identity...
            let after_ctrl = ctrl_ids(&merged);
            let after_common = common_ids(&merged);
            let after_rdv = rdv_ids(&merged);
            prop_assert_eq!(sorted(after_ctrl.clone()), sorted(before_ctrl.clone()));
            prop_assert_eq!(sorted(after_common.clone()), sorted(before_common.clone()));
            prop_assert_eq!(sorted(after_rdv.clone()), sorted(before_rdv.clone()));
            // ...and per-flow (dst, tag) relative order preserved.
            prop_assert_eq!(per_flow(&after_ctrl), per_flow(&before_ctrl));
            prop_assert_eq!(per_flow(&after_common), per_flow(&before_common));
            prop_assert_eq!(per_flow(&after_rdv), per_flow(&before_rdv));
        }

        #[test]
        fn split_of_empty_window_yields_empty_consistent_parts(
            nics in 1usize..5,
            shards in 1usize..9,
        ) {
            let parts = Window::new(nics).split(shards, |dst, _| dst.0 as usize);
            for part in &parts {
                prop_assert!(part.is_empty());
                prop_assert!(part.index_is_consistent());
            }
            let merged = Window::merge(parts);
            prop_assert!(merged.is_empty());
            prop_assert_eq!(merged.nic_count(), nics);
        }
    }
}
