//! Wire format of the NewMadeleine engine.
//!
//! A *frame* is what one driver send moves: a frame header followed by a
//! sequence of *entries*. Multiplexing several entries — possibly from
//! different logical flows — into one frame is the engine's aggregation
//! mechanism; the per-entry headers are "the extra header systematically
//! added to the data for allowing the reordering and the multiplexing of
//! the packets" whose cost the paper measures in §5.1.
//!
//! Entry kinds:
//!
//! * [`Entry::Data`] — an eager application segment, payload inline;
//! * [`Entry::Rts`] — rendezvous request-to-send announcing a large
//!   segment (no payload);
//! * [`Entry::Cts`] — clear-to-send reply granting a rendezvous;
//! * [`Entry::RdvData`] — one chunk of granted rendezvous data, placed
//!   at `offset` in the receive buffer (chunking enables the multirail
//!   strategy to spread one segment over several NICs).

use crate::segment::{Priority, SeqNo, Tag};
use std::fmt;

/// Frame header: magic (2) + version (1) + flags (1) + entry count (2)
/// + reserved (2).
pub const FRAME_HEADER_LEN: usize = 8;
/// Fixed entry header: kind (1) + flags (1) + lane (1) + reserved (1) +
/// tag (4) + seq (4) + len (4) + offset (4).
pub const ENTRY_HEADER_LEN: usize = 20;

const MAGIC: u16 = 0xAD3E;
const VERSION: u8 = 1;

const KIND_DATA: u8 = 1;
const KIND_RTS: u8 = 2;
const KIND_CTS: u8 = 3;
const KIND_RDV_DATA: u8 = 4;
const KIND_CREDIT: u8 = 5;

/// Entry flag: this rendezvous chunk is the segment's last.
pub const EF_LAST_CHUNK: u8 = 0b0000_0001;

/// The fixed fields of one entry header, as packed on the wire.
///
/// [`pack_entry_header`]/[`unpack_entry_header`] move this whole
/// struct to and from its 20-byte wire image in straight-line code:
/// every store and load targets a constant offset of a fixed-size
/// array, so the compiler proves all bounds at compile time and the
/// per-entry header cost on the hot path is a handful of register
/// moves — no per-field capacity checks, no per-segment branching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryHeader {
    /// Entry kind byte (`KIND_*`).
    pub kind: u8,
    /// Entry flag bits (`EF_*`).
    pub flags: u8,
    /// Scheduling lane ([`Priority::lane`]); meaningful for Data and
    /// Rts entries, zero elsewhere.
    pub lane: u8,
    /// Logical flow identifier.
    pub tag: Tag,
    /// Per-flow sequence number.
    pub seq: SeqNo,
    /// Payload length (Data/RdvData), announced total (Rts/Cts), or
    /// credit count (Credit).
    pub len: u32,
    /// Byte offset within the full segment (RdvData only).
    pub offset: u32,
}

/// Packs one entry header into its fixed 20-byte wire image.
/// Branchless: constant-offset stores into a stack array.
#[inline]
pub fn pack_entry_header(h: EntryHeader) -> [u8; ENTRY_HEADER_LEN] {
    let mut out = [0u8; ENTRY_HEADER_LEN];
    out[0] = h.kind;
    out[1] = h.flags;
    out[2] = h.lane;
    // out[3] stays zero (reserved).
    out[4..8].copy_from_slice(&h.tag.0.to_le_bytes());
    out[8..12].copy_from_slice(&h.seq.0.to_le_bytes());
    out[12..16].copy_from_slice(&h.len.to_le_bytes());
    out[16..20].copy_from_slice(&h.offset.to_le_bytes());
    out
}

/// Unpacks one entry header from its fixed 20-byte wire image.
/// Branchless: the caller supplies a fixed-size array reference, so
/// every field load is a constant-offset read with no further bounds
/// checks. Kind validation stays with the caller, which dispatches on
/// it anyway.
#[inline]
pub fn unpack_entry_header(h: &[u8; ENTRY_HEADER_LEN]) -> EntryHeader {
    EntryHeader {
        kind: h[0],
        flags: h[1],
        lane: h[2],
        tag: Tag(u32::from_le_bytes([h[4], h[5], h[6], h[7]])),
        seq: SeqNo(u32::from_le_bytes([h[8], h[9], h[10], h[11]])),
        len: u32::from_le_bytes([h[12], h[13], h[14], h[15]]),
        offset: u32::from_le_bytes([h[16], h[17], h[18], h[19]]),
    }
}

/// Packs the 8-byte frame header with the given entry count.
#[inline]
pub fn pack_frame_header(count: u16) -> [u8; FRAME_HEADER_LEN] {
    let mut out = [0u8; FRAME_HEADER_LEN];
    out[0..2].copy_from_slice(&MAGIC.to_le_bytes());
    out[2] = VERSION;
    // out[3] flags, out[6..8] reserved: zero.
    out[4..6].copy_from_slice(&count.to_le_bytes());
    out
}

/// Validates a frame header image and returns its entry count.
#[inline]
pub fn unpack_frame_header(h: &[u8; FRAME_HEADER_LEN]) -> Result<u16, WireError> {
    let magic = u16::from_le_bytes([h[0], h[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if h[2] != VERSION {
        return Err(WireError::BadVersion(h[2]));
    }
    Ok(u16::from_le_bytes([h[4], h[5]]))
}

/// A parsed entry borrowing its payload from the frame buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry<'a> {
    /// An eager application segment with inline payload.
    Data {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Scheduling lane the sender submitted the segment on.
        lane: u8,
        /// Payload bytes.
        payload: &'a [u8],
    },
    /// Rendezvous request-to-send (no payload).
    Rts {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Scheduling lane the sender submitted the segment on.
        lane: u8,
        /// Announced total length in bytes.
        total: u32,
    },
    /// Rendezvous clear-to-send grant.
    Cts {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Announced total length in bytes.
        total: u32,
    },
    /// One chunk of granted rendezvous payload.
    RdvData {
        /// Logical flow identifier.
        tag: Tag,
        /// Per-flow sequence number.
        seq: SeqNo,
        /// Byte offset within the full segment.
        offset: u32,
        /// Whether this is the final chunk of its segment.
        last: bool,
        /// Payload bytes.
        payload: &'a [u8],
    },
    /// Returns `count` eager-frame credits to the sender (flow
    /// control; see `engine`).
    Credit {
        /// Number of credits returned.
        count: u32,
    },
}

/// Wire decoding failures.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the structure was complete.
    Truncated,
    /// The frame does not start with the protocol magic.
    BadMagic(u16),
    /// The frame uses an unsupported protocol version.
    BadVersion(u8),
    /// Unknown entry kind byte.
    BadKind(u8),
    /// Bytes left over after the last declared entry.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown entry kind {k}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last entry"),
        }
    }
}

impl std::error::Error for WireError {}

/// Writes the 8-byte frame header with a zero entry count (patched at
/// finish time by both encoders): one packed image, one append.
fn write_frame_header(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&pack_frame_header(0));
}

/// Writes one 20-byte entry header: pack into a stack image (all
/// bounds compile-time), then one append — a single capacity check
/// instead of seven.
#[allow(clippy::too_many_arguments)]
fn write_entry_header(
    buf: &mut Vec<u8>,
    kind: u8,
    flags: u8,
    lane: u8,
    tag: Tag,
    seq: SeqNo,
    len: u32,
    offset: u32,
) {
    buf.extend_from_slice(&pack_entry_header(EntryHeader {
        kind,
        flags,
        lane,
        tag,
        seq,
        len,
        offset,
    }));
}

/// Incrementally builds one frame.
pub struct FrameBuilder {
    buf: Vec<u8>,
    count: u16,
    payload_segs: usize,
    payload_bytes: usize,
}

impl FrameBuilder {
    /// Starts an empty frame.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(256);
        write_frame_header(&mut buf);
        FrameBuilder {
            buf,
            count: 0,
            payload_segs: 0,
            payload_bytes: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_header(
        &mut self,
        kind: u8,
        flags: u8,
        lane: u8,
        tag: Tag,
        seq: SeqNo,
        len: u32,
        offset: u32,
    ) {
        write_entry_header(&mut self.buf, kind, flags, lane, tag, seq, len, offset);
        self.count = self.count.checked_add(1).expect("entry count overflow"); // PANIC-OK: frame limits enforced by the planner before packing
    }

    /// Push data on the default (Normal) lane.
    pub fn push_data(&mut self, tag: Tag, seq: SeqNo, payload: &[u8]) {
        self.push_data_lane(tag, seq, Priority::Normal.lane(), payload);
    }

    /// Push data carrying an explicit scheduling lane.
    pub fn push_data_lane(&mut self, tag: Tag, seq: SeqNo, lane: u8, payload: &[u8]) {
        let len = u32::try_from(payload.len()).expect("segment too large for wire"); // PANIC-OK: frame limits enforced by the planner before packing
        self.push_header(KIND_DATA, 0, lane, tag, seq, len, 0);
        self.buf.extend_from_slice(payload);
        self.payload_segs += 1;
        self.payload_bytes += payload.len();
    }

    /// Push rts on the default (Normal) lane.
    pub fn push_rts(&mut self, tag: Tag, seq: SeqNo, total: u32) {
        self.push_rts_lane(tag, seq, Priority::Normal.lane(), total);
    }

    /// Push rts carrying an explicit scheduling lane.
    pub fn push_rts_lane(&mut self, tag: Tag, seq: SeqNo, lane: u8, total: u32) {
        self.push_header(KIND_RTS, 0, lane, tag, seq, total, 0);
    }

    /// Push cts.
    pub fn push_cts(&mut self, tag: Tag, seq: SeqNo, total: u32) {
        self.push_header(KIND_CTS, 0, 0, tag, seq, total, 0);
    }

    /// Push rdv data.
    pub fn push_rdv_data(&mut self, tag: Tag, seq: SeqNo, offset: u32, last: bool, payload: &[u8]) {
        let len = u32::try_from(payload.len()).expect("chunk too large for wire"); // PANIC-OK: frame limits enforced by the planner before packing
        let flags = if last { EF_LAST_CHUNK } else { 0 };
        self.push_header(KIND_RDV_DATA, flags, 0, tag, seq, len, offset);
        self.buf.extend_from_slice(payload);
        self.payload_segs += 1;
        self.payload_bytes += payload.len();
    }

    /// Push credit.
    pub fn push_credit(&mut self, count: u32) {
        self.push_header(KIND_CREDIT, 0, 0, Tag(0), SeqNo(0), count, 0);
    }

    /// Entries pushed so far.
    pub fn entry_count(&self) -> u16 {
        self.count
    }

    /// Number of distinct payload regions a gather-capable NIC would
    /// DMA separately (staging-copy decision input).
    pub fn payload_segments(&self) -> usize {
        self.payload_segs
    }

    /// Total payload bytes (staging-copy cost input).
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Current frame length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finalizes and returns the wire bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[4..6].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

impl Default for FrameBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds one frame as a header block plus borrowed payload slices, so
/// the transfer layer can hand a gather-capable NIC a multi-segment iov
/// instead of staging payloads through a contiguous copy (paper §4:
/// "the scheduler is responsible for staging copies when the hardware
/// cannot gather").
///
/// The wire encoding is bit-identical to [`FrameBuilder`]: entry
/// headers are interleaved with payloads on the wire, so the encoder
/// keeps all headers in one contiguous `meta` buffer and records where
/// each payload splices in. [`FrameEncoder::finish`] yields a
/// [`FrameIov`] that can either emit the gather iov or stage the frame
/// into a single buffer when the NIC cannot gather.
pub struct FrameEncoder<'p> {
    meta: Vec<u8>,
    splices: Vec<(usize, &'p [u8])>,
    count: u16,
    payload_segs: usize,
    payload_bytes: usize,
}

impl<'p> FrameEncoder<'p> {
    /// Starts an empty frame with a fresh header buffer.
    pub fn new() -> Self {
        Self::with_buffer(Vec::with_capacity(256))
    }

    /// Starts an empty frame reusing `buf` as the header buffer
    /// (frame pooling: the buffer is cleared, its capacity kept).
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        write_frame_header(&mut buf);
        FrameEncoder {
            meta: buf,
            splices: Vec::new(),
            count: 0,
            payload_segs: 0,
            payload_bytes: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_header(
        &mut self,
        kind: u8,
        flags: u8,
        lane: u8,
        tag: Tag,
        seq: SeqNo,
        len: u32,
        offset: u32,
    ) {
        write_entry_header(&mut self.meta, kind, flags, lane, tag, seq, len, offset);
        self.count = self.count.checked_add(1).expect("entry count overflow"); // PANIC-OK: frame limits enforced by the planner before packing
    }

    fn push_payload(&mut self, payload: &'p [u8]) {
        self.payload_segs += 1;
        self.payload_bytes += payload.len();
        if !payload.is_empty() {
            self.splices.push((self.meta.len(), payload));
        }
    }

    /// Push data on the default (Normal) lane (payload borrowed, not
    /// copied).
    pub fn push_data(&mut self, tag: Tag, seq: SeqNo, payload: &'p [u8]) {
        self.push_data_lane(tag, seq, Priority::Normal.lane(), payload);
    }

    /// Push data carrying an explicit scheduling lane (payload
    /// borrowed, not copied).
    pub fn push_data_lane(&mut self, tag: Tag, seq: SeqNo, lane: u8, payload: &'p [u8]) {
        let len = u32::try_from(payload.len()).expect("segment too large for wire"); // PANIC-OK: frame limits enforced by the planner before packing
        self.push_header(KIND_DATA, 0, lane, tag, seq, len, 0);
        self.push_payload(payload);
    }

    /// Push rts on the default (Normal) lane.
    pub fn push_rts(&mut self, tag: Tag, seq: SeqNo, total: u32) {
        self.push_rts_lane(tag, seq, Priority::Normal.lane(), total);
    }

    /// Push rts carrying an explicit scheduling lane.
    pub fn push_rts_lane(&mut self, tag: Tag, seq: SeqNo, lane: u8, total: u32) {
        self.push_header(KIND_RTS, 0, lane, tag, seq, total, 0);
    }

    /// Push cts.
    pub fn push_cts(&mut self, tag: Tag, seq: SeqNo, total: u32) {
        self.push_header(KIND_CTS, 0, 0, tag, seq, total, 0);
    }

    /// Push rdv data (payload borrowed, not copied).
    pub fn push_rdv_data(
        &mut self,
        tag: Tag,
        seq: SeqNo,
        offset: u32,
        last: bool,
        payload: &'p [u8],
    ) {
        let len = u32::try_from(payload.len()).expect("chunk too large for wire"); // PANIC-OK: frame limits enforced by the planner before packing
        let flags = if last { EF_LAST_CHUNK } else { 0 };
        self.push_header(KIND_RDV_DATA, flags, 0, tag, seq, len, offset);
        self.push_payload(payload);
    }

    /// Push credit.
    pub fn push_credit(&mut self, count: u32) {
        self.push_header(KIND_CREDIT, 0, 0, Tag(0), SeqNo(0), count, 0);
    }

    /// Entries pushed so far.
    pub fn entry_count(&self) -> u16 {
        self.count
    }

    /// Number of distinct payload regions a gather-capable NIC would
    /// DMA separately (staging-copy decision input).
    pub fn payload_segments(&self) -> usize {
        self.payload_segs
    }

    /// Total payload bytes (staging-copy cost input).
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total frame length in wire bytes.
    pub fn wire_len(&self) -> usize {
        self.meta.len() + self.payload_bytes
    }

    /// Finalizes the headers and returns the iov assembler.
    pub fn finish(mut self) -> FrameIov<'p> {
        self.meta[4..6].copy_from_slice(&self.count.to_le_bytes());
        FrameIov {
            meta: self.meta,
            splices: self.splices,
            payload_segs: self.payload_segs,
            payload_bytes: self.payload_bytes,
        }
    }
}

impl Default for FrameEncoder<'_> {
    fn default() -> Self {
        Self::new()
    }
}

/// A finished frame as a header block plus payload splice points.
///
/// Emits either a multi-segment gather iov ([`FrameIov::segments`]) or
/// a staged contiguous copy ([`FrameIov::stage_into`]); both produce
/// identical wire bytes.
pub struct FrameIov<'p> {
    meta: Vec<u8>,
    splices: Vec<(usize, &'p [u8])>,
    payload_segs: usize,
    payload_bytes: usize,
}

impl<'p> FrameIov<'p> {
    /// Wire-order iov: alternating header-block fragments and borrowed
    /// payload slices. Concatenating the segments yields exactly the
    /// bytes [`FrameBuilder`] would have produced.
    pub fn segments(&self) -> Vec<&[u8]> {
        let mut segs = Vec::with_capacity(2 * self.splices.len() + 1);
        let mut cursor = 0;
        for &(at, payload) in &self.splices {
            if at > cursor {
                segs.push(&self.meta[cursor..at]);
                cursor = at;
            }
            segs.push(payload);
        }
        if cursor < self.meta.len() {
            segs.push(&self.meta[cursor..]);
        }
        segs
    }

    /// Number of iov segments [`segments`](FrameIov::segments) would
    /// emit, without allocating (gather-capability decision input).
    pub fn segment_count(&self) -> usize {
        let mut n = 0;
        let mut cursor = 0;
        for &(at, _) in &self.splices {
            if at > cursor {
                n += 1;
                cursor = at;
            }
            n += 1;
        }
        if cursor < self.meta.len() {
            n += 1;
        }
        n
    }

    /// Stages the frame into one contiguous buffer (the copy charged
    /// via `CpuMeter::charge_memcpy` when the NIC cannot gather). The
    /// buffer is cleared first so a pooled buffer can be reused.
    pub fn stage_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(self.wire_len());
        let mut cursor = 0;
        for &(at, payload) in &self.splices {
            buf.extend_from_slice(&self.meta[cursor..at]);
            cursor = at;
            buf.extend_from_slice(payload);
        }
        buf.extend_from_slice(&self.meta[cursor..]);
    }

    /// Total frame length in wire bytes.
    pub fn wire_len(&self) -> usize {
        self.meta.len() + self.payload_bytes
    }

    /// Number of payload regions in the frame.
    pub fn payload_segments(&self) -> usize {
        self.payload_segs
    }

    /// Total payload bytes in the frame.
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    /// Releases the header buffer for recycling (frame pooling).
    pub fn into_meta(self) -> Vec<u8> {
        self.meta
    }
}

/// Parses a frame into entries.
///
/// Each header is bounds-checked exactly once (`get` of a fixed-size
/// window); field extraction from the resulting `[u8; N]` references
/// is branch-free straight-line code.
pub fn parse_frame(bytes: &[u8]) -> Result<Vec<Entry<'_>>, WireError> {
    let fh: &[u8; FRAME_HEADER_LEN] = bytes
        .get(..FRAME_HEADER_LEN)
        .and_then(|w| w.try_into().ok())
        .ok_or(WireError::Truncated)?;
    let count = unpack_frame_header(fh)? as usize;
    let mut entries = Vec::with_capacity(count);
    let mut at = FRAME_HEADER_LEN;
    for _ in 0..count {
        let hw: &[u8; ENTRY_HEADER_LEN] = bytes
            .get(at..at + ENTRY_HEADER_LEN)
            .and_then(|w| w.try_into().ok())
            .ok_or(WireError::Truncated)?;
        let h = unpack_entry_header(hw);
        at += ENTRY_HEADER_LEN;
        let entry = match h.kind {
            KIND_RTS => Entry::Rts {
                tag: h.tag,
                seq: h.seq,
                lane: h.lane,
                total: h.len,
            },
            KIND_CTS => Entry::Cts {
                tag: h.tag,
                seq: h.seq,
                total: h.len,
            },
            KIND_CREDIT => Entry::Credit { count: h.len },
            KIND_DATA | KIND_RDV_DATA => {
                let payload = bytes
                    .get(at..at + h.len as usize)
                    .ok_or(WireError::Truncated)?;
                at += h.len as usize;
                if h.kind == KIND_DATA {
                    Entry::Data {
                        tag: h.tag,
                        seq: h.seq,
                        lane: h.lane,
                        payload,
                    }
                } else {
                    Entry::RdvData {
                        tag: h.tag,
                        seq: h.seq,
                        offset: h.offset,
                        last: h.flags & EF_LAST_CHUNK != 0,
                        payload,
                    }
                }
            }
            k => return Err(WireError::BadKind(k)),
        };
        entries.push(entry);
    }
    if at != bytes.len() {
        return Err(WireError::TrailingBytes(bytes.len() - at));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_frame_roundtrips() {
        let frame = FrameBuilder::new().finish();
        assert_eq!(frame.len(), FRAME_HEADER_LEN);
        assert_eq!(parse_frame(&frame).unwrap(), vec![]);
    }

    #[test]
    fn mixed_entries_roundtrip() {
        let mut fb = FrameBuilder::new();
        fb.push_cts(Tag(7), SeqNo(1), 1 << 20);
        fb.push_data(Tag(3), SeqNo(0), b"small payload");
        fb.push_rts(Tag(3), SeqNo(1), 512 * 1024);
        fb.push_rdv_data(Tag(9), SeqNo(4), 4096, true, b"chunk");
        assert_eq!(fb.entry_count(), 4);
        assert_eq!(fb.payload_segments(), 2);
        assert_eq!(fb.payload_bytes(), 13 + 5);
        let frame = fb.finish();
        let entries = parse_frame(&frame).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(
            entries[0],
            Entry::Cts {
                tag: Tag(7),
                seq: SeqNo(1),
                total: 1 << 20
            }
        );
        assert_eq!(
            entries[1],
            Entry::Data {
                tag: Tag(3),
                seq: SeqNo(0),
                lane: Priority::Normal.lane(),
                payload: b"small payload"
            }
        );
        assert_eq!(
            entries[2],
            Entry::Rts {
                tag: Tag(3),
                seq: SeqNo(1),
                lane: Priority::Normal.lane(),
                total: 512 * 1024
            }
        );
        assert_eq!(
            entries[3],
            Entry::RdvData {
                tag: Tag(9),
                seq: SeqNo(4),
                offset: 4096,
                last: true,
                payload: b"chunk"
            }
        );
    }

    #[test]
    fn header_sizes_match_constants() {
        let mut fb = FrameBuilder::new();
        fb.push_data(Tag(0), SeqNo(0), b"abc");
        let frame = fb.finish();
        assert_eq!(frame.len(), FRAME_HEADER_LEN + ENTRY_HEADER_LEN + 3);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = FrameBuilder::new().finish();
        frame[0] = 0;
        assert_eq!(
            parse_frame(&frame).unwrap_err(),
            WireError::BadMagic(0xAD00)
        );
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut frame = FrameBuilder::new().finish();
        frame[2] = 99;
        assert_eq!(parse_frame(&frame).unwrap_err(), WireError::BadVersion(99));
    }

    #[test]
    fn truncation_is_detected_at_every_boundary() {
        let mut fb = FrameBuilder::new();
        fb.push_data(Tag(1), SeqNo(2), b"payload!");
        let frame = fb.finish();
        for cut in 1..frame.len() {
            let err = parse_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadMagic(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut frame = {
            let mut fb = FrameBuilder::new();
            fb.push_rts(Tag(1), SeqNo(0), 100);
            fb.finish()
        };
        frame.push(0xFF);
        assert_eq!(
            parse_frame(&frame).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut fb = FrameBuilder::new();
        fb.push_rts(Tag(1), SeqNo(0), 100);
        let mut frame = fb.finish();
        frame[FRAME_HEADER_LEN] = 42;
        assert_eq!(parse_frame(&frame).unwrap_err(), WireError::BadKind(42));
    }

    #[test]
    fn credit_entry_roundtrips() {
        let mut fb = FrameBuilder::new();
        fb.push_credit(3);
        let frame = fb.finish();
        assert_eq!(
            parse_frame(&frame).unwrap(),
            vec![Entry::Credit { count: 3 }]
        );
    }

    /// Pushes the same mixed entry sequence into both encoders.
    fn mixed_both<'p>(
        fb: &mut FrameBuilder,
        fe: &mut FrameEncoder<'p>,
        p1: &'p [u8],
        p2: &'p [u8],
    ) {
        fb.push_cts(Tag(7), SeqNo(1), 1 << 20);
        fe.push_cts(Tag(7), SeqNo(1), 1 << 20);
        fb.push_data(Tag(3), SeqNo(0), p1);
        fe.push_data(Tag(3), SeqNo(0), p1);
        fb.push_rts(Tag(3), SeqNo(1), 512 * 1024);
        fe.push_rts(Tag(3), SeqNo(1), 512 * 1024);
        fb.push_rdv_data(Tag(9), SeqNo(4), 4096, true, p2);
        fe.push_rdv_data(Tag(9), SeqNo(4), 4096, true, p2);
        fb.push_credit(2);
        fe.push_credit(2);
    }

    #[test]
    fn encoder_segments_match_builder_bytes() {
        let mut fb = FrameBuilder::new();
        let mut fe = FrameEncoder::new();
        mixed_both(&mut fb, &mut fe, b"small payload", b"chunk");
        assert_eq!(fe.entry_count(), fb.entry_count());
        assert_eq!(fe.payload_segments(), fb.payload_segments());
        assert_eq!(fe.payload_bytes(), fb.payload_bytes());
        assert_eq!(fe.wire_len(), fb.len());
        let reference = fb.finish();
        let iov = fe.finish();
        assert_eq!(iov.wire_len(), reference.len());
        let segs = iov.segments();
        assert_eq!(segs.len(), iov.segment_count());
        // Mixed frame: header block split around each payload —
        // [hdr..cts..data-hdr][payload1][rts-hdr..rdv-hdr][payload2][credit-hdr]
        assert_eq!(segs.len(), 5);
        let gathered: Vec<u8> = segs.concat();
        assert_eq!(gathered, reference, "gather iov must be wire-identical");
        parse_frame(&gathered).unwrap();
    }

    #[test]
    fn encoder_stage_into_matches_builder_bytes() {
        let mut fb = FrameBuilder::new();
        let mut fe = FrameEncoder::new();
        mixed_both(&mut fb, &mut fe, b"small payload", b"chunk");
        let reference = fb.finish();
        let iov = fe.finish();
        let mut staged = vec![0xEEu8; 3]; // stale content must be cleared
        iov.stage_into(&mut staged);
        assert_eq!(staged, reference);
    }

    #[test]
    fn encoder_skips_empty_payloads_in_iov() {
        let mut fe = FrameEncoder::new();
        fe.push_data(Tag(1), SeqNo(0), b"");
        fe.push_data(Tag(1), SeqNo(1), b"x");
        assert_eq!(fe.payload_segments(), 2);
        let iov = fe.finish();
        // Empty payload contributes no segment: [headers][b"x"].
        assert_eq!(iov.segment_count(), 2);
        let gathered: Vec<u8> = iov.segments().concat();
        let entries = parse_frame(&gathered).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0],
            Entry::Data {
                tag: Tag(1),
                seq: SeqNo(0),
                lane: Priority::Normal.lane(),
                payload: b""
            }
        );
    }

    #[test]
    fn encoder_headers_only_frame_is_single_segment() {
        let mut fe = FrameEncoder::new();
        fe.push_rts(Tag(1), SeqNo(0), 1 << 16);
        fe.push_cts(Tag(2), SeqNo(0), 1 << 16);
        fe.push_credit(1);
        let iov = fe.finish();
        assert_eq!(iov.segment_count(), 1);
        assert_eq!(iov.segments().len(), 1);
    }

    #[test]
    fn encoder_trailing_payload_has_no_tail_fragment() {
        let mut fe = FrameEncoder::new();
        fe.push_data(Tag(1), SeqNo(0), b"tail");
        let iov = fe.finish();
        // [frame-hdr + entry-hdr][payload]; nothing after the payload.
        assert_eq!(iov.segment_count(), 2);
        let segs = iov.segments();
        assert_eq!(segs[1], b"tail");
    }

    #[test]
    fn encoder_with_buffer_recycles_and_clears() {
        let stale = vec![0xAAu8; 128];
        let cap = stale.capacity();
        let mut fe = FrameEncoder::with_buffer(stale);
        fe.push_credit(9);
        let iov = fe.finish();
        let gathered: Vec<u8> = iov.segments().concat();
        assert_eq!(
            parse_frame(&gathered).unwrap(),
            vec![Entry::Credit { count: 9 }]
        );
        let recycled = iov.into_meta();
        assert!(recycled.capacity() >= cap.min(128));
        assert_eq!(recycled.len(), FRAME_HEADER_LEN + ENTRY_HEADER_LEN);
    }

    #[test]
    fn entry_header_pack_unpack_roundtrips() {
        for (kind, flags) in [
            (KIND_DATA, 0),
            (KIND_RTS, 0),
            (KIND_CTS, 0),
            (KIND_RDV_DATA, EF_LAST_CHUNK),
            (KIND_CREDIT, 0),
        ] {
            let h = EntryHeader {
                kind,
                flags,
                lane: 3,
                tag: Tag(0xDEAD_BEEF),
                seq: SeqNo(0x0102_0304),
                len: 0xA5A5_5A5A,
                offset: 0x1122_3344,
            };
            assert_eq!(unpack_entry_header(&pack_entry_header(h)), h);
        }
    }

    #[test]
    fn packed_entry_header_matches_builder_layout() {
        // The packed image must be byte-identical to what the builders
        // put on the wire, or the pack path silently forks the format.
        let mut fb = FrameBuilder::new();
        fb.push_rdv_data(Tag(9), SeqNo(4), 4096, true, b"x");
        let frame = fb.finish();
        let packed = pack_entry_header(EntryHeader {
            kind: KIND_RDV_DATA,
            flags: EF_LAST_CHUNK,
            lane: 0,
            tag: Tag(9),
            seq: SeqNo(4),
            len: 1,
            offset: 4096,
        });
        assert_eq!(
            &frame[FRAME_HEADER_LEN..FRAME_HEADER_LEN + ENTRY_HEADER_LEN],
            &packed
        );
    }

    #[test]
    fn frame_header_pack_unpack_roundtrips() {
        for count in [0u16, 1, 7, u16::MAX] {
            let img = pack_frame_header(count);
            assert_eq!(unpack_frame_header(&img), Ok(count));
        }
        let mut bad = pack_frame_header(1);
        bad[0] = 0;
        assert_eq!(unpack_frame_header(&bad), Err(WireError::BadMagic(0xAD00)));
        let mut bad = pack_frame_header(1);
        bad[2] = 9;
        assert_eq!(unpack_frame_header(&bad), Err(WireError::BadVersion(9)));
    }

    #[test]
    fn lanes_roundtrip_on_data_and_rts() {
        for lane in 0..crate::segment::NUM_LANES as u8 {
            let mut fb = FrameBuilder::new();
            fb.push_data_lane(Tag(1), SeqNo(0), lane, b"pay");
            fb.push_rts_lane(Tag(1), SeqNo(1), lane, 1 << 20);
            let mut fe = FrameEncoder::new();
            fe.push_data_lane(Tag(1), SeqNo(0), lane, b"pay");
            fe.push_rts_lane(Tag(1), SeqNo(1), lane, 1 << 20);
            let reference = fb.finish();
            let gathered: Vec<u8> = fe.finish().segments().concat();
            assert_eq!(gathered, reference, "lane {lane}: encoders must agree");
            let entries = parse_frame(&reference).unwrap();
            assert_eq!(
                entries,
                vec![
                    Entry::Data {
                        tag: Tag(1),
                        seq: SeqNo(0),
                        lane,
                        payload: b"pay"
                    },
                    Entry::Rts {
                        tag: Tag(1),
                        seq: SeqNo(1),
                        lane,
                        total: 1 << 20
                    },
                ]
            );
        }
    }

    #[test]
    fn default_pushes_ride_the_normal_lane() {
        let mut fb = FrameBuilder::new();
        fb.push_data(Tag(1), SeqNo(0), b"x");
        match parse_frame(&fb.finish()).unwrap()[0] {
            Entry::Data { lane, .. } => assert_eq!(Priority::from_lane(lane), Priority::Normal),
            ref e => panic!("wrong entry {e:?}"),
        }
    }

    #[test]
    fn last_chunk_flag_roundtrips() {
        for last in [false, true] {
            let mut fb = FrameBuilder::new();
            fb.push_rdv_data(Tag(1), SeqNo(1), 0, last, b"x");
            let frame = fb.finish();
            match parse_frame(&frame).unwrap()[0] {
                Entry::RdvData { last: l, .. } => assert_eq!(l, last),
                ref e => panic!("wrong entry {e:?}"),
            }
        }
    }
}
