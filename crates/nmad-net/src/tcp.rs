//! Real TCP driver.
//!
//! The paper's prototype includes a TCP/Ethernet transfer module (§4);
//! this is ours, over genuine non-blocking sockets. Frames are
//! length-prefixed; the source node is implied by the socket. All
//! operations are non-blocking: buffered bytes move during
//! [`Driver::pump`], which both `poll_recv` and `test_send` invoke.

use crate::backoff::{Backoff, BackoffPolicy};
use crate::driver::{Capabilities, Driver, NetError, NetResult, RxFrame, SendHandle};
use nmad_sim::NodeId;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Frame length prefix width.
const LEN_PREFIX: usize = 4;
/// Largest frame we accept from the wire (corrupt-stream guard).
const MAX_FRAME: usize = 256 << 20;

struct PeerConn {
    stream: TcpStream,
    /// Outgoing bytes not yet accepted by the kernel.
    out: VecDeque<u8>,
    /// Cumulative bytes enqueued / flushed towards this peer.
    enqueued: u64,
    flushed: u64,
    /// Incoming bytes not yet parsed into frames.
    in_buf: Vec<u8>,
    closed: bool,
}

impl PeerConn {
    fn new(stream: TcpStream) -> NetResult<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(PeerConn {
            stream,
            out: VecDeque::new(),
            enqueued: 0,
            flushed: 0,
            in_buf: Vec::new(),
            closed: false,
        })
    }
}

/// A [`Driver`] endpoint over a full mesh of TCP connections.
pub struct TcpDriver {
    node: NodeId,
    caps: Capabilities,
    peers: Vec<Option<PeerConn>>,
    rx_ready: VecDeque<RxFrame>,
    pending: HashMap<SendHandle, (usize, u64)>,
    next_handle: u64,
}

fn tcp_caps() -> Capabilities {
    Capabilities {
        name: "tcp".to_string(),
        latency_ns: 30_000,
        bandwidth_bps: 1_000_000_000,
        // We stage into a userspace buffer anyway, so gather is
        // effectively unlimited (writev semantics).
        gather_max_segs: usize::MAX,
        rdv_threshold: 64 * 1024,
        supports_rdma: false,
        mtu: MAX_FRAME,
    }
}

impl TcpDriver {
    /// Establishes a full mesh between `addrs.len()` nodes; this process
    /// is node `me` and must be able to bind `addrs[me]`.
    ///
    /// Lower-numbered nodes accept connections from higher-numbered
    /// ones; a 4-byte node-id handshake identifies each peer. Retries
    /// outbound connections for up to `timeout` while the other
    /// processes start.
    pub fn full_mesh(me: NodeId, addrs: &[SocketAddr], timeout: Duration) -> NetResult<Self> {
        let n = addrs.len();
        assert!(me.index() < n, "node id out of range");
        let listener = TcpListener::bind(addrs[me.index()])?;
        let mut peers: Vec<Option<PeerConn>> = (0..n).map(|_| None).collect();

        // Connect to every lower-numbered node.
        for j in 0..me.index() {
            let stream = connect_retry(addrs[j], timeout)?;
            let mut stream = stream;
            stream.write_all(&(me.0).to_le_bytes())?;
            peers[j] = Some(PeerConn::new(stream)?);
        }
        // Accept from every higher-numbered node.
        let expected = n - me.index() - 1;
        let deadline = Instant::now() + timeout;
        let mut accepted = 0;
        listener.set_nonblocking(true)?;
        let mut backoff = Backoff::new(ACCEPT_BACKOFF);
        while accepted < expected {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false)?;
                    let mut id = [0u8; 4];
                    stream.read_exact(&mut id)?;
                    let peer = u32::from_le_bytes(id) as usize;
                    if peer >= n || peers[peer].is_some() {
                        return Err(NetError::Io(std::io::Error::new(
                            ErrorKind::InvalidData,
                            format!("bad handshake from node {peer}"),
                        )));
                    }
                    peers[peer] = Some(PeerConn::new(stream)?);
                    accepted += 1;
                    backoff.reset();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(NetError::Io(std::io::Error::new(
                            ErrorKind::TimedOut,
                            "peers did not connect in time",
                        )));
                    }
                    backoff.sleep();
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(TcpDriver {
            node: me,
            caps: tcp_caps(),
            peers,
            rx_ready: VecDeque::new(),
            pending: HashMap::new(),
            next_handle: 0,
        })
    }

    /// Builds a connected pair on loopback (test/example convenience).
    pub fn pair() -> NetResult<(TcpDriver, TcpDriver)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let a_stream = TcpStream::connect(addr)?;
        let (b_stream, _) = listener.accept()?;
        let mk = |node: usize, stream: TcpStream, n: usize| -> NetResult<TcpDriver> {
            let mut peers: Vec<Option<PeerConn>> = (0..n).map(|_| None).collect();
            let other = 1 - node;
            peers[other] = Some(PeerConn::new(stream)?);
            Ok(TcpDriver {
                node: NodeId(node as u32),
                caps: tcp_caps(),
                peers,
                rx_ready: VecDeque::new(),
                pending: HashMap::new(),
                next_handle: 0,
            })
        };
        Ok((mk(0, a_stream, 2)?, mk(1, b_stream, 2)?))
    }

    fn pump_peer(
        node: NodeId,
        idx: usize,
        conn: &mut PeerConn,
        rx_ready: &mut VecDeque<RxFrame>,
    ) -> NetResult<()> {
        let _ = node;
        if conn.closed {
            return Ok(());
        }
        // Flush outgoing.
        while !conn.out.is_empty() {
            let (front, _) = conn.out.as_slices();
            match conn.stream.write(front) {
                Ok(0) => {
                    conn.closed = true;
                    return Err(NetError::Closed);
                }
                Ok(k) => {
                    conn.out.drain(..k);
                    conn.flushed += k as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        // Drain incoming.
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.closed = true;
                    break;
                }
                Ok(k) => conn.in_buf.extend_from_slice(&chunk[..k]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        // Parse complete frames.
        let mut consumed = 0;
        while conn.in_buf.len() - consumed >= LEN_PREFIX {
            let hdr = &conn.in_buf[consumed..consumed + LEN_PREFIX];
            let len = u32::from_le_bytes(hdr.try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME {
                return Err(NetError::Io(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("frame of {len} bytes exceeds protocol max"),
                )));
            }
            if conn.in_buf.len() - consumed < LEN_PREFIX + len {
                break;
            }
            let start = consumed + LEN_PREFIX;
            rx_ready.push_back(RxFrame {
                src: NodeId(idx as u32),
                payload: conn.in_buf[start..start + len].to_vec().into(),
            });
            consumed = start + len;
        }
        if consumed > 0 {
            conn.in_buf.drain(..consumed);
        }
        Ok(())
    }
}

/// Accept-loop poll schedule: 500 µs doubling to 10 ms.
const ACCEPT_BACKOFF: BackoffPolicy = BackoffPolicy::new(500_000, 10_000_000);
/// Connect-retry schedule: 1 ms doubling to 50 ms (the peer's listener
/// may not be up yet; later attempts wait longer).
const CONNECT_BACKOFF: BackoffPolicy = BackoffPolicy::new(1_000_000, 50_000_000);

fn connect_retry(addr: SocketAddr, timeout: Duration) -> NetResult<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut backoff = Backoff::new(CONNECT_BACKOFF);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(e.into());
                }
                backoff.sleep();
            }
        }
    }
}

impl Driver for TcpDriver {
    fn caps(&self) -> &Capabilities {
        &self.caps
    }

    fn local_node(&self) -> NodeId {
        self.node
    }

    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
        let idx = dst.index();
        let conn = self
            .peers
            .get_mut(idx)
            .and_then(|c| c.as_mut())
            .ok_or(NetError::Closed)?;
        if conn.closed {
            return Err(NetError::Closed);
        }
        let len: usize = iov.iter().map(|s| s.len()).sum();
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge {
                len,
                mtu: MAX_FRAME,
            });
        }
        conn.out
            .extend(u32::try_from(len).expect("checked above").to_le_bytes());
        for seg in iov {
            conn.out.extend(seg.iter().copied());
        }
        conn.enqueued += (LEN_PREFIX + len) as u64;
        let handle = SendHandle(self.next_handle);
        self.next_handle += 1;
        self.pending.insert(handle, (idx, conn.enqueued));
        self.pump()?;
        Ok(handle)
    }

    fn test_send(&mut self, handle: SendHandle) -> NetResult<bool> {
        self.pump()?;
        match self.pending.get(&handle) {
            None => Ok(true),
            Some(&(idx, target)) => {
                let flushed = self.peers[idx]
                    .as_ref()
                    .map(|c| c.flushed)
                    .ok_or(NetError::Closed)?;
                if flushed >= target {
                    self.pending.remove(&handle);
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>> {
        if let Some(f) = self.rx_ready.pop_front() {
            return Ok(Some(f));
        }
        self.pump()?;
        Ok(self.rx_ready.pop_front())
    }

    fn tx_idle(&self) -> bool {
        self.peers.iter().flatten().all(|c| c.out.is_empty())
    }

    fn pump(&mut self) -> NetResult<()> {
        for (idx, conn) in self.peers.iter_mut().enumerate() {
            if let Some(conn) = conn {
                Self::pump_peer(self.node, idx, conn, &mut self.rx_ready)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_blocking(d: &mut TcpDriver) -> RxFrame {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut backoff = Backoff::new(BackoffPolicy::new(50_000, 1_000_000));
        loop {
            if let Some(f) = d.poll_recv().unwrap() {
                return f;
            }
            assert!(Instant::now() < deadline, "timed out waiting for frame");
            backoff.sleep();
        }
    }

    #[test]
    fn pair_exchanges_frames_both_ways() {
        let (mut a, mut b) = TcpDriver::pair().unwrap();
        a.post_send(NodeId(1), &[b"from a, ", b"gathered"]).unwrap();
        b.post_send(NodeId(0), &[b"from b"]).unwrap();
        assert_eq!(recv_blocking(&mut b).payload, b"from a, gathered");
        let f = recv_blocking(&mut a);
        assert_eq!(f.payload, b"from b");
        assert_eq!(f.src, NodeId(1));
    }

    #[test]
    fn large_frame_survives_fragmentation() {
        let (mut a, mut b) = TcpDriver::pair().unwrap();
        let big: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
        let h = a.post_send(NodeId(1), &[&big]).unwrap();
        // Drain on both sides concurrently with completion testing.
        let mut got = None;
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.is_none() {
            assert!(Instant::now() < deadline);
            let _ = a.test_send(h).unwrap();
            got = b.poll_recv().unwrap();
        }
        assert_eq!(got.unwrap().payload, big);
        // Eventually the send tests complete.
        while !a.test_send(h).unwrap() {
            std::thread::yield_now();
        }
    }

    #[test]
    fn many_small_frames_preserve_order() {
        let (mut a, mut b) = TcpDriver::pair().unwrap();
        for i in 0..100u32 {
            a.post_send(NodeId(1), &[&i.to_le_bytes()]).unwrap();
        }
        for i in 0..100u32 {
            let f = recv_blocking(&mut b);
            assert_eq!(
                u32::from_le_bytes(f.payload.as_slice().try_into().unwrap()),
                i
            );
        }
    }

    #[test]
    fn full_mesh_three_nodes() {
        let base: Vec<SocketAddr> = {
            // Reserve three distinct loopback ports.
            let ls: Vec<TcpListener> = (0..3)
                .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
                .collect();
            ls.iter().map(|l| l.local_addr().unwrap()).collect()
            // listeners dropped here; small race window acceptable in test
        };
        let mk = |i: u32| {
            let addrs = base.clone();
            std::thread::spawn(move || {
                TcpDriver::full_mesh(NodeId(i), &addrs, Duration::from_secs(10)).unwrap()
            })
        };
        let handles: Vec<_> = (0..3).map(mk).collect();
        let mut drivers: Vec<TcpDriver> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Node 2 sends to node 0 and 1.
        drivers[2].post_send(NodeId(0), &[b"to zero"]).unwrap();
        drivers[2].post_send(NodeId(1), &[b"to one"]).unwrap();
        assert_eq!(recv_blocking(&mut drivers[0]).payload, b"to zero");
        assert_eq!(recv_blocking(&mut drivers[1]).payload, b"to one");
    }
}
