/root/repo/target/debug/deps/multirail-1cbda6a716ebcf82.d: crates/bench/src/bin/multirail.rs Cargo.toml

/root/repo/target/debug/deps/libmultirail-1cbda6a716ebcf82.rmeta: crates/bench/src/bin/multirail.rs Cargo.toml

crates/bench/src/bin/multirail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
