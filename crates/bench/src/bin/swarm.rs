//! Massive-fanout endpoint study: one event-driven TCP endpoint
//! serving 64 → 10 000 concurrent loopback connections.
//!
//! The process plays the server: a [`TcpDriver::server`] endpoint
//! accepting identified clients under churn. The client side runs as a
//! **child process** (`--swarm-client`, spawned from the same binary)
//! so each side stays inside the runner's file-descriptor budget while
//! the pair still holds 2×10k real sockets. The child is driven over
//! its stdin (probe / ping / quit commands) and reports its latency
//! measurements on stdout.
//!
//! Each sweep point measures:
//!
//! * **accept churn** — wall-clock connections/second from first dial
//!   to full fan-in (context only on a shared runner);
//! * **echo latency** — one-way p50/p99/p99.9 of serial echo
//!   round-trips spread across the fanout (context only);
//! * **idle events per pump** — readiness events while every
//!   connection idles: exactly 0 at any fanout, or the pump is
//!   touching idle sockets (deterministic, gated);
//! * **events per ready socket** — readiness events serviced while
//!   exactly K of the N connections carry one frame each: ~1.0
//!   independent of N (deterministic, gated). A linear scan would pay
//!   N/K here — 312× at the top of the sweep.
//!
//! Results land in `BENCH_swarm.json` (override with `--json PATH`);
//! `cargo run -p xtask -- bench-diff` gates the deterministic event
//! counts against the committed baseline.
//!
//! Run: `cargo run --release -p bench --bin swarm [-- --quick]`

use bench::{SwarmReport, SwarmRow, Table, BENCH_SWARM_JSON_PATH};
use nmad_net::poller::raise_nofile_limit;
use nmad_net::tcp::TcpDriver;
use nmad_net::Driver;
use nmad_sim::NodeId;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Connections whose sockets the ready-probe exercises at once.
const PROBE_READY: usize = 32;
/// Pumps of the idle probe.
const IDLE_PUMPS: u64 = 200;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--swarm-client") {
        let addr: SocketAddr = args[i + 1].parse().expect("client addr");
        let n: usize = args[i + 2].parse().expect("client connection count");
        swarm_client(addr, n);
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let json = bench::json_arg().unwrap_or_else(|| BENCH_SWARM_JSON_PATH.to_string());
    let (sweep, pings): (&[usize], usize) = if quick {
        (&[64, 1024], 2_000)
    } else {
        (&[64, 256, 1024, 4096, 10_000], 10_000)
    };

    if let Err(e) = raise_nofile_limit(20_000) {
        eprintln!("could not raise fd limit: {e} (large sweep points may fail)");
    }

    let report = SwarmReport::new();
    println!("\n## swarm — event-driven TCP endpoint, loopback fan-in\n");
    let mut table = Table::new(vec![
        "connections",
        "backend",
        "accepts/s",
        "p50 (us)",
        "p99 (us)",
        "p99.9 (us)",
        "idle ev/pump",
        "ev/ready",
    ]);
    let mut first_ready_cost = 0.0;
    let mut last: Option<(usize, f64)> = None;
    for &n in sweep {
        let row = run_point(n, pings);
        if first_ready_cost == 0.0 {
            first_ready_cost = row.probe_events_per_ready;
        }
        last = Some((n, row.probe_events_per_ready));
        table.row(vec![
            format!("{n}"),
            row.backend.clone(),
            format!("{:.0}", row.accepts_per_sec),
            format!("{:.1}", row.ping_p50_us),
            format!("{:.1}", row.ping_p99_us),
            format!("{:.1}", row.ping_p999_us),
            format!("{:.3}", row.idle_events_per_pump),
            format!("{:.3}", row.probe_events_per_ready),
        ]);
        report.record(row);
    }
    // The scaling headline: per-ready-socket cost at the largest fanout
    // over the smallest — ~1.0 when pump cost is O(ready), ~N_max/N_min
    // when it is O(held). The key is sweep-independent so quick-mode CI
    // runs diff cleanly against a full-sweep report and vice versa.
    if let Some((_, cost_max)) = last {
        report.record_probe("ready_cost_max_vs_min", cost_max / first_ready_cost);
    }
    table.print();
    report.write(&json);
}

/// One sweep point: stands up a fresh server endpoint and a fresh
/// client child holding `n` connections, runs the probes and the
/// latency sweep, tears everything down.
fn run_point(n: usize, pings: usize) -> SwarmRow {
    let mut server =
        TcpDriver::server(NodeId(0), "127.0.0.1:0".parse().unwrap(), n + 1).expect("bind server");
    let addr = server.local_addr().expect("server has a listener");

    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .arg("--swarm-client")
        .arg(addr.to_string())
        .arg(n.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn swarm client");
    let mut to_child = child.stdin.take().expect("piped stdin");
    // Child stdout drains on its own thread so the echo loop below
    // never blocks on the pipe.
    let from_child = {
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                match line {
                    Ok(l) => {
                        if tx.send(l).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
        rx
    };

    // Accept churn: first dial to full fan-in.
    let t0 = Instant::now();
    pump_until(&mut server, &format!("{n} accepts"), |s| {
        s.connected_peers() == n
    });
    let accepts_per_sec = n as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // Idle probe: the child sits blocked on its stdin, every socket
    // quiet. Any readiness event here means pump cost leaks towards
    // O(held sockets).
    let before = server.endpoint_stats();
    for _ in 0..IDLE_PUMPS {
        server.pump().expect("idle pump");
    }
    let idle_events = server.endpoint_stats().sockets_polled - before.sockets_polled;
    let idle_events_per_pump = idle_events as f64 / IDLE_PUMPS as f64;

    // Ready probe: exactly K sockets carry one frame each; count the
    // readiness events serviced until all K frames arrived.
    let k = PROBE_READY.min(n);
    let before = server.endpoint_stats();
    writeln!(to_child, "probe {k}").expect("child stdin");
    to_child.flush().expect("child stdin");
    let mut got = 0usize;
    let deadline = Instant::now() + Duration::from_secs(60);
    while got < k {
        assert!(Instant::now() < deadline, "probe frames did not arrive");
        if server.poll_recv().expect("probe recv").is_some() {
            got += 1;
        } else {
            std::thread::sleep(Duration::from_micros(20));
        }
    }
    let probe_events = server.endpoint_stats().sockets_polled - before.sockets_polled;
    let probe_events_per_ready = probe_events as f64 / k as f64;

    // Latency sweep: serial echo round-trips, measured by the child,
    // spread across the fanout. The server echoes everything back.
    writeln!(to_child, "ping {pings}").expect("child stdin");
    to_child.flush().expect("child stdin");
    let deadline = Instant::now() + Duration::from_secs(600);
    let stats_line = loop {
        assert!(Instant::now() < deadline, "ping sweep did not finish");
        match from_child.try_recv() {
            Ok(line) if line.starts_with("PINGS ") => break line,
            Ok(_) => continue,
            Err(mpsc::TryRecvError::Empty) => {}
            Err(mpsc::TryRecvError::Disconnected) => panic!("swarm client died mid-sweep"),
        }
        let mut moved = false;
        while let Some(frame) = server.poll_recv().expect("echo recv") {
            server
                .post_send(frame.src, &[&frame.payload])
                .expect("echo send");
            moved = true;
        }
        if !moved {
            // One core: let the child run.
            std::thread::sleep(Duration::from_micros(20));
        }
    };
    let mut parts = stats_line.split_whitespace().skip(1);
    let mut next = || -> f64 { parts.next().expect("PINGS fields").parse().expect("µs") };
    let (ping_p50_us, ping_p99_us, ping_p999_us) = (next(), next(), next());

    // Teardown churn: every hangup must come back as a teardown.
    writeln!(to_child, "quit").expect("child stdin");
    to_child.flush().expect("child stdin");
    pump_until(&mut server, "teardowns", |s| s.connected_peers() == 0);
    wait_child(&mut child);
    let stats = server.endpoint_stats();
    assert_eq!(stats.accepts, n as u64, "every client must have handshaken");
    assert_eq!(stats.teardowns, n as u64, "every hangup must tear down");

    SwarmRow {
        connections: n,
        backend: server.backend_name().to_string(),
        accepts_per_sec,
        ping_p50_us,
        ping_p99_us,
        ping_p999_us,
        idle_events_per_pump,
        probe_events_per_ready,
    }
}

fn pump_until(server: &mut TcpDriver, what: &str, mut cond: impl FnMut(&TcpDriver) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(300);
    while !cond(server) {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what} ({} connected)",
            server.connected_peers()
        );
        server.pump().expect("server pump");
        std::thread::sleep(Duration::from_micros(50));
    }
}

fn wait_child(child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("child wait") {
            Some(status) => {
                assert!(status.success(), "swarm client exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("swarm client did not exit");
            }
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

// --- client role ----------------------------------------------------

/// Writes one length-prefixed frame.
fn write_frame(s: &mut TcpStream, payload: &[u8]) {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    s.write_all(&buf).expect("client write");
}

/// Reads one length-prefixed frame (blocking), returning its payload.
fn read_frame(s: &mut TcpStream) -> Vec<u8> {
    let mut hdr = [0u8; 4];
    s.read_exact(&mut hdr).expect("client read header");
    let len = u32::from_le_bytes(hdr) as usize;
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).expect("client read payload");
    payload
}

/// The child-process role: holds `n` identified connections to the
/// server at `addr` and performs probe / ping commands read from
/// stdin. Stateless between commands; exits on `quit` or EOF.
fn swarm_client(addr: SocketAddr, n: usize) {
    if let Err(e) = raise_nofile_limit(20_000) {
        eprintln!("swarm client: could not raise fd limit: {e}");
    }
    let mut sockets: Vec<TcpStream> = (1..=n as u32)
        .map(|id| {
            let mut s = connect_retry(addr);
            s.set_nodelay(true).expect("nodelay");
            s.write_all(&id.to_le_bytes()).expect("handshake");
            s
        })
        .collect();

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("command stream");
        let mut words = line.split_whitespace();
        match words.next() {
            Some("probe") => {
                let k: usize = words.next().expect("probe K").parse().expect("probe K");
                for s in sockets.iter_mut().take(k) {
                    write_frame(s, b"PRB!");
                }
            }
            Some("ping") => {
                let count: usize = words.next().expect("ping N").parse().expect("ping N");
                let mut one_way_us = Vec::with_capacity(count);
                for i in 0..count {
                    let s = &mut sockets[i % n];
                    let t = Instant::now();
                    write_frame(s, &(i as u64).to_le_bytes());
                    let echo = read_frame(s);
                    one_way_us.push(t.elapsed().as_secs_f64() * 1e6 / 2.0);
                    assert_eq!(echo, (i as u64).to_le_bytes(), "echo mismatch");
                }
                println!(
                    "PINGS {:.3} {:.3} {:.3}",
                    bench::percentile(&one_way_us, 0.5),
                    bench::percentile(&one_way_us, 0.99),
                    bench::percentile(&one_way_us, 0.999),
                );
            }
            Some("quit") | None => break,
            Some(other) => panic!("unknown swarm command {other:?}"),
        }
    }
    // Sockets drop here; the server counts the teardowns.
}

/// Serial dials; under heavy churn the server's accept queue can
/// transiently fill, so a refused dial retries briefly.
fn connect_retry(addr: SocketAddr) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(e) => {
                assert!(Instant::now() < deadline, "client connect failed: {e}");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}
