/root/repo/target/debug/deps/strategy_invariants-03fe728e9c4ad38f.d: tests/strategy_invariants.rs

/root/repo/target/debug/deps/strategy_invariants-03fe728e9c4ad38f: tests/strategy_invariants.rs

tests/strategy_invariants.rs:
