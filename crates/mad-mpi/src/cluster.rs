//! Cluster builders and the co-simulation pump.
//!
//! Everything a harness needs to stand up an n-rank MPI job over the
//! simulated network with any of the three implementations, or over the
//! in-process memory fabric with real threads.

use crate::backend::{DirectBackend, MpiBackend, NmadBackend};
use crate::p2p::MpiProc;
use baselines::{mpich_config, ompi_config, DirectEngine};
use nmad_core::{
    EngineCosts, NmadEngine, StratAggreg, StratDefault, StratDynamic, StratMultirail, StratReorder,
    Strategy,
};
use nmad_net::sim::SimDriver;
use nmad_net::Driver;
use nmad_sim::{host, shared_world, NicModel, NodeId, SharedWorld, SimConfig, SimTime};

/// Which scheduling strategy a MAD-MPI engine uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StrategyKind {
    /// FIFO without optimization.
    Default,
    /// The paper’s aggregation strategy.
    Aggreg,
    /// Aggregation with reordering: complex layouts and rendezvous mixes.
    Reorder,
    /// The paper’s multi-rails strategy.
    Multirail,
    /// Per-frame tactic selection.
    Dynamic,
}

impl StrategyKind {
    /// Instantiates the strategy.
    pub fn build(self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::Default => Box::new(StratDefault),
            StrategyKind::Aggreg => Box::new(StratAggreg),
            StrategyKind::Reorder => Box::new(StratReorder),
            StrategyKind::Multirail => Box::new(StratMultirail::default()),
            StrategyKind::Dynamic => Box::new(StratDynamic::new()),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Default => "default",
            StrategyKind::Aggreg => "aggreg",
            StrategyKind::Reorder => "reorder",
            StrategyKind::Multirail => "multirail",
            StrategyKind::Dynamic => "dynamic",
        }
    }
}

/// Which MPI implementation a rank runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// MAD-MPI over the NewMadeleine engine with the given strategy.
    MadMpi(StrategyKind),
    /// MPICH-like direct mapping.
    Mpich,
    /// OpenMPI 1.1-like direct mapping.
    Ompi,
}

impl EngineKind {
    /// Display label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::MadMpi(_) => "MadMPI",
            EngineKind::Mpich => "MPICH",
            EngineKind::Ompi => "OpenMPI",
        }
    }
}

fn build_rank(world: &SharedWorld, node: u32, size: usize, kind: EngineKind) -> MpiProc {
    let backend: Box<dyn MpiBackend> = match kind {
        EngineKind::MadMpi(strategy) => {
            let drivers: Vec<Box<dyn Driver>> = SimDriver::all_rails(world, NodeId(node))
                .into_iter()
                .map(|d| Box::new(d) as Box<dyn Driver>)
                .collect();
            let meter = Box::new(nmad_net::SimCpuMeter::new(world.clone(), NodeId(node)));
            let engine = NmadEngine::new(
                drivers,
                meter,
                strategy.build(),
                EngineCosts::from_software(&host::costs_madmpi()),
            );
            Box::new(NmadBackend::new(engine))
        }
        EngineKind::Mpich | EngineKind::Ompi => {
            let cfg = if kind == EngineKind::Mpich {
                mpich_config()
            } else {
                ompi_config()
            };
            // The baselines are single-rail libraries: they bind rail 0.
            let driver = SimDriver::new(world.clone(), NodeId(node), nmad_sim::RailId(0));
            let meter = Box::new(driver.meter());
            let engine = DirectEngine::new(Box::new(driver), meter, cfg.clone());
            Box::new(DirectBackend::new(engine, &cfg))
        }
    };
    MpiProc::new(backend, node as usize, size)
}

/// `n` ranks over one simulated rail.
pub fn sim_cluster(n: usize, nic: NicModel, kind: EngineKind) -> (SharedWorld, Vec<MpiProc>) {
    let world = shared_world(SimConfig::cluster(n, nic));
    let procs = (0..n)
        .map(|r| build_rank(&world, r as u32, n, kind))
        .collect();
    (world, procs)
}

/// `n` ranks over several (possibly heterogeneous) simulated rails.
/// Only MAD-MPI drives all rails; the baselines bind rail 0.
pub fn sim_cluster_multirail(
    n: usize,
    rails: Vec<NicModel>,
    kind: EngineKind,
) -> (SharedWorld, Vec<MpiProc>) {
    let world = shared_world(SimConfig {
        nodes: n,
        rails,
        host: host::opteron_1_8ghz(),
    });
    let procs = (0..n)
        .map(|r| build_rank(&world, r as u32, n, kind))
        .collect();
    (world, procs)
}

/// Drives every rank's progress engine until `done`, advancing virtual
/// time whenever all ranks are quiescent. Returns the completion
/// instant. Panics (with the simulator's pending-state dump) on
/// deadlock.
pub fn pump_cluster(
    world: &SharedWorld,
    procs: &mut [MpiProc],
    mut done: impl FnMut(&mut [MpiProc]) -> bool,
) -> SimTime {
    for _ in 0..10_000_000u64 {
        let mut moved = false;
        for proc in procs.iter_mut() {
            moved |= proc.progress();
        }
        if done(procs) {
            return world.lock().now();
        }
        if !moved && world.lock().advance().is_none() {
            panic!(
                "MPI co-simulation deadlock\n{}",
                world.lock().pending_summary()
            );
        }
    }
    panic!("MPI co-simulation did not converge");
}

/// One rank of an MPI job over **real TCP sockets**: establishes the
/// full mesh (`addrs[rank]` must be bindable locally) and wraps it in
/// the chosen implementation. Every participating process/thread calls
/// this with the same address list; blocking `wait`/`waitall` work as
/// usual since real time passes.
pub fn tcp_rank(
    rank: usize,
    addrs: &[std::net::SocketAddr],
    kind: EngineKind,
    timeout: std::time::Duration,
) -> std::io::Result<MpiProc> {
    let driver = nmad_net::TcpDriver::full_mesh(NodeId(rank as u32), addrs, timeout)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let backend: Box<dyn MpiBackend> = match kind {
        EngineKind::MadMpi(strategy) => {
            let engine = NmadEngine::new(
                vec![Box::new(driver)],
                Box::new(nmad_net::NullMeter),
                strategy.build(),
                EngineCosts::zero(),
            );
            Box::new(NmadBackend::new(engine))
        }
        EngineKind::Mpich | EngineKind::Ompi => {
            let cfg = if kind == EngineKind::Mpich {
                mpich_config()
            } else {
                ompi_config()
            };
            let engine =
                DirectEngine::new(Box::new(driver), Box::new(nmad_net::NullMeter), cfg.clone());
            Box::new(DirectBackend::new(engine, &cfg))
        }
    };
    Ok(MpiProc::new(backend, rank, addrs.len()))
}

/// `n` ranks over the in-process memory fabric (real time, real
/// threads possible). Only MAD-MPI and the baselines' engine logic are
/// exercised; no timing model applies.
pub fn mem_cluster(n: usize, kind: EngineKind) -> Vec<MpiProc> {
    let fabric = nmad_net::mem_fabric(n);
    fabric
        .into_iter()
        .enumerate()
        .map(|(rank, driver)| {
            let backend: Box<dyn MpiBackend> = match kind {
                EngineKind::MadMpi(strategy) => {
                    let engine = NmadEngine::new(
                        vec![Box::new(driver)],
                        Box::new(nmad_net::NullMeter),
                        strategy.build(),
                        EngineCosts::zero(),
                    );
                    Box::new(NmadBackend::new(engine))
                }
                EngineKind::Mpich | EngineKind::Ompi => {
                    let cfg = if kind == EngineKind::Mpich {
                        mpich_config()
                    } else {
                        ompi_config()
                    };
                    let engine = DirectEngine::new(
                        Box::new(driver),
                        Box::new(nmad_net::NullMeter),
                        cfg.clone(),
                    );
                    Box::new(DirectBackend::new(engine, &cfg))
                }
            };
            MpiProc::new(backend, rank, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmad_sim::nic;

    #[test]
    fn sim_cluster_builds_each_kind() {
        for kind in [
            EngineKind::MadMpi(StrategyKind::Aggreg),
            EngineKind::Mpich,
            EngineKind::Ompi,
        ] {
            let (_world, procs) = sim_cluster(2, nic::mx_myri10g(), kind);
            assert_eq!(procs.len(), 2);
            assert_eq!(procs[0].rank(), 0);
            assert_eq!(procs[1].rank(), 1);
        }
    }

    #[test]
    fn sim_ping_pong_all_backends() {
        for kind in [
            EngineKind::MadMpi(StrategyKind::Aggreg),
            EngineKind::MadMpi(StrategyKind::Default),
            EngineKind::Mpich,
            EngineKind::Ompi,
        ] {
            let (world, mut procs) = sim_cluster(2, nic::quadrics_qm500(), kind);
            let comm = procs[0].comm_world();
            let s = procs[0].isend(comm, 1, 7, &b"ping"[..]);
            let r = procs[1].irecv(comm, 0, 7, 16);
            pump_cluster(&world, &mut procs, |p| p[0].test(s) && p[1].test(r));
            assert_eq!(
                procs[1].take(r).unwrap(),
                b"ping",
                "backend {}",
                kind.label()
            );
        }
    }

    #[test]
    fn mem_cluster_roundtrip_with_wait() {
        let mut procs = mem_cluster(2, EngineKind::MadMpi(StrategyKind::Aggreg));
        let comm = procs[0].comm_world();
        let s = procs[0].isend(comm, 1, 0, &b"mem"[..]);
        let r = procs[1].irecv(comm, 0, 0, 8);
        procs[0].wait(s);
        procs[1].wait(r);
        assert_eq!(procs[1].take(r).unwrap(), b"mem");
    }
}
