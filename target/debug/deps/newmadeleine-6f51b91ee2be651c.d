/root/repo/target/debug/deps/newmadeleine-6f51b91ee2be651c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewmadeleine-6f51b91ee2be651c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
