//! The NewMadeleine engine: collect layer, scheduler, transfer layer.
//!
//! One [`NmadEngine`] instance runs per node. It owns:
//!
//! * the node's drivers (one per NIC/rail) — the transfer layer;
//! * the optimization [`Window`] — where submitted segments accumulate
//!   while NICs are busy;
//! * a pluggable [`Strategy`] — queried whenever a NIC goes idle, to
//!   synthesize the next frame out of the window (§3.2–3.3);
//! * the receiver-side [`Matching`] state.
//!
//! The engine is a polled state machine: [`NmadEngine::progress`] pumps
//! receives, transmit completions and NIC refills once, and reports
//! whether anything moved. On simulated transports the co-simulation
//! loop of [`nmad_sim::runner`] drives it; on real transports any
//! thread loop does.

use std::collections::{HashMap, HashSet, VecDeque};

use bytes::Bytes;

use crate::matching::{Effect, Matching, RecvDone};
use crate::metrics::{EngineMetrics, MetricsSnapshot, NicMetrics};
use crate::segment::{PackWrapper, Priority, RecvReqId, SendReqId, SeqNo, Tag};
use crate::strategy::{FramePlan, NicView, PlanEntry, Strategy};
use crate::window::{CtrlMsg, RdvJob, Window};
use crate::wire::{parse_frame, Entry, FrameEncoder};
use nmad_net::{CpuMeter, Driver, NetResult, SendHandle, StrategyDecision};
use nmad_sim::{NodeId, SoftwareCosts};

/// Per-operation software costs the engine charges to its CPU meter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineCosts {
    /// Collect-layer cost per application send request.
    pub per_request_ns: u64,
    /// Matching-structure cost per posted receive.
    pub per_recv_ns: u64,
    /// Scheduler cost per ready-list inspection (frame synthesis).
    pub scheduler_inspect_ns: u64,
    /// Cost per wire entry packed or unpacked.
    pub per_entry_ns: u64,
}

impl EngineCosts {
    /// From software.
    pub fn from_software(costs: &SoftwareCosts) -> Self {
        EngineCosts {
            per_request_ns: costs.per_request.as_ns(),
            per_recv_ns: costs.per_recv.as_ns(),
            scheduler_inspect_ns: costs.scheduler_inspect.as_ns(),
            per_entry_ns: costs.per_entry.as_ns(),
        }
    }

    /// Free engine (real transports pay in real time).
    pub fn zero() -> Self {
        EngineCosts {
            per_request_ns: 0,
            per_recv_ns: 0,
            scheduler_inspect_ns: 0,
            per_entry_ns: 0,
        }
    }
}

/// How the engine is driven.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProgressMode {
    /// The application thread pumps [`NmadEngine::progress`] itself.
    /// The only mode the simulated transports support: virtual time
    /// advances through the co-simulation loop, so progression must
    /// stay on the application thread to remain deterministic.
    #[default]
    Inline,
    /// A dedicated progression thread owns the engine and pumps it;
    /// application threads submit through a lock-free ring and poll a
    /// sharded completion board (see [`crate::threaded`]). For the
    /// mem/tcp/lossy transports, where communication should overlap
    /// application computation.
    Threaded,
}

/// How a sharded runtime assigns a flow to a progression shard.
///
/// Both routing policies hash the **unordered node pair** of a flow,
/// never one endpoint alone: the two peers of a link then agree on the
/// owning shard index, and because rails are partitioned identically
/// on every node (shard `s` owns rails `{r : r % shards == s}`), a
/// frame transmitted on shard `s`'s rails arrives on the receiving
/// node's shard `s` — the owner of every flow it carries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPolicy {
    /// All traffic of a node pair rides one shard (and therefore one
    /// rail group). Cheapest routing; parallelism comes from talking
    /// to many peers.
    PerRail,
    /// Flows of one node pair spread over shards by tag, so even a
    /// two-node workload with several logical flows exercises every
    /// shard. The default.
    #[default]
    HashByDest,
}

impl ShardPolicy {
    /// The shard owning flow `(a, b, tag)` among `shards` shards.
    /// Symmetric in `a`/`b` and deterministic across processes.
    pub fn route(self, shards: usize, a: NodeId, b: NodeId, tag: Tag) -> usize {
        if shards <= 1 {
            return 0;
        }
        let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let mut h = (u64::from(lo) << 32) | u64::from(hi);
        if self == ShardPolicy::HashByDest {
            h ^= u64::from(tag.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        // splitmix64 finalizer — deterministic, no global state.
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h % shards as u64) as usize
    }
}

/// A shard engine's identity within a sharded runtime: which shard it
/// is, how many exist, and the routing policy every participant uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRoute {
    /// This engine's shard index.
    pub shard: usize,
    /// Total shard count.
    pub shards: usize,
    /// The flow-routing policy.
    pub policy: ShardPolicy,
}

impl ShardRoute {
    /// The shard owning the flow between this node and `peer` on `tag`.
    pub fn owner(&self, node: NodeId, peer: NodeId, tag: Tag) -> usize {
        self.policy.route(self.shards, node, peer, tag)
    }
}

/// Engine driving configuration — progression mode plus the knobs of
/// the threaded mode's submission rings, sharding and idle parking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Driving mode. Inline by default.
    pub mode: ProgressMode,
    /// Capacity of the lock-free submission ring (threaded mode). A
    /// full ring pushes back on submitters instead of growing.
    pub submit_ring_capacity: usize,
    /// Max operations the progression thread drains from the ring
    /// between pumps, bounding submission-drain latency vs fairness.
    pub submit_batch: usize,
    /// How long the progression thread parks when the engine is idle
    /// and the ring is empty before re-checking.
    pub idle_park: std::time::Duration,
    /// Progression shards (threaded mode). `1` is the single-engine
    /// monolith; `n > 1` splits the engine into `n` shards, each with
    /// its own submission ring, window slice and rail subset. Clamped
    /// to the rail count at launch.
    pub shards: usize,
    /// How flows map to shards when `shards > 1`.
    pub shard_policy: ShardPolicy,
    /// Work stealing: a shard whose window holds at least this many
    /// segments is a donation candidate for idle shards.
    pub steal_depth: usize,
    /// Work stealing: at most this many eager segments move per steal.
    pub steal_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ProgressMode::Inline,
            submit_ring_capacity: 1024,
            submit_batch: 256,
            idle_park: std::time::Duration::from_micros(200),
            shards: 1,
            shard_policy: ShardPolicy::default(),
            steal_depth: 16,
            steal_batch: 8,
        }
    }
}

impl EngineConfig {
    /// The default configuration with the threaded mode selected.
    pub fn threaded() -> Self {
        EngineConfig {
            mode: ProgressMode::Threaded,
            ..Self::default()
        }
    }

    /// Threaded mode with `shards` progression shards.
    pub fn sharded(shards: usize) -> Self {
        assert!(shards > 0, "a sharded runtime needs at least one shard");
        EngineConfig {
            shards,
            ..Self::threaded()
        }
    }
}

/// Point-in-time snapshot of an engine's internal queues (debugging,
/// deadlock reports).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineDiagnostics {
    /// Node the event belongs to.
    pub node: NodeId,
    /// The engine's strategy name.
    pub strategy: &'static str,
    /// Application segments accumulated in the window.
    pub window_segments: usize,
    /// Whether granted rendezvous data is queued.
    pub window_has_rdv: bool,
    /// Announced rendezvous transfers awaiting their grant.
    pub rts_awaiting_cts: usize,
    /// Granted rendezvous transfers still moving bytes.
    pub rdv_transfers_in_progress: usize,
    /// Send requests not yet fully transmitted.
    pub sends_pending: usize,
    /// Posted receives not yet matched.
    pub recvs_posted: usize,
    /// Unexpected segments staged in bounce buffers.
    pub unexpected: usize,
    /// Frames posted to drivers, transmit not yet complete.
    pub frames_in_flight: usize,
    /// NICs marked dead after refused sends.
    pub dead_nics: usize,
}

impl std::fmt::Display for EngineDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}]: window={} rdv(wait_cts={}, in_progress={}, queued={}) \
             sends={} recvs={} unexpected={} inflight={} dead_nics={}",
            self.node,
            self.strategy,
            self.window_segments,
            self.rts_awaiting_cts,
            self.rdv_transfers_in_progress,
            self.window_has_rdv,
            self.sends_pending,
            self.recvs_posted,
            self.unexpected,
            self.frames_in_flight,
            self.dead_nics,
        )
    }
}

/// Wire-level counters, used by tests and harnesses to verify claims
/// like "aggregation sent one frame where the baseline sent eight".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Wire frames sent.
    pub frames_sent: u64,
    /// Wire frames received.
    pub frames_received: u64,
    /// Eager data entries sent.
    pub data_entries: u64,
    /// Rendezvous request-to-send entries sent.
    pub rts_entries: u64,
    /// Rendezvous grant entries sent.
    pub cts_entries: u64,
    /// Rendezvous data chunks sent.
    pub chunk_entries: u64,
    /// Frames that required a staging copy because the NIC could not
    /// gather enough segments.
    pub staging_copies: u64,
    /// Refill attempts skipped because the destination was out of
    /// eager credits (flow control).
    pub credit_stalls: u64,
    /// Standalone credit-return frames sent.
    pub credit_frames: u64,
}

impl EngineStats {
    /// Adds `other`'s counters into `self` — aggregation across the
    /// shard engines of a sharded runtime.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.data_entries += other.data_entries;
        self.rts_entries += other.rts_entries;
        self.cts_entries += other.cts_entries;
        self.chunk_entries += other.chunk_entries;
        self.staging_copies += other.staging_copies;
        self.credit_stalls += other.credit_stalls;
        self.credit_frames += other.credit_frames;
    }
}

type RdvKey = (NodeId, Tag, SeqNo);

enum TxDone {
    /// One eager segment of this request left the host.
    Unit(SendReqId),
    /// `bytes` of a rendezvous segment left the host.
    RdvBytes { key: RdvKey, bytes: usize },
    /// A donated segment of another shard's request left the host; the
    /// completion must travel back to the victim shard that owns the
    /// request (this engine has no record of it).
    Foreign { req: SendReqId, victim: usize },
}

struct RdvTx {
    sent: usize,
    total: usize,
    req: SendReqId,
}

/// Bounded recycling pool for frame buffers. Transmit-side header
/// blocks and staging buffers return here once the NIC reports the
/// send complete; receive-side frame buffers return once every eager
/// slice taken from them has been delivered (the `Arc` inside
/// [`Bytes`] tells us). Reuse keeps the steady-state hot path free of
/// allocator traffic — the paper's engine likewise recycles its iovec
/// and bounce buffers per rail.
struct FramePool {
    bufs: Vec<Vec<u8>>,
    cap: usize,
}

impl FramePool {
    fn new(cap: usize) -> Self {
        FramePool {
            bufs: Vec::new(),
            cap,
        }
    }

    /// A cleared buffer, recycled when possible. Counts the hit or
    /// miss in the engine metrics.
    fn take(&mut self, metrics: &mut EngineMetrics) -> Vec<u8> {
        match self.bufs.pop() {
            Some(mut buf) => {
                buf.clear();
                metrics.pool_hits += 1;
                buf
            }
            None => {
                metrics.pool_misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer for reuse; beyond the cap it is simply freed.
    fn put(&mut self, buf: Vec<u8>) {
        if self.bufs.len() < self.cap {
            self.bufs.push(buf);
        }
    }
}

/// A posted frame whose transmit has not completed.
struct InflightFrame {
    handle: SendHandle,
    dones: Vec<TxDone>,
    /// The plan the frame was built from, so a rail fault can hand
    /// the stranded work back to the window (the receiver's matching
    /// layer drops whatever the rail did manage to deliver).
    plan: FramePlan,
    /// Header-block and staging buffers the NIC is still reading
    /// (gather DMA pins them until completion); recycled through the
    /// pool when `test_send` reports done.
    bufs: Vec<Vec<u8>>,
    /// `Some(victim)` when this is a spool frame carrying another
    /// shard's donated segment: a rail fault returns the segment to
    /// the spool (never to this engine's window, which does not own
    /// the flow).
    foreign: Option<usize>,
}

struct NicState {
    driver: Box<dyn Driver>,
    inflight: VecDeque<InflightFrame>,
    /// Set when the driver refused a send (transport/NIC failure);
    /// the refill loop stops offering this NIC work.
    dead: bool,
}

/// The engine. See the module documentation.
pub struct NmadEngine {
    node: NodeId,
    nics: Vec<NicState>,
    meter: Box<dyn CpuMeter>,
    strategy: Box<dyn Strategy>,
    window: Window,
    matching: Matching,
    /// RTS sent, data parked until the CTS returns.
    rdv_wait_cts: HashMap<RdvKey, (Bytes, SendReqId)>,
    /// Granted rendezvous transfers: transmit-side byte accounting.
    rdv_tx: HashMap<RdvKey, RdvTx>,
    /// Rendezvous transfers that fully completed (transmit side); a
    /// late duplicate grant must never restart one.
    rdv_done: HashSet<RdvKey>,
    /// Send requests → segments still in flight.
    sends: HashMap<SendReqId, usize>,
    done_sends: HashSet<SendReqId>,
    next_req: u64,
    next_seq: HashMap<(NodeId, Tag), SeqNo>,
    order: u64,
    costs: EngineCosts,
    stats: EngineStats,
    metrics: EngineMetrics,
    pool: FramePool,
    /// Eager flow control: max data-bearing frames in flight per peer
    /// without a credit return. `None` disables the mechanism.
    credit_limit: Option<usize>,
    credits: HashMap<NodeId, usize>,
    pending_credit_returns: HashMap<NodeId, u32>,
    /// Shard identity when this engine is one shard of a sharded
    /// runtime; `None` for a monolithic engine.
    route: Option<ShardRoute>,
    /// Received frames owned by another shard (stolen traffic arrives
    /// on the thief's rails); the runtime forwards them to the owner's
    /// [`NmadEngine::inject_frame`].
    foreign_rx: Vec<(usize, NodeId, Bytes, bool)>,
    /// Donated eager segments accepted from other shards, each tagged
    /// with the victim shard that owns the request. Transmitted as
    /// standalone spool frames by the refill loop.
    spool: VecDeque<(PackWrapper, usize)>,
    /// Completions of transmitted spool frames, awaiting forwarding to
    /// their victim shard.
    spool_done: Vec<(SendReqId, usize)>,
    /// Unexpected-queue depth at which the engine signals receive-side
    /// backpressure to its drivers ([`Driver::set_rx_backpressure`]);
    /// `None` disables the signal.
    rx_saturation_cap: Option<usize>,
    /// Whether the backpressure signal is currently raised.
    rx_backpressured: bool,
}

/// Default unexpected-queue depth that raises receive-side
/// backpressure. Generous — a receiver this far behind on matching
/// gains nothing from buffering more eager traffic; parking the
/// sockets lets the transport's flow control push back on senders.
const DEFAULT_RX_SATURATION_CAP: usize = 4096;

impl NmadEngine {
    /// Builds an engine over `drivers` (one per rail, all bound to the
    /// same node).
    pub fn new(
        drivers: Vec<Box<dyn Driver>>,
        meter: Box<dyn CpuMeter>,
        mut strategy: Box<dyn Strategy>,
        costs: EngineCosts,
    ) -> Self {
        assert!(!drivers.is_empty(), "engine needs at least one driver");
        let node = drivers[0].local_node();
        assert!(
            drivers.iter().all(|d| d.local_node() == node),
            "all drivers must belong to the same node"
        );
        let caps: Vec<_> = drivers.iter().map(|d| d.caps().clone()).collect();
        strategy.init(&caps);
        let window = Window::new(drivers.len());
        NmadEngine {
            node,
            nics: drivers
                .into_iter()
                .map(|driver| NicState {
                    driver,
                    inflight: VecDeque::new(),
                    dead: false,
                })
                .collect(),
            meter,
            strategy,
            window,
            matching: Matching::new(),
            rdv_wait_cts: HashMap::new(),
            rdv_tx: HashMap::new(),
            rdv_done: HashSet::new(),
            sends: HashMap::new(),
            done_sends: HashSet::new(),
            next_req: 0,
            next_seq: HashMap::new(),
            order: 0,
            costs,
            stats: EngineStats::default(),
            metrics: EngineMetrics::default(),
            pool: FramePool::new(64),
            credit_limit: None,
            credits: HashMap::new(),
            pending_credit_returns: HashMap::new(),
            route: None,
            foreign_rx: Vec::new(),
            spool: VecDeque::new(),
            spool_done: Vec::new(),
            rx_saturation_cap: Some(DEFAULT_RX_SATURATION_CAP),
            rx_backpressured: false,
        }
    }

    /// Sets the unexpected-queue depth at which the engine raises
    /// receive-side backpressure towards its drivers (parking socket
    /// reads until matching catches up). `None` disables the signal;
    /// the default is generous ([`DEFAULT_RX_SATURATION_CAP`] frames).
    pub fn set_rx_saturation_cap(&mut self, cap: Option<usize>) {
        assert!(
            cap.is_none_or(|c| c > 0),
            "a zero saturation cap would park receives forever"
        );
        self.rx_saturation_cap = cap;
    }

    /// Enables credit-based eager flow control: at most `limit`
    /// data-bearing frames may be in flight towards one peer before a
    /// credit returns (bounding the receiver's unexpected-message
    /// memory). Both peers of a link should configure the same limit.
    /// `None` (the default) disables the mechanism.
    pub fn set_eager_credit_limit(&mut self, limit: Option<usize>) {
        assert!(
            limit.is_none_or(|l| l > 0),
            "a zero credit limit would deadlock"
        );
        self.credit_limit = limit;
        self.credits.clear();
    }

    fn credits_for(&mut self, dst: NodeId) -> usize {
        // Callers gate on `credit_limit.is_some()`; a disabled limit
        // means unlimited credit rather than a pump-thread panic.
        let Some(limit) = self.credit_limit else {
            debug_assert!(false, "credits_for with flow control disabled");
            return usize::MAX;
        };
        *self.credits.entry(dst).or_insert(limit)
    }

    /// Node the event belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of rails (drivers) this engine owns. A sharded launch
    /// clamps its shard count here: a shard without a rail could make
    /// no progress.
    pub fn rail_count(&self) -> usize {
        self.nics.len()
    }

    /// Strategy name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Wire-level counters since construction.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Collect- and scheduling-layer counters since construction.
    pub fn engine_metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The engine's counters with the endpoint-layer section folded in
    /// from the drivers (their cumulative [`nmad_net::EndpointStats`],
    /// summed across rails). This is what snapshots and the threaded
    /// mirror publish; the plain [`engine_metrics`](Self::engine_metrics)
    /// cells never hold endpoint counts — the drivers own them.
    pub fn merged_engine_metrics(&self) -> EngineMetrics {
        let mut ep = nmad_net::EndpointStats::default();
        for nic in &self.nics {
            ep.absorb(&nic.driver.endpoint_stats());
        }
        let mut merged = self.metrics;
        merged.set_endpoint(&ep);
        merged
    }

    /// A point-in-time snapshot of every observable counter: engine
    /// metrics, wire statistics and per-NIC link counters. Cheap —
    /// a few copies plus one `link_stats` call per driver.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            strategy: self.strategy.name(),
            engine: self.merged_engine_metrics(),
            wire: self.stats.clone(),
            nics: self
                .nics
                .iter()
                .map(|n| NicMetrics {
                    name: n.driver.caps().name.clone(),
                    link: n.driver.link_stats(),
                })
                .collect(),
        }
    }

    /// Segments currently accumulated in the optimization window.
    pub fn window_depth(&self) -> usize {
        self.window.depth_for(0)
    }

    /// Snapshot of the engine's internal state for debugging and
    /// deadlock reports.
    pub fn diagnostics(&self) -> EngineDiagnostics {
        EngineDiagnostics {
            node: self.node,
            strategy: self.strategy.name(),
            window_segments: (0..self.nics.len())
                .map(|i| self.window.depth_for(i))
                .max()
                .unwrap_or(0),
            window_has_rdv: self.window.has_rdv(),
            rts_awaiting_cts: self.rdv_wait_cts.len(),
            rdv_transfers_in_progress: self.rdv_tx.len(),
            sends_pending: self.sends.len(),
            recvs_posted: self.matching.posted_count(),
            unexpected: self.matching.unexpected_count(),
            frames_in_flight: self.nics.iter().map(|n| n.inflight.len()).sum(),
            dead_nics: self.nics.iter().filter(|n| n.dead).count(),
        }
    }

    fn alloc_send_req(&mut self) -> SendReqId {
        let req = SendReqId(self.next_req);
        self.next_req += 1;
        req
    }

    fn alloc_recv_req(&mut self) -> RecvReqId {
        let req = RecvReqId(self.next_req);
        self.next_req += 1;
        req
    }

    fn alloc_seq(&mut self, dst: NodeId, tag: Tag) -> SeqNo {
        let slot = self.next_seq.entry((dst, tag)).or_insert(SeqNo(0));
        let seq = *slot;
        *slot = slot.next();
        seq
    }

    /// Submits one application send made of `parts` segments (the
    /// incremental pack interface produces several; `isend` exactly
    /// one). All segments share the returned request, which completes
    /// when every one has left the host.
    pub fn submit_send_parts(
        &mut self,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    ) -> SendReqId {
        let req = self.alloc_send_req();
        self.submit_send_parts_as(req, dst, tag, parts, rail_hint);
        req
    }

    /// [`submit_send_parts`](Self::submit_send_parts) under a
    /// caller-allocated request id. The threaded front-end allocates
    /// ids on the application thread (one atomic) so the application
    /// holds its handle before the operation ever crosses the
    /// submission ring.
    pub fn submit_send_parts_as(
        &mut self,
        req: SendReqId,
        dst: NodeId,
        tag: Tag,
        parts: Vec<(Bytes, Priority)>,
        rail_hint: Option<usize>,
    ) {
        assert_ne!(dst, self.node, "self-sends are not routed through NICs"); // PANIC-OK: API misuse guard at submit; not data-dependent
        self.meter.charge_ns(self.costs.per_request_ns);
        self.metrics.requests_submitted += 1;
        if parts.is_empty() {
            self.done_sends.insert(req);
            return;
        }
        self.sends.insert(req, parts.len());
        for (data, priority) in parts {
            self.metrics.bytes_enqueued += data.len() as u64;
            let seq = self.alloc_seq(dst, tag);
            let order = self.order;
            self.order += 1;
            self.window.push_segment(
                PackWrapper {
                    dst,
                    tag,
                    seq,
                    priority,
                    data,
                    req,
                    order,
                },
                rail_hint,
            );
        }
        let depth = (0..self.nics.len())
            .map(|i| self.window.depth_for(i))
            .max()
            .unwrap_or(0);
        self.metrics.observe_window_depth(depth);
    }

    /// Nonblocking single-segment send.
    pub fn isend(&mut self, dst: NodeId, tag: Tag, data: impl Into<Bytes>) -> SendReqId {
        self.submit_send_parts(dst, tag, vec![(data.into(), Priority::Normal)], None)
    }

    /// Posts a receive of up to `max` bytes for the next segment of
    /// flow (src, tag).
    pub fn post_recv(&mut self, src: NodeId, tag: Tag, max: usize) -> RecvReqId {
        let req = self.alloc_recv_req();
        self.post_recv_as(req, src, tag, max);
        req
    }

    /// [`post_recv`](Self::post_recv) under a caller-allocated request
    /// id (the threaded front-end's submission path).
    pub fn post_recv_as(&mut self, req: RecvReqId, src: NodeId, tag: Tag, max: usize) {
        self.meter.charge_ns(self.costs.per_recv_ns);
        self.metrics.recvs_posted += 1;
        let (_seq, effects) = self.matching.post_recv(src, tag, max, req);
        self.apply_effects(effects);
    }

    /// True once the send request has fully left the host.
    pub fn is_send_done(&self, req: SendReqId) -> bool {
        self.done_sends.contains(&req)
    }

    /// True once the receive completed (non-destructive).
    pub fn is_recv_done(&self, req: RecvReqId) -> bool {
        self.matching.is_done(req)
    }

    /// Takes a completed receive's payload.
    pub fn try_take_recv(&mut self, req: RecvReqId) -> Option<RecvDone> {
        self.matching.try_take_done(req)
    }

    /// Non-destructive probe (MPI_Iprobe-style): the length of the next
    /// segment of flow (src, tag) if it has already arrived or been
    /// announced via rendezvous.
    pub fn probe(&self, src: NodeId, tag: Tag) -> Option<usize> {
        self.matching.probe(src, tag)
    }

    fn apply_effects(&mut self, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::ChargeCopy(bytes) => {
                    self.metrics.bytes_copied_rx += bytes as u64;
                    self.meter.charge_memcpy(bytes);
                }
                Effect::SendCts {
                    dst,
                    tag,
                    seq,
                    total,
                } => self.window.push_ctrl(CtrlMsg {
                    dst,
                    tag,
                    seq,
                    total,
                }),
                Effect::DuplicateDropped => self.metrics.duplicates_dropped += 1,
            }
        }
    }

    fn complete_send_part(&mut self, req: SendReqId) {
        // A completion for a request we no longer track is a driver
        // protocol bug; tolerate it in release rather than tearing
        // down the progression thread.
        let Some(remaining) = self.sends.get_mut(&req) else {
            debug_assert!(false, "completion for unknown send request");
            return;
        };
        *remaining -= 1;
        if *remaining == 0 {
            self.sends.remove(&req);
            self.done_sends.insert(req);
        }
    }

    /// The flow tag a frame should be routed by: the first entry that
    /// belongs to a flow. `None` for pure credit-return frames, which
    /// are per-rail-group (not per-flow) and always arrive at the
    /// shard that owes/owns them.
    fn frame_flow_tag(entries: &[Entry]) -> Option<Tag> {
        entries.iter().find_map(|e| match e {
            Entry::Data { tag, .. }
            | Entry::Rts { tag, .. }
            | Entry::Cts { tag, .. }
            | Entry::RdvData { tag, .. } => Some(*tag),
            Entry::Credit { .. } => None,
        })
    }

    fn handle_frame(&mut self, src: NodeId, frame: &Bytes, rx_zero_copy: bool) -> NetResult<()> {
        let entries = parse_frame(frame).map_err(|e| {
            nmad_net::NetError::Protocol(format!("malformed frame from {src}: {e}"))
        })?;
        // Sharded runtime: a frame for a flow another shard owns (a
        // spool frame a thief transmitted on its own rails) is handed
        // to the runtime untouched; it reaches the owner through
        // [`NmadEngine::inject_frame`].
        if let Some(route) = self.route {
            if route.shards > 1 {
                if let Some(tag) = Self::frame_flow_tag(&entries) {
                    let owner = route.owner(self.node, src, tag);
                    if owner != route.shard {
                        self.foreign_rx
                            .push((owner, src, frame.clone(), rx_zero_copy));
                        return Ok(());
                    }
                }
            }
        }
        self.stats.frames_received += 1;
        self.meter
            .charge_ns(self.costs.per_entry_ns * entries.len() as u64);
        let had_data = entries.iter().any(|e| matches!(e, Entry::Data { .. }));
        for entry in entries {
            match entry {
                Entry::Data {
                    tag,
                    seq,
                    lane: _,
                    payload,
                } => {
                    // Re-anchor the parsed payload as a zero-copy slice
                    // of the frame buffer: the matching layer retains or
                    // delivers it without a bounce-buffer copy.
                    let off = payload.as_ptr() as usize - frame.as_slice().as_ptr() as usize;
                    let payload = frame.slice(off..off + payload.len());
                    let fx = self.matching.on_data(src, tag, seq, payload);
                    self.apply_effects(fx);
                }
                Entry::Rts {
                    tag,
                    seq,
                    lane: _,
                    total,
                } => {
                    let fx = self.matching.on_rts(src, tag, seq, total);
                    self.apply_effects(fx);
                }
                Entry::Cts { tag, seq, total } => {
                    let key = (src, tag, seq);
                    if self.rdv_tx.contains_key(&key) || self.rdv_done.contains(&key) {
                        // Duplicate grant for a transfer already moving
                        // bytes — or already finished (the receiver
                        // re-granted after seeing a retransmitted or
                        // failover-requeued RTS).
                        self.metrics.stale_cts_ignored += 1;
                        continue;
                    }
                    let Some((data, req)) = self.rdv_wait_cts.remove(&key) else {
                        let stale = self.next_seq.get(&(src, tag)).is_some_and(|&n| seq < n);
                        if stale {
                            // The transfer this CTS grants has already
                            // completed; the grant is a late duplicate.
                            self.metrics.stale_cts_ignored += 1;
                            continue;
                        }
                        return Err(nmad_net::NetError::Protocol(format!(
                            "CTS from {src} for unannounced rendezvous ({tag:?}, {seq:?})"
                        )));
                    };
                    debug_assert_eq!(data.len(), total as usize);
                    self.rdv_tx.insert(
                        key,
                        RdvTx {
                            sent: 0,
                            total: data.len(),
                            req,
                        },
                    );
                    // Stamp the job with the engine's submission clock
                    // so deadline-aware admission can age it against
                    // the window's order horizon.
                    self.window
                        .push_rdv(RdvJob::new(src, tag, seq, data, req).with_order(self.order));
                }
                Entry::RdvData {
                    tag,
                    seq,
                    offset,
                    last: _,
                    payload,
                } => {
                    let fx =
                        self.matching
                            .on_rdv_chunk(src, tag, seq, offset, payload, rx_zero_copy);
                    self.apply_effects(fx);
                }
                Entry::Credit { count } => {
                    if let Some(limit) = self.credit_limit {
                        let c = self.credits.entry(src).or_insert(limit);
                        *c = (*c + count as usize).min(limit);
                    }
                }
            }
        }
        if self.credit_limit.is_some() && had_data {
            // One data-bearing frame consumed: owe its sender a credit.
            *self.pending_credit_returns.entry(src).or_insert(0) += 1;
        }
        Ok(())
    }

    fn apply_tx_done(&mut self, dones: Vec<TxDone>) {
        for done in dones {
            match done {
                TxDone::Unit(req) => self.complete_send_part(req),
                TxDone::Foreign { req, victim } => {
                    // Not our request: park the completion for the
                    // runtime to forward to the owning (victim) shard.
                    self.spool_done.push((req, victim));
                }
                TxDone::RdvBytes { key, bytes } => {
                    // An untracked rendezvous key is a driver protocol
                    // bug; drop the stray completion in release.
                    let Some(tx) = self.rdv_tx.get_mut(&key) else {
                        debug_assert!(false, "chunk completion for unknown rendezvous");
                        continue;
                    };
                    tx.sent += bytes;
                    debug_assert!(tx.sent <= tx.total);
                    let finished = (tx.sent == tx.total).then_some(tx.req);
                    if let Some(req) = finished {
                        self.rdv_tx.remove(&key);
                        // A failover requeue may have re-announced this
                        // transfer; drop the now-moot announcement and
                        // remember the key so a late grant is ignored.
                        self.rdv_wait_cts.remove(&key);
                        self.rdv_done.insert(key);
                        self.complete_send_part(req);
                    }
                }
            }
        }
    }

    fn build_and_post(&mut self, nic_idx: usize, plan: FramePlan) -> NetResult<()> {
        // Phase 1: encode the frame without consuming the plan, so a
        // failed NIC can hand its work back to the window. The encoder
        // writes only the header block (frame header plus entry
        // headers) into a pooled buffer and records where each payload
        // splices in — payload bytes are not touched.
        let mut fe = FrameEncoder::with_buffer(self.pool.take(&mut self.metrics));
        let mut owed_credits = 0u32;
        if self.credit_limit.is_some() {
            if let Some(owed) = self.pending_credit_returns.get_mut(&plan.dst) {
                owed_credits = std::mem::take(owed);
                if owed_credits > 0 {
                    fe.push_credit(owed_credits);
                }
            }
        }
        let mut carries_data = false;
        for entry in &plan.entries {
            match entry {
                PlanEntry::Cts(c) => fe.push_cts(c.tag, c.seq, c.total),
                PlanEntry::Data(w) => {
                    fe.push_data_lane(w.tag, w.seq, w.priority.lane(), &w.data);
                    carries_data = true;
                }
                PlanEntry::Rts(w) => {
                    // Segment lengths are bounded at submit; clamp in
                    // release instead of panicking mid-pump.
                    debug_assert!(u32::try_from(w.data.len()).is_ok(), "segment above 4 GiB");
                    let total = w.data.len().min(u32::MAX as usize) as u32;
                    fe.push_rts_lane(w.tag, w.seq, w.priority.lane(), total);
                }
                PlanEntry::RdvChunk(c) => {
                    fe.push_rdv_data(c.tag, c.seq, c.offset, c.last, &c.data);
                }
            }
        }
        // Scheduler critical-path cost: one ready-list inspection plus
        // per-entry header packing.
        self.meter.charge_ns(
            self.costs.scheduler_inspect_ns + self.costs.per_entry_ns * u64::from(fe.entry_count()),
        );
        let gather_max = self.nics[nic_idx].driver.caps().gather_max_segs;
        let iov = fe.finish();
        // Buffers the NIC will read until transmit completes; recycled
        // through the pool at completion (or immediately on failover).
        let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(2);
        let posted = if iov.segment_count() <= gather_max {
            // Zero-copy path: hand the NIC the header block and the
            // application payloads in wire order and let it gather.
            let segs = iov.segments();
            let multi = segs.len() > 1;
            let res = self.nics[nic_idx].driver.post_send(plan.dst, &segs);
            if res.is_ok() && multi {
                self.metrics.gather_sends += 1;
            }
            res
        } else {
            // The card cannot gather this many regions: stage one
            // contiguous copy (and pay for it).
            let mut staged = self.pool.take(&mut self.metrics);
            iov.stage_into(&mut staged);
            self.meter.charge_memcpy(iov.payload_bytes());
            self.stats.staging_copies += 1;
            let res = self.nics[nic_idx].driver.post_send(plan.dst, &[&staged]);
            bufs.push(staged);
            res
        };
        bufs.push(iov.into_meta());
        let handle = match posted {
            Ok(handle) => handle,
            Err(nmad_net::NetError::Closed) => {
                // The NIC died under us: hand everything back to the
                // window (failover — another rail will pick it up).
                for buf in bufs {
                    self.pool.put(buf);
                }
                self.nics[nic_idx].dead = true;
                self.metrics.rail_faults += 1;
                if owed_credits > 0 {
                    *self.pending_credit_returns.entry(plan.dst).or_insert(0) += owed_credits;
                }
                self.metrics.requeued_entries += plan.entries.len() as u64;
                self.requeue_plan(plan);
                self.reclaim_rail(nic_idx);
                return Ok(());
            }
            Err(e) => {
                for buf in bufs {
                    self.pool.put(buf);
                }
                return Err(e);
            }
        };

        // Phase 2: the frame is on the wire — derive completion records
        // and statistics from the plan, which is retained alongside the
        // handle so a later rail fault can requeue the stranded work.
        let mut dones = Vec::new();
        let (mut n_data, mut n_rts, mut n_cts, mut n_chunk) = (0u32, 0u32, 0u32, 0u32);
        let reordered = plan.reordered;
        for entry in &plan.entries {
            match entry {
                PlanEntry::Cts(_) => {
                    self.stats.cts_entries += 1;
                    n_cts += 1;
                }
                PlanEntry::Data(w) => {
                    dones.push(TxDone::Unit(w.req));
                    self.stats.data_entries += 1;
                    n_data += 1;
                }
                PlanEntry::Rts(w) => {
                    self.rdv_wait_cts
                        .insert((w.dst, w.tag, w.seq), (w.data.clone(), w.req));
                    self.stats.rts_entries += 1;
                    n_rts += 1;
                }
                PlanEntry::RdvChunk(c) => {
                    dones.push(TxDone::RdvBytes {
                        key: (c.dst, c.tag, c.seq),
                        bytes: c.data.len(),
                    });
                    self.stats.chunk_entries += 1;
                    n_chunk += 1;
                }
            }
        }
        let entries = n_data + n_rts + n_cts + n_chunk;
        self.metrics.frames_synthesized += 1;
        self.metrics.entries_aggregated += u64::from(entries);
        self.metrics.eager_entries += u64::from(n_data);
        self.metrics.rendezvous_entries += u64::from(n_rts + n_cts + n_chunk);
        self.metrics.reorder_decisions += u64::from(reordered);
        let strategy = self.strategy.name();
        self.meter.note_decision(&StrategyDecision {
            strategy,
            entries,
            data_entries: n_data,
            rts_entries: n_rts,
            cts_entries: n_cts,
            chunk_entries: n_chunk,
            reordered,
        });
        if let (true, Some(limit)) = (carries_data, self.credit_limit) {
            let c = self.credits.entry(plan.dst).or_insert(limit);
            // Data may piggyback on credit-exempt traffic (a grant or
            // rendezvous chunk) while the account is empty; tolerate a
            // bounded overdraft rather than splitting the frame.
            *c = c.saturating_sub(1);
        }
        self.nics[nic_idx].inflight.push_back(InflightFrame {
            handle,
            dones,
            plan,
            bufs,
            foreign: None,
        });
        self.stats.frames_sent += 1;
        Ok(())
    }

    /// Posts one donated segment as a standalone spool frame: a single
    /// data entry, no credit piggyback and no credit decrement (the
    /// victim shard paid the credit at donation time). Returns `false`
    /// when the NIC refused (marked dead, segment back on the spool).
    fn post_spool_frame(
        &mut self,
        nic_idx: usize,
        wrapper: PackWrapper,
        victim: usize,
    ) -> NetResult<bool> {
        let mut fe = FrameEncoder::with_buffer(self.pool.take(&mut self.metrics));
        fe.push_data_lane(
            wrapper.tag,
            wrapper.seq,
            wrapper.priority.lane(),
            &wrapper.data,
        );
        self.meter
            .charge_ns(self.costs.scheduler_inspect_ns + self.costs.per_entry_ns);
        let iov = fe.finish();
        let posted = self.nics[nic_idx]
            .driver
            .post_send(wrapper.dst, &iov.segments());
        let meta = iov.into_meta();
        let handle = match posted {
            Ok(handle) => handle,
            Err(nmad_net::NetError::Closed) => {
                self.pool.put(meta);
                self.nics[nic_idx].dead = true;
                self.metrics.rail_faults += 1;
                self.spool.push_front((wrapper, victim));
                self.reclaim_rail(nic_idx);
                return Ok(false);
            }
            Err(e) => {
                self.pool.put(meta);
                return Err(e);
            }
        };
        let dst = wrapper.dst;
        let req = wrapper.req;
        let mut plan = FramePlan::new(dst);
        plan.entries.push(PlanEntry::Data(wrapper));
        self.nics[nic_idx].inflight.push_back(InflightFrame {
            handle,
            dones: vec![TxDone::Foreign { req, victim }],
            plan,
            bufs: vec![meta],
            foreign: Some(victim),
        });
        self.stats.frames_sent += 1;
        self.stats.data_entries += 1;
        Ok(true)
    }

    /// Returns a plan's work to the window after a NIC failure, in an
    /// order that preserves per-flow FIFO for the segments.
    fn requeue_plan(&mut self, plan: FramePlan) {
        for entry in plan.entries.into_iter().rev() {
            match entry {
                PlanEntry::Cts(c) => self.window.push_ctrl(c),
                PlanEntry::Data(w) | PlanEntry::Rts(w) => self.window.push_segment_front(w),
                PlanEntry::RdvChunk(c) => self.window.push_rdv(RdvJob::resume(c)),
            }
        }
    }

    /// Recovery after `nic_idx` was marked dead: stranded in-flight
    /// frames and window segments dedicated to the rail go back to the
    /// window (the receiver's matching layer drops whatever the dead
    /// rail did manage to deliver), and the strategy re-plans its
    /// bandwidth split over the survivors.
    fn reclaim_rail(&mut self, nic_idx: usize) {
        let stranded: Vec<InflightFrame> = self.nics[nic_idx].inflight.drain(..).collect();
        for frame in stranded {
            for buf in frame.bufs {
                self.pool.put(buf);
            }
            self.metrics.requeued_entries += frame.plan.entries.len() as u64;
            if let Some(victim) = frame.foreign {
                // A stranded spool frame goes back to the spool, never
                // into this engine's window — the flow belongs to the
                // victim shard.
                for entry in frame.plan.entries {
                    if let PlanEntry::Data(w) = entry {
                        self.spool.push_front((w, victim));
                    }
                }
            } else {
                self.requeue_plan(frame.plan);
            }
        }
        self.metrics.requeued_entries += self.window.reclaim_dedicated(nic_idx) as u64;
        self.strategy.on_rail_fault(nic_idx);
    }

    /// Installs a deterministic fault plan on rail `nic_idx`'s driver;
    /// returns whether the driver consumed it (real transports refuse).
    pub fn install_faults(&mut self, nic_idx: usize, plan: nmad_net::FaultPlan) -> bool {
        self.nics[nic_idx].driver.install_faults(plan)
    }

    /// Fault-injection counters reported by rail `nic_idx`'s driver.
    pub fn fault_stats(&self, nic_idx: usize) -> nmad_net::FaultStats {
        self.nics[nic_idx].driver.fault_stats()
    }

    /// One pump: drain receives, harvest transmit completions, refill
    /// idle NICs. Returns whether anything moved.
    // HOT-PATH: progression pump root
    pub fn try_progress(&mut self) -> NetResult<bool> {
        let mut any = false;

        // Receive-side backpressure: when the matching layer's
        // unexpected queue saturates, park the drivers' socket reads
        // (transport flow control then pushes back on remote senders);
        // resume with hysteresis once matching has caught up to half
        // the cap, so the signal cannot flap at the boundary. Edge
        // transitions only — the common pump pays one comparison.
        if let Some(cap) = self.rx_saturation_cap {
            let backlog = self.matching.unexpected_count();
            let want = if self.rx_backpressured {
                backlog > cap / 2
            } else {
                backlog >= cap
            };
            if want != self.rx_backpressured {
                self.rx_backpressured = want;
                for nic in &mut self.nics {
                    nic.driver.set_rx_backpressure(want);
                }
            }
        }

        // Receives and transmit completions.
        for i in 0..self.nics.len() {
            // PANIC-OK: i < nics.len() loop bound
            if self.nics[i].dead {
                continue;
            }
            self.nics[i].driver.pump()?; // PANIC-OK: i < nics.len() loop bound
            let rx_zero_copy = self.nics[i].driver.caps().supports_rdma; // PANIC-OK: i < nics.len() loop bound
            while let Some(frame) = self.nics[i].driver.poll_recv()? {
                // PANIC-OK: i < nics.len() loop bound
                debug_assert_ne!(frame.src, self.node);
                let payload = frame.payload;
                self.handle_frame(frame.src, &payload, rx_zero_copy)?;
                // If no eager slice of the frame was retained (posted
                // receives consumed everything), the buffer is uniquely
                // owned again — recycle it.
                if let Ok(buf) = payload.try_unwrap() {
                    self.pool.put(buf);
                }
                any = true;
            }
            // PANIC-OK: i < nics.len() loop bound
            while let Some(handle) = self.nics[i].inflight.front().map(|f| f.handle) {
                // PANIC-OK: i < nics.len() loop bound
                if !self.nics[i].driver.test_send(handle)? {
                    break;
                }
                // PANIC-OK: i < nics.len() loop bound
                let Some(frame) = self.nics[i].inflight.pop_front() else {
                    break;
                };
                for buf in frame.bufs {
                    self.pool.put(buf);
                }
                self.apply_tx_done(frame.dones);
                any = true;
            }
        }

        // Refill idle NICs: this is where the optimization function
        // runs (§3.3: "the transfer layer ... requests from the upper
        // layer a new optimized packet to be sent, as soon as a card
        // becomes idle").
        let all_dead = self.nics.iter().all(|n| n.dead);
        if all_dead && !self.window.is_empty() {
            return Err(nmad_net::NetError::Closed);
        }
        for i in 0..self.nics.len() {
            // Donated segments first: the whole point of a steal is to
            // put this shard's idle NICs to work on them. The spool
            // check leads the chain: it is empty outside a steal, and
            // `tx_idle` is a driver call (a fabric lock on mem) the
            // common pump should not pay.
            // PANIC-OK: i < nics.len() loop bound
            while !self.spool.is_empty() && !self.nics[i].dead && self.nics[i].driver.tx_idle() {
                let Some((wrapper, victim)) = self.spool.pop_front() else {
                    break;
                };
                if self.post_spool_frame(i, wrapper, victim)? {
                    any = true;
                } else {
                    break;
                }
            }
            loop {
                if self.nics[i].dead // PANIC-OK: i < nics.len() loop bound
                    || !self.nics[i].driver.tx_idle() // PANIC-OK: i < nics.len() loop bound
                    || self.window.is_empty_for(i)
                {
                    break;
                }
                // Flow-control gate: if the next destination is out of
                // eager credits and has no credit-exempt traffic
                // (control, granted rendezvous data), hold the window
                // until a credit returns.
                if let Some(dst) = self.window.next_dst(i) {
                    if self.credit_limit.is_some()
                        && self.credits_for(dst) == 0
                        && !self.window.has_non_data_work_for(dst)
                    {
                        self.stats.credit_stalls += 1;
                        break;
                    }
                }
                let caps = self.nics[i].driver.caps().clone(); // ALLOC-OK: caps snapshot copied once per spool drain, not per frame; PANIC-OK: i < nics.len() loop bound
                let view = NicView {
                    index: i,
                    caps: &caps,
                };
                let Some(plan) = self.strategy.schedule(&mut self.window, &view) else {
                    break;
                };
                debug_assert!(!plan.is_empty(), "strategies never plan empty frames");
                self.build_and_post(i, plan)?;
                any = true;
            }
            // Standalone credit returns: peers we owe credits but have
            // no other traffic towards.
            // PANIC-OK: i < nics.len() loop bound
            if self.credit_limit.is_some() && !self.nics[i].dead && self.nics[i].driver.tx_idle() {
                let owed: Vec<NodeId> = self
                    .pending_credit_returns
                    .iter()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(&n, _)| n)
                    .collect();
                for dst in owed {
                    // PANIC-OK: i < nics.len() loop bound
                    if !self.nics[i].driver.tx_idle() {
                        break;
                    }
                    let Some(owed_count) = self.pending_credit_returns.get_mut(&dst) else {
                        continue;
                    };
                    let count = std::mem::take(owed_count);
                    let mut fe = FrameEncoder::with_buffer(self.pool.take(&mut self.metrics));
                    fe.push_credit(count);
                    let iov = fe.finish();
                    let handle = self.nics[i].driver.post_send(dst, &iov.segments())?; // PANIC-OK: i < nics.len() loop bound
                    self.nics[i].inflight.push_back(InflightFrame {
                        // PANIC-OK: i < nics.len() loop bound
                        handle,
                        dones: Vec::new(), // ALLOC-OK: Vec::new does not allocate
                        plan: FramePlan::new(dst),
                        bufs: vec![iov.into_meta()], // ALLOC-OK: one-element buffer list per posted credit frame
                        foreign: None,
                    });
                    self.stats.frames_sent += 1;
                    self.stats.credit_frames += 1;
                    any = true;
                }
            }
        }
        Ok(any)
    }

    /// [`try_progress`](Self::try_progress), panicking on transport
    /// failure (simulated transports cannot fail).
    pub fn progress(&mut self) -> bool {
        self.try_progress().expect("transport failure")
    }

    /// Pumps until a pump reports nothing moved; returns whether any
    /// pump moved anything. The standard way to drain an inline engine
    /// after submissions instead of hand-rolled `while progress()`
    /// loops — a single pump can cascade (a harvested completion frees
    /// a NIC which refills from the window), so one call is rarely
    /// enough.
    pub fn progress_until_idle(&mut self) -> bool {
        let mut any = false;
        while self.progress() {
            any = true;
        }
        any
    }

    /// True when every rail's driver consents to being pumped from a
    /// background progression thread (threaded mode's precondition).
    /// The simulated driver refuses — virtual time must advance on the
    /// application thread.
    pub fn threaded_progress_safe(&self) -> bool {
        self.nics.iter().all(|n| n.driver.threaded_progress_safe())
    }

    /// Send requests that fully left the host since the last drain.
    /// The threaded progression loop harvests these into the
    /// completion board after each pump; inline users keep using
    /// [`is_send_done`](Self::is_send_done).
    pub fn drain_done_sends(&mut self) -> Vec<SendReqId> {
        if self.done_sends.is_empty() {
            return Vec::new();
        }
        self.done_sends.drain().collect()
    }

    /// Receive completions ready since the last drain (payload
    /// included). The threaded harvest path, mirroring
    /// [`drain_done_sends`](Self::drain_done_sends).
    pub fn drain_done_recvs(&mut self) -> Vec<(RecvReqId, RecvDone)> {
        self.matching.drain_done()
    }

    /// True while any submitted work could still complete: pending
    /// sends, posted receives, queued window entries, rendezvous
    /// handshakes, in-flight frames or owed credit returns. The
    /// threaded progression loop spins while this holds and parks on
    /// the submission ring otherwise.
    pub fn has_outstanding(&self) -> bool {
        !self.sends.is_empty()
            || self.matching.posted_count() > 0
            || !self.window.is_empty()
            || !self.rdv_wait_cts.is_empty()
            || !self.rdv_tx.is_empty()
            || self.nics.iter().any(|n| !n.inflight.is_empty())
            || self.pending_credit_returns.values().any(|&c| c > 0)
            || !self.spool.is_empty()
            || !self.spool_done.is_empty()
            || !self.foreign_rx.is_empty()
    }

    /// True when the transmit side is fully drained: no pending sends,
    /// nothing queued in the window, no rendezvous in flight, no frame
    /// awaiting completion. Unlike
    /// [`has_outstanding`](Self::has_outstanding) this ignores posted
    /// receives, so a shutdown cannot hang on a receive the peer will
    /// never match.
    pub fn tx_quiescent(&self) -> bool {
        self.sends.is_empty()
            && self.window.is_empty()
            && self.rdv_wait_cts.is_empty()
            && self.rdv_tx.is_empty()
            && self.nics.iter().all(|n| n.inflight.is_empty())
            && self.spool.is_empty()
            && self.spool_done.is_empty()
    }

    /// True when the optimization window's per-destination index
    /// matches its actual queue contents. Exposed for failover
    /// regression tests; release builds also check this via
    /// `debug_assert!` on the requeue/reclaim paths.
    pub fn window_index_consistent(&self) -> bool {
        self.window.index_is_consistent()
    }

    /// The next unallocated request id — the threaded front-end seeds
    /// its atomic allocator from this at launch and restores it at
    /// shutdown.
    pub(crate) fn req_watermark(&self) -> u64 {
        self.next_req
    }

    pub(crate) fn set_req_watermark(&mut self, next: u64) {
        debug_assert!(next >= self.next_req, "request ids must never reuse");
        self.next_req = next;
    }

    // --- sharded runtime support (see `crate::threaded` and
    // --- `crate::steal`) ---

    /// This engine's shard identity, when it is one shard of a sharded
    /// runtime.
    pub fn shard_route(&self) -> Option<ShardRoute> {
        self.route
    }

    /// Donated eager segments accepted from other shards, not yet
    /// transmitted. Exposed for the runtime's steal bookkeeping.
    pub fn spool_depth(&self) -> usize {
        self.spool.len()
    }

    /// How many eager segments this shard could donate right now: the
    /// common-list backlog (dedicated and rendezvous work never moves
    /// — it is rail- or handshake-bound).
    pub fn donation_backlog(&self) -> usize {
        self.window.common_ref().len()
    }

    /// Takes up to `max` eager segments off the *back* of the common
    /// list for donation to an idle shard. Only small segments move
    /// (≤ [`NmadEngine::MAX_DONATION_BYTES`]); when flow control is
    /// on, the victim pays one eager credit per donated segment here,
    /// and the thief's spool transmit pays none — exactly one debit
    /// per data frame on the wire, as in the monolith.
    pub fn donate_eager(&mut self, max: usize) -> Vec<PackWrapper> {
        let mut out = Vec::new();
        while out.len() < max {
            let Some(back) = self.window.common_back() else {
                break;
            };
            if back.len() > Self::MAX_DONATION_BYTES {
                break;
            }
            let dst = back.dst;
            if self.credit_limit.is_some() && self.credits_for(dst) == 0 {
                break;
            }
            let Some(wrapper) = self.window.pop_common_back() else {
                break;
            };
            if let Some(limit) = self.credit_limit {
                let c = self.credits.entry(dst).or_insert(limit);
                *c = c.saturating_sub(1);
            }
            out.push(wrapper);
        }
        out
    }

    /// Largest segment the steal path will donate. Bounds spool frames
    /// well under any MTU and keeps steals cheap to undo.
    pub const MAX_DONATION_BYTES: usize = 16 * 1024;

    /// Returns a donated segment this shard could not place (the thief
    /// departed): the segment re-enters the window front and the
    /// credit paid at donation time is refunded.
    pub fn undonate(&mut self, wrapper: PackWrapper) {
        if let Some(limit) = self.credit_limit {
            let c = self.credits.entry(wrapper.dst).or_insert(limit);
            *c = (*c + 1).min(limit);
        }
        self.window.push_segment_front(wrapper);
    }

    /// Accepts segments donated by shard `victim`; the refill loop
    /// transmits them as standalone spool frames.
    pub fn accept_donations(&mut self, victim: usize, wrappers: Vec<PackWrapper>) {
        for w in wrappers {
            self.spool.push_back((w, victim));
        }
    }

    /// Drains transmit completions of spool frames, each tagged with
    /// the victim shard that owns the request. The runtime forwards
    /// them to [`NmadEngine::complete_foreign_done`] on that shard.
    pub fn drain_spool_done(&mut self) -> Vec<(SendReqId, usize)> {
        std::mem::take(&mut self.spool_done)
    }

    /// Applies the completion of a donated segment a thief transmitted
    /// on this shard's behalf.
    pub fn complete_foreign_done(&mut self, req: SendReqId) {
        self.complete_send_part(req);
    }

    /// Drains received frames owned by other shards (stolen traffic
    /// arrives on the thief's rails), each tagged with the owner shard
    /// index. The runtime routes each to its owner's
    /// [`NmadEngine::inject_frame`].
    pub fn drain_foreign_rx(&mut self) -> Vec<(usize, NodeId, Bytes, bool)> {
        std::mem::take(&mut self.foreign_rx)
    }

    /// Processes a frame another shard received on this shard's
    /// behalf, then recycles the buffer if nothing retained a slice.
    pub fn inject_frame(&mut self, src: NodeId, frame: Bytes, rx_zero_copy: bool) -> NetResult<()> {
        self.handle_frame(src, &frame, rx_zero_copy)?;
        if let Ok(buf) = frame.try_unwrap() {
            self.pool.put(buf);
        }
        Ok(())
    }

    /// Splits this engine into `shards` independent shard engines:
    /// rail `r` goes to shard `r % shards`, and every flow-keyed
    /// structure (window, matching, sequence allocators, rendezvous
    /// memos) partitions by `policy`'s owner function. The transmit
    /// side must be quiescent — nothing in flight crosses the split.
    ///
    /// Shard 0 inherits the CPU meter, accumulated statistics, credit
    /// accounts and undrained completions; the other shards start
    /// fresh accounts (each shard then runs its own per-peer credit
    /// window against the peer's same-index shard, which is the only
    /// shard whose rails its data frames arrive on).
    pub fn split_for_shards(self, shards: usize, policy: ShardPolicy) -> Vec<NmadEngine> {
        assert!(shards > 0, "cannot split into zero shards");
        assert!(
            shards <= self.nics.len(),
            "more shards ({shards}) than rails ({})",
            self.nics.len()
        );
        assert!(
            self.tx_quiescent() && self.foreign_rx.is_empty(),
            "split_for_shards requires a quiescent transmit side"
        );
        let node = self.node;
        let owner = move |peer: NodeId, tag: Tag| policy.route(shards, node, peer, tag);

        let mut nic_parts: Vec<Vec<NicState>> = (0..shards).map(|_| Vec::new()).collect();
        for (r, nic) in self.nics.into_iter().enumerate() {
            nic_parts[r % shards].push(nic);
        }
        let windows = self.window.split(shards, owner);
        let matchings = self.matching.split_by(shards, owner);
        let mut next_seqs: Vec<HashMap<(NodeId, Tag), SeqNo>> =
            (0..shards).map(|_| HashMap::new()).collect();
        for (k, v) in self.next_seq {
            next_seqs[owner(k.0, k.1)].insert(k, v);
        }
        let mut rdv_dones: Vec<HashSet<RdvKey>> = (0..shards).map(|_| HashSet::new()).collect();
        for key in self.rdv_done {
            rdv_dones[owner(key.0, key.1)].insert(key);
        }

        let base_strategy = self.strategy;
        let mut meter = Some(self.meter);
        let mut stats = Some(self.stats);
        let mut metrics = Some(self.metrics);
        let mut done_sends = Some(self.done_sends);
        let mut credits = Some(self.credits);
        let mut pending = Some(self.pending_credit_returns);
        let mut pool = Some(self.pool);

        let mut parts = Vec::with_capacity(shards);
        for (s, ((nics, window), matching)) in nic_parts
            .into_iter()
            .zip(windows)
            .zip(matchings)
            .enumerate()
        {
            let caps: Vec<_> = nics.iter().map(|n| n.driver.caps().clone()).collect();
            let mut strategy = base_strategy.for_shard(s, shards);
            strategy.init(&caps);
            parts.push(NmadEngine {
                node,
                nics,
                meter: meter
                    .take()
                    .unwrap_or_else(|| Box::new(nmad_net::NullMeter)),
                strategy,
                window,
                matching,
                rdv_wait_cts: HashMap::new(),
                rdv_tx: HashMap::new(),
                rdv_done: std::mem::take(&mut rdv_dones[s]),
                sends: HashMap::new(),
                done_sends: done_sends.take().unwrap_or_default(),
                next_req: self.next_req,
                next_seq: std::mem::take(&mut next_seqs[s]),
                order: self.order,
                costs: self.costs,
                stats: stats.take().unwrap_or_default(),
                metrics: metrics.take().unwrap_or_default(),
                pool: pool.take().unwrap_or_else(|| FramePool::new(64)),
                credit_limit: self.credit_limit,
                credits: credits.take().unwrap_or_default(),
                pending_credit_returns: pending.take().unwrap_or_default(),
                route: Some(ShardRoute {
                    shard: s,
                    shards,
                    policy,
                }),
                foreign_rx: Vec::new(),
                spool: VecDeque::new(),
                spool_done: Vec::new(),
                rx_saturation_cap: self.rx_saturation_cap,
                rx_backpressured: self.rx_backpressured,
            });
        }
        parts
    }

    /// Reunites shard engines produced by
    /// [`split_for_shards`](Self::split_for_shards) into one monolith:
    /// rails re-interleave to their original indices, windows and
    /// matching states merge, counters aggregate (sums; the window
    /// high-water mark takes the deepest shard) and per-peer credit
    /// accounts recombine by total outstanding deficit. Every shard
    /// must be transmit-quiescent with an empty spool.
    pub fn merge_shards(parts: Vec<NmadEngine>) -> NmadEngine {
        assert!(!parts.is_empty(), "cannot merge zero shard engines");
        let shards = parts.len();
        let node = parts[0].node;
        let credit_limit = parts[0].credit_limit;
        let rx_saturation_cap = parts[0].rx_saturation_cap;
        // A shard that raised backpressure hands the raised state to
        // the monolith; the next pump re-evaluates and releases it.
        let rx_backpressured = parts.iter().any(|p| p.rx_backpressured);
        for part in &parts {
            assert_eq!(part.node, node, "shards of different nodes");
            assert!(
                part.tx_quiescent() && part.foreign_rx.is_empty(),
                "merge_shards requires quiescent shards"
            );
        }

        let total_nics: usize = parts.iter().map(|p| p.nics.len()).sum();
        let mut nic_slots: Vec<Option<NicState>> = (0..total_nics).map(|_| None).collect();
        let mut windows = Vec::with_capacity(shards);
        let mut matchings = Vec::with_capacity(shards);
        let mut meter = None;
        let mut strategy = None;
        let mut pool = None;
        let mut costs = None;
        let mut stats = EngineStats::default();
        let mut metrics = EngineMetrics::default();
        let mut next_seq: HashMap<(NodeId, Tag), SeqNo> = HashMap::new();
        let mut rdv_done: HashSet<RdvKey> = HashSet::new();
        let mut done_sends: HashSet<SendReqId> = HashSet::new();
        let mut deficits: HashMap<NodeId, usize> = HashMap::new();
        let mut pending: HashMap<NodeId, u32> = HashMap::new();
        let mut next_req = 0u64;
        let mut order = 0u64;

        for (s, part) in parts.into_iter().enumerate() {
            for (j, nic) in part.nics.into_iter().enumerate() {
                let slot = j * shards + s;
                assert!(nic_slots[slot].is_none(), "rail slot collision");
                nic_slots[slot] = Some(nic);
            }
            windows.push(part.window);
            matchings.push(part.matching);
            if s == 0 {
                meter = Some(part.meter);
                strategy = Some(part.strategy);
                pool = Some(part.pool);
                costs = Some(part.costs);
            }
            stats.absorb(&part.stats);
            metrics.absorb(&part.metrics);
            for (k, v) in part.next_seq {
                let slot = next_seq.entry(k).or_insert(v);
                if v.0 > slot.0 {
                    *slot = v;
                }
            }
            rdv_done.extend(part.rdv_done);
            done_sends.extend(part.done_sends);
            if let Some(limit) = credit_limit {
                for (peer, c) in part.credits {
                    *deficits.entry(peer).or_insert(0) += limit.saturating_sub(c);
                }
            }
            for (peer, c) in part.pending_credit_returns {
                *pending.entry(peer).or_insert(0) += c;
            }
            next_req = next_req.max(part.next_req);
            order = order.max(part.order);
        }

        let nics: Vec<NicState> = nic_slots
            .into_iter()
            .map(|slot| slot.expect("every rail slot filled"))
            .collect();
        let caps: Vec<_> = nics.iter().map(|n| n.driver.caps().clone()).collect();
        let mut strategy = strategy.expect("shard 0 present");
        strategy.init(&caps);
        let credits = credit_limit
            .map(|limit| {
                deficits
                    .into_iter()
                    .map(|(peer, deficit)| (peer, limit.saturating_sub(deficit)))
                    .collect()
            })
            .unwrap_or_default();

        NmadEngine {
            node,
            nics,
            meter: meter.expect("shard 0 present"),
            strategy,
            window: Window::merge(windows),
            matching: Matching::merge(matchings),
            rdv_wait_cts: HashMap::new(),
            rdv_tx: HashMap::new(),
            rdv_done,
            sends: HashMap::new(),
            done_sends,
            next_req,
            next_seq,
            order,
            costs: costs.expect("shard 0 present"),
            stats,
            metrics,
            pool: pool.expect("shard 0 present"),
            credit_limit,
            credits,
            pending_credit_returns: pending,
            route: None,
            foreign_rx: Vec::new(),
            spool: VecDeque::new(),
            spool_done: Vec::new(),
            rx_saturation_cap,
            rx_backpressured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{StratAggreg, StratDefault};
    use nmad_net::sim::SimDriver;
    use nmad_sim::{nic, run_until, shared_world, SharedWorld, SimConfig};

    fn engine(world: &SharedWorld, node: u32, strategy: Box<dyn Strategy>) -> NmadEngine {
        let driver = SimDriver::new(world.clone(), NodeId(node), nmad_sim::RailId(0));
        let meter = Box::new(driver.meter());
        NmadEngine::new(
            vec![Box::new(driver)],
            meter,
            strategy,
            EngineCosts::from_software(&nmad_sim::host::costs_madmpi()),
        )
    }

    fn pump_pair(
        world: &SharedWorld,
        a: &mut NmadEngine,
        b: &mut NmadEngine,
        mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
    ) {
        // Engines and the goal predicate both need &mut; drive manually.
        for _ in 0..100_000 {
            let mut moved = a.progress();
            moved |= b.progress();
            if done(a, b) {
                return;
            }
            if !moved && world.lock().advance().is_none() {
                panic!(
                    "deadlock: {} / a window {} / b window {}",
                    world.lock().pending_summary(),
                    a.window_depth(),
                    b.window_depth()
                );
            }
        }
        panic!("pump_pair did not converge");
    }

    #[test]
    fn eager_roundtrip_delivers_payload() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let s = a.isend(NodeId(1), Tag(5), &b"payload"[..]);
        let r = b.post_recv(NodeId(0), Tag(5), 64);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        let done = b.try_take_recv(r).unwrap();
        assert_eq!(done.data, b"payload");
        assert_eq!(done.src, NodeId(0));
    }

    #[test]
    fn rendezvous_roundtrip_for_large_segment() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let body: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
        let s = a.isend(NodeId(1), Tag(1), body.clone());
        let r = b.post_recv(NodeId(0), Tag(1), body.len());
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        assert_eq!(b.try_take_recv(r).unwrap().data, body);
        assert_eq!(a.stats().rts_entries, 1);
        assert!(a.stats().chunk_entries >= 1);
        assert_eq!(b.stats().cts_entries, 1);
    }

    #[test]
    fn aggregation_coalesces_multi_flow_burst_into_fewer_frames() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let sends: Vec<_> = (0..8)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
            .collect();
        let recvs: Vec<_> = (0..8).map(|t| b.post_recv(NodeId(0), Tag(t), 64)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        // First frame may leave with only the earliest submissions, but
        // the burst must use far fewer than 8 frames.
        assert!(
            a.stats().frames_sent <= 3,
            "got {} frames",
            a.stats().frames_sent
        );
        assert_eq!(a.stats().data_entries, 8);
        for (t, r) in recvs.into_iter().enumerate() {
            assert_eq!(b.try_take_recv(r).unwrap().data, vec![t as u8; 64]);
        }
    }

    #[test]
    fn default_strategy_sends_one_frame_per_segment() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratDefault));
        let mut b = engine(&world, 1, Box::new(StratDefault));
        let sends: Vec<_> = (0..5)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![0u8; 32]))
            .collect();
        let recvs: Vec<_> = (0..5).map(|t| b.post_recv(NodeId(0), Tag(t), 32)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        assert_eq!(a.stats().frames_sent, 5);
    }

    /// Driver decorator recording every backpressure edge the engine
    /// signals, so the test sees transitions rather than states.
    struct RecordingBp {
        inner: nmad_net::mem::MemDriver,
        signals: std::sync::Arc<parking_lot::Mutex<Vec<bool>>>,
    }

    impl Driver for RecordingBp {
        fn caps(&self) -> &nmad_net::Capabilities {
            self.inner.caps()
        }
        fn local_node(&self) -> NodeId {
            self.inner.local_node()
        }
        fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
            self.inner.post_send(dst, iov)
        }
        fn test_send(&mut self, handle: SendHandle) -> NetResult<bool> {
            self.inner.test_send(handle)
        }
        fn poll_recv(&mut self) -> NetResult<Option<nmad_net::RxFrame>> {
            self.inner.poll_recv()
        }
        fn tx_idle(&self) -> bool {
            self.inner.tx_idle()
        }
        fn set_rx_backpressure(&mut self, paused: bool) {
            self.signals.lock().push(paused);
        }
    }

    #[test]
    fn saturation_signals_drivers_with_hysteresis() {
        let mut fabric = nmad_net::mem::mem_fabric(2);
        let b_driver = fabric.pop().unwrap();
        let a_driver = fabric.pop().unwrap();
        let signals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut a = NmadEngine::new(
            vec![Box::new(a_driver)],
            Box::new(nmad_net::NullMeter),
            Box::new(StratDefault),
            EngineCosts::zero(),
        );
        let mut b = NmadEngine::new(
            vec![Box::new(RecordingBp {
                inner: b_driver,
                signals: signals.clone(),
            })],
            Box::new(nmad_net::NullMeter),
            Box::new(StratDefault),
            EngineCosts::zero(),
        );
        b.set_rx_saturation_cap(Some(4));

        // Eight eager sends with no receives posted: they pile up in
        // b's unexpected queue and must cross the cap of 4.
        let sends: Vec<_> = (0..8)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 16]))
            .collect();
        for _ in 0..200 {
            a.progress();
            b.progress();
            if signals.lock().as_slice() == [true] {
                break;
            }
        }
        assert_eq!(
            signals.lock().as_slice(),
            [true],
            "saturation must raise exactly one edge (unexpected now {})",
            b.diagnostics().unexpected
        );
        assert!(b.diagnostics().unexpected >= 4);

        // Matching catches up: the signal must release — once.
        let recvs: Vec<_> = (0..8).map(|t| b.post_recv(NodeId(0), Tag(t), 16)).collect();
        for _ in 0..200 {
            a.progress();
            b.progress();
            if signals.lock().len() == 2 {
                break;
            }
        }
        assert_eq!(signals.lock().as_slice(), [true, false]);
        assert!(sends.iter().all(|&s| a.is_send_done(s)));
        assert!(recvs.iter().all(|&r| b.is_recv_done(r)));
    }

    #[test]
    fn unexpected_message_completes_when_recv_posted_later() {
        let world = shared_world(SimConfig::two_nodes(nic::quadrics_qm500()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let s = a.isend(NodeId(1), Tag(3), &b"early bird"[..]);
        // Let the message arrive unexpected.
        pump_pair(&world, &mut a, &mut b, |a, _| a.is_send_done(s));
        let r = b.post_recv(NodeId(0), Tag(3), 64);
        pump_pair(&world, &mut a, &mut b, |_, b| b.is_recv_done(r));
        assert_eq!(b.try_take_recv(r).unwrap().data, b"early bird");
    }

    #[test]
    fn multi_part_send_completes_once_all_parts_left() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let parts = vec![
            (Bytes::from_static(b"one"), Priority::Normal),
            (Bytes::from_static(b"two"), Priority::Normal),
            (Bytes::from_static(b"three"), Priority::Normal),
        ];
        let s = a.submit_send_parts(NodeId(1), Tag(0), parts, None);
        let recvs: Vec<_> = (0..3).map(|_| b.post_recv(NodeId(0), Tag(0), 16)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        let got: Vec<Vec<u8>> = recvs
            .into_iter()
            .map(|r| b.try_take_recv(r).unwrap().data.to_vec())
            .collect();
        assert_eq!(
            got,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }

    #[test]
    fn empty_send_completes_immediately() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let s = a.submit_send_parts(NodeId(1), Tag(0), vec![], None);
        assert!(a.is_send_done(s));
    }

    #[test]
    fn bidirectional_traffic_makes_progress() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let sa = a.isend(NodeId(1), Tag(0), &b"a->b"[..]);
        let sb = b.isend(NodeId(0), Tag(0), &b"b->a"[..]);
        let ra = a.post_recv(NodeId(1), Tag(0), 16);
        let rb = b.post_recv(NodeId(0), Tag(0), 16);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(sa) && b.is_send_done(sb) && a.is_recv_done(ra) && b.is_recv_done(rb)
        });
        assert_eq!(a.try_take_recv(ra).unwrap().data, b"b->a");
        assert_eq!(b.try_take_recv(rb).unwrap().data, b"a->b");
    }

    #[test]
    fn run_until_integrates_engines_as_closures() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let s = a.isend(NodeId(1), Tag(0), &b"via runner"[..]);
        let r = b.post_recv(NodeId(0), Tag(0), 32);
        let _ = s;
        let done = std::cell::Cell::new(false);
        {
            let mut ea = || a.progress();
            // The predicate needs `b`, so fold b's pump and the check
            // into one closure.
            let mut eb = || {
                let moved = b.progress();
                if b.is_recv_done(r) {
                    done.set(true);
                }
                moved
            };
            run_until(&world, &mut [&mut ea, &mut eb], || done.get()).expect("no deadlock");
        }
        assert_eq!(b.try_take_recv(r).unwrap().data, b"via runner");
    }

    /// Every counter in the snapshot, flattened for pairwise
    /// monotonicity comparisons.
    fn counter_vector(m: &crate::metrics::MetricsSnapshot) -> Vec<u64> {
        let e = &m.engine;
        let w = &m.wire;
        let mut v = vec![
            e.requests_submitted,
            e.recvs_posted,
            e.bytes_enqueued,
            e.window_depth_hwm,
            e.frames_synthesized,
            e.entries_aggregated,
            e.eager_entries,
            e.rendezvous_entries,
            e.reorder_decisions,
            e.rail_faults,
            e.requeued_entries,
            e.duplicates_dropped,
            e.stale_cts_ignored,
            e.gather_sends,
            e.pool_hits,
            e.pool_misses,
            e.bytes_copied_rx,
            w.frames_sent,
            w.frames_received,
            w.data_entries,
            w.rts_entries,
            w.cts_entries,
            w.chunk_entries,
            w.staging_copies,
            w.credit_stalls,
            w.credit_frames,
        ];
        for nic in &m.nics {
            v.extend([nic.link.busy_ns, nic.link.retransmits, nic.link.acks]);
        }
        v
    }

    #[test]
    fn metrics_counters_are_monotone_across_progress() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let mut prev = counter_vector(&a.metrics());
        let sends: Vec<_> = (0..6)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 128]))
            .collect();
        let recvs: Vec<_> = (0..6)
            .map(|t| b.post_recv(NodeId(0), Tag(t), 128))
            .collect();
        for _ in 0..100_000 {
            let moved = a.progress() | b.progress();
            let cur = counter_vector(&a.metrics());
            for (i, (&p, &c)) in prev.iter().zip(&cur).enumerate() {
                assert!(c >= p, "counter #{i} went backwards: {p} -> {c}");
            }
            prev = cur;
            if sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
            {
                break;
            }
            if !moved && world.lock().advance().is_none() {
                panic!("deadlock");
            }
        }
        let m = a.metrics();
        assert_eq!(m.engine.requests_submitted, 6);
        assert_eq!(m.engine.eager_entries, 6);
        assert_eq!(m.engine.bytes_enqueued, 6 * 128);
        assert!(m.engine.window_depth_hwm >= 1);
        assert!(m.engine.frames_synthesized >= 1);
    }

    #[test]
    fn metrics_snapshot_covers_all_layers() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        // One eager and one rendezvous-sized message.
        let s1 = a.isend(NodeId(1), Tag(0), vec![1u8; 256]);
        let s2 = a.isend(NodeId(1), Tag(1), vec![2u8; 200_000]);
        let r1 = b.post_recv(NodeId(0), Tag(0), 256);
        let r2 = b.post_recv(NodeId(0), Tag(1), 200_000);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s1) && a.is_send_done(s2) && b.is_recv_done(r1) && b.is_recv_done(r2)
        });
        let m = a.metrics();
        assert_eq!(m.strategy, "aggreg");
        assert_eq!(m.engine.requests_submitted, 2);
        assert_eq!(m.engine.eager_entries, 1);
        assert!(m.engine.rendezvous_entries >= 2, "one RTS plus chunks");
        assert!(m.aggregation_ratio() >= 1.0);
        assert_eq!(m.wire.frames_sent, m.engine.frames_synthesized);
        assert_eq!(m.nics.len(), 1);
        assert_eq!(m.nics[0].name, "MX/Myri-10G");
        assert!(m.nics[0].link.busy_ns > 0, "frames crossed the wire");
        // The receiver granted the rendezvous: its snapshot shows it.
        let mb = b.metrics();
        assert_eq!(mb.wire.cts_entries, 1);
        assert_eq!(mb.engine.recvs_posted, 2);
    }

    #[test]
    fn gather_capable_nic_posts_multi_segment_iovs_without_staging() {
        // MX gathers up to 32 segments: an aggregated multi-entry
        // eager frame must leave as a multi-segment iov, never as a
        // staged copy.
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let sends: Vec<_> = (0..8)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
            .collect();
        let recvs: Vec<_> = (0..8).map(|t| b.post_recv(NodeId(0), Tag(t), 64)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        assert!(
            a.metrics().engine.gather_sends > 0,
            "multi-entry frames must use the gather path: {:?}",
            a.metrics().engine
        );
        assert_eq!(a.stats().staging_copies, 0);
    }

    #[test]
    fn gatherless_nic_stages_a_copy_per_data_frame() {
        // GM advertises gather_max_segs == 1: every frame that carries
        // payload must be staged through a contiguous copy.
        let world = shared_world(SimConfig::two_nodes(nic::gm_myrinet2000()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let s = a.isend(NodeId(1), Tag(0), vec![7u8; 64]);
        let r = b.post_recv(NodeId(0), Tag(0), 64);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        assert!(a.stats().staging_copies > 0, "{:?}", a.stats());
        assert_eq!(a.metrics().engine.gather_sends, 0);
    }

    #[test]
    fn frame_buffers_recycle_through_the_pool() {
        // Sequential one-at-a-time sends: after the first frame's
        // buffers return to the pool, later frames must reuse them.
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        for round in 0..6u32 {
            let s = a.isend(NodeId(1), Tag(0), vec![round as u8; 128]);
            let r = b.post_recv(NodeId(0), Tag(0), 128);
            pump_pair(&world, &mut a, &mut b, |a, b| {
                a.is_send_done(s) && b.is_recv_done(r)
            });
            assert_eq!(b.try_take_recv(r).unwrap().data, vec![round as u8; 128]);
        }
        let m = a.metrics().engine;
        assert!(
            m.pool_hits > m.pool_misses,
            "steady state must be dominated by pool reuse: hits={} misses={}",
            m.pool_hits,
            m.pool_misses
        );
    }

    #[test]
    fn recycled_buffers_never_leak_stale_bytes() {
        // A long first message followed by shorter ones through the
        // same (recycled) buffers: each delivery must carry exactly its
        // own payload, nothing from a previous frame.
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let bodies: Vec<Vec<u8>> = vec![vec![0xAA; 512], vec![0x11; 16], vec![0x22; 3], vec![0x33]];
        for body in &bodies {
            let s = a.isend(NodeId(1), Tag(9), body.clone());
            let r = b.post_recv(NodeId(0), Tag(9), 1024);
            pump_pair(&world, &mut a, &mut b, |a, b| {
                a.is_send_done(s) && b.is_recv_done(r)
            });
            let done = b.try_take_recv(r).unwrap();
            assert_eq!(done.data, body[..], "stale bytes leaked into delivery");
            assert!(!done.truncated);
        }
    }

    #[test]
    fn rx_copy_counter_tracks_rendezvous_reassembly_without_rdma() {
        // Eager traffic on the receive side is zero-copy (slices of the
        // frame buffer); only copy-mode rendezvous reassembly moves
        // bytes. GM has no RDMA, so a rendezvous transfer must count.
        let world = shared_world(SimConfig::two_nodes(nic::gm_myrinet2000()));
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let small = a.isend(NodeId(1), Tag(0), vec![1u8; 64]);
        let r0 = b.post_recv(NodeId(0), Tag(0), 64);
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(small) && b.is_recv_done(r0)
        });
        assert_eq!(
            b.metrics().engine.bytes_copied_rx,
            0,
            "eager delivery must be copy-free"
        );
        let body: Vec<u8> = (0..100_000u32).map(|i| (i % 201) as u8).collect();
        let s = a.isend(NodeId(1), Tag(1), body.clone());
        let r = b.post_recv(NodeId(0), Tag(1), body.len());
        pump_pair(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s) && b.is_recv_done(r)
        });
        assert_eq!(b.try_take_recv(r).unwrap().data, body);
        assert_eq!(
            b.metrics().engine.bytes_copied_rx,
            body.len() as u64,
            "copy-mode rendezvous reassembly must be accounted"
        );
    }

    #[test]
    fn entries_aggregated_matches_traced_decisions() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        world.lock().enable_trace();
        let mut a = engine(&world, 0, Box::new(StratAggreg));
        let mut b = engine(&world, 1, Box::new(StratAggreg));
        let sends: Vec<_> = (0..8)
            .map(|t| a.isend(NodeId(1), Tag(t), vec![t as u8; 64]))
            .collect();
        let recvs: Vec<_> = (0..8).map(|t| b.post_recv(NodeId(0), Tag(t), 64)).collect();
        pump_pair(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        let m = a.metrics();
        let trace = world.lock().take_trace();
        // The trace sees both nodes' engines; at minimum a's frames.
        assert!(trace.decisions() >= m.engine.frames_synthesized as usize);
        assert_eq!(
            m.engine.entries_aggregated,
            trace.decision_entries_for(NodeId(0)),
            "engine counter and trace must agree"
        );
    }
}

#[cfg(test)]
mod credit_tests {
    use super::*;
    use crate::strategy::{StratAggreg, StratDefault};
    use nmad_net::sim::SimDriver;
    use nmad_sim::{nic, shared_world, SharedWorld, SimConfig};

    fn engine_with(
        world: &SharedWorld,
        node: u32,
        credits: Option<usize>,
        strategy: Box<dyn Strategy>,
    ) -> NmadEngine {
        let driver = SimDriver::new(world.clone(), NodeId(node), nmad_sim::RailId(0));
        let meter = Box::new(driver.meter());
        let mut e = NmadEngine::new(vec![Box::new(driver)], meter, strategy, EngineCosts::zero());
        e.set_eager_credit_limit(credits);
        e
    }

    fn engine(world: &SharedWorld, node: u32, credits: Option<usize>) -> NmadEngine {
        engine_with(world, node, credits, Box::new(StratAggreg))
    }

    fn pump(
        world: &SharedWorld,
        a: &mut NmadEngine,
        b: &mut NmadEngine,
        mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
    ) {
        for _ in 0..1_000_000 {
            let moved = a.progress() | b.progress();
            if done(a, b) {
                return;
            }
            if !moved && world.lock().advance().is_none() {
                panic!("deadlock:\n{}", world.lock().pending_summary());
            }
        }
        panic!("no convergence");
    }

    #[test]
    fn flow_control_stalls_then_recovers_on_credit_return() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        // FIFO strategy: one frame per message, so a 10-message burst
        // over 2 credits must stall until credits return; everything
        // still delivers in order.
        let mut a = engine_with(&world, 0, Some(2), Box::new(StratDefault));
        let mut b = engine_with(&world, 1, Some(2), Box::new(StratDefault));
        let sends: Vec<_> = (0..10u32)
            .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 64]))
            .collect();
        let recvs: Vec<_> = (0..10u32)
            .map(|i| b.post_recv(NodeId(0), Tag(i), 64))
            .collect();
        pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        for (i, r) in recvs.into_iter().enumerate() {
            assert_eq!(b.try_take_recv(r).unwrap().data, vec![i as u8; 64]);
        }
        assert!(
            a.stats().credit_stalls > 0,
            "a 10-message burst over 2 credits must stall at least once: {:?}",
            a.stats()
        );
    }

    #[test]
    fn credit_returns_travel_standalone_without_reverse_traffic() {
        let world = shared_world(SimConfig::two_nodes(nic::quadrics_qm500()));
        let mut a = engine(&world, 0, Some(1));
        let mut b = engine(&world, 1, Some(1));
        // One-directional traffic: credits can only return as
        // standalone frames.
        let sends: Vec<_> = (0..4u32)
            .map(|i| a.isend(NodeId(1), Tag(0), vec![i as u8; 32]))
            .collect();
        let recvs: Vec<_> = (0..4u32)
            .map(|_| b.post_recv(NodeId(0), Tag(0), 32))
            .collect();
        pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        assert!(
            b.stats().credit_frames > 0,
            "receiver must send standalone credit frames: {:?}",
            b.stats()
        );
    }

    #[test]
    fn rendezvous_traffic_is_exempt_from_credits() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, Some(1));
        let mut b = engine(&world, 1, Some(1));
        // Exhaust the single credit with an eager message that stays
        // unexpected, then move a rendezvous-sized message: the RTS /
        // CTS / chunk path must still flow.
        let s0 = a.isend(NodeId(1), Tag(0), vec![0u8; 16]);
        pump(&world, &mut a, &mut b, |a, _| a.is_send_done(s0));
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 31) as u8).collect();
        let s1 = a.isend(NodeId(1), Tag(1), big.clone());
        let r1 = b.post_recv(NodeId(0), Tag(1), big.len());
        pump(&world, &mut a, &mut b, |a, b| {
            a.is_send_done(s1) && b.is_recv_done(r1)
        });
        assert_eq!(b.try_take_recv(r1).unwrap().data, big);
    }

    #[test]
    fn disabled_flow_control_never_stalls() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, None);
        let mut b = engine(&world, 1, None);
        let sends: Vec<_> = (0..50u32)
            .map(|i| a.isend(NodeId(1), Tag(i), vec![1u8; 32]))
            .collect();
        let recvs: Vec<_> = (0..50u32)
            .map(|i| b.post_recv(NodeId(0), Tag(i), 32))
            .collect();
        pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        assert_eq!(a.stats().credit_stalls, 0);
        assert_eq!(a.stats().credit_frames, 0);
        assert_eq!(b.stats().credit_frames, 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn zero_credit_limit_is_rejected() {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let _ = engine(&world, 0, Some(0));
    }
}
