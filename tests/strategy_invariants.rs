//! Property tests on the scheduling strategies themselves: for ANY
//! window content, every built-in strategy must respect the frame
//! budget (cumulated eager length ≤ rendezvous threshold, frame ≤ MTU),
//! classify segments correctly (eager vs RTS), keep frames
//! single-destination, and drain the window without loss or
//! duplication.

use bytes::Bytes;
use newmadeleine::core::eager_cutoff;
use newmadeleine::core::wire::{ENTRY_HEADER_LEN, FRAME_HEADER_LEN};
use newmadeleine::core::{
    EngineCosts, NmadEngine, PackWrapper, PlanEntry, Priority, SendReqId, SeqNo, StratAggreg,
    StratAggregHol, StratDefault, StratDynamic, StratLanes, StratMultirail, StratReorder, Strategy,
    Tag, Window,
};
use newmadeleine::net::{Capabilities, SimDriver};
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SimConfig};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct GenSeg {
    dst: u32,
    tag: u32,
    len: usize,
    high_priority: bool,
}

fn seg_gen() -> impl proptest::strategy::Strategy<Value = GenSeg> {
    use proptest::strategy::Strategy as _;
    (
        0u32..3,
        0u32..5,
        prop_oneof![
            3 => 0usize..2_000,
            1 => 20_000usize..80_000
        ],
        proptest::bool::ANY,
    )
        .prop_map(|(dst, tag, len, high_priority)| GenSeg {
            dst: dst + 1, // node 0 is the sender
            tag,
            len,
            high_priority,
        })
}

fn strategies() -> Vec<(&'static str, Box<dyn Strategy>)> {
    let caps = [Capabilities::from_nic(&nic::mx_myri10g())];
    let mut out: Vec<(&'static str, Box<dyn Strategy>)> = vec![
        ("default", Box::new(StratDefault)),
        ("aggreg", Box::new(StratAggreg)),
        ("reorder", Box::new(StratReorder)),
        ("multirail", Box::new(StratMultirail::default())),
        ("dynamic", Box::new(StratDynamic::new())),
        ("aggreg_hol", Box::new(StratAggregHol::new())),
        ("lanes", Box::new(StratLanes::new())),
    ];
    for (_, s) in &mut out {
        s.init(&caps);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_strategy_respects_frame_budgets_and_drains(
        segs in proptest::collection::vec(seg_gen(), 0..24),
        mtu_limited in proptest::bool::ANY,
    ) {
        let mut caps = Capabilities::from_nic(&nic::mx_myri10g());
        if mtu_limited {
            caps.mtu = 8 * 1024;
        }
        for (name, mut strat) in strategies() {
            let mut window = Window::new(1);
            for (i, g) in segs.iter().enumerate() {
                window.push_segment(
                    PackWrapper {
                        dst: NodeId(g.dst),
                        tag: Tag(g.tag),
                        seq: SeqNo(i as u32),
                        priority: if g.high_priority { Priority::High } else { Priority::Normal },
                        data: Bytes::from(vec![0u8; g.len]),
                        req: SendReqId(i as u64),
                        order: i as u64,
                    },
                    None,
                );
            }

            let view = newmadeleine::core::NicView { index: 0, caps: &caps };
            let mut scheduled: Vec<(u32, u32, u32, usize)> = Vec::new(); // dst,tag,seq,len
            let mut frames = 0;
            while let Some(plan) = strat.schedule(&mut window, &view) {
                frames += 1;
                prop_assert!(frames <= 10_000, "{name}: runaway scheduling");
                prop_assert!(!plan.is_empty(), "{name}: empty frame");
                let mut eager_payload = 0usize;
                let mut frame_len = FRAME_HEADER_LEN;
                for entry in &plan.entries {
                    match entry {
                        PlanEntry::Data(w) => {
                            prop_assert_eq!(w.dst, plan.dst, "{}: foreign dst", name);
                            prop_assert!(
                                w.len() <= eager_cutoff(&caps),
                                "{name}: oversized eager segment"
                            );
                            eager_payload += w.len();
                            frame_len += ENTRY_HEADER_LEN + w.len();
                            scheduled.push((w.dst.0, w.tag.0, w.seq.0, w.len()));
                        }
                        PlanEntry::Rts(w) => {
                            prop_assert_eq!(w.dst, plan.dst, "{}: foreign dst", name);
                            prop_assert!(
                                w.len() > eager_cutoff(&caps),
                                "{name}: small segment sent via rendezvous"
                            );
                            frame_len += ENTRY_HEADER_LEN;
                            scheduled.push((w.dst.0, w.tag.0, w.seq.0, w.len()));
                        }
                        PlanEntry::Cts(c) => {
                            prop_assert_eq!(c.dst, plan.dst, "{}: foreign ctrl dst", name);
                            frame_len += ENTRY_HEADER_LEN;
                        }
                        PlanEntry::RdvChunk(c) => {
                            prop_assert_eq!(c.dst, plan.dst, "{}: foreign chunk dst", name);
                            frame_len += ENTRY_HEADER_LEN + c.data.len();
                        }
                    }
                }
                prop_assert!(
                    eager_payload <= caps.rdv_threshold,
                    "{name}: cumulated eager {eager_payload} exceeds the aggregation bound"
                );
                prop_assert!(
                    frame_len <= caps.mtu,
                    "{name}: frame {frame_len} exceeds mtu {}",
                    caps.mtu
                );
            }

            // Exactly the submitted segments were scheduled, no loss,
            // no duplication.
            prop_assert!(window.is_empty(), "{name}: window not drained");
            let mut expected: Vec<(u32, u32, u32, usize)> = segs
                .iter()
                .enumerate()
                .map(|(i, g)| (g.dst, g.tag, i as u32, g.len))
                .collect();
            expected.sort_unstable();
            scheduled.sort_unstable();
            prop_assert_eq!(scheduled, expected, "{}: segment set mismatch", name);
        }
    }

    #[test]
    fn entries_aggregated_counter_matches_the_trace(
        sizes in proptest::collection::vec(1usize..1500, 1..16),
        strat_idx in 0usize..3,
    ) {
        // The engine's scheduling-layer counter and the simulator's
        // strategy-decision trace are independent observers of the same
        // frames; for any small-message workload they must agree, on
        // both sides of the link (the receiver's engine schedules
        // frames too when traffic flows back).
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        world.lock().enable_trace();
        let mut engines: Vec<NmadEngine> = (0..2u32)
            .map(|n| {
                let strat: Box<dyn Strategy> = match strat_idx {
                    0 => Box::new(StratDefault),
                    1 => Box::new(StratAggreg),
                    _ => Box::new(StratReorder),
                };
                let d = SimDriver::new(world.clone(), NodeId(n), RailId(0));
                let m = Box::new(d.meter());
                NmadEngine::new(vec![Box::new(d)], m, strat, EngineCosts::zero())
            })
            .collect();
        let (b, a) = (engines.pop().unwrap(), engines.pop().unwrap());
        let (mut a, mut b) = (a, b);
        let sends: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| a.isend(NodeId(1), Tag(i as u32), vec![0u8; len]))
            .collect();
        let recvs: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| b.post_recv(NodeId(0), Tag(i as u32), len))
            .collect();
        let mut converged = false;
        for _ in 0..200_000 {
            let moved = a.progress() | b.progress();
            if sends.iter().all(|&s| a.is_send_done(s))
                && recvs.iter().all(|&r| b.is_recv_done(r))
            {
                converged = true;
                break;
            }
            if !moved && world.lock().advance().is_none() {
                break;
            }
        }
        prop_assert!(converged, "workload did not complete");
        let trace = world.lock().take_trace();
        let ma = a.metrics();
        prop_assert_eq!(
            ma.engine.entries_aggregated,
            trace.decision_entries_for(NodeId(0)),
            "sender counter diverged from trace"
        );
        let mb = b.metrics();
        prop_assert_eq!(
            mb.engine.entries_aggregated,
            trace.decision_entries_for(NodeId(1)),
            "receiver counter diverged from trace"
        );
        prop_assert_eq!(
            ma.engine.frames_synthesized + mb.engine.frames_synthesized,
            trace.decisions() as u64,
            "every synthesized frame is one traced decision"
        );
    }

    #[test]
    fn fifo_strategies_preserve_per_flow_order(
        segs in proptest::collection::vec(seg_gen(), 0..24),
    ) {
        // default and aggreg never reorder within a flow; reorder and
        // dynamic may, but per-flow sequence numbers must still appear
        // in increasing order *per flow* for FIFO strategies.
        let caps = Capabilities::from_nic(&nic::mx_myri10g());
        for (name, mut strat) in strategies().into_iter().take(2) {
            let mut window = Window::new(1);
            for (i, g) in segs.iter().enumerate() {
                window.push_segment(
                    PackWrapper {
                        dst: NodeId(g.dst),
                        tag: Tag(g.tag),
                        seq: SeqNo(i as u32),
                        priority: Priority::Normal,
                        data: Bytes::from(vec![0u8; g.len]),
                        req: SendReqId(i as u64),
                        order: i as u64,
                    },
                    None,
                );
            }
            let view = newmadeleine::core::NicView { index: 0, caps: &caps };
            let mut last_seq: std::collections::HashMap<(u32, u32), u32> = Default::default();
            while let Some(plan) = strat.schedule(&mut window, &view) {
                for entry in &plan.entries {
                    let (dst, tag, seq) = match entry {
                        PlanEntry::Data(w) | PlanEntry::Rts(w) => (w.dst.0, w.tag.0, w.seq.0),
                        _ => continue,
                    };
                    if let Some(&prev) = last_seq.get(&(dst, tag)) {
                        prop_assert!(
                            seq > prev,
                            "{name}: flow ({dst},{tag}) scheduled {seq} after {prev}"
                        );
                    }
                    last_seq.insert((dst, tag), seq);
                }
            }
        }
    }
}
