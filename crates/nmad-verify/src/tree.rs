//! Brace/item tree builder: functions, impl context, test scoping.
//!
//! One pass over a [`crate::lexer::Lexed`] token stream recovers the
//! item structure the structural rules need: every `fn` with its name,
//! impl-qualified name, source line, body token range, and whether it
//! sits inside `#[cfg(test)]`/`#[test]` scope. The builder tracks
//! brace nesting with a scope stack — `mod`/`impl`/`fn` heads label
//! the scope their `{` opens, every other brace (blocks, closures,
//! match arms, struct literals) is a plain block that inherits its
//! context.
//!
//! This is an approximation, not a parser: signatures are scanned with
//! a paren/angle-depth counter to find the body brace, generic
//! parameters are skipped rather than understood, and `impl Trait for
//! Type` takes `Type` as the qualifier. For the workspace's own
//! sources (rustfmt-clean, compiling Rust) the approximation is exact
//! in practice, and the analyzer's unit tests pin the cases that
//! matter (nested mods, test scoping, fn-pointer types, trait decls).

use crate::lexer::{Lexed, Tok, TokKind};

/// One function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare name (`try_progress`).
    pub name: String,
    /// Impl-qualified name (`NmadEngine::try_progress`), equal to
    /// `name` for free functions.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// First line of the item's attribute block (== `line` when the fn
    /// has no attributes). Annotation lookups scan comments above this.
    pub attr_top: u32,
    /// Token index range `[open_brace, close_brace]` of the body in
    /// the lexed stream; `None` for bodiless declarations (traits).
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]` scope or carrying `#[test]`.
    pub is_test: bool,
}

#[derive(Clone, Debug)]
enum ScopeKind {
    Block,
    Mod,
    Impl(String),
    Fn(usize), // index into the output items
}

struct Scope {
    kind: ScopeKind,
    test: bool,
}

/// Pending item head since the last `{`, `}`, or `;` at item level.
#[derive(Default)]
struct Head {
    fn_item: Option<PendingFn>,
    impl_ty: Option<String>,
    is_mod: bool,
    test_attr: bool,
    attr_top: Option<u32>,
}

struct PendingFn {
    name: String,
    line: u32,
    attr_top: u32,
    body_open: Option<usize>,
    test_attr: bool,
}

/// Builds the function list for one lexed file.
pub fn parse_items(lexed: &Lexed) -> Vec<FnItem> {
    let toks = &lexed.toks;
    let mut items: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    let mut head = Head::default();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "#" => {
                // Attribute: record its span and whether it is a test
                // marker. `#![...]` inner attributes are skipped the
                // same way.
                let first_line = t.line;
                if head.attr_top.is_none() {
                    head.attr_top = Some(first_line);
                }
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                    let mut depth = 0usize;
                    let mut saw_test = false;
                    while j < toks.len() {
                        let a = &toks[j];
                        if a.is_punct('[') {
                            depth += 1;
                        } else if a.is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if a.is_ident("test") {
                            saw_test = true;
                        }
                        j += 1;
                    }
                    if saw_test {
                        head.test_attr = true;
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            TokKind::Ident if t.text == "mod" => {
                head.is_mod = true;
                i += 1;
            }
            TokKind::Ident if t.text == "impl" => {
                // Collect the implemented type: idents between `impl`
                // and the body `{` (or `;`), taking the segment after
                // `for` when present, otherwise the first path segment
                // past the generics.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut ty: Option<String> = None;
                let mut after_for: Option<String> = None;
                let mut saw_for = false;
                while j < toks.len() {
                    let a = &toks[j];
                    if a.is_punct('{') || a.is_punct(';') {
                        break;
                    }
                    if a.is_punct('<') {
                        angle += 1;
                    } else if a.is_punct('>') && !toks[j - 1].is_punct('-') {
                        angle -= 1;
                    } else if a.is_ident("for") {
                        saw_for = true;
                    } else if a.kind == TokKind::Ident && angle == 0 && a.text != "where" {
                        if saw_for {
                            if after_for.is_none() {
                                after_for = Some(a.text.clone());
                            }
                        } else if ty.is_none() {
                            ty = Some(a.text.clone());
                        }
                    }
                    j += 1;
                }
                head.impl_ty = Some(after_for.or(ty).unwrap_or_default());
                i += 1;
            }
            TokKind::Ident if t.text == "fn" => {
                // `fn(` is a fn-pointer type, not an item.
                match toks.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => {
                        let name = n.text.clone();
                        let line = t.line;
                        let attr_top = head.attr_top.unwrap_or(line);
                        // Scan the signature for the body `{` or a
                        // terminating `;`.
                        let mut j = i + 2;
                        let mut paren = 0i32;
                        let mut angle = 0i32;
                        let mut body_open = None;
                        while j < toks.len() {
                            let a = &toks[j];
                            if a.is_punct('(') {
                                paren += 1;
                            } else if a.is_punct(')') {
                                paren -= 1;
                            } else if a.is_punct('<') {
                                angle += 1;
                            } else if a.is_punct('>') && !toks[j - 1].is_punct('-') {
                                angle -= 1;
                            } else if a.is_punct('{') && paren == 0 && angle <= 0 {
                                body_open = Some(j);
                                break;
                            } else if a.is_punct(';') && paren == 0 {
                                break;
                            }
                            j += 1;
                        }
                        head.fn_item = Some(PendingFn {
                            name,
                            line,
                            attr_top,
                            body_open,
                            test_attr: head.test_attr,
                        });
                        if head.fn_item.as_ref().is_some_and(|f| f.body_open.is_none()) {
                            // Bodiless declaration: record immediately.
                            let inherited = stack.iter().any(|s| s.test);
                            let f = head.fn_item.take().unwrap();
                            let qual = qualify(&stack, &f.name);
                            items.push(FnItem {
                                name: f.name,
                                qual,
                                line: f.line,
                                attr_top: f.attr_top,
                                body: None,
                                is_test: inherited || f.test_attr,
                            });
                            head.test_attr = false;
                            head.attr_top = None;
                        }
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            TokKind::Punct if t.text == "{" => {
                let inherited = stack.iter().any(|s| s.test);
                let scope = if head
                    .fn_item
                    .as_ref()
                    .is_some_and(|f| f.body_open == Some(i))
                {
                    let f = head.fn_item.take().unwrap();
                    let qual = qualify(&stack, &f.name);
                    items.push(FnItem {
                        name: f.name,
                        qual,
                        line: f.line,
                        attr_top: f.attr_top,
                        body: Some((i, i)), // close patched on pop
                        is_test: inherited || f.test_attr,
                    });
                    Scope {
                        kind: ScopeKind::Fn(items.len() - 1),
                        test: inherited || head.test_attr,
                    }
                } else if let Some(ty) = head.impl_ty.take() {
                    Scope {
                        kind: ScopeKind::Impl(ty),
                        test: inherited || head.test_attr,
                    }
                } else if head.is_mod {
                    Scope {
                        kind: ScopeKind::Mod,
                        test: inherited || head.test_attr,
                    }
                } else {
                    Scope {
                        kind: ScopeKind::Block,
                        test: inherited,
                    }
                };
                stack.push(scope);
                head = Head::default();
                i += 1;
            }
            TokKind::Punct if t.text == "}" => {
                if let Some(scope) = stack.pop() {
                    if let ScopeKind::Fn(idx) = scope.kind {
                        if let Some((open, _)) = items[idx].body {
                            items[idx].body = Some((open, i));
                        }
                    }
                }
                head = Head::default();
                i += 1;
            }
            TokKind::Punct if t.text == ";" => {
                head = Head::default();
                i += 1;
            }
            _ => i += 1,
        }
    }
    items
}

fn qualify(stack: &[Scope], name: &str) -> String {
    for scope in stack.iter().rev() {
        if let ScopeKind::Impl(ty) = &scope.kind {
            if !ty.is_empty() {
                return format!("{ty}::{name}");
            }
        }
    }
    name.to_string()
}

/// True when `tok` at `idx` begins a call: `ident (`. Method calls
/// (`.ident(`) match too; definitions (`fn ident(`) and macro
/// invocations (`ident!(`) do not.
pub fn is_call(toks: &[Tok], idx: usize) -> bool {
    let t = &toks[idx];
    if t.kind != TokKind::Ident {
        return false;
    }
    if !toks.get(idx + 1).is_some_and(|n| n.is_punct('(')) {
        return false;
    }
    if idx > 0 && toks[idx - 1].is_ident("fn") {
        return false;
    }
    // Control-flow keywords followed by a parenthesized expression.
    !matches!(
        t.text.as_str(),
        "if" | "while" | "for" | "match" | "loop" | "return" | "in" | "move"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items_of(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src))
    }

    #[test]
    fn finds_free_and_impl_fns_with_quals() {
        let src = "fn free() { body(); }\n\
                   impl Ring { pub fn push(&self) { let x = 1; } }\n\
                   impl Driver for TcpDriver { fn pump(&mut self) {} }\n";
        let items = items_of(src);
        let quals: Vec<&str> = items.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["free", "Ring::push", "TcpDriver::pump"]);
        assert_eq!(items[0].line, 1);
        assert!(items.iter().all(|f| !f.is_test));
    }

    #[test]
    fn body_ranges_cover_nested_braces() {
        let src = "fn outer() { if x { y(); } match z { _ => {} } }\nfn after() {}\n";
        let items = items_of(src);
        assert_eq!(items.len(), 2);
        let lexed = lex(src);
        let (open, close) = items[0].body.unwrap();
        assert!(lexed.toks[open].is_punct('{'));
        assert!(lexed.toks[close].is_punct('}'));
        // The close brace of `outer` is on line 1; `after` opens fresh.
        assert_eq!(lexed.toks[close].line, 1);
        assert_eq!(items[1].name, "after");
    }

    #[test]
    fn cfg_test_mod_and_test_attr_mark_fns() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn check() { prod(); }\n    fn helper() {}\n}\n";
        let items = items_of(src);
        let by_name = |n: &str| items.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").is_test);
        assert!(by_name("check").is_test);
        assert!(
            by_name("helper").is_test,
            "helpers in test mods are test code"
        );
    }

    #[test]
    fn fn_pointer_types_and_trait_decls_do_not_confuse_the_parser() {
        let src = "trait T { fn decl(&self); }\n\
                   fn takes(f: fn(u32) -> u32) -> fn(u32) -> u32 { f }\n";
        let items = items_of(src);
        let decl = items.iter().find(|f| f.name == "decl").unwrap();
        assert!(decl.body.is_none());
        let takes = items.iter().find(|f| f.name == "takes").unwrap();
        assert!(takes.body.is_some());
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn generics_and_where_clauses_are_skipped() {
        let src = "impl<T: Send, const N: usize> Batch<T, N> {\n\
                       pub fn push<F>(&mut self, f: F) -> Result<(), T> where F: Fn() -> T { Err(f()) }\n\
                   }\n";
        let items = items_of(src);
        assert_eq!(items[0].qual, "Batch::push");
        assert!(items[0].body.is_some());
    }

    #[test]
    fn attr_top_precedes_attributes() {
        let src = "// HOT-PATH\n#[inline]\n#[allow(dead_code)]\npub fn fast() {}\n";
        let items = items_of(src);
        assert_eq!(items[0].line, 4);
        assert_eq!(items[0].attr_top, 2);
    }

    #[test]
    fn call_detection() {
        let lexed = lex("fn f() { g(); x.h(); mac!(z); if (a) {} }\n");
        let calls: Vec<&str> = lexed
            .toks
            .iter()
            .enumerate()
            .filter(|&(i, _)| is_call(&lexed.toks, i))
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert_eq!(calls, vec!["g", "h"]);
    }
}
