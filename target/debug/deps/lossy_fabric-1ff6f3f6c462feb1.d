/root/repo/target/debug/deps/lossy_fabric-1ff6f3f6c462feb1.d: tests/lossy_fabric.rs Cargo.toml

/root/repo/target/debug/deps/liblossy_fabric-1ff6f3f6c462feb1.rmeta: tests/lossy_fabric.rs Cargo.toml

tests/lossy_fabric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
