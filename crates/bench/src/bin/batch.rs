//! Hot-path batching benchmark (`BENCH_batch.json`).
//!
//! Three scenarios, each measuring the *fixed* per-operation cost the
//! engine's own machinery adds — the overhead the paper's §4 latency
//! figures require to stay negligible:
//!
//! * **submit_overhead** — wall-clock per op of posting a burst of
//!   receives to a threaded engine. `batch1` submits one op per ring
//!   slot with one doorbell each (the pre-batching path); `batch32`
//!   stages the burst through `ThreadedHandle::submit_batch` flushing
//!   every 32 ops, so slots carry `SLOT_OPS` ops per CAS and each
//!   flush rings one doorbell. Receive posts are the purest probe of
//!   the submission machinery: the op carries no payload, so nothing
//!   in the timed region allocates or copies message data — the
//!   number is id allocation + ring traffic + doorbell, which is
//!   exactly what batching amortizes.
//! * **submit_send** — the same burst shape with real 32-byte sends
//!   (completions drained off the clock). Reported for context: the
//!   per-op cost adds payload handling and, on small hosts, the
//!   progression thread's processing interleaves with submission, so
//!   the batching gain is diluted relative to `submit_overhead`.
//! * **sim_events_10k** — a 10 000-flow discrete-event workload (every
//!   pop schedules a successor, the simulator's steady state) run
//!   through the old `BinaryHeap` event queue and the timer wheel that
//!   replaced it ([`nmad_sim::TimerWheel`]), per event.
//!
//! The derived `speedups` section records baseline/variant ratios; the
//! perf-gate CI job diffs them against `BENCH_baseline/` and fails the
//! build if they regress.
//!
//! Run: `cargo run --release -p bench --bin batch [-- --quick]`

use std::time::Instant;

use bench::{median, BatchReport, BatchRow, Table, BENCH_BATCH_JSON_PATH};
use nmad_core::prelude::*;
use nmad_net::mem::mem_fabric;
use nmad_net::{MemDriver, NullMeter};
use nmad_sim::{HeapQueue, NodeId, SimTime, TimerWheel};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Sends submitted per timed burst.
const BURST: usize = 256;
/// Ops per flush on the batched variant.
const FLUSH_EVERY: usize = 32;
/// Concurrent flows in the event-queue scenario.
const FLOWS: usize = 10_000;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = bench::json_arg().unwrap_or_else(|| BENCH_BATCH_JSON_PATH.to_string());
    let reps = if quick { 5 } else { 11 };
    let report = BatchReport::new();

    println!("\n## hot-path batching — per-op overhead\n");
    let mut table = Table::new(vec!["bench", "variant", "ns/op", "ops", "speedup"]);

    // --- submit_overhead: threaded engine, burst of BURST recv posts ---
    let single_ns = submit_overhead(false, reps);
    let batched_ns = submit_overhead(true, reps);
    let submit_speedup = single_ns / batched_ns.max(f64::EPSILON);
    for (variant, ns, speedup) in [
        ("batch1", single_ns, String::new()),
        ("batch32", batched_ns, format!("{submit_speedup:.2}x")),
    ] {
        table.row(vec![
            "submit_overhead".to_string(),
            variant.to_string(),
            format!("{ns:.1}"),
            BURST.to_string(),
            speedup,
        ]);
        report.record(BatchRow {
            bench: "submit_overhead".to_string(),
            variant: variant.to_string(),
            ns_per_op: ns,
            ops: BURST as u64,
        });
    }
    report.record_speedup("submit_batch32_vs_batch1", submit_speedup);

    // --- submit_send: same burst shape, real sends, for context ---
    let send_single_ns = submit_send(false, reps);
    let send_batched_ns = submit_send(true, reps);
    let send_speedup = send_single_ns / send_batched_ns.max(f64::EPSILON);
    for (variant, ns, speedup) in [
        ("batch1", send_single_ns, String::new()),
        ("batch32", send_batched_ns, format!("{send_speedup:.2}x")),
    ] {
        table.row(vec![
            "submit_send".to_string(),
            variant.to_string(),
            format!("{ns:.1}"),
            BURST.to_string(),
            speedup,
        ]);
        report.record(BatchRow {
            bench: "submit_send".to_string(),
            variant: variant.to_string(),
            ns_per_op: ns,
            ops: BURST as u64,
        });
    }
    report.record_speedup("send_batch32_vs_batch1", send_speedup);

    // --- sim_events_10k: event queue under a pop-and-reschedule load ---
    let steps = if quick { 100_000u64 } else { 400_000 };
    let heap_ns = event_queue_ns(HeapQueue::new, steps, reps);
    let wheel_ns = event_queue_ns(TimerWheel::new, steps, reps);
    let wheel_speedup = heap_ns / wheel_ns.max(f64::EPSILON);
    for (variant, ns, speedup) in [
        ("heap", heap_ns, String::new()),
        ("wheel", wheel_ns, format!("{wheel_speedup:.2}x")),
    ] {
        table.row(vec![
            "sim_events_10k".to_string(),
            variant.to_string(),
            format!("{ns:.1}"),
            steps.to_string(),
            speedup,
        ]);
        report.record(BatchRow {
            bench: "sim_events_10k".to_string(),
            variant: variant.to_string(),
            ns_per_op: ns,
            ops: steps,
        });
    }
    report.record_speedup("wheel_vs_heap_10k_flows", wheel_speedup);

    table.print();
    report.write(&json);
}

fn engine(d: MemDriver) -> NmadEngine {
    NmadEngine::new(
        vec![Box::new(d)],
        Box::new(NullMeter),
        Box::new(StratAggreg),
        EngineCosts::zero(),
    )
}

/// Median ns per posted receive over `reps` bursts. A receive post is
/// the submission machinery with nothing else attached: no payload
/// allocation, no completion to drain. The first post of each run
/// keeps the progression thread awake (posted receives count as
/// outstanding work), so from there on the doorbell is its user-space
/// fast path for both variants and the delta is purely the per-op CAS
/// + doorbell the batch amortizes.
fn submit_overhead(batched: bool, reps: usize) -> f64 {
    let mut fabric = mem_fabric(2);
    let _sink = fabric.pop().expect("two");
    let init = ThreadedEngine::launch(engine(fabric.pop().expect("two")), EngineConfig::threaded());
    let h = init.handle();
    // Park-breaker: with one receive posted the progression thread
    // yields between pumps instead of parking, as it would in an
    // application with pre-posted receives.
    h.post_recv(NodeId(1), Tag(u32::MAX), 16);

    let mut per_op = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let t0 = Instant::now();
        if batched {
            let mut batch = h.submit_batch();
            for i in 0..BURST {
                batch.post_recv(NodeId(1), Tag(i as u32), 64);
                if batch.pending() == FLUSH_EVERY {
                    batch.flush();
                }
            }
            batch.flush();
        } else {
            for i in 0..BURST {
                h.post_recv(NodeId(1), Tag(i as u32), 64);
            }
        }
        let elapsed = t0.elapsed();
        if rep > 0 {
            // Rep 0 is warmup: pools fill, threads stop parking.
            per_op.push(elapsed.as_nanos() as f64 / BURST as f64);
        }
        // Off the clock: let the progression thread drain the ring so
        // the next rep starts from an empty ring, not backpressure.
        while h.hot_metrics().0.recvs_posted < ((rep + 1) * BURST) as u64 + 1 {
            std::thread::yield_now();
        }
    }
    median(&per_op)
}

/// Median ns per submitted send over `reps` bursts. Only the
/// submission calls are on the clock; the drain (wait + take) runs
/// after it stops. Unlike [`submit_overhead`] this carries a real
/// payload per op and real engine work behind it.
fn submit_send(batched: bool, reps: usize) -> f64 {
    let mut fabric = mem_fabric(2);
    let sink = ThreadedEngine::launch(engine(fabric.pop().expect("two")), EngineConfig::threaded());
    let init = ThreadedEngine::launch(engine(fabric.pop().expect("two")), EngineConfig::threaded());
    let (h, sink_h) = (init.handle(), sink.handle());
    // Bytes, not Vec: cloning in the timed loop is a refcount bump,
    // the same for both variants, instead of a fresh allocation.
    let payload = bytes::Bytes::from(vec![0x5Au8; 32]);

    let mut per_op = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let recvs: Vec<_> = (0..BURST)
            .map(|i| sink_h.post_recv(NodeId(0), Tag(i as u32), 64))
            .collect();
        let t0 = Instant::now();
        let sends: Vec<_> = if batched {
            let mut batch = h.submit_batch();
            let mut sends = Vec::with_capacity(BURST);
            for i in 0..BURST {
                sends.push(batch.isend(NodeId(1), Tag(i as u32), payload.clone()));
                if batch.pending() == FLUSH_EVERY {
                    batch.flush();
                }
            }
            batch.flush();
            sends
        } else {
            (0..BURST)
                .map(|i| h.isend(NodeId(1), Tag(i as u32), payload.clone()))
                .collect()
        };
        let elapsed = t0.elapsed();
        h.wait_sends(&sends);
        let _ = sink_h.wait_recvs(&recvs);
        if rep > 0 {
            per_op.push(elapsed.as_nanos() as f64 / BURST as f64);
        }
    }
    median(&per_op)
}

/// One queue API both event-queue variants implement.
trait EventQueue {
    fn push(&mut self, t: SimTime);
    fn pop_earliest(&mut self) -> Option<SimTime>;
}

impl EventQueue for HeapQueue {
    fn push(&mut self, t: SimTime) {
        HeapQueue::push(self, t)
    }
    fn pop_earliest(&mut self) -> Option<SimTime> {
        HeapQueue::pop_earliest(self)
    }
}

impl EventQueue for TimerWheel {
    fn push(&mut self, t: SimTime) {
        TimerWheel::push(self, t)
    }
    fn pop_earliest(&mut self) -> Option<SimTime> {
        TimerWheel::pop_earliest(self)
    }
}

/// Median ns per event over `reps` runs of the 10k-flow workload:
/// seed FLOWS events, then `steps` pop-and-reschedule iterations (the
/// queue holds ~FLOWS events throughout), then drain. The seeds and
/// increments are pregenerated so the clock covers only queue
/// operations, not the rng that drives them — that cost is identical
/// for both variants and would dilute the ratio between them. Each
/// rep gets a fresh queue: a reused wheel's cursor sits at the
/// previous run's horizon, which is not the state the simulator
/// starts from.
fn event_queue_ns<Q: EventQueue>(fresh: impl Fn() -> Q, steps: u64, reps: usize) -> f64 {
    let mut per_op = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let mut rng = StdRng::seed_from_u64(0xBA7C ^ rep as u64);
        let seeds: Vec<u64> = (0..FLOWS).map(|_| rng.gen_range(0..1_000_000u64)).collect();
        let incs: Vec<u64> = (0..steps).map(|_| rng.gen_range(1..10_000u64)).collect();
        let mut queue = fresh();
        let t0 = Instant::now();
        for &s in &seeds {
            queue.push(SimTime::from_ns(s));
        }
        for &inc in &incs {
            let t = queue.pop_earliest().expect("queue drained early");
            queue.push(SimTime::from_ns(std::hint::black_box(t).as_ns() + inc));
        }
        while let Some(t) = queue.pop_earliest() {
            std::hint::black_box(t);
        }
        if rep > 0 {
            per_op.push(t0.elapsed().as_nanos() as f64 / steps as f64);
        }
    }
    median(&per_op)
}
