//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness with criterion's API
//! shape: `Criterion`, groups, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. It reports a mean time
//! per iteration on stdout — no statistics, no HTML reports — and is
//! deliberately quick so `cargo bench` stays usable as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budget: enough samples for a stable mean without
/// making full `cargo bench` runs take minutes.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Hard cap on measured iterations within the budget.
const MAX_ITERS: u64 = 1_000;

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

/// Throughput annotation attached to a group (printed with results).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine`, repeating it until the sample budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && started.elapsed() < MEASURE_BUDGET {
            black_box(routine());
            iters += 1;
        }
        self.total = started.elapsed();
        self.iters_done = iters.max(1);
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let per_iter = self.total.as_nanos() as f64 / self.iters_done as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
                format!(
                    " ({:.1} MiB/s)",
                    b as f64 / per_iter * 1e9 / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!(" ({:.2} Melem/s)", n as f64 / per_iter * 1e9 / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "bench {id:<50} {:>12.1} ns/iter{rate}  [{} iters]",
            per_iter, self.iters_done
        );
    }
}

impl Criterion {
    /// Sets the (advisory) sample count, mirroring criterion's builder.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_one(id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the advisory sample count (accepted, unused by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.report(id, throughput);
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut hits = 0u64;
        Criterion::default().bench_function("shim_smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0, "routine never executed");
    }

    #[test]
    fn groups_compose_ids_and_throughput() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(64));
        group.bench_function(BenchmarkId::from_parameter(64), |b| b.iter(|| black_box(1)));
        group.bench_with_input(BenchmarkId::new("f", 8), &8usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
