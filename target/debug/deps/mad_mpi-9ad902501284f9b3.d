/root/repo/target/debug/deps/mad_mpi-9ad902501284f9b3.d: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs Cargo.toml

/root/repo/target/debug/deps/libmad_mpi-9ad902501284f9b3.rmeta: crates/mad-mpi/src/lib.rs crates/mad-mpi/src/backend.rs crates/mad-mpi/src/cluster.rs crates/mad-mpi/src/coll.rs crates/mad-mpi/src/datatype.rs crates/mad-mpi/src/p2p.rs Cargo.toml

crates/mad-mpi/src/lib.rs:
crates/mad-mpi/src/backend.rs:
crates/mad-mpi/src/cluster.rs:
crates/mad-mpi/src/coll.rs:
crates/mad-mpi/src/datatype.rs:
crates/mad-mpi/src/p2p.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
