/root/repo/target/debug/examples/lossy_ethernet-9a7e5f7122bba838.d: examples/lossy_ethernet.rs Cargo.toml

/root/repo/target/debug/examples/liblossy_ethernet-9a7e5f7122bba838.rmeta: examples/lossy_ethernet.rs Cargo.toml

examples/lossy_ethernet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
