//! Machine-readable ping-pong reports (`BENCH_pingpong.json`).
//!
//! The figure binaries print markdown tables for humans; CI wants the
//! same numbers as JSON it can archive and diff across runs. Each row
//! is one sweep point: the median one-way latency over the repeats,
//! the frames per ping, and the zero-copy counters (staging copies,
//! gather sends, pool traffic) read from the initiator's engine at the
//! end of the run.

use crate::pingpong::PingPongSample;
use std::sync::{Mutex, OnceLock};

/// Default output path; every ping-pong-style binary writes here
/// unless `--bench-json PATH` overrides it.
pub const BENCH_JSON_PATH: &str = "BENCH_pingpong.json";

/// Value of a `--bench-json PATH` argument, or the default path.
pub fn bench_json_arg() -> String {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--bench-json" {
            if let Some(path) = args.next() {
                return path;
            }
            eprintln!("--bench-json requires a path; using {BENCH_JSON_PATH}");
        }
    }
    BENCH_JSON_PATH.to_string()
}

/// One sweep point of one benchmark, flattened for JSON.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Benchmark label, e.g. `fig2/MX/Myri-10G` or `pingpong/mem`.
    pub bench: String,
    /// Engine or library under test, e.g. `madmpi(aggreg)`.
    pub engine: String,
    /// Message size in bytes.
    pub size: usize,
    /// Median one-way latency over the recorded repeats, µs.
    pub one_way_us_median: f64,
    /// Bandwidth of the median repeat, MB/s.
    pub bandwidth_mbs: f64,
    /// Wire frames the initiator sent per ping.
    pub frames_per_ping: f64,
    /// Frames that needed a staging copy (gather fallback).
    pub staging_copies: u64,
    /// Frames posted as multi-segment gather iovs.
    pub gather_sends: u64,
    /// Frame buffers served from the recycling pool.
    pub pool_hits: u64,
    /// Frame buffers freshly allocated.
    pub pool_misses: u64,
}

/// Thread-safe accumulator for [`BenchRow`]s; render with
/// [`to_json`](Self::to_json) or persist with [`write`](Self::write).
#[derive(Default)]
pub struct BenchReport {
    rows: Mutex<Vec<BenchRow>>,
}

/// Median of `values`; NaN-free inputs assumed (they are latencies).
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

impl BenchReport {
    /// Fresh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sweep point from its repeat samples. The latency is
    /// the median across `samples`; counters come from the last repeat
    /// (they are cumulative over the engine's life).
    pub fn record(&self, bench: &str, engine: &str, size: usize, samples: &[PingPongSample]) {
        assert!(!samples.is_empty());
        let lats: Vec<f64> = samples.iter().map(|s| s.one_way_us).collect();
        let last = samples.last().expect("non-empty");
        let (staging, gather, hits, misses) = match &last.metrics {
            Some(m) => (
                m.wire.staging_copies,
                m.engine.gather_sends,
                m.engine.pool_hits,
                m.engine.pool_misses,
            ),
            None => (0, 0, 0, 0),
        };
        self.rows.lock().expect("report poisoned").push(BenchRow {
            bench: bench.to_string(),
            engine: engine.to_string(),
            size,
            one_way_us_median: median(&lats),
            bandwidth_mbs: last.bandwidth_mbs,
            frames_per_ping: last.frames_per_ping,
            staging_copies: staging,
            gather_sends: gather,
            pool_hits: hits,
            pool_misses: misses,
        });
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("report poisoned").len()
    }

    /// No rows yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole report as one JSON document, including the
    /// verification-coverage section (see [`VerifySummary`]).
    pub fn to_json(&self) -> String {
        let rows = self.rows.lock().expect("report poisoned");
        let mut out = String::from("{\"benchmarks\":[");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"bench\":\"{}\",\"engine\":\"{}\",\"size\":{},\
                 \"one_way_us_median\":{:.4},\"bandwidth_mbs\":{:.2},\
                 \"frames_per_ping\":{:.3},\"staging_copies\":{},\
                 \"gather_sends\":{},\"pool_hits\":{},\"pool_misses\":{}}}",
                escape(&r.bench),
                escape(&r.engine),
                r.size,
                r.one_way_us_median,
                r.bandwidth_mbs,
                r.frames_per_ping,
                r.staging_copies,
                r.gather_sends,
                r.pool_hits,
                r.pool_misses,
            ));
        }
        out.push_str("],\"verify\":");
        out.push_str(&VerifySummary::probe().to_json());
        out.push('}');
        out
    }

    /// Writes the report; failures are printed, never propagated (a
    /// benchmark must not die on a bad path).
    pub fn write(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => eprintln!("wrote {} bench rows to {path}", self.len()),
            Err(e) => eprintln!("could not write bench report {path}: {e}"),
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Verification coverage bundled into every bench report.
///
/// Performance numbers from the lock-free engine are only as good as
/// the engine's correctness, so each report records what the
/// verification layer covered when it was produced: how many distinct
/// schedules the nmad-verify coverage probe explored (and how many
/// states its dedup pruned), and how many rules the
/// ordering/determinism lint enforces. CI archives the report, so a
/// regression that guts the exploration shows up in the diff.
#[derive(Clone, Debug)]
pub struct VerifySummary {
    /// Distinct schedules the model-checking coverage probe explored.
    pub schedules_explored: u64,
    /// Scheduling subtrees pruned by state-hash dedup during the probe.
    pub states_deduped: u64,
    /// Deepest decision path over all explored executions.
    pub max_depth: usize,
    /// Rules the `xtask lint` ordering/determinism pass enforces.
    pub lint_rules: usize,
}

impl VerifySummary {
    /// Runs the nmad-verify coverage probe (once per process — the
    /// result is cached) and pairs it with the lint rule count.
    pub fn probe() -> &'static VerifySummary {
        static PROBE: OnceLock<VerifySummary> = OnceLock::new();
        PROBE.get_or_init(|| {
            let stats = nmad_verify::coverage_probe();
            VerifySummary {
                schedules_explored: stats.schedules,
                states_deduped: stats.states_deduped,
                max_depth: stats.max_depth,
                lint_rules: nmad_verify::lint::RULES.len(),
            }
        })
    }

    /// The summary as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schedules_explored\":{},\"states_deduped\":{},\
             \"max_depth\":{},\"lint_rules\":{}}}",
            self.schedules_explored, self.states_deduped, self.max_depth, self.lint_rules,
        )
    }
}

/// Default output path of the computation/communication overlap
/// benchmark (`overlap` binary); `--json PATH` overrides it.
pub const BENCH_OVERLAP_JSON_PATH: &str = "BENCH_overlap.json";

/// One sweep point of the overlap benchmark: one progression mode at
/// one message size.
#[derive(Clone, Debug)]
pub struct OverlapRow {
    /// Progression mode under test: `inline` or `threaded`.
    pub mode: String,
    /// Message size in bytes.
    pub size: usize,
    /// Messages posted per round.
    pub msgs_per_round: usize,
    /// Reference communication cost: median drain of an inline round
    /// with no compute phase at this size, µs. Both modes of a size
    /// are scored against the same reference.
    pub comm_us: f64,
    /// Busy-compute phase injected between post and drain, µs.
    pub compute_us: f64,
    /// Median wall-clock of the full post→compute→drain round, µs.
    pub total_us: f64,
    /// Communication/computation overlap achieved: the share of the
    /// communication already finished when the compute phase ended,
    /// `clamp((comm_us - drain_us) / comm_us, 0..1) * 100`.
    pub overlap_pct: f64,
    /// Median latency from the end of the compute phase until every
    /// transfer completed, µs.
    pub drain_us: f64,
}

/// Thread-safe accumulator for [`OverlapRow`]s, rendered as one JSON
/// document (`BENCH_overlap.json`).
#[derive(Default)]
pub struct OverlapReport {
    rows: Mutex<Vec<OverlapRow>>,
}

impl OverlapReport {
    /// Fresh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sweep point.
    pub fn record(&self, row: OverlapRow) {
        self.rows.lock().expect("report poisoned").push(row);
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("report poisoned").len()
    }

    /// No rows yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole report as one JSON document.
    pub fn to_json(&self) -> String {
        let rows = self.rows.lock().expect("report poisoned");
        let mut out = String::from("{\"overlap\":[");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"mode\":\"{}\",\"size\":{},\"msgs_per_round\":{},\
                 \"comm_us\":{:.2},\"compute_us\":{:.2},\"total_us\":{:.2},\
                 \"overlap_pct\":{:.1},\"drain_us\":{:.2}}}",
                escape(&r.mode),
                r.size,
                r.msgs_per_round,
                r.comm_us,
                r.compute_us,
                r.total_us,
                r.overlap_pct,
                r.drain_us,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes the report; failures are printed, never propagated.
    pub fn write(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => eprintln!("wrote {} overlap rows to {path}", self.len()),
            Err(e) => eprintln!("could not write overlap report {path}: {e}"),
        }
    }
}

/// Default output path of the hot-path batching benchmark (`batch`
/// binary); `--json PATH` overrides it.
pub const BENCH_BATCH_JSON_PATH: &str = "BENCH_batch.json";

/// One measurement of the batching benchmark: one variant (e.g.
/// `batch=1` vs `batch=32` submission, or `heap` vs `wheel` event
/// queue) of one scenario.
#[derive(Clone, Debug)]
pub struct BatchRow {
    /// Scenario, e.g. `submit_overhead` or `sim_events_10k`.
    pub bench: String,
    /// Variant within the scenario, e.g. `batch1`, `batch32`, `heap`,
    /// `wheel`.
    pub variant: String,
    /// Cost per operation (per submitted op, per event), nanoseconds.
    pub ns_per_op: f64,
    /// Operations measured.
    pub ops: u64,
}

/// Accumulator for [`BatchRow`]s plus named speedup ratios derived
/// from them, rendered as one JSON document (`BENCH_batch.json`).
#[derive(Default)]
pub struct BatchReport {
    rows: Mutex<Vec<BatchRow>>,
    speedups: Mutex<Vec<(String, f64)>>,
}

impl BatchReport {
    /// Fresh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measurement.
    pub fn record(&self, row: BatchRow) {
        self.rows.lock().expect("report poisoned").push(row);
    }

    /// Records a named speedup ratio (baseline time / variant time —
    /// higher is better, 1.0 is parity).
    pub fn record_speedup(&self, name: &str, ratio: f64) {
        self.speedups
            .lock()
            .expect("report poisoned")
            .push((name.to_string(), ratio));
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("report poisoned").len()
    }

    /// No rows yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole report as one JSON document.
    pub fn to_json(&self) -> String {
        let rows = self.rows.lock().expect("report poisoned");
        let mut out = String::from("{\"batch\":[");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"bench\":\"{}\",\"variant\":\"{}\",\
                 \"ns_per_op\":{:.2},\"ops\":{}}}",
                escape(&r.bench),
                escape(&r.variant),
                r.ns_per_op,
                r.ops,
            ));
        }
        out.push_str("],\"speedups\":{");
        let speedups = self.speedups.lock().expect("report poisoned");
        for (i, (name, ratio)) in speedups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{:.3}", escape(name), ratio));
        }
        out.push_str("}}");
        out
    }

    /// Writes the report; failures are printed, never propagated.
    pub fn write(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => eprintln!("wrote {} batch rows to {path}", self.len()),
            Err(e) => eprintln!("could not write batch report {path}: {e}"),
        }
    }
}

/// Default output path of the shard-scaling benchmark (`shards`
/// binary); `--json PATH` overrides it.
pub const BENCH_SHARDS_JSON_PATH: &str = "BENCH_shards.json";

/// One point of the shard-scaling curve: the aggregate throughput of
/// one shard count over as many simulated rails.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Progression shards (== rails in this study).
    pub shards: usize,
    /// Simulated rails per node.
    pub rails: usize,
    /// Distinct (tag) flows hashed across the shards.
    pub flows: usize,
    /// Payload bytes moved node 0 → node 1.
    pub total_bytes: u64,
    /// Virtual time to move them, µs.
    pub virtual_us: f64,
    /// Aggregate throughput, MB/s of virtual time.
    pub throughput_mbs: f64,
}

/// Accumulator for [`ShardRow`]s plus named scaling ratios derived from
/// them, rendered as one JSON document (`BENCH_shards.json`).
#[derive(Default)]
pub struct ShardReport {
    rows: Mutex<Vec<ShardRow>>,
    scaling: Mutex<Vec<(String, f64)>>,
}

impl ShardReport {
    /// Fresh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one shard count's measurement.
    pub fn record(&self, row: ShardRow) {
        self.rows.lock().expect("report poisoned").push(row);
    }

    /// Records a named scaling ratio (n-shard throughput / 1-shard
    /// throughput — higher is better, 1.0 is parity).
    pub fn record_scaling(&self, name: &str, ratio: f64) {
        self.scaling
            .lock()
            .expect("report poisoned")
            .push((name.to_string(), ratio));
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("report poisoned").len()
    }

    /// No rows yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole report as one JSON document.
    pub fn to_json(&self) -> String {
        let rows = self.rows.lock().expect("report poisoned");
        let mut out = String::from("{\"shards\":[");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shards\":{},\"rails\":{},\"flows\":{},\
                 \"total_bytes\":{},\"virtual_us\":{:.2},\
                 \"throughput_mbs\":{:.2}}}",
                r.shards, r.rails, r.flows, r.total_bytes, r.virtual_us, r.throughput_mbs,
            ));
        }
        out.push_str("],\"scaling\":{");
        let scaling = self.scaling.lock().expect("report poisoned");
        for (i, (name, ratio)) in scaling.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{:.3}", escape(name), ratio));
        }
        out.push_str("}}");
        out
    }

    /// Writes the report; failures are printed, never propagated.
    pub fn write(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => eprintln!("wrote {} shard rows to {path}", self.len()),
            Err(e) => eprintln!("could not write shard report {path}: {e}"),
        }
    }
}

/// Default output path of the massive-fanout endpoint benchmark
/// (`swarm` binary); `--json PATH` overrides it.
pub const BENCH_SWARM_JSON_PATH: &str = "BENCH_swarm.json";

/// One sweep point of the swarm benchmark: one connection count.
///
/// The two `*_events_*` columns are deterministic event counts from the
/// endpoint layer's readiness accounting and gate in CI; the wall-clock
/// columns (accept churn, echo latency percentiles) are context on a
/// shared runner.
#[derive(Clone, Debug)]
pub struct SwarmRow {
    /// Concurrent established connections at this sweep point.
    pub connections: usize,
    /// Readiness backend the endpoint used (`epoll` / `poll`).
    pub backend: String,
    /// Accept-churn throughput: connections fully handshaken per
    /// second of wall clock, from first dial to full fan-in.
    pub accepts_per_sec: f64,
    /// Echo one-way latency percentiles across the fanout, µs.
    pub ping_p50_us: f64,
    /// 99th percentile, µs.
    pub ping_p99_us: f64,
    /// 99.9th percentile, µs.
    pub ping_p999_us: f64,
    /// Readiness events per pump while every connection idles — the
    /// O(ready) property at rest: exactly 0.0 regardless of the
    /// connection count, or the pump is touching idle sockets.
    pub idle_events_per_pump: f64,
    /// Readiness events serviced per ready socket while exactly K of
    /// the N connections carry traffic — ~1.0 independent of N; the
    /// old linear scan would examine N/K sockets per ready one.
    pub probe_events_per_ready: f64,
}

/// Accumulator for [`SwarmRow`]s plus named probe ratios derived from
/// them, rendered as one JSON document (`BENCH_swarm.json`).
#[derive(Default)]
pub struct SwarmReport {
    rows: Mutex<Vec<SwarmRow>>,
    probes: Mutex<Vec<(String, f64)>>,
}

impl SwarmReport {
    /// Fresh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sweep point.
    pub fn record(&self, row: SwarmRow) {
        self.rows.lock().expect("report poisoned").push(row);
    }

    /// Records a named probe ratio (e.g. the per-ready-socket event
    /// cost at the largest fanout over the smallest — ~1.0 when pump
    /// cost is O(ready), ~N_max/N_min when it is O(held)).
    pub fn record_probe(&self, name: &str, ratio: f64) {
        self.probes
            .lock()
            .expect("report poisoned")
            .push((name.to_string(), ratio));
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("report poisoned").len()
    }

    /// No rows yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole report as one JSON document.
    pub fn to_json(&self) -> String {
        let rows = self.rows.lock().expect("report poisoned");
        let mut out = String::from("{\"swarm\":[");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"connections\":{},\"backend\":\"{}\",\
                 \"accepts_per_sec\":{:.1},\"ping_p50_us\":{:.2},\
                 \"ping_p99_us\":{:.2},\"ping_p999_us\":{:.2},\
                 \"idle_events_per_pump\":{:.4},\"probe_events_per_ready\":{:.4}}}",
                r.connections,
                escape(&r.backend),
                r.accepts_per_sec,
                r.ping_p50_us,
                r.ping_p99_us,
                r.ping_p999_us,
                r.idle_events_per_pump,
                r.probe_events_per_ready,
            ));
        }
        out.push_str("],\"probes\":{");
        let probes = self.probes.lock().expect("report poisoned");
        for (i, (name, ratio)) in probes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{:.3}", escape(name), ratio));
        }
        out.push_str("}}");
        out
    }

    /// Writes the report; failures are printed, never propagated.
    pub fn write(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => eprintln!("wrote {} swarm rows to {path}", self.len()),
            Err(e) => eprintln!("could not write swarm report {path}: {e}"),
        }
    }
}

/// Default output path of the heavy-tail multi-tenant benchmark
/// (`tail` binary); `--json PATH` overrides it.
pub const BENCH_TAIL_JSON_PATH: &str = "BENCH_tail.json";

/// One row of the tail benchmark: the full latency percentile ladder
/// of one tenant class under one strategy in one scenario.
///
/// All latencies are **virtual time** (deterministic simulator
/// nanoseconds, reported in µs), so every percentile — including
/// p99.99 — is bit-reproducible from the seed and can gate in CI.
#[derive(Clone, Debug)]
pub struct TailRow {
    /// Scenario: `mixed` (steady multi-tenant load) or `chaos`
    /// (same load with a seeded fault plan injected mid-run).
    pub scenario: String,
    /// Scheduling strategy under test (`aggreg`, `aggreg_hol`, `lanes`).
    pub strategy: String,
    /// Tenant class label (`urgent-small`, `normal-rpc`, `bulk`).
    pub class: String,
    /// Completed messages of this class.
    pub count: u64,
    /// Median completion latency, µs.
    pub p50_us: f64,
    /// 90th percentile, µs.
    pub p90_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// 99.99th percentile, µs.
    pub p9999_us: f64,
    /// Mean completion latency, µs.
    pub mean_us: f64,
}

/// Accumulator for [`TailRow`]s plus per-strategy aggregate throughput
/// and named cross-strategy ratios, rendered as one JSON document
/// (`BENCH_tail.json`).
#[derive(Default)]
pub struct TailReport {
    rows: Mutex<Vec<TailRow>>,
    throughput: Mutex<Vec<(String, f64)>>,
    ratios: Mutex<Vec<(String, f64)>>,
}

impl TailReport {
    /// Fresh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one class × strategy × scenario percentile ladder.
    pub fn record(&self, row: TailRow) {
        self.rows.lock().expect("report poisoned").push(row);
    }

    /// Records one strategy's aggregate goodput in a scenario,
    /// MB/s of virtual time (key e.g. `mixed/lanes`).
    pub fn record_throughput(&self, key: &str, mbs: f64) {
        self.throughput
            .lock()
            .expect("report poisoned")
            .push((key.to_string(), mbs));
    }

    /// Records a named cross-strategy ratio (e.g. the aggreg-over-lanes
    /// p99.9 of the urgent class — higher means lanes wins by more).
    pub fn record_ratio(&self, name: &str, ratio: f64) {
        self.ratios
            .lock()
            .expect("report poisoned")
            .push((name.to_string(), ratio));
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.lock().expect("report poisoned").len()
    }

    /// No rows yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole report as one JSON document.
    pub fn to_json(&self) -> String {
        let rows = self.rows.lock().expect("report poisoned");
        let mut out = String::from("{\"tail\":[");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"scenario\":\"{}\",\"strategy\":\"{}\",\"class\":\"{}\",\
                 \"count\":{},\"p50_us\":{:.3},\"p90_us\":{:.3},\"p99_us\":{:.3},\
                 \"p999_us\":{:.3},\"p9999_us\":{:.3},\"mean_us\":{:.3}}}",
                escape(&r.scenario),
                escape(&r.strategy),
                escape(&r.class),
                r.count,
                r.p50_us,
                r.p90_us,
                r.p99_us,
                r.p999_us,
                r.p9999_us,
                r.mean_us,
            ));
        }
        out.push_str("],\"throughput\":{");
        let tp = self.throughput.lock().expect("report poisoned");
        for (i, (name, mbs)) in tp.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{:.2}", escape(name), mbs));
        }
        out.push_str("},\"ratios\":{");
        let ratios = self.ratios.lock().expect("report poisoned");
        for (i, (name, ratio)) in ratios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{:.3}", escape(name), ratio));
        }
        out.push_str("}}");
        out
    }

    /// Writes the report; failures are printed, never propagated.
    pub fn write(&self, path: &str) {
        match std::fs::write(path, self.to_json()) {
            Ok(()) => eprintln!("wrote {} tail rows to {path}", self.len()),
            Err(e) => eprintln!("could not write tail report {path}: {e}"),
        }
    }
}

/// The `q`-th percentile (0.0..=1.0) of `values` by nearest-rank;
/// panics on an empty slice (a latency sample set is never empty).
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(us: f64) -> PingPongSample {
        PingPongSample {
            one_way_us: us,
            bandwidth_mbs: 100.0,
            frames_per_ping: 1.0,
            metrics: None,
        }
    }

    #[test]
    fn batch_report_renders_rows_and_speedups_as_json() {
        let report = BatchReport::new();
        assert!(report.is_empty());
        report.record(BatchRow {
            bench: "submit_overhead".to_string(),
            variant: "batch32".to_string(),
            ns_per_op: 41.25,
            ops: 100_000,
        });
        report.record_speedup("submit_batch32_vs_batch1", 3.7);
        let json = report.to_json();
        assert!(json.contains("\"bench\":\"submit_overhead\""));
        assert!(json.contains("\"variant\":\"batch32\""));
        assert!(json.contains("\"ns_per_op\":41.25"), "{json}");
        assert!(
            json.contains("\"submit_batch32_vs_batch1\":3.700"),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn shard_report_renders_rows_and_scaling_as_json() {
        let report = ShardReport::new();
        assert!(report.is_empty());
        report.record(ShardRow {
            shards: 4,
            rails: 4,
            flows: 64,
            total_bytes: 16 << 20,
            virtual_us: 4200.5,
            throughput_mbs: 3993.81,
        });
        report.record_scaling("scale_4x_over_1x", 3.8);
        let json = report.to_json();
        assert!(json.contains("\"shards\":4"));
        assert!(json.contains("\"throughput_mbs\":3993.81"), "{json}");
        assert!(json.contains("\"scale_4x_over_1x\":3.800"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn median_handles_odd_and_even_counts() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.5), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.999), 100.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[3.0, 1.0], 0.0), 1.0);
    }

    #[test]
    fn swarm_report_renders_rows_and_probes_as_json() {
        let report = SwarmReport::new();
        assert!(report.is_empty());
        report.record(SwarmRow {
            connections: 10000,
            backend: "epoll".to_string(),
            accepts_per_sec: 4321.0,
            ping_p50_us: 18.5,
            ping_p99_us: 90.25,
            ping_p999_us: 240.75,
            idle_events_per_pump: 0.0,
            probe_events_per_ready: 1.0,
        });
        report.record_probe("ready_cost_10000_vs_64", 1.02);
        let json = report.to_json();
        assert!(json.contains("\"connections\":10000"));
        assert!(json.contains("\"backend\":\"epoll\""));
        assert!(json.contains("\"ping_p99_us\":90.25"), "{json}");
        assert!(json.contains("\"idle_events_per_pump\":0.0000"), "{json}");
        assert!(json.contains("\"probe_events_per_ready\":1.0000"), "{json}");
        assert!(json.contains("\"ready_cost_10000_vs_64\":1.020"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn overlap_report_renders_rows_as_json() {
        let report = OverlapReport::new();
        assert!(report.is_empty());
        report.record(OverlapRow {
            mode: "threaded".to_string(),
            size: 65536,
            msgs_per_round: 8,
            comm_us: 120.0,
            compute_us: 240.0,
            total_us: 250.0,
            overlap_pct: 91.7,
            drain_us: 10.0,
        });
        let json = report.to_json();
        assert!(json.contains("\"mode\":\"threaded\""));
        assert!(json.contains("\"size\":65536"));
        assert!(json.contains("\"overlap_pct\":91.7"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn tail_report_renders_rows_throughput_and_ratios_as_json() {
        let report = TailReport::new();
        assert!(report.is_empty());
        report.record(TailRow {
            scenario: "mixed".to_string(),
            strategy: "lanes".to_string(),
            class: "urgent-small".to_string(),
            count: 2000,
            p50_us: 3.2,
            p90_us: 6.1,
            p99_us: 11.0,
            p999_us: 18.75,
            p9999_us: 31.5,
            mean_us: 4.0,
        });
        report.record_throughput("mixed/lanes", 812.5);
        report.record_ratio("mixed/urgent-small/aggreg_p999_over_lanes", 4.5);
        let json = report.to_json();
        assert!(json.contains("\"scenario\":\"mixed\""));
        assert!(json.contains("\"strategy\":\"lanes\""));
        assert!(json.contains("\"class\":\"urgent-small\""));
        assert!(json.contains("\"p999_us\":18.750"), "{json}");
        assert!(json.contains("\"p9999_us\":31.500"), "{json}");
        assert!(json.contains("\"mixed/lanes\":812.50"), "{json}");
        assert!(
            json.contains("\"mixed/urgent-small/aggreg_p999_over_lanes\":4.500"),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn report_includes_verification_coverage() {
        let report = BenchReport::new();
        report.record("pingpong/mem", "nmad(aggreg)", 64, &[sample(1.0)]);
        let json = report.to_json();
        assert!(
            json.contains("\"verify\":{\"schedules_explored\":"),
            "{json}"
        );
        assert!(json.contains("\"lint_rules\":"), "{json}");
        let v = VerifySummary::probe();
        assert!(v.schedules_explored > 0, "probe explored nothing: {v:?}");
        assert!(v.lint_rules >= 6, "lint catalog shrank: {v:?}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn report_renders_rows_as_json() {
        let report = BenchReport::new();
        report.record(
            "pingpong/mem",
            "madmpi(aggreg)",
            64,
            &[sample(2.0), sample(1.0), sample(3.0)],
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\":\"pingpong/mem\""));
        assert!(json.contains("\"size\":64"));
        assert!(json.contains("\"one_way_us_median\":2.0000"), "{json}");
        assert!(json.contains("\"staging_copies\":0"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
