//! Seeded chaos soak: a long-running version of `tests/chaos.rs` that
//! sweeps many randomized fault schedules through MAD-MPI workloads
//! and the reliability layer, asserting eventual delivery and
//! correctness for every seed.
//!
//! Every scenario is a pure function of its seed: a failing run prints
//! the seed, and `chaos_soak --seed-base <seed> --seeds 1` replays the
//! exact fault schedule. The run summary is written as one JSON object
//! (CI uploads it as an artifact when the job fails).
//!
//! ```text
//! chaos_soak [--seeds N] [--seed-base X] [--json PATH] [--quick]
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use mad_mpi::{pump_cluster, sim_cluster_multirail, EngineKind, StrategyKind};
use nmad_core::prelude::*;
use nmad_net::sim::SimDriver;
use nmad_net::{DetRng, Driver, FaultPlan, ReliableDriver, SimCpuMeter};
use nmad_sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig, SimTime};

const RTO_NS: u64 = 200_000;

/// Two-rail MAD-MPI workload; rail 0 of the sender dies at a seeded
/// instant, the survivor runs a seeded latency spike. Returns a digest
/// of everything observable so reruns can be compared bit for bit.
fn mpi_death_chaos(seed: u64, quick: bool) -> String {
    let mut rng = DetRng::new(seed);
    let (world, mut procs) = sim_cluster_multirail(
        2,
        vec![nic::mx_myri10g(), nic::quadrics_qm500()],
        EngineKind::MadMpi(StrategyKind::Multirail),
    );
    let death_at = rng.next_range(50_000, 2_000_000);
    let spike_from = rng.next_range(0, 1_000_000);
    let spike_len = rng.next_range(50_000, 500_000);
    let spike_extra = rng.next_range(10_000, 200_000);
    assert!(procs[0].install_faults(0, FaultPlan::new(seed).nic_death(death_at)));
    assert!(procs[0].install_faults(
        1,
        FaultPlan::new(seed ^ 1).latency_spike(spike_from, spike_from + spike_len, spike_extra),
    ));

    let comm = procs[0].comm_world();
    let n = if quick { 16 } else { 64 } + rng.next_range(0, 8) as usize;
    let bodies: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let len = rng.next_range(1, 4_000) as usize;
            (0..len).map(|j| ((i * 37 + j) % 251) as u8).collect()
        })
        .collect();
    let sends: Vec<_> = bodies
        .iter()
        .enumerate()
        .map(|(i, b)| procs[0].isend(comm, 1, i as u16, b.clone()))
        .collect();
    let recvs: Vec<_> = bodies
        .iter()
        .enumerate()
        .map(|(i, b)| procs[1].irecv(comm, 0, i as u16, b.len()))
        .collect();
    pump_cluster(&world, &mut procs, |p| {
        sends.iter().all(|&s| p[0].test(s)) && recvs.iter().all(|&r| p[1].test(r))
    });
    for (i, r) in recvs.into_iter().enumerate() {
        assert_eq!(
            procs[1].take(r).unwrap(),
            bodies[i],
            "seed {seed:#x}: message {i} lost or corrupted"
        );
    }
    let m0 = procs[0].backend().metrics().expect("madmpi has metrics");
    // Bind the time before building the digest: an inline
    // `world.lock()` temporary would live across the other format
    // arguments, and those may lock the world themselves.
    let done_ns = world.lock().now().as_ns();
    format!(
        "t={done_ns} m0={} f0={:?} f1={:?}",
        m0.to_json(),
        procs[0].fault_stats(0),
        procs[0].fault_stats(1),
    )
}

fn reliable_engine(world: &SharedWorld, node: u32) -> NmadEngine {
    let raw = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let clock_world = world.clone();
    let now = Box::new(move || clock_world.lock().now().as_ns());
    let wake_world = world.clone();
    let wakeup = Box::new(move |deadline: u64| {
        wake_world
            .lock()
            .schedule_wakeup(SimTime::from_ns(deadline));
    });
    let reliable = ReliableDriver::new(raw, now, Some(wakeup), RTO_NS);
    let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
    NmadEngine::new(
        vec![Box::new(reliable) as Box<dyn Driver>],
        meter,
        Box::new(StratAggreg),
        EngineCosts::zero(),
    )
}

/// Bidirectional eager + rendezvous workload through the reliability
/// decorator over a fully randomized fault plan on each end.
fn reliable_chaos(seed: u64, quick: bool) -> String {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = reliable_engine(&world, 0);
    let mut b = reliable_engine(&world, 1);
    assert!(a.install_faults(0, FaultPlan::randomized(seed, 20_000_000)));
    assert!(b.install_faults(0, FaultPlan::randomized(seed ^ 0xFACE, 20_000_000)));

    let mut rng = DetRng::new(seed ^ 0xC0FFEE);
    let n = if quick { 6 } else { 16 };
    let fwd: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let len = rng.next_range(1, 1_500) as usize;
            (0..len).map(|j| ((i * 13 + j) % 249) as u8).collect()
        })
        .collect();
    let back: Vec<Vec<u8>> = (0..n)
        .map(|i| {
            let len = rng.next_range(1, 1_500) as usize;
            (0..len).map(|j| ((i * 29 + j) % 247) as u8).collect()
        })
        .collect();
    let big: Vec<u8> = (0..60_000u32).map(|i| (i % 253) as u8).collect();

    let s_fwd: Vec<_> = fwd
        .iter()
        .enumerate()
        .map(|(i, m)| a.isend(NodeId(1), Tag(i as u32), m.clone()))
        .collect();
    let s_back: Vec<_> = back
        .iter()
        .enumerate()
        .map(|(i, m)| b.isend(NodeId(0), Tag(i as u32), m.clone()))
        .collect();
    let s_big = a.isend(NodeId(1), Tag(99), big.clone());
    let r_fwd: Vec<_> = fwd
        .iter()
        .enumerate()
        .map(|(i, m)| b.post_recv(NodeId(0), Tag(i as u32), m.len()))
        .collect();
    let r_back: Vec<_> = back
        .iter()
        .enumerate()
        .map(|(i, m)| a.post_recv(NodeId(1), Tag(i as u32), m.len()))
        .collect();
    let r_big = b.post_recv(NodeId(0), Tag(99), big.len());

    for _ in 0..5_000_000u64 {
        let moved = a.progress() | b.progress();
        let all = s_fwd.iter().all(|&s| a.is_send_done(s))
            && s_back.iter().all(|&s| b.is_send_done(s))
            && a.is_send_done(s_big)
            && r_fwd.iter().all(|&r| b.is_recv_done(r))
            && r_back.iter().all(|&r| a.is_recv_done(r))
            && b.is_recv_done(r_big);
        if all {
            for (i, &r) in r_fwd.iter().enumerate() {
                assert_eq!(b.try_take_recv(r).unwrap().data, fwd[i], "fwd {i}");
            }
            for (i, &r) in r_back.iter().enumerate() {
                assert_eq!(a.try_take_recv(r).unwrap().data, back[i], "back {i}");
            }
            assert_eq!(b.try_take_recv(r_big).unwrap().data, big, "rendezvous");
            // Same guard-lifetime care as in `mpi_death_chaos`:
            // `a.metrics()` locks the world via the driver's
            // `link_stats`, so the clock read must not hold the lock.
            let done_ns = world.lock().now().as_ns();
            return format!(
                "t={done_ns} m0={} m1={} f0={:?} f1={:?}",
                a.metrics().to_json(),
                b.metrics().to_json(),
                a.fault_stats(0),
                b.fault_stats(0),
            );
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    panic!("no convergence for seed {seed:#x}");
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex number")
    } else {
        s.parse().expect("number")
    }
}

struct RunRecord {
    scenario: &'static str,
    seed: u64,
    ok: bool,
    detail: String,
}

fn main() -> ExitCode {
    let mut seeds = 32u64;
    let mut seed_base = 0x5EEDu64;
    let mut json_path = String::from("chaos-soak.json");
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => seeds = parse_u64(&args.next().expect("--seeds N")),
            "--seed-base" => seed_base = parse_u64(&args.next().expect("--seed-base X")),
            "--json" => json_path = args.next().expect("--json PATH"),
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if quick {
        seeds = seeds.min(4);
    }

    let mut records: Vec<RunRecord> = Vec::new();
    for i in 0..seeds {
        // Golden-ratio stepping spreads consecutive sweep indices over
        // the seed space. Index 0 is `seed_base` itself, so the printed
        // replay hint (`--seed-base <seed> --seeds 1`) reruns a failing
        // seed exactly.
        let seed = seed_base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for (scenario, run) in [
            (
                "mpi-death",
                Box::new(move || mpi_death_chaos(seed, quick)) as Box<dyn Fn() -> String>,
            ),
            ("reliable", Box::new(move || reliable_chaos(seed, quick))),
        ] {
            let outcome = catch_unwind(AssertUnwindSafe(&run));
            match outcome {
                Ok(digest) => {
                    println!("ok   {scenario} seed={seed:#x}");
                    records.push(RunRecord {
                        scenario,
                        seed,
                        ok: true,
                        detail: digest,
                    });
                }
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "opaque panic".into());
                    eprintln!("FAIL {scenario} seed={seed:#x}: {msg}");
                    eprintln!(
                        "     replay: cargo run --release --bin chaos_soak -- \
                         --seed-base {seed:#x} --seeds 1"
                    );
                    records.push(RunRecord {
                        scenario,
                        seed,
                        ok: false,
                        detail: msg,
                    });
                }
            }
        }
    }

    let failures = records.iter().filter(|r| !r.ok).count();
    let runs: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"scenario\":\"{}\",\"seed\":{},\"ok\":{},\"detail\":\"{}\"}}",
                r.scenario,
                r.seed,
                r.ok,
                json_escape(&r.detail)
            )
        })
        .collect();
    let report = format!(
        "{{\"seed_base\":{seed_base},\"seeds\":{seeds},\"quick\":{quick},\
         \"failures\":{failures},\"runs\":[{}]}}\n",
        runs.join(",")
    );
    if let Err(e) = std::fs::write(&json_path, &report) {
        eprintln!("cannot write {json_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "chaos soak: {} runs, {failures} failures, report in {json_path}",
        records.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
