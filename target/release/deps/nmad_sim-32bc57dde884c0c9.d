/root/repo/target/release/deps/nmad_sim-32bc57dde884c0c9.d: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs

/root/repo/target/release/deps/libnmad_sim-32bc57dde884c0c9.rlib: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs

/root/repo/target/release/deps/libnmad_sim-32bc57dde884c0c9.rmeta: crates/nmad-sim/src/lib.rs crates/nmad-sim/src/host.rs crates/nmad-sim/src/nic.rs crates/nmad-sim/src/runner.rs crates/nmad-sim/src/time.rs crates/nmad-sim/src/timeline.rs crates/nmad-sim/src/topo.rs crates/nmad-sim/src/trace.rs crates/nmad-sim/src/world.rs

crates/nmad-sim/src/lib.rs:
crates/nmad-sim/src/host.rs:
crates/nmad-sim/src/nic.rs:
crates/nmad-sim/src/runner.rs:
crates/nmad-sim/src/time.rs:
crates/nmad-sim/src/timeline.rs:
crates/nmad-sim/src/topo.rs:
crates/nmad-sim/src/trace.rs:
crates/nmad-sim/src/world.rs:
