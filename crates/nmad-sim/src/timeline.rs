//! Text rendering of simulation traces.
//!
//! Turns a [`Trace`](crate::trace::Trace) into a compact, human-readable
//! timeline — one line per event plus a per-node lane summary. Used when
//! debugging scheduling decisions ("why did this frame leave late?") and
//! in tests that want readable failure dumps.

use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};
use std::fmt::Write as _;

/// Renders the trace as one line per event:
/// `t+12.400us  n0 →n1 r0  send 1232B (arrives t+15.000us)`.
pub fn render_events(trace: &Trace) -> String {
    let mut out = String::new();
    for ev in trace.events() {
        let _ = match &ev.event {
            TraceEvent::Send {
                src,
                dst,
                rail,
                bytes,
                deliver_at,
            } => writeln!(
                out,
                "{:>14}  {src} →{dst} {rail}  send {bytes}B (arrives {deliver_at})",
                ev.time.to_string()
            ),
            TraceEvent::Deliver {
                dst,
                src,
                rail,
                bytes,
            } => writeln!(
                out,
                "{:>14}  {dst} ←{src} {rail}  recv {bytes}B",
                ev.time.to_string()
            ),
            TraceEvent::CpuCharge { node, dur } => {
                writeln!(out, "{:>14}  {node}        cpu  {dur}", ev.time.to_string())
            }
            TraceEvent::StrategyDecision {
                node,
                strategy,
                entries,
                reordered,
            } => writeln!(
                out,
                "{:>14}  {node}        plan {strategy}: {entries} entries ({reordered} reordered)",
                ev.time.to_string()
            ),
        };
    }
    out
}

/// Per-node activity summary over the traced interval.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSummary {
    /// Node the event belongs to.
    pub node: u32,
    /// Wire frames sent.
    pub frames_sent: usize,
    /// Wire frames received.
    pub frames_received: usize,
    /// Wire payload bytes sent in the whole world.
    pub bytes_sent: usize,
    /// Payload bytes received.
    pub bytes_received: usize,
    /// Number of CPU charges recorded.
    pub cpu_charges: usize,
    /// Strategy frame-synthesis decisions recorded.
    pub decisions: usize,
}

/// Aggregates the trace into per-node summaries, ordered by node id.
pub fn summarize(trace: &Trace) -> Vec<NodeSummary> {
    use std::collections::BTreeMap;
    let mut map: BTreeMap<u32, NodeSummary> = BTreeMap::new();
    let entry = |map: &mut BTreeMap<u32, NodeSummary>, node: u32| {
        map.entry(node).or_insert(NodeSummary {
            node,
            frames_sent: 0,
            frames_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
            cpu_charges: 0,
            decisions: 0,
        });
    };
    for ev in trace.events() {
        match &ev.event {
            TraceEvent::Send { src, bytes, .. } => {
                entry(&mut map, src.0);
                let s = map.get_mut(&src.0).expect("inserted");
                s.frames_sent += 1;
                s.bytes_sent += bytes;
            }
            TraceEvent::Deliver { dst, bytes, .. } => {
                entry(&mut map, dst.0);
                let s = map.get_mut(&dst.0).expect("inserted");
                s.frames_received += 1;
                s.bytes_received += bytes;
            }
            TraceEvent::CpuCharge { node, .. } => {
                entry(&mut map, node.0);
                map.get_mut(&node.0).expect("inserted").cpu_charges += 1;
            }
            TraceEvent::StrategyDecision { node, .. } => {
                entry(&mut map, node.0);
                map.get_mut(&node.0).expect("inserted").decisions += 1;
            }
        }
    }
    map.into_values().collect()
}

/// Renders the summaries as an aligned table.
pub fn render_summary(trace: &Trace) -> String {
    let mut out = String::from("node  tx-frames  tx-bytes  rx-frames  rx-bytes  cpu-ops\n");
    for s in summarize(trace) {
        let _ = writeln!(
            out,
            "n{:<4} {:>9}  {:>8}  {:>9}  {:>8}  {:>7}",
            s.node, s.frames_sent, s.bytes_sent, s.frames_received, s.bytes_received, s.cpu_charges
        );
    }
    out
}

/// Span between the first and last traced event (whole-run makespan).
pub fn makespan(trace: &Trace) -> Option<(SimTime, SimTime)> {
    let first = trace.events().first()?.time;
    let last = trace.events().last()?.time;
    Some((first, last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::topo::{NodeId, RailId};

    fn sample_trace() -> Trace {
        let mut t = Trace::default();
        t.push(
            SimTime::from_ns(1_000),
            TraceEvent::CpuCharge {
                node: NodeId(0),
                dur: SimDuration::from_ns(500),
            },
        );
        t.push(
            SimTime::from_ns(2_000),
            TraceEvent::Send {
                src: NodeId(0),
                dst: NodeId(1),
                rail: RailId(0),
                bytes: 128,
                deliver_at: SimTime::from_ns(5_000),
            },
        );
        t.push(
            SimTime::from_ns(5_000),
            TraceEvent::Deliver {
                dst: NodeId(1),
                src: NodeId(0),
                rail: RailId(0),
                bytes: 128,
            },
        );
        t
    }

    #[test]
    fn events_render_one_line_each() {
        let text = render_events(&sample_trace());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("send 128B"));
        assert!(lines[2].contains("recv 128B"));
    }

    #[test]
    fn summary_accumulates_per_node() {
        let summaries = summarize(&sample_trace());
        assert_eq!(summaries.len(), 2);
        let n0 = &summaries[0];
        assert_eq!((n0.node, n0.frames_sent, n0.bytes_sent), (0, 1, 128));
        assert_eq!(n0.cpu_charges, 1);
        let n1 = &summaries[1];
        assert_eq!(
            (n1.node, n1.frames_received, n1.bytes_received),
            (1, 1, 128)
        );
    }

    #[test]
    fn summary_table_renders_header_and_rows() {
        let table = render_summary(&sample_trace());
        assert!(table.starts_with("node"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn makespan_covers_first_to_last() {
        let (a, b) = makespan(&sample_trace()).unwrap();
        assert_eq!(a, SimTime::from_ns(1_000));
        assert_eq!(b, SimTime::from_ns(5_000));
        assert!(makespan(&Trace::default()).is_none());
    }
}
