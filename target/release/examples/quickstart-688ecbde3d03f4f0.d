/root/repo/target/release/examples/quickstart-688ecbde3d03f4f0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-688ecbde3d03f4f0: examples/quickstart.rs

examples/quickstart.rs:
