/root/repo/target/debug/examples/tcp_pingpong-9c8f773480de976a.d: examples/tcp_pingpong.rs Cargo.toml

/root/repo/target/debug/examples/libtcp_pingpong-9c8f773480de976a.rmeta: examples/tcp_pingpong.rs Cargo.toml

examples/tcp_pingpong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
