/root/repo/target/debug/deps/lossy_fabric-723590bff6b00f3a.d: tests/lossy_fabric.rs

/root/repo/target/debug/deps/lossy_fabric-723590bff6b00f3a: tests/lossy_fabric.rs

tests/lossy_fabric.rs:
