//! Integration: small-sweep versions of every paper experiment, with
//! assertions on the *shape* of the results (who wins, by roughly what
//! factor) — the reproduction's acceptance tests.

use bench::{gain_pct, pingpong_contig, pingpong_multiseg, pingpong_typed, transfer_multirail};
use mad_mpi::{Datatype, EngineKind, StrategyKind};
use nmad_sim::nic;

const MADMPI: EngineKind = EngineKind::MadMpi(StrategyKind::Aggreg);
const MADMPI_REORDER: EngineKind = EngineKind::MadMpi(StrategyKind::Reorder);

#[test]
fn fig2_overhead_is_constant_and_small() {
    // §5.1: "MAD-MPI introduces a constant overhead of less than
    // 0.5 us" on both networks.
    for nic_model in [nic::mx_myri10g(), nic::quadrics_qm500()] {
        let mut overheads = Vec::new();
        for size in [4usize, 64, 1024] {
            let mad = pingpong_contig(MADMPI, nic_model.clone(), size, 2);
            let mpich = pingpong_contig(EngineKind::Mpich, nic_model.clone(), size, 2);
            overheads.push(mad.one_way_us - mpich.one_way_us);
        }
        for &o in &overheads {
            assert!(
                o > 0.0 && o < 0.5,
                "{}: overhead {o:.3} us out of the paper band ({overheads:?})",
                nic_model.name
            );
        }
        // "Constant": spread across sizes well under the bound.
        let spread = overheads.iter().cloned().fold(f64::MIN, f64::max)
            - overheads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.3, "{}: spread {spread:.3}", nic_model.name);
    }
}

#[test]
fn fig2_peak_bandwidths_match_the_paper() {
    // §5.1: 1155 MB/s over MYRI-10G, 835 MB/s over QUADRICS for
    // MAD-MPI; we accept a ±10% band on the shape.
    let mx = pingpong_contig(MADMPI, nic::mx_myri10g(), 2 << 20, 2);
    assert!(
        (1040.0..1280.0).contains(&mx.bandwidth_mbs),
        "MX peak {:.0} MB/s",
        mx.bandwidth_mbs
    );
    let qs = pingpong_contig(MADMPI, nic::quadrics_qm500(), 2 << 20, 2);
    assert!(
        (750.0..920.0).contains(&qs.bandwidth_mbs),
        "Quadrics peak {:.0} MB/s",
        qs.bandwidth_mbs
    );
    // And the baselines reach essentially the same asymptote (fig 2b/d).
    let mpich = pingpong_contig(EngineKind::Mpich, nic::mx_myri10g(), 2 << 20, 2);
    let ratio = mx.bandwidth_mbs / mpich.bandwidth_mbs;
    assert!((0.95..1.05).contains(&ratio), "asymptote ratio {ratio:.3}");
}

#[test]
fn fig2_openmpi_slower_than_mpich_at_small_sizes() {
    let ompi = pingpong_contig(EngineKind::Ompi, nic::mx_myri10g(), 8, 2);
    let mpich = pingpong_contig(EngineKind::Mpich, nic::mx_myri10g(), 8, 2);
    assert!(
        ompi.one_way_us > mpich.one_way_us,
        "paper fig 2(a): OpenMPI sits above MPICH at small sizes"
    );
}

#[test]
fn fig3_aggregation_wins_by_paper_margins() {
    // §5.2: "up to 70% faster than other implementations of MPI over
    // MX-10G, and up to 50% faster than MPICH over QUADRICS".
    let mut best_mx = f64::MIN;
    for size in [8usize, 64, 512] {
        let mad = pingpong_multiseg(MADMPI, nic::mx_myri10g(), 16, size, 2);
        let mpich = pingpong_multiseg(EngineKind::Mpich, nic::mx_myri10g(), 16, size, 2);
        best_mx = best_mx.max(gain_pct(mad.one_way_us, mpich.one_way_us));
    }
    assert!(
        best_mx > 50.0 && best_mx < 90.0,
        "MX 16-segment best gain {best_mx:.0}% (paper: up to ~70%)"
    );

    let mut best_qs = f64::MIN;
    for size in [8usize, 64, 512] {
        let mad = pingpong_multiseg(MADMPI, nic::quadrics_qm500(), 8, size, 2);
        let mpich = pingpong_multiseg(EngineKind::Mpich, nic::quadrics_qm500(), 8, size, 2);
        best_qs = best_qs.max(gain_pct(mad.one_way_us, mpich.one_way_us));
    }
    assert!(
        best_qs > 35.0 && best_qs < 80.0,
        "Quadrics 8-segment best gain {best_qs:.0}% (paper: up to ~50%)"
    );
}

#[test]
fn fig3_advantage_shrinks_as_segments_exceed_threshold() {
    // Beyond the rendezvous threshold aggregation can no longer
    // coalesce, so the curves converge at the right edge of fig. 3.
    let small = {
        let mad = pingpong_multiseg(MADMPI, nic::mx_myri10g(), 8, 64, 2);
        let mpich = pingpong_multiseg(EngineKind::Mpich, nic::mx_myri10g(), 8, 64, 2);
        gain_pct(mad.one_way_us, mpich.one_way_us)
    };
    let large = {
        let mad = pingpong_multiseg(MADMPI, nic::mx_myri10g(), 8, 16 * 1024, 2);
        let mpich = pingpong_multiseg(EngineKind::Mpich, nic::mx_myri10g(), 8, 16 * 1024, 2);
        gain_pct(mad.one_way_us, mpich.one_way_us)
    };
    assert!(
        small > large + 10.0,
        "gain must shrink with segment size: {small:.0}% -> {large:.0}%"
    );
}

#[test]
fn fig4_datatype_gains_match_the_paper() {
    // §5.3: "a gain of about 70% in comparison with MPICH and about 50%
    // with OPENMPI over MX and until about 70% versus MPICH over
    // QUADRICS".
    let dtype = Datatype::alternating(64, 256 * 1024, 4);

    let mad = pingpong_typed(MADMPI_REORDER, nic::mx_myri10g(), &dtype, 2);
    let mpich = pingpong_typed(EngineKind::Mpich, nic::mx_myri10g(), &dtype, 2);
    let ompi = pingpong_typed(EngineKind::Ompi, nic::mx_myri10g(), &dtype, 2);
    let g_mpich = gain_pct(mad.one_way_us, mpich.one_way_us);
    let g_ompi = gain_pct(mad.one_way_us, ompi.one_way_us);
    assert!(
        (55.0..80.0).contains(&g_mpich),
        "MX gain vs MPICH {g_mpich:.0}% (paper ≈70%)"
    );
    assert!(
        (35.0..65.0).contains(&g_ompi),
        "MX gain vs OpenMPI {g_ompi:.0}% (paper ≈50%)"
    );

    let mad_q = pingpong_typed(MADMPI_REORDER, nic::quadrics_qm500(), &dtype, 2);
    let mpich_q = pingpong_typed(EngineKind::Mpich, nic::quadrics_qm500(), &dtype, 2);
    let g_q = gain_pct(mad_q.one_way_us, mpich_q.one_way_us);
    assert!(
        (50.0..80.0).contains(&g_q),
        "Quadrics gain vs MPICH {g_q:.0}% (paper: up to ~70%)"
    );
}

#[test]
fn multirail_beats_the_best_single_rail() {
    let size = 4 << 20;
    let (mx, _) = transfer_multirail(MADMPI, vec![nic::mx_myri10g()], size, 1);
    let (both, split) = transfer_multirail(
        EngineKind::MadMpi(StrategyKind::Multirail),
        vec![nic::mx_myri10g(), nic::quadrics_qm500()],
        size,
        1,
    );
    assert!(
        both.bandwidth_mbs > mx.bandwidth_mbs * 1.3,
        "multirail {:.0} MB/s vs single {:.0} MB/s",
        both.bandwidth_mbs,
        mx.bandwidth_mbs
    );
    // Heterogeneous split ≈ bandwidth ratio 1240:880 (±10 points).
    let pct0 = 100.0 * split[0] as f64 / (split[0] + split[1]) as f64;
    assert!(
        (48.0..68.0).contains(&pct0),
        "MX rail carried {pct0:.0}% (expected ≈58%)"
    );
}
