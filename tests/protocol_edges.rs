//! Integration: protocol edge cases — MTU-constrained rendezvous
//! chunking, gather-less NICs forcing staging copies, probe semantics,
//! the dynamic strategy end-to-end, sendrecv/collectives, and the
//! rendezvous handshake under frame loss and duplication.

use std::sync::Arc;

use newmadeleine::core::prelude::*;
use newmadeleine::core::sync::{AtomicU32, Ordering};
use newmadeleine::core::wire::{parse_frame, Entry};
use newmadeleine::mpi::{
    pump_cluster, sim_cluster, AllreduceOp, BarrierOp, BcastOp, CollectiveOp, EngineKind, GatherOp,
    StrategyKind,
};
use newmadeleine::net::sim::SimDriver;
use newmadeleine::net::{
    reliable, Capabilities, Driver, FaultPlan, FaultStats, NetResult, ReliableDriver, RxFrame,
    SendHandle, SimCpuMeter,
};
use newmadeleine::sim::{nic, shared_world, NodeId, RailId, SharedWorld, SimConfig, SimTime};

fn engine(world: &SharedWorld, node: u32, strategy: Box<dyn Strategy>) -> NmadEngine {
    let driver = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let meter = Box::new(driver.meter());
    NmadEngine::new(
        vec![Box::new(driver) as Box<dyn Driver>],
        meter,
        strategy,
        EngineCosts::zero(),
    )
}

fn pump(
    world: &SharedWorld,
    a: &mut NmadEngine,
    b: &mut NmadEngine,
    mut done: impl FnMut(&mut NmadEngine, &mut NmadEngine) -> bool,
) {
    for _ in 0..2_000_000 {
        let mut moved = a.progress();
        moved |= b.progress();
        if done(a, b) {
            return;
        }
        if !moved && world.lock().advance().is_none() {
            panic!("deadlock:\n{}", world.lock().pending_summary());
        }
    }
    panic!("no convergence");
}

#[test]
fn mtu_limited_nic_chunks_rendezvous_data() {
    // SISCI has a 64 KB MTU: a 400 KB rendezvous segment must travel
    // as ≥ 7 chunks and still reassemble exactly.
    let world = shared_world(SimConfig::two_nodes(nic::sisci_sci()));
    let mut a = engine(&world, 0, Box::new(StratAggreg));
    let mut b = engine(&world, 1, Box::new(StratAggreg));
    let body: Vec<u8> = (0..400_000u32).map(|i| (i % 233) as u8).collect();
    let s = a.isend(NodeId(1), Tag(0), body.clone());
    let r = b.post_recv(NodeId(0), Tag(0), body.len());
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    assert_eq!(b.try_take_recv(r).unwrap().data, body);
    assert!(
        a.stats().chunk_entries >= 7,
        "expected MTU chunking, got {} chunks",
        a.stats().chunk_entries
    );
}

#[test]
fn gather_less_nic_pays_staging_copies() {
    // GM has no hardware gather (1 segment per descriptor): aggregated
    // frames must be staged through a copy, which the stats expose.
    let world = shared_world(SimConfig::two_nodes(nic::gm_myrinet2000()));
    let mut a = engine(&world, 0, Box::new(StratAggreg));
    let mut b = engine(&world, 1, Box::new(StratAggreg));
    let sends: Vec<_> = (0..6)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 64]))
        .collect();
    let recvs: Vec<_> = (0..6).map(|i| b.post_recv(NodeId(0), Tag(i), 64)).collect();
    pump(&world, &mut a, &mut b, |a, b| {
        sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
    });
    assert!(
        a.stats().staging_copies >= 1,
        "gather-less NIC must stage aggregated frames: {:?}",
        a.stats()
    );
    for (i, r) in recvs.into_iter().enumerate() {
        assert_eq!(b.try_take_recv(r).unwrap().data, vec![i as u8; 64]);
    }
}

#[test]
fn gather_capable_nic_avoids_staging() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = engine(&world, 0, Box::new(StratAggreg));
    let mut b = engine(&world, 1, Box::new(StratAggreg));
    let sends: Vec<_> = (0..6)
        .map(|i| a.isend(NodeId(1), Tag(i), vec![i as u8; 64]))
        .collect();
    let recvs: Vec<_> = (0..6).map(|i| b.post_recv(NodeId(0), Tag(i), 64)).collect();
    pump(&world, &mut a, &mut b, |a, b| {
        sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
    });
    assert_eq!(a.stats().staging_copies, 0, "{:?}", a.stats());
}

#[test]
fn engine_probe_sees_unexpected_and_rts() {
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = engine(&world, 0, Box::new(StratAggreg));
    let mut b = engine(&world, 1, Box::new(StratAggreg));
    assert_eq!(b.probe(NodeId(0), Tag(1)), None);

    // Small eager message → probe sees its staged length.
    let s1 = a.isend(NodeId(1), Tag(1), &b"probe me"[..]);
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s1) && b.probe(NodeId(0), Tag(1)).is_some()
    });
    assert_eq!(b.probe(NodeId(0), Tag(1)), Some(8));

    // Rendezvous-sized message → probe sees the announced total.
    let big = vec![0u8; 100_000];
    let _s2 = a.isend(NodeId(1), Tag(2), big);
    pump(&world, &mut a, &mut b, |_, b| {
        b.probe(NodeId(0), Tag(2)).is_some()
    });
    assert_eq!(b.probe(NodeId(0), Tag(2)), Some(100_000));

    // Receiving consumes the probe-visible state.
    let r = b.post_recv(NodeId(0), Tag(1), 16);
    assert!(b.is_recv_done(r), "unexpected data completes immediately");
    assert_eq!(b.probe(NodeId(0), Tag(1)), None);
}

#[test]
fn dynamic_strategy_beats_static_choices_across_mixed_phases() {
    // Phase 1: latency-sensitive lone messages. Phase 2: a burst.
    // The dynamic selector must match StratDefault on phase 1 and
    // StratAggreg on phase 2 (within a small tolerance).
    let run = |strategy: fn() -> Box<dyn Strategy>| -> (f64, u64) {
        let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
        let mut a = engine(&world, 0, strategy());
        let mut b = engine(&world, 1, strategy());
        // Phase 1: 5 lone round trips.
        for i in 0..5u32 {
            let s = a.isend(NodeId(1), Tag(i), vec![1u8; 32]);
            let r = b.post_recv(NodeId(0), Tag(i), 32);
            pump(&world, &mut a, &mut b, |a, b| {
                a.is_send_done(s) && b.is_recv_done(r)
            });
            b.try_take_recv(r);
        }
        // Phase 2: a 16-segment burst.
        let sends: Vec<_> = (100..116u32)
            .map(|i| a.isend(NodeId(1), Tag(i), vec![2u8; 64]))
            .collect();
        let recvs: Vec<_> = (100..116u32)
            .map(|i| b.post_recv(NodeId(0), Tag(i), 64))
            .collect();
        pump(&world, &mut a, &mut b, |a, b| {
            sends.iter().all(|&s| a.is_send_done(s)) && recvs.iter().all(|&r| b.is_recv_done(r))
        });
        let result = (world.lock().now().as_us_f64(), a.stats().frames_sent);
        result
    };

    let (t_dynamic, frames_dynamic) = run(|| Box::new(StratDynamic::new()));
    let (t_default, _) = run(|| Box::new(StratDefault));
    let (t_aggreg, _) = run(|| Box::new(StratAggreg));

    // The dynamic selector is at least as good as the best static pick.
    let best = t_default.min(t_aggreg);
    assert!(
        t_dynamic <= best * 1.02,
        "dynamic {t_dynamic:.2} us vs best static {best:.2} us"
    );
    // And it did aggregate the burst.
    assert!(
        frames_dynamic < 5 + 16,
        "burst must coalesce: {frames_dynamic} frames"
    );
}

#[test]
fn mpi_iprobe_and_sendrecv() {
    let (world, mut procs) = sim_cluster(
        2,
        nic::quadrics_qm500(),
        EngineKind::MadMpi(StrategyKind::Aggreg),
    );
    let comm = procs[0].comm_world();
    assert_eq!(procs[1].iprobe(comm, 0, 5), None);
    let s = procs[0].isend(comm, 1, 5, &b"probe target"[..]);
    pump_cluster(&world, &mut procs, |p| {
        p[0].test(s) && p[1].iprobe(comm, 0, 5).is_some()
    });
    assert_eq!(procs[1].iprobe(comm, 0, 5), Some(12));
    let r = procs[1].irecv(comm, 0, 5, 32);
    pump_cluster(&world, &mut procs, |p| p[1].test(r));
    assert_eq!(procs[1].take(r).unwrap(), b"probe target");
    assert_eq!(procs[1].iprobe(comm, 0, 5), None, "consumed by the receive");
}

#[test]
fn collectives_compose_in_sequence() {
    // barrier → bcast → gather → allreduce, back to back on one job,
    // exercising ordered collective matching on the reserved context.
    fn max_fold(acc: &mut Vec<u8>, other: &[u8]) {
        if other > acc.as_slice() {
            *acc = other.to_vec();
        }
    }
    let n = 4;
    let (world, mut procs) = sim_cluster(
        n,
        nic::mx_myri10g(),
        EngineKind::MadMpi(StrategyKind::Aggreg),
    );

    // 1. barrier
    let mut barriers: Vec<BarrierOp> = procs.iter().map(BarrierOp::new).collect();
    pump_cluster(&world, &mut procs, |procs| {
        let mut all = true;
        for (p, op) in procs.iter_mut().zip(barriers.iter_mut()) {
            all &= op.advance(p);
        }
        all
    });

    // 2. bcast from rank 2
    let mut bcasts: Vec<BcastOp> = procs
        .iter()
        .map(|p| BcastOp::new(p, 2, (p.rank() == 2).then(|| b"seed".to_vec()), 16))
        .collect();
    pump_cluster(&world, &mut procs, |procs| {
        let mut all = true;
        for (p, op) in procs.iter_mut().zip(bcasts.iter_mut()) {
            all &= op.advance(p);
        }
        all
    });
    for op in &mut bcasts {
        assert_eq!(op.take_result().unwrap(), b"seed");
    }

    // 3. gather to rank 0
    let mut gathers: Vec<GatherOp> = procs
        .iter()
        .map(|p| GatherOp::new(p, 0, vec![p.rank() as u8], 8))
        .collect();
    pump_cluster(&world, &mut procs, |procs| {
        let mut all = true;
        for (p, op) in procs.iter_mut().zip(gathers.iter_mut()) {
            all &= op.advance(p);
        }
        all
    });
    assert_eq!(
        gathers[0].take_result().unwrap(),
        vec![vec![0], vec![1], vec![2], vec![3]]
    );

    // 4. allreduce (max)
    let mut reduces: Vec<AllreduceOp> = procs
        .iter()
        .map(|p| AllreduceOp::new(p, vec![p.rank() as u8 * 10], max_fold, 8))
        .collect();
    pump_cluster(&world, &mut procs, |procs| {
        let mut all = true;
        for (p, op) in procs.iter_mut().zip(reduces.iter_mut()) {
            all &= op.advance(p);
        }
        all
    });
    for op in &mut reduces {
        assert_eq!(op.take_result().unwrap(), vec![30]);
    }
}

#[test]
fn zero_length_and_exact_fit_messages() {
    for kind in [EngineKind::MadMpi(StrategyKind::Aggreg), EngineKind::Mpich] {
        let (world, mut procs) = sim_cluster(2, nic::mx_myri10g(), kind);
        let comm = procs[0].comm_world();
        // Zero-length message still matches and completes.
        let s0 = procs[0].isend(comm, 1, 0, Vec::<u8>::new());
        let r0 = procs[1].irecv(comm, 0, 0, 0);
        // Exact-fit buffer (no truncation).
        let s1 = procs[0].isend(comm, 1, 1, vec![9u8; 77]);
        let r1 = procs[1].irecv(comm, 0, 1, 77);
        pump_cluster(&world, &mut procs, |p| {
            p[0].test(s0) && p[0].test(s1) && p[1].test(r0) && p[1].test(r1)
        });
        assert_eq!(procs[1].take(r0).unwrap(), Vec::<u8>::new());
        assert_eq!(procs[1].take(r1).unwrap(), vec![9u8; 77]);
    }
}

#[test]
fn malformed_frames_surface_as_protocol_errors() {
    use newmadeleine::net::{mem_fabric, Driver as _, NetError, NullMeter};
    let mut fabric = mem_fabric(2);
    let mut raw_peer = fabric.pop().expect("two endpoints");
    let target = fabric.pop().expect("two endpoints");
    let mut engine = NmadEngine::new(
        vec![Box::new(target)],
        Box::new(NullMeter),
        Box::new(StratAggreg),
        EngineCosts::zero(),
    );
    // A peer speaking garbage must produce a typed error, not a panic.
    raw_peer
        .post_send(NodeId(0), &[b"this is not a frame"])
        .expect("raw send");
    let err = engine.try_progress().expect_err("garbage must error");
    assert!(
        matches!(err, NetError::Protocol(_)),
        "unexpected error {err}"
    );
    assert!(err.to_string().contains("malformed"));
}

// --- rendezvous handshake under loss and duplication ----------------

/// Dropped sends get handles with this bit set so `test_send` can
/// report them complete without consulting the inner driver (same
/// idiom as `LossyDriver`).
const DROPPED_BIT: u64 = 1 << 63;

/// A scripted dropper: silently discards the first `budget` outgoing
/// frames matching `predicate`, passes everything else through. Placed
/// *below* the reliability decorator it models targeted wire loss of
/// specific protocol frames (RTS, CTS, one rendezvous chunk).
struct ScriptedDropper<D> {
    inner: D,
    predicate: fn(&[u8]) -> bool,
    budget: u32,
    dropped: Arc<AtomicU32>,
}

impl<D: Driver> Driver for ScriptedDropper<D> {
    fn caps(&self) -> &Capabilities {
        self.inner.caps()
    }

    fn local_node(&self) -> NodeId {
        self.inner.local_node()
    }

    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
        let flat: Vec<u8> = iov.concat();
        if self.budget > 0 && (self.predicate)(&flat) {
            self.budget -= 1;
            let n = self.dropped.fetch_add(1, Ordering::Relaxed) as u64;
            return Ok(SendHandle(DROPPED_BIT | n));
        }
        self.inner.post_send(dst, iov)
    }

    fn test_send(&mut self, handle: SendHandle) -> NetResult<bool> {
        if handle.0 & DROPPED_BIT != 0 {
            return Ok(true);
        }
        self.inner.test_send(handle)
    }

    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>> {
        self.inner.poll_recv()
    }

    fn tx_idle(&self) -> bool {
        self.inner.tx_idle()
    }

    fn pump(&mut self) -> NetResult<()> {
        self.inner.pump()
    }

    fn install_faults(&mut self, plan: FaultPlan) -> bool {
        self.inner.install_faults(plan)
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }
}

/// A duplicator placed directly below the engine: the first `budget`
/// frames matching `predicate` are posted twice, exercising the
/// engine's tolerance to duplicated control traffic.
struct ScriptedDuplicator<D> {
    inner: D,
    predicate: fn(&[u8]) -> bool,
    budget: u32,
    duplicated: Arc<AtomicU32>,
    extra: Vec<SendHandle>,
}

impl<D: Driver> Driver for ScriptedDuplicator<D> {
    fn caps(&self) -> &Capabilities {
        self.inner.caps()
    }

    fn local_node(&self) -> NodeId {
        self.inner.local_node()
    }

    fn post_send(&mut self, dst: NodeId, iov: &[&[u8]]) -> NetResult<SendHandle> {
        let flat: Vec<u8> = iov.concat();
        if self.budget > 0 && (self.predicate)(&flat) {
            self.budget -= 1;
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            let twin = self.inner.post_send(dst, iov)?;
            self.extra.push(twin);
        }
        self.inner.post_send(dst, iov)
    }

    fn test_send(&mut self, handle: SendHandle) -> NetResult<bool> {
        self.inner.test_send(handle)
    }

    fn poll_recv(&mut self) -> NetResult<Option<RxFrame>> {
        self.inner.poll_recv()
    }

    fn tx_idle(&self) -> bool {
        self.inner.tx_idle()
    }

    fn pump(&mut self) -> NetResult<()> {
        self.inner.pump()?;
        // Reap fire-and-forget twin handles.
        let mut still = Vec::new();
        for h in self.extra.drain(..) {
            if !self.inner.test_send(h)? {
                still.push(h);
            }
        }
        self.extra = still;
        Ok(())
    }

    fn install_faults(&mut self, plan: FaultPlan) -> bool {
        self.inner.install_faults(plan)
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }
}

/// Does a reliability-layer frame carry an engine entry matching `f`?
/// (Peels the go-back-N data header, then parses the engine frame.)
fn reliable_frame_has(bytes: &[u8], f: fn(&Entry) -> bool) -> bool {
    bytes.first() == Some(&reliable::KIND_DATA)
        && bytes.len() > reliable::HEADER_LEN
        && parse_frame(&bytes[reliable::HEADER_LEN..]).is_ok_and(|es| es.iter().any(f))
}

const RTO_NS: u64 = 200_000;

/// Engine over `ReliableDriver` over `ScriptedDropper` over the
/// simulator; returns the engine plus the dropper's shared counter.
fn dropper_engine(
    world: &SharedWorld,
    node: u32,
    predicate: fn(&[u8]) -> bool,
    budget: u32,
) -> (NmadEngine, Arc<AtomicU32>) {
    let raw = SimDriver::new(world.clone(), NodeId(node), RailId(0));
    let dropped = Arc::new(AtomicU32::new(0));
    let dropper = ScriptedDropper {
        inner: raw,
        predicate,
        budget,
        dropped: dropped.clone(),
    };
    let clock_world = world.clone();
    let now = Box::new(move || clock_world.lock().now().as_ns());
    let wake_world = world.clone();
    let wakeup = Box::new(move |deadline: u64| {
        wake_world
            .lock()
            .schedule_wakeup(SimTime::from_ns(deadline));
    });
    let driver = ReliableDriver::new(dropper, now, Some(wakeup), RTO_NS);
    let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(node)));
    let engine = NmadEngine::new(
        vec![Box::new(driver) as Box<dyn Driver>],
        meter,
        Box::new(StratAggreg),
        EngineCosts::zero(),
    );
    (engine, dropped)
}

/// A scripted loss for one side: (frame predicate, drop budget).
type DropScript = Option<(fn(&[u8]) -> bool, u32)>;

/// One rendezvous transfer a→b under a scripted loss; asserts exact
/// delivery and that the script actually fired.
fn rendezvous_survives(drop_on_sender: DropScript, drop_on_receiver: DropScript) {
    fn never(_: &[u8]) -> bool {
        false
    }
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let (pa, ba) = drop_on_sender.unwrap_or((never, 0));
    let (pb, bb) = drop_on_receiver.unwrap_or((never, 0));
    let (mut a, dropped_a) = dropper_engine(&world, 0, pa, ba);
    let (mut b, dropped_b) = dropper_engine(&world, 1, pb, bb);

    let body: Vec<u8> = (0..80_000u32).map(|i| (i % 239) as u8).collect();
    let s = a.isend(NodeId(1), Tag(3), body.clone());
    let r = b.post_recv(NodeId(0), Tag(3), body.len());
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    assert_eq!(b.try_take_recv(r).unwrap().data, body, "payload intact");
    let fired = dropped_a.load(Ordering::Relaxed) + dropped_b.load(Ordering::Relaxed);
    let scripted = ba + bb;
    assert_eq!(fired, scripted, "the scripted loss must actually happen");
}

#[test]
fn dropped_rts_is_retransmitted_and_rendezvous_completes() {
    fn is_rts(bytes: &[u8]) -> bool {
        reliable_frame_has(bytes, |e| matches!(e, Entry::Rts { .. }))
    }
    rendezvous_survives(Some((is_rts, 1)), None);
}

#[test]
fn dropped_cts_is_retransmitted_and_rendezvous_completes() {
    fn is_cts(bytes: &[u8]) -> bool {
        reliable_frame_has(bytes, |e| matches!(e, Entry::Cts { .. }))
    }
    rendezvous_survives(None, Some((is_cts, 1)));
}

#[test]
fn dropped_data_chunk_mid_rendezvous_is_recovered() {
    fn is_chunk(bytes: &[u8]) -> bool {
        reliable_frame_has(bytes, |e| matches!(e, Entry::RdvData { .. }))
    }
    rendezvous_survives(Some((is_chunk, 1)), None);
}

/// A duplicated CTS must not restart the transfer: the engine ignores
/// the stale grant (counting it) and the payload arrives exactly once.
#[test]
fn duplicate_cts_is_ignored_not_restarted() {
    fn is_cts(bytes: &[u8]) -> bool {
        parse_frame(bytes).is_ok_and(|es| es.iter().any(|e| matches!(e, Entry::Cts { .. })))
    }
    let world = shared_world(SimConfig::two_nodes(nic::mx_myri10g()));
    let mut a = engine(&world, 0, Box::new(StratAggreg));
    // CTS flows receiver → sender, so the duplicator sits under b.
    let duplicated = Arc::new(AtomicU32::new(0));
    let dup = ScriptedDuplicator {
        inner: SimDriver::new(world.clone(), NodeId(1), RailId(0)),
        predicate: is_cts,
        budget: 1,
        duplicated: duplicated.clone(),
        extra: Vec::new(),
    };
    let meter = Box::new(SimCpuMeter::new(world.clone(), NodeId(1)));
    let mut b = NmadEngine::new(
        vec![Box::new(dup) as Box<dyn Driver>],
        meter,
        Box::new(StratAggreg),
        EngineCosts::zero(),
    );

    let body: Vec<u8> = (0..90_000u32).map(|i| (i % 241) as u8).collect();
    let s = a.isend(NodeId(1), Tag(5), body.clone());
    let r = b.post_recv(NodeId(0), Tag(5), body.len());
    pump(&world, &mut a, &mut b, |a, b| {
        a.is_send_done(s) && b.is_recv_done(r)
    });
    assert_eq!(b.try_take_recv(r).unwrap().data, body, "payload intact");
    assert_eq!(duplicated.load(Ordering::Relaxed), 1, "CTS was duplicated");
    assert!(
        a.metrics().engine.stale_cts_ignored >= 1,
        "sender must count the stale CTS: {:?}",
        a.metrics().engine
    );
}
