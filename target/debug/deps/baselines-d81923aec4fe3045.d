/root/repo/target/debug/deps/baselines-d81923aec4fe3045.d: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs

/root/repo/target/debug/deps/libbaselines-d81923aec4fe3045.rlib: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs

/root/repo/target/debug/deps/libbaselines-d81923aec4fe3045.rmeta: crates/baselines/src/lib.rs crates/baselines/src/codec.rs crates/baselines/src/direct.rs

crates/baselines/src/lib.rs:
crates/baselines/src/codec.rs:
crates/baselines/src/direct.rs:
