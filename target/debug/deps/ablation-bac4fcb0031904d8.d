/root/repo/target/debug/deps/ablation-bac4fcb0031904d8.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-bac4fcb0031904d8.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
