/root/repo/target/debug/deps/nmad_core-a9013d4ba0211f93.d: crates/nmad-core/src/lib.rs crates/nmad-core/src/api.rs crates/nmad-core/src/engine.rs crates/nmad-core/src/matching.rs crates/nmad-core/src/metrics.rs crates/nmad-core/src/segment.rs crates/nmad-core/src/strategy/mod.rs crates/nmad-core/src/strategy/aggreg.rs crates/nmad-core/src/strategy/default.rs crates/nmad-core/src/strategy/dynamic.rs crates/nmad-core/src/strategy/multirail.rs crates/nmad-core/src/strategy/reorder.rs crates/nmad-core/src/window.rs crates/nmad-core/src/wire.rs

/root/repo/target/debug/deps/libnmad_core-a9013d4ba0211f93.rlib: crates/nmad-core/src/lib.rs crates/nmad-core/src/api.rs crates/nmad-core/src/engine.rs crates/nmad-core/src/matching.rs crates/nmad-core/src/metrics.rs crates/nmad-core/src/segment.rs crates/nmad-core/src/strategy/mod.rs crates/nmad-core/src/strategy/aggreg.rs crates/nmad-core/src/strategy/default.rs crates/nmad-core/src/strategy/dynamic.rs crates/nmad-core/src/strategy/multirail.rs crates/nmad-core/src/strategy/reorder.rs crates/nmad-core/src/window.rs crates/nmad-core/src/wire.rs

/root/repo/target/debug/deps/libnmad_core-a9013d4ba0211f93.rmeta: crates/nmad-core/src/lib.rs crates/nmad-core/src/api.rs crates/nmad-core/src/engine.rs crates/nmad-core/src/matching.rs crates/nmad-core/src/metrics.rs crates/nmad-core/src/segment.rs crates/nmad-core/src/strategy/mod.rs crates/nmad-core/src/strategy/aggreg.rs crates/nmad-core/src/strategy/default.rs crates/nmad-core/src/strategy/dynamic.rs crates/nmad-core/src/strategy/multirail.rs crates/nmad-core/src/strategy/reorder.rs crates/nmad-core/src/window.rs crates/nmad-core/src/wire.rs

crates/nmad-core/src/lib.rs:
crates/nmad-core/src/api.rs:
crates/nmad-core/src/engine.rs:
crates/nmad-core/src/matching.rs:
crates/nmad-core/src/metrics.rs:
crates/nmad-core/src/segment.rs:
crates/nmad-core/src/strategy/mod.rs:
crates/nmad-core/src/strategy/aggreg.rs:
crates/nmad-core/src/strategy/default.rs:
crates/nmad-core/src/strategy/dynamic.rs:
crates/nmad-core/src/strategy/multirail.rs:
crates/nmad-core/src/strategy/reorder.rs:
crates/nmad-core/src/window.rs:
crates/nmad-core/src/wire.rs:
