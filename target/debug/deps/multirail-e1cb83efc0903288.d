/root/repo/target/debug/deps/multirail-e1cb83efc0903288.d: crates/bench/src/bin/multirail.rs Cargo.toml

/root/repo/target/debug/deps/libmultirail-e1cb83efc0903288.rmeta: crates/bench/src/bin/multirail.rs Cargo.toml

crates/bench/src/bin/multirail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
